#!/usr/bin/env bash
# Tier-1 verification: build + tests, formatting, and lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "verify: OK"
