#!/usr/bin/env bash
# Tier-1 verification: build + tests, formatting, and lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo run --example quickstart =="
cargo run --release --example quickstart

echo "== cargo run --example determinize_replay =="
cargo run --release --example determinize_replay

echo "verify: OK"
