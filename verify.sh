#!/usr/bin/env bash
# Tier-1 verification: build + tests, formatting, and lints.
# `./verify.sh --quick` runs only the planner/executor determinism
# suite — the fast invariant check after touching the search machinery.
# `./verify.sh --fuzz` runs a time-boxed differential fuzz campaign
# (the corpus plus a fixed seed range) through the release CLI; any
# unexplained divergence from the planted blame sets fails the script.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--quick" ]]; then
  echo "== quick: jobs determinism (planner vs serial, 1 vs 8 workers) =="
  cargo test -q --test jobs_determinism
  echo "== quick: static prescreen (flit-lint unit + soundness suite) =="
  cargo test -q -p flit-lint
  cargo test -q --test lint_soundness
  echo "== quick: resume + dedup (kill-and-resume, shared query ledger) =="
  cargo test -q --test resume_durability
  cargo test -q -p flit-bisect
  cargo test -q -p flit-persist
  echo "== quick: certified bounds (flit-absint + certified prune + flit bound) =="
  cargo test -q -p flit-absint
  cargo test -q -p flit-cli certified
  cargo test -q -p flit-cli bound
  echo "== quick: fuzz oracle + campaign plumbing =="
  cargo test -q -p flit-fuzz
  echo "== quick: perf bisect (planner, stats layer, CLI verdicts) =="
  cargo test -q -p flit-bisect perf
  cargo test -q -p flit-report
  cargo test -q -p flit-cli perf
  echo "== quick: process backend (byte-identity, kill schedules, ledger) =="
  cargo test -q -p flit-exec
  cargo test -q -p flit-cli --test process_backend
  echo "== quick: process backend CLI smoke (worker subprocesses + worker-kill) =="
  cargo build -q -p flit-cli
  ./target/debug/flit bisect mfem --test ex13 --compilation "g++ -O3 -mavx2 -mfma" \
      --backend process --workers 4 > /dev/null
  ./target/debug/flit bisect mfem --test ex13 --compilation "g++ -O3 -mavx2 -mfma" \
      --backend process --workers 4 --kill-workers 1,1,2 > /dev/null
  echo "== quick: certified-prune + bound-soundness smoke (fuzz layer f) =="
  ./target/debug/flit bisect mfem --test ex13 --compilation "g++ -O3 -mavx2 -mfma" \
      --prune certified > /dev/null
  ./target/debug/flit bound mfem --pair "g++ -O2" "g++ -O3 -mavx2 -mfma" > /dev/null
  ./target/debug/flit fuzz --seeds 0..25 > /dev/null
  echo "== quick: flit-serve (protocol/sched/daemon units + multi-tenant suite) =="
  cargo test -q -p flit-serve
  cargo test -q -p flit-cli --test serve_daemon
  echo "== quick: flit-serve daemon smoke (start, submit, status, graceful shutdown) =="
  rm -rf target/serve-smoke
  ./target/debug/flit serve --listen 127.0.0.1:0 --state-dir target/serve-smoke &
  SERVE_PID=$!
  for _ in $(seq 1 150); do
    [[ -s target/serve-smoke/serve.addr ]] && break
    sleep 0.1
  done
  SERVE_ADDR=$(cat target/serve-smoke/serve.addr)
  ./target/debug/flit submit laghos --connect "$SERVE_ADDR" --tenant smoke \
      --max-bisections 1 > /dev/null
  ./target/debug/flit serve --status --connect "$SERVE_ADDR"
  ./target/debug/flit serve --shutdown --connect "$SERVE_ADDR" > /dev/null
  wait "$SERVE_PID"
  test -s target/serve-smoke/tenants/smoke/journal-*.jsonl
  echo "verify --quick: OK"
  exit 0
fi

if [[ "${1:-}" == "--fuzz" ]]; then
  echo "== fuzz: differential campaign vs planted blame sets (60 s box) =="
  cargo build -q --release -p flit-cli
  # --backend process adds the fifth oracle layer: corpus seeds (and
  # every resume-stride hit) re-run their search through `flit worker`
  # subprocesses and require a bit-identical result.
  ./target/release/flit fuzz --seeds 0..1000 --budget-secs 60 --shrink --backend process
  echo "verify --fuzz: OK"
  exit 0
fi

echo "== cargo build --release --workspace =="
# --workspace matters: the root [package] is the only default member,
# so a bare `cargo build` would leave target/release/flit stale.
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo run --example quickstart =="
cargo run --release --example quickstart

echo "== cargo run --example determinize_replay =="
cargo run --release --example determinize_replay

echo "== table2 characterization (emits BENCH_table2.json) =="
cargo run --release -p flit-bench --bin table2
test -s BENCH_table2.json

echo "== flit-serve fleet characterization (emits BENCH_serve.json; enforces dedup + p95 targets) =="
cargo run --release -p flit-bench --bin serve_bench
test -s BENCH_serve.json

echo "verify: OK"
