//! Navigate the performance-vs-reproducibility tradeoff for the MFEM
//! mini-library (the paper's §3.1, Figures 4-5): for each example, find
//! the fastest compilation that is still bitwise reproducible, and
//! decide whether giving up reproducibility would buy anything.
//!
//! ```sh
//! cargo run --release --example mfem_tradeoff
//! ```

use flit::core::analysis::{category_bars, fastest_is_reproducible_count};
use flit::mfem::{mfem_examples, mfem_program};
use flit::prelude::*;

fn main() {
    let program = mfem_program();
    let tests = mfem_examples();
    let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();

    println!("sweeping 244 compilations x 19 examples…");
    let db = run_matrix(
        &program,
        &dyn_tests,
        &mfem_matrix(),
        &RunnerConfig::default(),
    )
    .unwrap();

    println!("\nper-example recommendation (speedups vs g++ -O2):");
    for test in db.tests() {
        let bars = category_bars(&db, &test);
        let best_equal = bars
            .fastest_equal
            .iter()
            .filter_map(|(c, p)| p.as_ref().map(|p| (c, p)))
            .max_by(|a, b| a.1.speedup.partial_cmp(&b.1.speedup).unwrap());
        let best_variable = bars.fastest_variable.as_ref();

        match (best_equal, best_variable) {
            (Some((_, eq)), Some(var)) if var.speedup > eq.speedup * 1.02 => {
                println!(
                    "  {test}: variable `{}` is {:.1}% faster than the best reproducible \
                     `{}` — decide whether {:.1e} variability is acceptable",
                    var.label,
                    100.0 * (var.speedup / eq.speedup - 1.0),
                    eq.label,
                    var.comparison,
                );
            }
            (Some((_, eq)), _) => {
                println!(
                    "  {test}: use `{}` ({:.3}x) — reproducibility costs nothing here",
                    eq.label, eq.speedup
                );
            }
            (None, Some(var)) => {
                println!(
                    "  {test}: NO bitwise-reproducible compilation beats the baseline; \
                     fastest variable is `{}` ({:.3}x)",
                    var.label, var.speedup
                );
            }
            (None, None) => println!("  {test}: fully invariant"),
        }
    }

    let (wins, total) = fastest_is_reproducible_count(&db);
    println!(
        "\n{wins} of {total} examples get their best speed from a bitwise-reproducible \
         compilation (paper: 14 of 19) — \"reproducibility need not always be sacrificed \
         for performance gains\""
    );
}
