//! The left branch of Figure 1: the application is NOT deterministic
//! (racing threads reassociate a reduction), so FLiT cannot run — until
//! a ReMPI-style capture-playback pass records one schedule and replays
//! it, after which the whole workflow (sweep + bisect) applies.
//!
//! ```sh
//! cargo run --release --example determinize_replay
//! ```

use std::sync::Arc;

use flit::core::determinize::{RacyReduce, RrMode, ScheduleLog};
use flit::core::workflow::determinism_check;
use flit::prelude::*;

fn program(log: Arc<ScheduleLog>) -> SimProgram {
    SimProgram::new(
        "openmp-app",
        vec![
            SourceFile::new(
                "reduce.cpp",
                vec![Function::exported(
                    "omp_parallel_sum",
                    Kernel::Custom(Arc::new(RacyReduce { workers: 8, log })),
                )],
            ),
            SourceFile::new(
                "post.cpp",
                vec![Function::exported(
                    "postprocess",
                    Kernel::DotMix { stride: 3 },
                )],
            ),
        ],
    )
}

fn main() {
    let log = Arc::new(ScheduleLog::new());
    let program = program(log.clone());
    let test = DriverTest::new(
        Driver::new(
            "omp-regression",
            vec!["omp_parallel_sum".into(), "postprocess".into()],
            2,
            64,
        ),
        1,
        vec![0.41],
    );

    // Step 1: Figure 1 asks "Code Deterministic?" — race the threads.
    log.set_mode(RrMode::Live);
    let refs = vec![&test];
    let deterministic = determinism_check(&program, &refs, &Compilation::baseline(), 10);
    println!("[1] live determinism check over 10 runs: {deterministic}");
    if deterministic {
        println!("    (the scheduler happened to repeat itself — rare but possible;");
        println!("     a race detector like Archer would still flag the unsynchronized order)");
    } else {
        println!("    → nondeterministic, as expected for unordered parallel reduction");
    }

    // Step 2: determinize via capture-playback (the ReMPI box).
    log.set_mode(RrMode::Record);
    {
        let build = Build::new(&program, Compilation::baseline());
        let exe = build.executable().unwrap();
        let ctx = RunContext {
            program: &program,
            exe: &exe,
        };
        let _ = test.run_impl(&[0.41], &ctx).unwrap();
    }
    println!(
        "[2] recorded {} combination schedules from one execution",
        log.len()
    );

    // Step 3: under replay, the determinism gate passes…
    log.set_mode(RrMode::Replay);
    struct ReplayTest {
        inner: DriverTest,
        log: Arc<ScheduleLog>,
    }
    impl FlitTest for ReplayTest {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn inputs_per_run(&self) -> usize {
            self.inner.inputs_per_run()
        }
        fn default_input(&self) -> Vec<f64> {
            self.inner.default_input()
        }
        fn run_impl(
            &self,
            input: &[f64],
            ctx: &RunContext,
        ) -> Result<(TestResult, f64), flit::program::engine::RunError> {
            self.log.rewind(); // every FLiT execution replays from the top
            self.inner.run_impl(input, ctx)
        }
    }
    let replay_test = ReplayTest {
        inner: DriverTest::new(
            Driver::new(
                "omp-regression",
                vec!["omp_parallel_sum".into(), "postprocess".into()],
                2,
                64,
            ),
            1,
            vec![0.41],
        ),
        log: log.clone(),
    };
    {
        let build = Build::new(&program, Compilation::baseline());
        let exe = build.executable().unwrap();
        let ctx = RunContext {
            program: &program,
            exe: &exe,
        };
        let (a, _) = replay_test.run_impl(&[0.41], &ctx).unwrap();
        let (b, _) = replay_test.run_impl(&[0.41], &ctx).unwrap();
        assert!(a.bitwise_eq(&b));
        println!("[3] replayed executions are bitwise identical — FLiT can proceed");
    }

    // Step 4: …and the ordinary FLiT flow works on the replayed app.
    let tests: Vec<&dyn FlitTest> = vec![&replay_test];
    let comps = compilation_matrix(CompilerKind::Gcc);
    let db = run_matrix(&program, &tests, &comps, &RunnerConfig::default()).unwrap();
    let variable = db.rows.iter().filter(|r| r.is_variable()).count();
    println!(
        "[4] swept {} gcc compilations under replay: {} variable",
        db.rows.len(),
        variable
    );
    assert!(
        variable > 0,
        "the racy reduce + dot mix respond to unsafe math"
    );
    println!("    → the Figure-1 loop closes: determinize, then test and bisect as usual");
}
