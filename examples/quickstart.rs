//! Quickstart: write a FLiT test for your own numerical code, sweep the
//! compilation matrix, and root-cause any variability to a function.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flit::prelude::*;

fn main() {
    // 1. Your application: source files containing numerical functions.
    //    `DotMix` stands in for a reduction-heavy kernel; the benign
    //    kernels are exact (I/O, mesh handling, data movement).
    let program = SimProgram::new(
        "myapp",
        vec![
            SourceFile::new(
                "physics.cpp",
                vec![
                    Function::exported("integrate_flux", Kernel::DotMix { stride: 5 }),
                    Function::exported("apply_limiter", Kernel::Benign { flavor: 4 }),
                ],
            ),
            SourceFile::new(
                "io.cpp",
                vec![Function::exported(
                    "write_checkpoint",
                    Kernel::Benign { flavor: 6 },
                )],
            ),
        ],
    );

    // 2. A FLiT test: how to run the app (the driver) plus the input.
    //    The default comparison is the MFEM study's ||baseline - actual||2.
    let test = DriverTest::new(
        Driver::new(
            "flux-regression",
            vec![
                "integrate_flux".into(),
                "apply_limiter".into(),
                "write_checkpoint".into(),
            ],
            3,  // time steps
            64, // mesh size
        ),
        2,
        vec![0.4, 0.8],
    );

    // 3. Sweep the full 244-compilation study matrix.
    let tests: Vec<&dyn FlitTest> = vec![&test];
    let db = run_matrix(&program, &tests, &mfem_matrix(), &RunnerConfig::default()).unwrap();
    let variable: Vec<&RunRecord> = db.rows.iter().filter(|r| r.is_variable()).collect();
    println!(
        "swept {} compilations: {} produced variable results",
        db.rows.len(),
        variable.len()
    );
    for compiler in CompilerKind::MFEM_STUDY {
        let s = compiler_summary(&db, compiler);
        println!(
            "  {compiler}: {}/{} variable, best average flags `{}` ({:.3}x vs g++ -O2)",
            s.variable_runs, s.total_runs, s.best_flags, s.best_avg_speedup
        );
    }

    // 4. Pick one variability-inducing compilation and bisect it down to
    //    the responsible file and function.
    let culprit = variable
        .iter()
        .max_by(|a, b| a.comparison.partial_cmp(&b.comparison).unwrap())
        .expect("this kernel varies under unsafe math");
    println!(
        "\nbisecting the worst offender: {} (comparison {:.3e})",
        culprit.label, culprit.comparison
    );

    let baseline = Build::new(&program, Compilation::baseline());
    let variable_build = Build::tagged(&program, culprit.compilation.clone(), 1);
    // Checkpoint the search: every answered Test query is appended to a
    // durable journal, so a killed search resumes where it stopped.
    let journal_path = std::path::Path::new("target/quickstart-journal.jsonl");
    let ledger = QueryLedger::new(program.fingerprint(), &TraceSink::disabled());
    ledger.attach_journal(JournalWriter::create(journal_path, program.fingerprint()).unwrap());
    let pair = format!("{}/{}", test.driver().name, culprit.label);
    let cfg = HierarchicalConfig::all().with_ledger(LedgerHandle::new(ledger.clone(), 1, pair));
    let result = bisect_hierarchical(
        &baseline,
        &variable_build,
        test.driver(),
        &[0.4, 0.8],
        &l2_compare,
        &cfg,
    );

    assert_eq!(result.outcome, SearchOutcome::Completed);
    for f in &result.files {
        println!("  blamed file:   {} (Test = {:.3e})", f.file_name, f.value);
    }
    for s in &result.symbols {
        println!("  blamed symbol: {} (Test = {:.3e})", s.symbol, s.value);
    }
    println!(
        "  search cost: {} program executions over {} files / {} functions",
        result.executions,
        program.files.len(),
        program.total_functions()
    );
    assert_eq!(result.symbols.len(), 1);
    assert_eq!(result.symbols[0].symbol, "integrate_flux");
    println!(
        "  checkpoint: {} answers journaled to {}",
        ledger.stats().appended,
        journal_path.display()
    );

    // 5. Resume: a fresh process replays the journal instead of
    //    re-running anything — the result is byte-identical.
    let resumed_ledger = QueryLedger::new(program.fingerprint(), &TraceSink::disabled());
    let (writer, records) = JournalWriter::resume(journal_path, program.fingerprint()).unwrap();
    resumed_ledger.preload(&records);
    resumed_ledger.attach_journal(writer);
    let pair = format!("{}/{}", test.driver().name, culprit.label);
    let resumed_cfg =
        HierarchicalConfig::all().with_ledger(LedgerHandle::new(resumed_ledger.clone(), 1, pair));
    let resumed = bisect_hierarchical(
        &baseline,
        &variable_build,
        test.driver(),
        &[0.4, 0.8],
        &l2_compare,
        &resumed_cfg,
    );
    assert_eq!(resumed, result, "resume must reproduce the search exactly");
    assert_eq!(resumed_ledger.stats().executed, 0);
    println!(
        "  resume: {} journal records replayed, 0 live executions, identical findings",
        resumed_ledger.stats().replayed
    );
    println!("\nquickstart OK: the reduction kernel was correctly blamed.");
}
