//! The CGAL case from the paper's conclusion: "we have identified
//! specific instances of when it is unsafe to apply higher levels of
//! optimization, as these can drastically change the computed results
//! (e.g., even **discrete answers such as the number of points on a
//! mesh**)."
//!
//! This example builds a computational-geometry-style application whose
//! convex-hull construction uses *non-robust orientation predicates*:
//! the sign of a nearly-cancelling determinant decides whether a point
//! joins the hull. Under a value-changing compilation the determinant's
//! low bits — and sometimes its **sign** — change, so the hull has a
//! different number of points. The test returns the hull as a string
//! (the `std::string` result type of the FLiT API), FLiT flags the
//! discrete mismatch, and Bisect root-causes it to the predicate
//! function.
//!
//! ```sh
//! cargo run --release --example cgal_discrete
//! ```

use std::sync::Arc;

use flit::fpsim::reduce;
use flit::prelude::*;
use flit::program::kernel::KernelImpl;
use flit::program::sites::Injection;
use flit::toolchain::perf::KernelClass;

/// A non-robust orientation predicate bank: for each of 8 query points,
/// computes an ill-conditioned determinant under the compilation's FP
/// semantics and stores the *discrete* orientation (0.0 or 1.0) into
/// the state. The determinant's residual sits at rounding scale, so its
/// sign is semantics-dependent — exactly the CGAL failure mode.
struct OrientationPredicates;

impl KernelImpl for OrientationPredicates {
    fn name(&self) -> &str {
        "orientation_predicates"
    }

    fn eval(&self, state: &mut [f64], env: &FpEnv, _inj: Option<Injection>) {
        let n = state.len();
        if n < 16 {
            return;
        }
        const SCALES: [f64; 8] = [4.0, 0.25, 2.0, 0.5, 1.0, 4.0, 0.25, 2.0];
        for point in 0..8 {
            // An ill-conditioned "determinant": a cancelling, scaled dot
            // product of coordinate slices (evaluated under `env`).
            let a: Vec<f64> = (0..n)
                .map(|i| state[(i + point) % n] * SCALES[i % 8])
                .collect();
            let b: Vec<f64> = (0..n)
                .map(|i| {
                    let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                    sign * state[(i * 3 + point + 1) % n] * SCALES[(i * 5 + 3) % 8]
                })
                .collect();
            let det = reduce::dot(env, &a, &b);
            // The predicate: orientation = sign of the residual below
            // the determinant's leading 46 bits (a knife-edge decision
            // that a robust implementation would filter; this one is
            // deliberately non-robust).
            let y = det * 70_368_744_177_664.0; // 2^46
            let residual = y - y.round();
            state[point] = if residual > 0.0 { 1.0 } else { 0.0 };
        }
    }

    fn fp_sites(&self) -> usize {
        0
    }
    fn work(&self) -> f64 {
        512.0
    }
    fn class(&self) -> KernelClass {
        KernelClass::DotHeavy
    }
}

/// The FLiT test: runs the geometry pipeline and serializes the hull as
/// a string, using the API's `std::string` result variant.
struct HullTest {
    driver: Driver,
}

impl FlitTest for HullTest {
    fn name(&self) -> &str {
        "hull-regression"
    }
    fn inputs_per_run(&self) -> usize {
        2
    }
    fn default_input(&self) -> Vec<f64> {
        vec![0.37, 0.81]
    }
    fn run_impl(
        &self,
        input: &[f64],
        ctx: &RunContext,
    ) -> Result<(TestResult, f64), flit::program::engine::RunError> {
        let out = ctx.run_driver(&self.driver, input)?;
        // The orientation flags are the exact 0.0/1.0 markers; the rest
        // of the state (coordinates) lives strictly inside (0, 1), and
        // the hull code may permute the array (benign data movement).
        let flags: Vec<u8> = out
            .output
            .iter()
            .filter(|&&x| x == 0.0 || x == 1.0)
            .map(|&x| x as u8)
            .collect();
        let count: usize = flags.iter().map(|&f| f as usize).sum();
        Ok((
            TestResult::Str(format!("hull: {count} points, pattern {flags:?}")),
            out.seconds,
        ))
    }
}

fn main() {
    let program = SimProgram::new(
        "cgal-like",
        vec![
            SourceFile::new(
                "predicates.cpp",
                vec![Function::exported(
                    "Orientation_2",
                    Kernel::Custom(Arc::new(OrientationPredicates)),
                )],
            ),
            SourceFile::new(
                "hull.cpp",
                vec![
                    Function::exported("ConvexHull_Insert", Kernel::Benign { flavor: 2 }),
                    Function::exported("ConvexHull_Report", Kernel::Benign { flavor: 6 }),
                ],
            ),
        ],
    );
    let test = HullTest {
        driver: Driver::new(
            "hull",
            vec![
                "Orientation_2".into(),
                "ConvexHull_Insert".into(),
                "ConvexHull_Report".into(),
            ],
            1,
            64,
        ),
    };

    // Sweep the gcc matrix: discrete outputs either match exactly or
    // differ as a whole (the compare metric is 0/1 for strings).
    let tests: Vec<&dyn FlitTest> = vec![&test];
    let db = run_matrix(
        &program,
        &tests,
        &compilation_matrix(CompilerKind::Gcc),
        &RunnerConfig::default(),
    )
    .expect("sweep runs");
    println!("gcc matrix: {} compilations", db.rows.len());
    let mut changed = Vec::new();
    for r in &db.rows {
        if r.is_variable() {
            changed.push(r.label.clone());
        }
    }
    println!(
        "{} compilations change the DISCRETE hull (point count / pattern):",
        changed.len()
    );
    for label in &changed {
        println!("  {label}");
    }
    assert!(
        !changed.is_empty(),
        "value-changing flags must flip at least one orientation"
    );

    // Show the actual discrete difference for one of them.
    let base_build = Build::new(&program, Compilation::baseline());
    let base_exe = base_build.executable().unwrap();
    let (baseline, _) = test
        .run_impl(
            &[0.37, 0.81],
            &RunContext {
                program: &program,
                exe: &base_exe,
            },
        )
        .unwrap();
    let var_comp = db
        .rows
        .iter()
        .find(|r| r.is_variable())
        .unwrap()
        .compilation
        .clone();
    let var_build = Build::new(&program, var_comp.clone());
    let var_exe = var_build.executable().unwrap();
    let (variable, _) = test
        .run_impl(
            &[0.37, 0.81],
            &RunContext {
                program: &program,
                exe: &var_exe,
            },
        )
        .unwrap();
    println!("\nbaseline ({}):", Compilation::baseline().label());
    println!("  {baseline:?}");
    println!("variable ({}):", var_comp.label());
    println!("  {variable:?}");
    assert!(!baseline.bitwise_eq(&variable));

    // And Bisect pins the non-robust predicate.
    let res = bisect_hierarchical(
        &Build::new(&program, Compilation::baseline()),
        &Build::tagged(&program, var_comp, 1),
        &test.driver,
        &[0.37, 0.81],
        &l2_compare,
        &HierarchicalConfig::all(),
    );
    println!(
        "\nBisect blames: {:?} in {} executions",
        res.symbols
            .iter()
            .map(|s| s.symbol.as_str())
            .collect::<Vec<_>>(),
        res.executions
    );
    assert_eq!(res.symbols.len(), 1);
    assert_eq!(res.symbols[0].symbol, "Orientation_2");
    println!("\n→ 'even discrete answers such as the number of points on a mesh' can change;");
    println!("  the fix is a robust predicate (exact filtering), not a compiler flag.");
}
