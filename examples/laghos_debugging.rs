//! The full §3.4 Laghos debugging session, replayed end-to-end:
//!
//! 1. the public branch produces NaN under `xlc++ -O3` — Bisect finds
//!    the two visible symbols around the `xsw` UB swap macro;
//! 2. on the fixed branch, `-O3` still diverges by ~11 % — Bisect
//!    (digit-limited, k = 1) pins the `== 0.0` viscosity comparison in
//!    a handful of runs;
//! 3. after the epsilon-compare fix, `-O3` agrees with the trusted
//!    compilations.
//!
//! ```sh
//! cargo run --example laghos_debugging
//! ```

use flit::laghos::experiment::{compilation_under_test, LAGHOS_INPUT};
use flit::laghos::{laghos_driver, laghos_program, LaghosVariant};
use flit::prelude::*;

fn l2(xs: &[f64]) -> f64 {
    flit::fpsim::ulp::l2_norm(xs)
}

fn run(variant: LaghosVariant, comp: &Compilation) -> Vec<f64> {
    let program = laghos_program(variant);
    let build = Build::new(&program, comp.clone());
    let exe = build.executable().expect("laghos links");
    Engine::new(&program, &exe)
        .run(&laghos_driver(), &LAGHOS_INPUT)
        .expect("laghos runs")
        .output
}

fn main() {
    let trusted = Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![]);
    let aggressive = compilation_under_test(); // xlc++ -O3

    // --- Act 1: the NaN hunt on the public branch ---
    println!("Act 1: the public branch under xlc++ -O3");
    let out = run(LaghosVariant::WithXswBug, &aggressive);
    println!(
        "  {} of {} output values are NaN — 'all results were NaN'",
        out.iter().filter(|x| x.is_nan()).count(),
        out.len()
    );

    let program = laghos_program(LaghosVariant::WithXswBug);
    let result = bisect_hierarchical(
        &Build::new(&program, trusted.clone()),
        &Build::tagged(&program, aggressive.clone(), 1),
        &laghos_driver(),
        &LAGHOS_INPUT,
        &l2_compare,
        &HierarchicalConfig::all(),
    );
    println!(
        "  Bisect blames {:?} in {} executions",
        result
            .symbols
            .iter()
            .map(|s| s.symbol.as_str())
            .collect::<Vec<_>>(),
        result.executions
    );
    println!("  → both call the static helper containing `#define xsw(a,b) a^=b^=a^=b`");
    println!("    (undefined behaviour; xlc++ -O3 is entitled to produce garbage)\n");

    // --- Act 2: the == 0.0 comparison on the fixed branch ---
    println!("Act 2: the xsw-fixed branch under xlc++ -O3");
    let trusted_out = run(LaghosVariant::XswFixed, &trusted);
    let o3_out = run(LaghosVariant::XswFixed, &aggressive);
    println!(
        "  energy norm: trusted {:.4}, -O3 {:.4} ({:+.1}%)",
        l2(&trusted_out),
        l2(&o3_out),
        100.0 * (l2(&o3_out) / l2(&trusted_out) - 1.0),
    );

    let program = laghos_program(LaghosVariant::XswFixed);
    // Digit-limited comparison (2 significant digits) + BisectBiggest(1):
    // the cheapest way to the dominant contributor (Table 4's best row).
    let result = bisect_hierarchical(
        &Build::new(&program, trusted.clone()),
        &Build::tagged(&program, aggressive.clone(), 1),
        &laghos_driver(),
        &LAGHOS_INPUT,
        &digit_limited_compare(2),
        &HierarchicalConfig {
            k: Some(1),
            ..HierarchicalConfig::all()
        },
    );
    println!(
        "  Bisect (2 digits, k=1) blames {:?} in {} executions",
        result
            .symbols
            .iter()
            .map(|s| s.symbol.as_str())
            .collect::<Vec<_>>(),
        result.executions
    );
    println!("  → an exact `if (q == 0.0)` on a value with tiny compiler-induced variability\n");

    // --- Act 3: the epsilon-compare fix ---
    println!("Act 3: after changing to an epsilon-based comparison");
    let fixed_trusted = run(LaghosVariant::EpsilonCompare, &trusted);
    let fixed_o3 = run(LaghosVariant::EpsilonCompare, &aggressive);
    let rel = flit::fpsim::ulp::l2_diff(&fixed_trusted, &fixed_o3) / l2(&fixed_trusted);
    println!(
        "  relative difference trusted vs -O3: {rel:.2e} — 'results close to the trusted \
         results, even under xlc++ -O3'"
    );
    assert!(rel < 1e-9);
}
