//! Closing the Figure-1 loop: after Bisect blames a reduction, fix it
//! with a **bit-reproducible reduction operator** (the paper's related
//! work [3], Arteaga–Fuhrer–Hoefler, "Designing Bit-Reproducible
//! Portable High-Performance Applications") and re-run FLiT to confirm
//! the whole compilation matrix is now bitwise equal.
//!
//! ```sh
//! cargo run --release --example reproducible_fix
//! ```

use flit::prelude::*;

fn app(fixed: bool) -> SimProgram {
    let reduction = if fixed {
        Kernel::DotMixReproducible { stride: 5 }
    } else {
        Kernel::DotMix { stride: 5 }
    };
    SimProgram::new(
        if fixed { "climate-fixed" } else { "climate" },
        vec![
            SourceFile::new(
                "dycore.cpp",
                vec![
                    Function::exported("GlobalEnergyIntegral", reduction),
                    Function::exported("AdvectTracers", Kernel::Benign { flavor: 3 }),
                ],
            ),
            SourceFile::new(
                "io.cpp",
                vec![Function::exported(
                    "History_Write",
                    Kernel::Benign { flavor: 6 },
                )],
            ),
        ],
    )
}

fn sweep(program: &SimProgram) -> (usize, usize) {
    let test = DriverTest::new(
        Driver::new(
            "climate-regression",
            vec![
                "GlobalEnergyIntegral".into(),
                "AdvectTracers".into(),
                "History_Write".into(),
            ],
            3,
            64,
        ),
        1,
        vec![0.44],
    );
    let tests: Vec<&dyn FlitTest> = vec![&test];
    let db = run_matrix(program, &tests, &mfem_matrix(), &RunnerConfig::default()).unwrap();
    let variable = db.rows.iter().filter(|r| r.is_variable()).count();
    (variable, db.rows.len())
}

fn main() {
    // Before: the global energy integral is an ordinary reduction.
    let broken = app(false);
    let (var_before, total) = sweep(&broken);
    println!("before the fix: {var_before}/{total} compilations produce different energies");
    assert!(var_before > 0);

    // Bisect tells us which function to fix.
    let culprit_comp =
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe]);
    let res = bisect_hierarchical(
        &Build::new(&broken, Compilation::baseline()),
        &Build::tagged(&broken, culprit_comp, 1),
        &Driver::new(
            "climate-regression",
            vec![
                "GlobalEnergyIntegral".into(),
                "AdvectTracers".into(),
                "History_Write".into(),
            ],
            3,
            64,
        ),
        &[0.44],
        &l2_compare,
        &HierarchicalConfig::all(),
    );
    println!(
        "Bisect blames: {:?}",
        res.symbols
            .iter()
            .map(|s| s.symbol.as_str())
            .collect::<Vec<_>>()
    );
    assert_eq!(res.symbols.len(), 1);
    assert_eq!(res.symbols[0].symbol, "GlobalEnergyIntegral");

    // After: swap in the binned, bit-reproducible reduction.
    let fixed = app(true);
    let (var_after, total) = sweep(&fixed);
    println!("after the fix:  {var_after}/{total} compilations differ");
    assert_eq!(var_after, 0, "the reproducible reduction must be invariant");

    println!("\n→ reproducibility restored across all {total} runs without banning optimizations");
    println!("  (the reproducible operator costs ~2x in the reduction itself — the price");
    println!("   the bit-reproducibility literature reports for binned accumulation)");
}
