//! A small fault-injection campaign on the LULESH proxy (the §3.5
//! protocol on a sample of sites): perturb one floating-point
//! instruction at a time and check that Bisect finds it.
//!
//! ```sh
//! cargo run --release --example injection_campaign
//! ```

use flit::inject::study::{run_one, Classification, StudyConfig};
use flit::inject::{enumerate_sites, SiteRef};
use flit::lulesh::{lulesh_driver, lulesh_program};
use flit::prelude::*;
use flit::program::sites::InjectOp;

fn main() {
    let program = lulesh_program();
    let sites = enumerate_sites(&program);
    println!(
        "LULESH proxy: {} injectable static FP instructions across {} files",
        sites.len(),
        program.files.len()
    );

    let cfg = StudyConfig {
        compilation: Compilation::perf_reference(),
        driver: lulesh_driver(),
        input: vec![0.53, 0.31],
        seed: 7,
        threads: 1,
    };

    // Sample every 37th site so the demo finishes in seconds.
    let sample: Vec<&SiteRef> = sites.iter().step_by(37).collect();
    println!(
        "injecting at {} sampled sites (OP' = Add, ε ~ U(0,1))\n",
        sample.len()
    );

    let mut counts = std::collections::HashMap::new();
    for site in &sample {
        let record = run_one(&program, &cfg, site, InjectOp::Add, 0.61);
        *counts.entry(record.classification).or_insert(0usize) += 1;
        let verdict = match record.classification {
            Classification::Exact => format!("exact ({} runs)", record.runs),
            Classification::Indirect => format!(
                "indirect → {} ({} runs)",
                record.reported.join(", "),
                record.runs
            ),
            Classification::NotMeasurable => "benign (dead code or absorbed)".to_string(),
            other => format!("{other:?} — should not happen"),
        };
        println!("  {}#{:<3} {verdict}", site.symbol, site.site);
    }

    println!("\nsummary:");
    for (class, n) in &counts {
        println!("  {class:?}: {n}");
    }
    assert_eq!(
        counts.get(&Classification::Wrong),
        None,
        "no false positives"
    );
    assert_eq!(
        counts.get(&Classification::Missed),
        None,
        "no false negatives"
    );
    println!("\nprecision and recall: 100% on this sample (run `cargo run --release -p flit-bench --bin table5` for all 4,376)");
}
