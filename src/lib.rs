//! # flit — multi-level analysis of compiler-induced variability
//!
//! A from-scratch Rust reproduction of *Multi-Level Analysis of
//! Compiler-Induced Variability and Performance Tradeoffs* (Bentley,
//! Briggs, Gopalakrishnan, Ahn, Laguna, Lee, Jones — HPDC 2019): the
//! FLiT testing framework, its Bisect algorithm suite, and the paper's
//! three case studies (MFEM, Laghos, LULESH), on top of a fully
//! simulated compiler toolchain.
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! stable module names and provides a small [`prelude`].
//!
//! ```
//! use flit::prelude::*;
//!
//! // The paper's Figure 2, in five lines: find {2, 8, 9} among 1..=10.
//! let items: Vec<u32> = (1..=10).collect();
//! let weights = [(2u32, 0.25), (8, 1.5), (9, 0.125)];
//! let test = |set: &[u32]| -> Result<f64, TestError> {
//!     Ok(set.iter().filter_map(|i| weights.iter().find(|(w, _)| w == i)).map(|(_, v)| v).sum())
//! };
//! let out = bisect_all(test, &items).unwrap();
//! let mut found: Vec<u32> = out.found.iter().map(|(i, _)| *i).collect();
//! found.sort();
//! assert_eq!(found, vec![2, 8, 9]);
//! assert!(out.verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flit_bisect as bisect;
pub use flit_core as core;
pub use flit_exec as exec;
pub use flit_fpsim as fpsim;
pub use flit_fuzz as fuzz;
pub use flit_inject as inject;
pub use flit_laghos as laghos;
pub use flit_lint as lint;
pub use flit_lulesh as lulesh;
pub use flit_mfem as mfem;
pub use flit_persist as persist;
pub use flit_program as program;
pub use flit_report as report;
pub use flit_serve as serve;
pub use flit_toolchain as toolchain;
pub use flit_trace as trace;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use flit_bisect::algo::bisect_all;
    pub use flit_bisect::biggest::bisect_biggest;
    pub use flit_bisect::hierarchy::{
        bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig, HierarchicalResult,
        Prescreen, SearchOutcome,
    };
    pub use flit_bisect::journal::{load_journal, JournalError, JournalRecord, JournalWriter};
    pub use flit_bisect::ledger::{LedgerHandle, LedgerStats, QueryLedger, SearchKeys};
    pub use flit_bisect::parallel::{bisect_all_parallel, bisect_biggest_parallel, SharedOracle};
    pub use flit_bisect::planner::{BisectPlan, PlanStep, SearchMode};
    pub use flit_bisect::test_fn::{MemoTest, TestError};
    pub use flit_core::analysis::{
        category_bars, compiler_summary, switch_attribution, variability_summary,
    };
    pub use flit_core::db::{ResultsDb, RunRecord};
    pub use flit_core::metrics::{digit_limited_compare, l2_compare};
    pub use flit_core::runner::{run_matrix, RunnerConfig};
    pub use flit_core::test::{DriverTest, FlitTest, RunContext, TestResult};
    pub use flit_core::workflow::{run_workflow, LintMode, WorkflowConfig};
    pub use flit_exec::{ExecBackend, Executor, ProcessBackend, ThreadsBackend};
    pub use flit_fpsim::env::{FpEnv, MathLib, SimdWidth};
    pub use flit_fuzz::{
        check_seed, run_campaign, CampaignConfig, CampaignResult, OracleConfig, SeedVerdict,
    };
    pub use flit_lint::{
        analyze_program, audit_hierarchy, audit_injection, predict_pair, Feature, PairPrediction,
        SensitivitySet,
    };
    pub use flit_program::build::Build;
    pub use flit_program::engine::Engine;
    pub use flit_program::kernel::Kernel;
    pub use flit_program::model::{Driver, Function, SimProgram, SourceFile, Visibility};
    pub use flit_toolchain::compilation::{compilation_matrix, mfem_matrix, Compilation};
    pub use flit_toolchain::compiler::{CompilerKind, OptLevel};
    pub use flit_toolchain::flags::Switch;
    pub use flit_trace::event::{Span, Trace, TraceEvent};
    pub use flit_trace::registry::{Counter, MetricsRegistry};
    pub use flit_trace::sink::TraceSink;
}
