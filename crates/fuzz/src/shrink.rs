//! Delta-debugging shrinker for divergent seeds: minimize the failing
//! [`PlantedSpec`] — drop filler files, drop sites, simplify kernels
//! and shapes, thin the filler — re-checking the oracle after every
//! candidate step, then emit a self-contained Rust fixture snippet so
//! the campaign bug becomes a permanent regression test.

use flit_program::generate::{PlantKernel, PlantShape, PlantedSpec};

/// Outcome of minimizing one divergence.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized, still-failing spec.
    pub spec: PlantedSpec,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Total predicate evaluations spent.
    pub attempts: usize,
    /// A self-contained Rust snippet reproducing the divergence.
    pub fixture: String,
}

/// Every one-step smaller candidate of `spec`, most aggressive first.
fn candidates(spec: &PlantedSpec) -> Vec<PlantedSpec> {
    let mut out = Vec::new();
    // Drop sites (rear first, so indices of earlier sites are stable).
    for i in (0..spec.sites.len()).rev() {
        if spec.sites.len() > 1 {
            let mut s = spec.clone();
            s.sites.remove(i);
            out.push(s);
        }
    }
    // Drop filler wholesale, then halve it.
    if spec.filler.files > 0 {
        let mut s = spec.clone();
        s.filler.files = 0;
        out.push(s);
        if spec.filler.files > 1 {
            let mut s = spec.clone();
            s.filler.files /= 2;
            out.push(s);
        }
    }
    // Thin the filler files.
    if spec.filler.files > 0 && spec.filler.funcs_per_file > 1 {
        let mut s = spec.clone();
        s.filler.funcs_per_file = 1;
        out.push(s);
    }
    // Simplify each site: plainest kernel, plainest shape.
    for i in 0..spec.sites.len() {
        let (kernel, shape) = spec.sites[i];
        if kernel != PlantKernel::Dot {
            let mut s = spec.clone();
            s.sites[i].0 = PlantKernel::Dot;
            out.push(s);
        }
        if shape != PlantShape::ExportedEntry {
            let mut s = spec.clone();
            s.sites[i].1 = PlantShape::ExportedEntry;
            out.push(s);
        }
    }
    out
}

/// Greedily minimize `spec` under `still_fails` (which must return
/// `true` for the input spec). Runs candidate passes to a fixpoint:
/// each accepted step restarts the scan from the shrunk spec.
pub fn shrink(
    seed: u64,
    spec: &PlantedSpec,
    still_fails: &mut dyn FnMut(&PlantedSpec) -> bool,
) -> ShrinkResult {
    let mut current = spec.clone();
    let mut steps = 0usize;
    let mut attempts = 0usize;
    'outer: loop {
        for cand in candidates(&current) {
            attempts += 1;
            if still_fails(&cand) {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    let fixture = render_fixture(seed, &current);
    ShrinkResult {
        spec: current,
        steps,
        attempts,
        fixture,
    }
}

/// Render the spec as a compilable Rust snippet: paste into a test,
/// assert the oracle verdict, and the campaign bug is pinned forever.
pub fn render_fixture(seed: u64, spec: &PlantedSpec) -> String {
    let mut sites = String::new();
    for (kernel, shape) in &spec.sites {
        sites.push_str(&format!(
            "            (PlantKernel::{kernel:?}, PlantShape::{shape:?}),\n"
        ));
    }
    format!(
        "// Shrunk from fuzz seed {seed} (pair: {pair}). Reproduce with:\n\
         //   let v = check_spec({seed}, &spec, &OracleConfig::default());\n\
         //   assert!(v.passed(), \"{{:?}}\", v.divergences);\n\
         let spec = PlantedSpec {{\n\
         \x20   filler: FillerSpec {{\n\
         \x20       files: {files},\n\
         \x20       funcs_per_file: {fpf},\n\
         \x20       static_per_mille: {spm},\n\
         \x20       sloc_per_func: {sloc},\n\
         \x20       seed: {fseed:#x},\n\
         \x20       prefix: \"{prefix}\".into(),\n\
         \x20   }},\n\
         \x20   sites: vec![\n{sites}\x20   ],\n\
         \x20   seed: {sseed:#x},\n\
         }};\n",
        pair = crate::pairs::pair_for_seed(seed).name,
        files = spec.filler.files,
        fpf = spec.filler.funcs_per_file,
        spm = spec.filler.static_per_mille,
        sloc = spec.filler.sloc_per_func,
        fseed = spec.filler.seed,
        prefix = spec.filler.prefix,
        sseed = spec.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::generate::FillerSpec;

    fn fat_spec() -> PlantedSpec {
        PlantedSpec {
            filler: FillerSpec {
                files: 8,
                funcs_per_file: 12,
                prefix: "shrink".into(),
                ..FillerSpec::default()
            },
            sites: vec![
                (PlantKernel::Poly, PlantShape::CrossFileChain),
                (PlantKernel::Cg, PlantShape::StaticBehindWrapper),
                (PlantKernel::Div, PlantShape::ExportedInlinable),
            ],
            seed: 99,
        }
    }

    #[test]
    fn shrinks_to_the_failure_kernel_against_a_synthetic_oracle() {
        // Synthetic bug: "fails whenever a CgSolve site is present".
        // The minimum is one Cg site, no filler, plainest shape.
        let spec = fat_spec();
        let mut fails = |s: &PlantedSpec| s.sites.iter().any(|(k, _)| *k == PlantKernel::Cg);
        assert!(fails(&spec), "predicate must hold on the input");
        let r = shrink(42, &spec, &mut fails);
        assert_eq!(
            r.spec.sites,
            vec![(PlantKernel::Cg, PlantShape::ExportedEntry)]
        );
        assert_eq!(r.spec.filler.files, 0);
        assert!(
            r.steps >= 4,
            "expected several accepted steps, got {}",
            r.steps
        );
        assert!(r.attempts >= r.steps);
    }

    #[test]
    fn fixture_snippet_is_self_contained() {
        let r = shrink(7, &fat_spec(), &mut |s: &PlantedSpec| {
            s.sites.iter().any(|(k, _)| *k == PlantKernel::Cg)
        });
        for needle in [
            "PlantedSpec {",
            "FillerSpec {",
            "PlantKernel::Cg",
            "PlantShape::ExportedEntry",
            "check_spec(7",
        ] {
            assert!(
                r.fixture.contains(needle),
                "missing `{needle}`:\n{}",
                r.fixture
            );
        }
    }

    #[test]
    fn a_passing_spec_shrinks_nowhere() {
        let spec = fat_spec();
        // Predicate depends on nothing shrinkable-beyond: always true,
        // so the shrinker must bottom out at the global minimum instead
        // of looping forever.
        let r = shrink(1, &spec, &mut |_: &PlantedSpec| true);
        assert_eq!(r.spec.sites.len(), 1);
        assert_eq!(r.spec.filler.files, 0);
        assert_eq!(
            r.spec.sites[0],
            (PlantKernel::Dot, PlantShape::ExportedEntry)
        );
    }
}
