//! The campaign driver: run the per-seed oracle over a seed range
//! (corpus seeds first), inside an optional wall-clock budget, shrink
//! every divergence, and report.

use std::time::Instant;

use flit_trace::names::{counter, phase};
use flit_trace::TraceSink;

use crate::oracle::{check_seed, check_spec, OracleConfig};
use crate::shrink::shrink;
use flit_program::generate::random_planted;

/// Campaign parameters (the `flit fuzz` flag surface).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed range `start..end`.
    pub start: u64,
    /// Exclusive end of the range.
    pub end: u64,
    /// Wall-clock budget; `None` runs the whole range.
    pub budget_secs: Option<u64>,
    /// Parallel width of the jobs cross-check (values < 2 skip it).
    pub jobs: usize,
    /// Minimize divergent specs and emit fixture snippets.
    pub shrink: bool,
    /// Run the kill-and-resume layer on every `resume_stride`-th seed
    /// (0 disables it). Corpus seeds always get it.
    pub resume_stride: u64,
    /// Worker command for the process-backend byte-identity layer.
    /// When set, every seed that runs the resume layer (corpus seeds
    /// and `resume_stride` hits) also re-runs its search through
    /// worker subprocesses and requires a bit-identical result.
    pub process_cmd: Option<Vec<String>>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            start: 0,
            end: 100,
            budget_secs: None,
            jobs: 8,
            shrink: true,
            resume_stride: 16,
            process_cmd: None,
        }
    }
}

/// One divergence, with its shrink artifacts when shrinking ran.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The divergent seed.
    pub seed: u64,
    /// Compilation pair it bisected.
    pub pair: &'static str,
    /// The oracle mismatches.
    pub details: Vec<String>,
    /// Accepted shrink steps (0 when shrinking was off or fruitless).
    pub shrink_steps: usize,
    /// Site count before → after shrinking.
    pub sites_before_after: (usize, usize),
    /// The self-contained fixture snippet, when shrinking ran.
    pub fixture: Option<String>,
}

/// Campaign totals.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Seeds actually checked (corpus + range, minus any budget cut).
    pub seeds_run: u64,
    /// Seeds on which every layer agreed.
    pub passed: u64,
    /// Explained ABI-hazard crashes (subset of `passed`).
    pub explained_crashes: u64,
    /// Seeds that ran the kill-and-resume layer.
    pub resume_checks: u64,
    /// Seeds that ran the process-backend byte-identity layer.
    pub process_checks: u64,
    /// Seeds that ran the certified-bound soundness layer.
    pub bound_checks: u64,
    /// Total program executions across serial searches.
    pub executions: u64,
    /// Every divergence, in discovery order.
    pub divergences: Vec<Divergence>,
    /// True when the budget expired before the range was exhausted.
    pub out_of_budget: bool,
}

impl CampaignResult {
    /// Zero divergences?
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Seeds from the checked-in corpus file (`crates/fuzz/corpus.txt`):
/// known-interesting seeds that run before the requested range.
pub fn corpus_seeds() -> Vec<u64> {
    include_str!("../corpus.txt")
        .lines()
        .filter_map(|l| {
            let l = l.split('#').next().unwrap_or("").trim();
            if l.is_empty() {
                None
            } else {
                l.parse().ok()
            }
        })
        .collect()
}

/// Run the campaign. Corpus seeds run first (always with the resume
/// layer), then the configured range; the budget is checked between
/// seeds, never mid-oracle.
pub fn run_campaign(cfg: &CampaignConfig, trace: &TraceSink) -> CampaignResult {
    let started = Instant::now();
    let mut result = CampaignResult {
        seeds_run: 0,
        passed: 0,
        explained_crashes: 0,
        resume_checks: 0,
        process_checks: 0,
        bound_checks: 0,
        executions: 0,
        divergences: Vec::new(),
        out_of_budget: false,
    };

    let corpus = corpus_seeds();
    let seeds = corpus
        .iter()
        .copied()
        .map(|s| (s, true))
        .chain((cfg.start..cfg.end).map(|s| (s, false)));

    for (seed, from_corpus) in seeds {
        if let Some(budget) = cfg.budget_secs {
            if started.elapsed().as_secs() >= budget {
                result.out_of_budget = true;
                break;
            }
        }
        let check_resume = from_corpus || (cfg.resume_stride > 0 && seed % cfg.resume_stride == 0);
        let process_cmd = if check_resume {
            cfg.process_cmd.clone()
        } else {
            None
        };
        let oracle = OracleConfig {
            jobs: cfg.jobs,
            check_resume,
            process_cmd,
        };
        let verdict = check_seed(seed, &oracle);

        result.seeds_run += 1;
        result.executions += verdict.executions as u64;
        trace.counter(counter::FUZZ_SEEDS_RUN).incr(1);
        trace.span(
            phase::FUZZ,
            format!("seed-{seed:06}/{}", verdict.pair),
            verdict.executions as u64,
            0.0,
        );
        if check_resume {
            result.resume_checks += 1;
            trace.counter(counter::FUZZ_RESUME_CHECKS).incr(1);
        }
        if oracle.process_cmd.is_some() && !verdict.crashed_explained {
            result.process_checks += 1;
        }
        if verdict.bound_checked {
            result.bound_checks += 1;
            trace.counter(counter::FUZZ_BOUND_CHECKS).incr(1);
        }
        if verdict.crashed_explained {
            result.explained_crashes += 1;
            trace.counter(counter::FUZZ_CRASHES_EXPLAINED).incr(1);
        }
        if verdict.passed() {
            result.passed += 1;
            trace.counter(counter::FUZZ_SEEDS_PASSED).incr(1);
            continue;
        }

        trace.counter(counter::FUZZ_DIVERGENCES).incr(1);
        let spec = random_planted(seed);
        let mut divergence = Divergence {
            seed,
            pair: verdict.pair,
            details: verdict.divergences.clone(),
            shrink_steps: 0,
            sites_before_after: (spec.sites.len(), spec.sites.len()),
            fixture: None,
        };
        if cfg.shrink {
            let mut still_fails =
                |s: &flit_program::generate::PlantedSpec| !check_spec(seed, s, &oracle).passed();
            let shrunk = shrink(seed, &spec, &mut still_fails);
            trace
                .counter(counter::FUZZ_SHRINK_STEPS)
                .incr(shrunk.steps as u64);
            divergence.shrink_steps = shrunk.steps;
            divergence.sites_before_after = (spec.sites.len(), shrunk.spec.sites.len());
            divergence.fixture = Some(shrunk.fixture);
        }
        result.divergences.push(divergence);
    }
    result
}

/// Human-readable campaign report (the `flit fuzz` output).
pub fn render_report(cfg: &CampaignConfig, result: &CampaignResult) -> String {
    let mut out = format!(
        "flit fuzz: seeds {}..{} | jobs {} | resume stride {}{}\n\n",
        cfg.start,
        cfg.end,
        cfg.jobs,
        cfg.resume_stride,
        match cfg.budget_secs {
            Some(b) => format!(" | budget {b}s"),
            None => String::new(),
        }
    );
    out.push_str(&format!(
        "seeds run          {:>8}{}\n\
         passed             {:>8}\n\
         explained crashes  {:>8}  (planted ABI hazards, Table 2)\n\
         resume checks      {:>8}\n\
         process checks     {:>8}\n\
         bound checks       {:>8}  (certified bounds vs observed divergence)\n\
         executions         {:>8}\n\
         divergences        {:>8}\n",
        result.seeds_run,
        if result.out_of_budget {
            "  (budget expired)"
        } else {
            ""
        },
        result.passed,
        result.explained_crashes,
        result.resume_checks,
        result.process_checks,
        result.bound_checks,
        result.executions,
        result.divergences.len(),
    ));
    for d in &result.divergences {
        out.push_str(&format!(
            "\nDIVERGENCE seed {} ({}) — {} site(s) shrunk to {} in {} step(s)\n",
            d.seed, d.pair, d.sites_before_after.0, d.sites_before_after.1, d.shrink_steps
        ));
        for detail in &d.details {
            out.push_str(&format!("  * {detail}\n"));
        }
        if let Some(fixture) = &d.fixture {
            out.push_str("  shrunk fixture:\n");
            for line in fixture.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
    }
    if result.clean() {
        out.push_str("\nno divergences: pipeline agrees with every planted blame set\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_is_sorted_unique() {
        let seeds = corpus_seeds();
        assert!(!seeds.is_empty());
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seeds, sorted, "keep corpus.txt sorted and duplicate-free");
    }

    #[test]
    fn a_tiny_campaign_is_clean_and_counts_add_up() {
        let cfg = CampaignConfig {
            start: 0,
            end: 4,
            budget_secs: None,
            jobs: 2,
            shrink: true,
            resume_stride: 0,
            process_cmd: None,
        };
        let trace = TraceSink::enabled();
        let result = run_campaign(&cfg, &trace);
        assert!(result.clean(), "{:?}", result.divergences);
        assert_eq!(
            result.seeds_run,
            corpus_seeds().len() as u64 + 4,
            "corpus runs before the range"
        );
        assert_eq!(result.passed, result.seeds_run);
        // Corpus seeds always run the resume layer.
        assert_eq!(result.resume_checks, corpus_seeds().len() as u64);
        let snap = trace.snapshot();
        assert_eq!(snap.counter(counter::FUZZ_SEEDS_RUN), result.seeds_run);
        assert_eq!(snap.counter(counter::FUZZ_SEEDS_PASSED), result.passed);
        assert_eq!(snap.counter(counter::FUZZ_DIVERGENCES), 0);
        let report = render_report(&cfg, &result);
        assert!(report.contains("no divergences"), "{report}");
    }

    #[test]
    fn budget_zero_stops_before_any_seed() {
        let cfg = CampaignConfig {
            budget_secs: Some(0),
            ..CampaignConfig::default()
        };
        let result = run_campaign(&cfg, &TraceSink::disabled());
        assert_eq!(result.seeds_run, 0);
        assert!(result.out_of_budget);
    }
}
