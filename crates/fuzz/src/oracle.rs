//! The per-seed differential oracle: generate a planted codebase, run
//! the real pipeline against it, and compare every output to the
//! generator's ground truth.
//!
//! Checks per seed:
//!
//! * **(a) found-set equality** — `BisectAll`'s blamed files and
//!   symbols must equal the planted blame set exactly (no misses, no
//!   extras), with no `file_level_only` caps and no assumption
//!   violations;
//! * **(b) lint recall** — `flit-lint`'s static prediction must cover
//!   every planted file and symbol (recall 1.0; precision may be lower,
//!   the prescreen's verification probes absorb that), and its ABI
//!   hazard flag must match the linker predicate;
//! * **(c) width and resume byte-identity** — the jobs=N planner run
//!   must equal the serial result structurally (every f64 bit), and a
//!   kill-and-resume through a checkpoint journal must land on the
//!   identical result;
//! * **(d) journal round-trip** — the journal written by (c) must
//!   reload cleanly and replay without executing a single extra query;
//! * **(f) certified-bound soundness** — `flit-absint`'s certificates
//!   must never contradict this seed's ground truth or observations: no
//!   planted-blame item may be certified `Invariant`, every file-level
//!   singleton Test value must sit inside its certified bound, and the
//!   measured whole-pair divergence must sit inside the whole-pair
//!   bound.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use flit_bisect::hierarchy::{
    bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig, HierarchicalResult,
    SearchOutcome,
};
use flit_bisect::journal::{load_journal, JournalWriter};
use flit_bisect::ledger::{LedgerHandle, QueryLedger};
use flit_core::metrics::l2_compare;
use flit_exec::{ExecBackend, ProcessBackend, ThreadsBackend};
use flit_program::build::Build;
use flit_program::generate::{plant, random_planted, PlantedCodebase, PlantedSpec};
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;
use flit_trace::TraceSink;

use crate::pairs::{pair_for_seed, FuzzPair};

/// Which oracle layers to run for a seed.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Width of the parallel cross-check (values < 2 skip it).
    pub jobs: usize,
    /// Run the kill-and-resume + journal round-trip layer.
    pub check_resume: bool,
    /// Worker command for the process-backend byte-identity layer
    /// (`None` skips it). Typically the running `flit` binary plus the
    /// `worker` subcommand.
    pub process_cmd: Option<Vec<String>>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            jobs: 8,
            check_resume: false,
            process_cmd: None,
        }
    }
}

/// The oracle's verdict for one seed.
#[derive(Debug, Clone)]
pub struct SeedVerdict {
    /// The seed.
    pub seed: u64,
    /// Compilation pair bisected.
    pub pair: &'static str,
    /// Number of planted sites.
    pub sites: usize,
    /// How many sites were expected blame under this pair.
    pub expected_sites: usize,
    /// True when the search crashed *and* the pair is an ABI hazard —
    /// the Table-2 outcome, explained and accepted.
    pub crashed_explained: bool,
    /// Every oracle mismatch, human-readable. Empty = pass.
    pub divergences: Vec<String>,
    /// Program executions the serial search spent.
    pub executions: usize,
    /// True when the certified-bound soundness layer ran.
    pub bound_checked: bool,
}

impl SeedVerdict {
    /// Did every oracle layer agree with the ground truth?
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The planted blame set under a pair: files and symbols of every site
/// whose kernel feels this pair's env diff.
pub fn expected_blame(
    planted: &PlantedCodebase,
    pair: &FuzzPair,
) -> (BTreeSet<usize>, BTreeSet<String>) {
    let mut files = BTreeSet::new();
    let mut symbols = BTreeSet::new();
    for site in &planted.sites {
        if pair.hits.contains(&site.kernel) {
            files.insert(site.file_id);
            symbols.insert(site.blamed_symbol.clone());
        }
    }
    (files, symbols)
}

/// Scratch path for a seed's checkpoint journal.
fn scratch_journal(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flit-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    dir.join(format!("seed-{seed:08x}.jsonl"))
}

fn run_search(
    planted: &PlantedCodebase,
    pair: &FuzzPair,
    compare: &(dyn Fn(&[f64], &[f64]) -> f64 + Sync),
    ledger: Option<&std::sync::Arc<QueryLedger>>,
    jobs: usize,
    backend: Option<Arc<dyn ExecBackend>>,
) -> HierarchicalResult {
    let baseline = Build::new(&planted.program, Compilation::baseline());
    let variable = Build::tagged(&planted.program, pair.variable.clone(), 1);
    let mut cfg = HierarchicalConfig::all();
    if let Some(ledger) = ledger {
        cfg = cfg.with_ledger(LedgerHandle::new(
            ledger.clone(),
            1,
            format!("{}/{}", planted.driver.name, pair.variable.label()),
        ));
    }
    if let Some(backend) = backend {
        cfg = cfg.with_backend(backend);
    }
    let input = &[0.3, 0.7];
    if jobs > 1 {
        bisect_hierarchical_parallel(
            &baseline,
            &variable,
            &planted.driver,
            input,
            compare,
            &cfg,
            &ThreadsBackend::new(jobs),
        )
    } else {
        bisect_hierarchical(&baseline, &variable, &planted.driver, input, compare, &cfg)
    }
}

/// A compare metric that panics after `budget` calls — the in-process
/// stand-in for `kill -9` mid-search (same idiom as the resume
/// durability suite).
fn killing_compare(budget: usize) -> impl Fn(&[f64], &[f64]) -> f64 + Sync {
    let remaining = AtomicUsize::new(budget);
    move |a, b| {
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_err()
        {
            panic!("killed: compare budget exhausted");
        }
        l2_compare(a, b)
    }
}

/// Run the oracle against an explicit spec (the shrinker re-enters
/// here with mutated specs).
pub fn check_spec(seed: u64, spec: &PlantedSpec, cfg: &OracleConfig) -> SeedVerdict {
    let planted = plant(spec);
    let pair = pair_for_seed(seed);
    let (expected_files, expected_symbols) = expected_blame(&planted, &pair);
    let mut divergences = Vec::new();
    let mut crashed_explained = false;

    // Layer (a): the serial verifying search vs the planted truth.
    let serial = run_search(&planted, &pair, &l2_compare, None, 1, None);
    match &serial.outcome {
        SearchOutcome::Crashed(why) => {
            if pair.abi_hazard {
                crashed_explained = true;
            } else {
                divergences.push(format!("unexplained crash: {why}"));
            }
        }
        SearchOutcome::Completed => {
            let found_files: BTreeSet<usize> = serial.files.iter().map(|f| f.file_id).collect();
            let found_symbols: BTreeSet<String> =
                serial.symbols.iter().map(|s| s.symbol.clone()).collect();
            if found_files != expected_files {
                divergences.push(format!(
                    "file blame mismatch: found {found_files:?}, planted {expected_files:?}"
                ));
            }
            if found_symbols != expected_symbols {
                divergences.push(format!(
                    "symbol blame mismatch: found {found_symbols:?}, planted {expected_symbols:?}"
                ));
            }
            if !serial.file_level_only.is_empty() {
                divergences.push(format!(
                    "unexpected file_level_only caps: {:?} (menu kernels survive -fPIC)",
                    serial.file_level_only
                ));
            }
            if !serial.violations.is_empty() {
                divergences.push(format!("assumption violations: {:?}", serial.violations));
            }
        }
        SearchOutcome::LinkStepOnly if expected_files.is_empty() && expected_symbols.is_empty() => {
            // Legitimate: every planted kernel is invariant under this
            // pair (e.g. an FMA-only site bisected against icpc's
            // no-FMA fast model), so nothing diverges anywhere and the
            // mixed link reproduces the baseline exactly.
        }
        other => divergences.push(format!(
            "unexpected outcome {other:?} (expected blame: {expected_files:?})"
        )),
    }

    // Layer (c1): planner-driven parallel width must agree bit-for-bit.
    if cfg.jobs > 1 {
        let wide = run_search(&planted, &pair, &l2_compare, None, cfg.jobs, None);
        if crashed_explained {
            if !matches!(wide.outcome, SearchOutcome::Crashed(_)) {
                divergences.push(format!(
                    "jobs={} did not reproduce the ABI crash: {:?}",
                    cfg.jobs, wide.outcome
                ));
            }
        } else if wide != serial {
            divergences.push(format!(
                "jobs=1 vs jobs={} results differ:\n  serial {serial:?}\n  wide {wide:?}",
                cfg.jobs
            ));
        }
    }

    // Layer (e): process-backend byte-identity — the same serial
    // search, but every Test query ships to `flit worker` subprocesses
    // through the coordinator. Found sets, execution counts, and every
    // f64 bit must match the in-process serial result. (Skipped on
    // explained ABI crashes: the layer exists to pin transport
    // fidelity, not crash semantics.)
    if let (Some(cmd), false) = (&cfg.process_cmd, crashed_explained) {
        let backend: Arc<dyn ExecBackend> = Arc::new(ProcessBackend::new(cmd.clone(), 2));
        let remote = run_search(&planted, &pair, &l2_compare, None, 1, Some(backend));
        if remote != serial {
            divergences.push(format!(
                "process backend vs in-process serial differ:\n  serial {serial:?}\n  process {remote:?}"
            ));
        }
    }

    // Layer (b): lint recall 1.0 against the planted truth.
    {
        let baseline = Build::new(&planted.program, Compilation::baseline());
        let variable = Build::tagged(&planted.program, pair.variable.clone(), 1);
        let pred = flit_lint::predict_pair(
            &baseline,
            &variable,
            Some(&planted.driver),
            CompilerKind::Gcc,
        );
        for file_id in &expected_files {
            if !pred.file_predicted(*file_id) {
                divergences.push(format!("lint recall miss: file {file_id} not predicted"));
            }
        }
        for symbol in &expected_symbols {
            if !pred.symbol_predicted(symbol) {
                divergences.push(format!("lint recall miss: symbol {symbol} not predicted"));
            }
        }
        if pred.abi_hazard != pair.abi_hazard {
            divergences.push(format!(
                "lint abi_hazard {} but linker predicate says {}",
                pred.abi_hazard, pair.abi_hazard
            ));
        }
    }

    // Layers (c2) + (d): kill-and-resume byte-identity through a
    // checkpoint journal, then a clean journal round-trip.
    if cfg.check_resume && !crashed_explained {
        let fp = planted.program.fingerprint();
        let path = scratch_journal(seed);
        std::fs::remove_file(&path).ok();
        let budget = (seed % 23) as usize; // kill early, mid, or never
        let ledger = QueryLedger::new(fp, &TraceSink::disabled());
        ledger.attach_journal(JournalWriter::create(&path, fp).unwrap());
        // The kill is simulated by a panic; silence the default hook's
        // backtrace while it unwinds (the campaign would otherwise spew
        // one per resume check).
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let killed = catch_unwind(AssertUnwindSafe(|| {
            run_search(
                &planted,
                &pair,
                &killing_compare(budget),
                Some(&ledger),
                1,
                None,
            )
        }));
        std::panic::set_hook(prev_hook);
        if let Ok(res) = &killed {
            // A budget generous enough to finish yields the serial
            // outcome — which is `LinkStepOnly` when the pair hits none
            // of the planted kernels. Anything else (a violated search
            // invariant, say) is a real divergence.
            if !matches!(
                res.outcome,
                SearchOutcome::Crashed(_) | SearchOutcome::Completed | SearchOutcome::LinkStepOnly
            ) {
                divergences.push(format!("killed run odd outcome: {:?}", res.outcome));
            }
        }
        if let Some(err) = ledger.journal_error() {
            divergences.push(format!("journal write error during kill: {err}"));
        }
        drop(ledger);

        match JournalWriter::resume(&path, fp) {
            Ok((writer, records)) => {
                let resumed_ledger = QueryLedger::new(fp, &TraceSink::disabled());
                resumed_ledger.preload(&records);
                resumed_ledger.attach_journal(writer);
                let resumed =
                    run_search(&planted, &pair, &l2_compare, Some(&resumed_ledger), 1, None);
                if resumed != serial {
                    divergences.push(format!(
                        "kill-and-resume result differs from uninterrupted run \
                         (budget {budget}):\n  gold {serial:?}\n  resumed {resumed:?}"
                    ));
                }
                let stats = resumed_ledger.stats();
                if stats.replayed != records.len() as u64 {
                    divergences.push(format!(
                        "journal replay accounting: {} replayed of {} records",
                        stats.replayed,
                        records.len()
                    ));
                }
            }
            Err(err) => divergences.push(format!("journal resume failed: {err}")),
        }
        // The completed journal must still load as a whole.
        if let Err(err) = load_journal(&path, fp) {
            divergences.push(format!("journal round-trip failed: {err}"));
        }
        std::fs::remove_file(&path).ok();
    }

    // Layer (f): certified-bound soundness. The certifier models the
    // same contract the search runs (mixed binaries linked by gcc), so
    // its verdicts are checkable against both the planted truth and the
    // values the serial search actually measured. Skipped on explained
    // ABI crashes — there the observed side is a crash, not a number.
    if !crashed_explained {
        let certs = flit_absint::certify_pair(
            &planted.program,
            &planted.program,
            &planted.driver,
            &Compilation::baseline(),
            &pair.variable,
            CompilerKind::Gcc,
        );
        // (f1) No planted-blame item may be certified Invariant: the
        // ground truth says it diverges, so an Invariant there would be
        // an unsound certificate (and would wrongly prune the search).
        for fid in &expected_files {
            if certs.file(*fid) == flit_absint::Certificate::Invariant {
                divergences.push(format!(
                    "unsound certificate: file {fid} is planted blame but certified Invariant"
                ));
            }
        }
        for symbol in &expected_symbols {
            if certs.symbol(symbol) == flit_absint::Certificate::Invariant {
                divergences.push(format!(
                    "unsound certificate: symbol {symbol} is planted blame but certified Invariant"
                ));
            }
        }
        // (f2) Every file-level singleton Test value the serial search
        // measured must respect that file's certified bound — the exact
        // quantity the certificate models.
        for f in &serial.files {
            let cert = certs.file(f.file_id);
            if cert.contradicted_by(f.value) {
                divergences.push(format!(
                    "certified bound violated: file {} observed {:e} against {cert:?}",
                    f.file_name, f.value
                ));
            }
        }
        // (f3) The measured whole-pair divergence (each pure binary
        // linked by its own compiler, the certifier's whole-pair model)
        // must respect the whole-pair bound.
        let observed_whole = (|| -> Result<f64, String> {
            let base = Build::new(&planted.program, Compilation::baseline());
            let cand = Build::new(&planted.program, pair.variable.clone());
            let input = &[0.3, 0.7];
            let run = |b: &Build| -> Result<Vec<f64>, String> {
                let exe = b.executable().map_err(|e| format!("link: {e}"))?;
                flit_program::engine::Engine::new(&planted.program, &exe)
                    .run(&planted.driver, input)
                    .map(|o| o.output)
                    .map_err(|e| format!("run: {e}"))
            };
            Ok(l2_compare(&run(&base)?, &run(&cand)?))
        })();
        match observed_whole {
            Ok(observed) => {
                if certs.whole.contradicted_by(observed) {
                    divergences.push(format!(
                        "whole-pair bound violated: observed {observed:e} against {:?}",
                        certs.whole
                    ));
                }
            }
            Err(why) => divergences.push(format!("whole-pair measurement failed: {why}")),
        }
    }

    SeedVerdict {
        seed,
        pair: pair.name,
        sites: planted.sites.len(),
        expected_sites: expected_files.len(),
        crashed_explained,
        divergences,
        executions: serial.executions,
        bound_checked: !crashed_explained,
    }
}

/// Run the oracle for one seed of the campaign space.
pub fn check_seed(seed: u64, cfg: &OracleConfig) -> SeedVerdict {
    check_spec(seed, &random_planted(seed), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_seed_range_passes_every_layer() {
        let cfg = OracleConfig {
            jobs: 4,
            check_resume: false,
            process_cmd: None,
        };
        for seed in 0..6u64 {
            let v = check_seed(seed, &cfg);
            assert!(v.passed(), "seed {seed} diverged: {:?}", v.divergences);
        }
    }

    #[test]
    fn resume_layer_holds_on_a_seeded_kill() {
        let cfg = OracleConfig {
            jobs: 2,
            check_resume: true,
            process_cmd: None,
        };
        // Seed 1 draws a gcc pair (no ABI hazard), so the resume layer
        // actually runs.
        let v = check_seed(1, &cfg);
        assert!(!v.crashed_explained);
        assert!(v.passed(), "seed 1 diverged: {:?}", v.divergences);
    }

    #[test]
    fn expected_blame_filters_by_hit_table() {
        use flit_program::generate::{FillerSpec, PlantKernel, PlantShape, PlantedSpec};
        // Div is not in the gcc-fma hit table; Dot and Norm are.
        let spec = PlantedSpec {
            filler: FillerSpec {
                files: 2,
                funcs_per_file: 4,
                prefix: "eb".into(),
                ..FillerSpec::default()
            },
            sites: vec![
                (PlantKernel::Dot, PlantShape::ExportedEntry),
                (PlantKernel::Norm, PlantShape::ExportedEntry),
                (PlantKernel::Div, PlantShape::CrossFileChain),
            ],
            seed: 3,
        };
        let planted = plant(&spec);
        let pair = crate::pairs::pair_menu()
            .into_iter()
            .find(|p| p.name == "gcc-fma")
            .unwrap();
        let (files, symbols) = expected_blame(&planted, &pair);
        assert_eq!(files.len(), 2);
        assert_eq!(symbols.len(), 2);
        assert!(symbols
            .iter()
            .all(|s| s.contains("site00") || s.contains("site01")));
    }
}
