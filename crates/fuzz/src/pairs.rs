//! The compilation-pair menu a fuzz seed draws from, with the *hit
//! table*: which plantable kernels actually feel each pair's FpEnv
//! difference. The table is engineered (not measured at campaign time)
//! and pinned against the fpsim ground truth by
//! [`tests::hit_tables_match_the_dynamic_truth`] — if the environment
//! derivation or a kernel's numerics ever drift, that unit test breaks,
//! not a thousand campaign seeds.

use flit_program::generate::PlantKernel;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;

/// One `(baseline, variable)` compilation pair the campaign bisects.
/// The baseline is always [`Compilation::baseline`] (`g++ -O0`), and
/// bisections link with the baseline driver (g++), exactly as
/// `flit bisect` does.
#[derive(Debug, Clone)]
pub struct FuzzPair {
    /// Short name for reports and shrunk fixtures.
    pub name: &'static str,
    /// The variable compilation.
    pub variable: Compilation,
    /// Plantable kernels whose value changes under this pair's env
    /// diff. A planted site is *expected blame* iff its kernel is here.
    pub hits: &'static [PlantKernel],
    /// True when mixing the pair's objects under the g++ link driver is
    /// an ABI hazard: any Test run may crash (Table 2's Intel column),
    /// so the oracle accepts `Crashed` as an explained outcome.
    pub abi_hazard: bool,
}

use PlantKernel::*;

/// `g++ -O3 -mavx2 -mfma -funsafe-math-optimizations`: FMA contraction,
/// 4-lane reduction splitting, and reciprocal math — every plantable
/// kernel diverges.
const GCC_UNSAFE_HITS: &[PlantKernel] = &[Dot, MatVec, Rank1, Norm, Poly, Chaotic, Cg, Div];

/// `g++ -O2 -mavx2 -mfma`: FMA contraction only (the value-unsafe part
/// of plain vector targeting). Every kernel whose update rounds a
/// multiply-add — including `Norm`'s sum-of-squares — moves;
/// reciprocal-only `Div` stays bitwise identical.
const GCC_FMA_HITS: &[PlantKernel] = &[Dot, MatVec, Rank1, Norm, Poly, Chaotic, Cg];

/// `icpc -O2 -fp-model fast=2`: wide reassociation, FTZ, and reciprocal
/// math, but no FMA target. FMA-only kernels (`Poly`'s serial Horner
/// chain, `Chaotic`'s logistic relaxation) stay identical, and so does
/// `Rank1`: the plant menu caps its dots at length 7, below the W4
/// vectorization threshold (`len >= 2` lanes), so its reductions stay
/// scalar and keep the baseline association order. Everything with a
/// long reduction or a division diverges.
const ICPC_FAST2_HITS: &[PlantKernel] = &[Dot, MatVec, Norm, Cg, Div];

/// The full pair menu.
pub fn pair_menu() -> Vec<FuzzPair> {
    vec![
        FuzzPair {
            name: "gcc-unsafe",
            variable: Compilation::new(
                CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            hits: GCC_UNSAFE_HITS,
            abi_hazard: false,
        },
        FuzzPair {
            name: "gcc-fma",
            variable: Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::Avx2Fma]),
            hits: GCC_FMA_HITS,
            abi_hazard: false,
        },
        FuzzPair {
            name: "icpc-fast2",
            variable: Compilation::new(
                CompilerKind::Icpc,
                OptLevel::O2,
                vec![Switch::FpModelFast2],
            ),
            hits: ICPC_FAST2_HITS,
            abi_hazard: true,
        },
    ]
}

/// The pair a seed bisects: round-robin over the menu, so every third
/// seed exercises the ABI-hazard path.
pub fn pair_for_seed(seed: u64) -> FuzzPair {
    let mut menu = pair_menu();
    menu.swap_remove((seed % menu.len() as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::generate::SplitMix;
    use flit_toolchain::mixed_abi_hazard;

    /// Evaluate one kernel instantiation under both sides of a pair on
    /// a deterministic state; `true` when any element differs.
    fn diverges(pair: &FuzzPair, kernel: PlantKernel, rng_seed: u64) -> bool {
        let env_b = Compilation::baseline().fp_env_linked(CompilerKind::Gcc);
        let env_v = pair.variable.fp_env_linked(CompilerKind::Gcc);
        let k = kernel.instantiate(&mut SplitMix::new(rng_seed));
        let state: Vec<f64> = (0..64).map(|i| (0.1 + 0.37 * i as f64).fract()).collect();
        let (mut a, mut b) = (state.clone(), state);
        k.eval(&mut a, &env_b, None);
        k.eval(&mut b, &env_v, None);
        a != b
    }

    #[test]
    fn hit_tables_match_the_dynamic_truth() {
        // Every kernel in a pair's hit table must diverge under that
        // pair for *every* parameter draw in the menu, and every kernel
        // left out must stay bitwise identical — the exactness the
        // oracle's expected blame sets are built on.
        for pair in pair_menu() {
            for kernel in PlantKernel::ALL {
                let expected = pair.hits.contains(&kernel);
                for rng_seed in 0..8u64 {
                    assert_eq!(
                        diverges(&pair, kernel, rng_seed),
                        expected,
                        "{}: {kernel:?} (draw {rng_seed})",
                        pair.name
                    );
                }
            }
        }
    }

    #[test]
    fn abi_hazard_flags_match_the_linker_predicate() {
        for pair in pair_menu() {
            assert_eq!(
                pair.abi_hazard,
                mixed_abi_hazard(
                    &[CompilerKind::Gcc, pair.variable.compiler],
                    CompilerKind::Gcc
                ),
                "{}",
                pair.name
            );
        }
    }

    #[test]
    fn pair_choice_is_deterministic_and_covers_the_menu() {
        let names: std::collections::BTreeSet<&str> =
            (0..6).map(|s| pair_for_seed(s).name).collect();
        assert_eq!(names.len(), pair_menu().len());
        assert_eq!(pair_for_seed(5).name, pair_for_seed(5).name);
    }
}

/// Dev tool, not a test: prints the kernel × pair divergence matrix
/// over 16 parameter draws on the pinned probe state — the evidence the
/// hit tables above were transcribed from. Run it when adding a kernel
/// or a pair:
///
/// ```text
/// cargo test -p flit-fuzz print_matrix -- --ignored --nocapture
/// ```
#[cfg(test)]
mod probe {
    use super::*;
    use flit_program::generate::SplitMix;
    use flit_toolchain::compiler::CompilerKind;

    #[test]
    #[ignore]
    fn print_matrix() {
        for pair in pair_menu() {
            println!("== {}", pair.name);
            let env_b = Compilation::baseline().fp_env_linked(CompilerKind::Gcc);
            let env_v = pair.variable.fp_env_linked(CompilerKind::Gcc);
            println!("   env_b={env_b:?}");
            println!("   env_v={env_v:?}");
            for kernel in PlantKernel::ALL {
                let mut verdicts = Vec::new();
                for rng_seed in 0..16u64 {
                    let k = kernel.instantiate(&mut SplitMix::new(rng_seed));
                    let state: Vec<f64> =
                        (0..64).map(|i| (0.1 + 0.37 * i as f64).fract()).collect();
                    let (mut a, mut b) = (state.clone(), state);
                    k.eval(&mut a, &env_b, None);
                    k.eval(&mut b, &env_v, None);
                    verdicts.push(if a != b { '1' } else { '0' });
                }
                let s: String = verdicts.into_iter().collect();
                println!("   {kernel:?}: {s}");
            }
        }
    }
}
