//! `flit-fuzz` — generative differential-testing campaign over the
//! whole pipeline, with planted ground truth.
//!
//! Each seed generates a random codebase with *planted blame sets*
//! ([`flit_program::generate::random_planted`]): FP-sensitive kernels
//! behind exported, static, inlinable, and cross-file entry shapes,
//! plus mixed-ABI hazards, all recorded as ground truth. The oracle
//! ([`oracle::check_seed`]) then checks four layers against that truth:
//!
//! 1. the hierarchical bisection's found set equals the planted blame
//!    set (files and symbols),
//! 2. `flit-lint`'s static prediction keeps recall 1.0 over it,
//! 3. `--jobs 8` returns byte-identical results to `--jobs 1`, and a
//!    seeded kill-and-resume through the checkpoint journal replays to
//!    the same bytes,
//! 4. the journal round-trips: the file on disk reloads cleanly.
//!
//! Divergent seeds feed a delta-debugging shrinker ([`shrink::shrink`])
//! that minimizes the planted spec and emits a self-contained fixture
//! snippet. The campaign driver ([`campaign::run_campaign`]) surfaces
//! as `flit fuzz --seeds A..B`.

pub mod campaign;
pub mod oracle;
pub mod pairs;
pub mod shrink;

pub use campaign::{corpus_seeds, render_report, run_campaign, CampaignConfig, CampaignResult};
pub use oracle::{check_seed, check_spec, OracleConfig, SeedVerdict};
pub use pairs::{pair_for_seed, pair_menu, FuzzPair};
pub use shrink::{shrink, ShrinkResult};
