//! The kernel library: what function bodies *do*.
//!
//! Each kernel is a deterministic transform of the program state vector,
//! evaluated under the [`FpEnv`] of whichever object file defines the
//! enclosing function. Kernels are engineered with *specific, disjoint
//! sensitivities* so that the compilation studies reproduce the paper's
//! structure:
//!
//! | kernel           | sensitive to                              |
//! |------------------|-------------------------------------------|
//! | `DotMix`         | reassociation, FMA, extended precision    |
//! | `MatVecMix`      | reassociation, FMA, extended precision    |
//! | `Rank1Mix`       | reassociation, FMA, extended precision (Finding 2) |
//! | `CgSolve`        | everything above + iteration-path (Finding 1) |
//! | `HeatSmooth`     | FMA only                                  |
//! | `ChaoticAmplify` | FMA (and amplifies incoming differences)  |
//! | `TranscMap`      | math library only (the Intel link step)   |
//! | `PolyHorner`     | FMA, extended precision                   |
//! | `DivScan`        | reciprocal math only                      |
//! | `NormScale`      | reassociation, extended precision         |
//! | `Benign`         | nothing (exact arithmetic)                |
//! | `UbSwap`         | UB-exploiting optimization (Laghos xsw)   |
//! | `ZeroGate`       | reassociation/extended via `== 0.0` branch (Laghos) |
//!
//! A design convention keeps sensitivities honest: *incidental*
//! divisions (range squashing) use plain `/` — real compilers only
//! apply the reciprocal rewrite to loop-invariant divisors in hot
//! loops — while `DivScan`'s characteristic division goes through
//! [`ops::div`].

use std::sync::Arc;

use flit_fpsim::env::FpEnv;
use flit_fpsim::linalg::DenseMatrix;
use flit_fpsim::{mathlib, ops, poly, reduce, solve, stencil};
use flit_toolchain::perf::KernelClass;

use crate::sites::Injection;

/// Trait for externally defined kernels (the LULESH hydro phases in
/// `flit-lulesh` implement this with full static-site support).
pub trait KernelImpl: Send + Sync {
    /// Short name for diagnostics.
    fn name(&self) -> &str;
    /// Transform the state under `env`, honoring an optional injection.
    fn eval(&self, state: &mut [f64], env: &FpEnv, inj: Option<Injection>);
    /// Number of static floating-point instruction sites (0 if the
    /// kernel is not injectable).
    fn fp_sites(&self) -> usize;
    /// Abstract work units for the performance model.
    fn work(&self) -> f64;
    /// Kernel class for the performance model.
    fn class(&self) -> KernelClass;
}

/// A function body.
#[derive(Clone)]
pub enum Kernel {
    /// Dot product of the state with a rotated copy, blended back.
    DotMix {
        /// Rotation offset for the second operand.
        stride: usize,
    },
    /// The same reduction as [`Kernel::DotMix`] rewritten on top of the
    /// bit-reproducible binned accumulator (the paper's related work
    /// \[3\], Arteaga–Fuhrer–Hoefler): identical results under every
    /// compilation — the "fix" a developer applies after Bisect blames
    /// a reduction.
    DotMixReproducible {
        /// Rotation offset for the second operand.
        stride: usize,
    },
    /// Dense mat-vec with a state-gathered matrix, blended back.
    MatVecMix {
        /// Matrix dimension.
        n: usize,
    },
    /// The Finding-2 kernel: `M += a·A·Aᵀ` with nested loops.
    Rank1Mix {
        /// Matrix dimension.
        n: usize,
        /// The scalar `a`.
        alpha: f64,
    },
    /// Conjugate-gradient solve with a `tol` stopping criterion on an
    /// ill-conditioned SPD system (Finding 1: converges to different
    /// iterates under different semantics).
    CgSolve {
        /// System dimension.
        n: usize,
        /// Residual tolerance (the paper's example 8 used 1e-12).
        tol: f64,
        /// Condition-number scale of the system.
        cond: f64,
    },
    /// Repeated 1-D heat smoothing (FMA-sensitive, reassociation-free).
    HeatSmooth {
        /// Number of smoothing steps.
        steps: usize,
        /// Diffusion number.
        r: f64,
    },
    /// Chaotic logistic relaxation: amplifies incoming differences.
    ChaoticAmplify {
        /// Growth rate (`> 2.57` is the chaotic regime).
        lambda: f64,
        /// Iteration count.
        steps: usize,
    },
    /// Pointwise `sin`/`exp` mapping: varies only with the math library
    /// (the Intel link-step effect).
    TranscMap {
        /// Frequency multiplier.
        freq: f64,
    },
    /// Horner polynomial evaluation per element.
    PolyHorner {
        /// Polynomial degree.
        degree: usize,
    },
    /// Division by a loop-invariant denominator (reciprocal-math
    /// sensitive).
    DivScan,
    /// ℓ2-norm feedback blend (reassociation/extended sensitive).
    NormScale,
    /// Exact arithmetic only; provably identical under every
    /// environment. `flavor` selects among exact transforms.
    Benign {
        /// Which exact transform (modulo the flavor count).
        flavor: u8,
    },
    /// The Laghos `xsw` swap macro (`a^=b^=a^=b`): undefined behaviour
    /// that UB-exploiting optimization levels turn into NaN poison.
    UbSwap,
    /// The Laghos `== 0.0` comparison: a residual that is exactly zero
    /// under strict evaluation but tiny-nonzero under reassociation or
    /// extended precision; the branch divergence applies a large
    /// viscosity-like boost.
    ZeroGate {
        /// Multiplier applied on the divergent branch.
        boost: f64,
    },
    /// A chaotic logistic amplifier implemented with *plain* (strict)
    /// arithmetic: its compiled code is identical under every
    /// environment, so it is never blamed by Bisect, yet it magnifies
    /// whatever differences upstream kernels feed it — the mechanism
    /// that turns example 13's single rank-1-update perturbation into a
    /// ~190 % relative error without adding a second blame site.
    AmplifyExact {
        /// Growth rate (`> 2.57` is the chaotic regime).
        lambda: f64,
        /// Iteration count.
        steps: usize,
    },
    /// Externally defined kernel (e.g. LULESH hydro phases).
    Custom(Arc<dyn KernelImpl>),
}

/// Global registry resolving [`Kernel::Custom`] names on
/// deserialization. A custom kernel is a trait object, so the wire
/// carries only its [`KernelImpl::name`]; any process that needs to
/// rebuild such a program (e.g. a `flit worker` subprocess) must have
/// registered the implementation first.
static CUSTOM_KERNELS: std::sync::OnceLock<
    std::sync::Mutex<std::collections::HashMap<String, Arc<dyn KernelImpl>>>,
> = std::sync::OnceLock::new();

/// Register a custom kernel implementation under its name, making
/// serialized programs that reference it deserializable in this
/// process. Re-registering a name replaces the implementation.
pub fn register_custom_kernel(imp: Arc<dyn KernelImpl>) {
    CUSTOM_KERNELS
        .get_or_init(Default::default)
        .lock()
        .expect("custom-kernel registry lock poisoned")
        .insert(imp.name().to_string(), imp);
}

fn lookup_custom_kernel(name: &str) -> Option<Arc<dyn KernelImpl>> {
    CUSTOM_KERNELS
        .get()?
        .lock()
        .expect("custom-kernel registry lock poisoned")
        .get(name)
        .cloned()
}

// Manual serde impls: every data variant uses the same externally
// tagged encoding the shim derive emits; `Custom` (a trait object)
// serializes as its registered name and deserializes through the
// registry.
impl serde::Serialize for Kernel {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let named = |tag: &str, fields: Vec<(String, Value)>| {
            Value::Object(vec![(tag.to_string(), Value::Object(fields))])
        };
        match self {
            Kernel::DotMix { stride } => {
                named("DotMix", vec![("stride".to_string(), stride.to_value())])
            }
            Kernel::DotMixReproducible { stride } => named(
                "DotMixReproducible",
                vec![("stride".to_string(), stride.to_value())],
            ),
            Kernel::MatVecMix { n } => named("MatVecMix", vec![("n".to_string(), n.to_value())]),
            Kernel::Rank1Mix { n, alpha } => named(
                "Rank1Mix",
                vec![
                    ("n".to_string(), n.to_value()),
                    ("alpha".to_string(), alpha.to_value()),
                ],
            ),
            Kernel::CgSolve { n, tol, cond } => named(
                "CgSolve",
                vec![
                    ("n".to_string(), n.to_value()),
                    ("tol".to_string(), tol.to_value()),
                    ("cond".to_string(), cond.to_value()),
                ],
            ),
            Kernel::HeatSmooth { steps, r } => named(
                "HeatSmooth",
                vec![
                    ("steps".to_string(), steps.to_value()),
                    ("r".to_string(), r.to_value()),
                ],
            ),
            Kernel::ChaoticAmplify { lambda, steps } => named(
                "ChaoticAmplify",
                vec![
                    ("lambda".to_string(), lambda.to_value()),
                    ("steps".to_string(), steps.to_value()),
                ],
            ),
            Kernel::TranscMap { freq } => {
                named("TranscMap", vec![("freq".to_string(), freq.to_value())])
            }
            Kernel::PolyHorner { degree } => named(
                "PolyHorner",
                vec![("degree".to_string(), degree.to_value())],
            ),
            Kernel::DivScan => Value::String("DivScan".to_string()),
            Kernel::NormScale => Value::String("NormScale".to_string()),
            Kernel::Benign { flavor } => {
                named("Benign", vec![("flavor".to_string(), flavor.to_value())])
            }
            Kernel::UbSwap => Value::String("UbSwap".to_string()),
            Kernel::ZeroGate { boost } => {
                named("ZeroGate", vec![("boost".to_string(), boost.to_value())])
            }
            Kernel::AmplifyExact { lambda, steps } => named(
                "AmplifyExact",
                vec![
                    ("lambda".to_string(), lambda.to_value()),
                    ("steps".to_string(), steps.to_value()),
                ],
            ),
            Kernel::Custom(imp) => named(
                "Custom",
                vec![("name".to_string(), Value::String(imp.name().to_string()))],
            ),
        }
    }
}

impl serde::Deserialize for Kernel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{DeError, Value};
        match v {
            Value::String(s) => match s.as_str() {
                "DivScan" => Ok(Kernel::DivScan),
                "NormScale" => Ok(Kernel::NormScale),
                "UbSwap" => Ok(Kernel::UbSwap),
                other => Err(DeError(format!("unknown variant `{other}` of Kernel"))),
            },
            Value::Object(pairs) if pairs.len() == 1 => {
                let (tag, inner) = &pairs[0];
                match tag.as_str() {
                    "DotMix" => Ok(Kernel::DotMix {
                        stride: usize::from_value(inner.field("stride")?)?,
                    }),
                    "DotMixReproducible" => Ok(Kernel::DotMixReproducible {
                        stride: usize::from_value(inner.field("stride")?)?,
                    }),
                    "MatVecMix" => Ok(Kernel::MatVecMix {
                        n: usize::from_value(inner.field("n")?)?,
                    }),
                    "Rank1Mix" => Ok(Kernel::Rank1Mix {
                        n: usize::from_value(inner.field("n")?)?,
                        alpha: f64::from_value(inner.field("alpha")?)?,
                    }),
                    "CgSolve" => Ok(Kernel::CgSolve {
                        n: usize::from_value(inner.field("n")?)?,
                        tol: f64::from_value(inner.field("tol")?)?,
                        cond: f64::from_value(inner.field("cond")?)?,
                    }),
                    "HeatSmooth" => Ok(Kernel::HeatSmooth {
                        steps: usize::from_value(inner.field("steps")?)?,
                        r: f64::from_value(inner.field("r")?)?,
                    }),
                    "ChaoticAmplify" => Ok(Kernel::ChaoticAmplify {
                        lambda: f64::from_value(inner.field("lambda")?)?,
                        steps: usize::from_value(inner.field("steps")?)?,
                    }),
                    "TranscMap" => Ok(Kernel::TranscMap {
                        freq: f64::from_value(inner.field("freq")?)?,
                    }),
                    "PolyHorner" => Ok(Kernel::PolyHorner {
                        degree: usize::from_value(inner.field("degree")?)?,
                    }),
                    "Benign" => Ok(Kernel::Benign {
                        flavor: u8::from_value(inner.field("flavor")?)?,
                    }),
                    "ZeroGate" => Ok(Kernel::ZeroGate {
                        boost: f64::from_value(inner.field("boost")?)?,
                    }),
                    "AmplifyExact" => Ok(Kernel::AmplifyExact {
                        lambda: f64::from_value(inner.field("lambda")?)?,
                        steps: usize::from_value(inner.field("steps")?)?,
                    }),
                    "Custom" => {
                        let name = String::from_value(inner.field("name")?)?;
                        lookup_custom_kernel(&name)
                            .map(Kernel::Custom)
                            .ok_or_else(|| {
                                DeError(format!(
                                    "custom kernel `{name}` is not registered in this process \
                                 (call register_custom_kernel first)"
                                ))
                            })
                    }
                    other => Err(DeError(format!("unknown variant `{other}` of Kernel"))),
                }
            }
            other => Err(DeError(format!(
                "expected variant of Kernel, got {}",
                other.kind()
            ))),
        }
    }
}

/// Blend weights used by feedback kernels; exact dyadic values so the
/// blend multiplications add no rounding of their own.
const WEIGHTS: [f64; 8] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

/// Exact powers of two used to diversify operand magnitudes inside
/// reduction kernels (multiplying by them adds no rounding). Mixed
/// magnitudes plus alternating signs make reductions mildly
/// ill-conditioned, so evaluation-order differences land around 1e-14
/// relative — the scale the paper's Figure 6 reports for typical
/// variable compilations. The range is kept narrow ([1/4, 4]) so that a
/// *chain* of residual kernels amplifies upstream differences only
/// gently (≈2× per kernel); wide ranges would saturate long pipelines
/// like example 8's nine-function chain.
const SCALES: [f64; 13] = [
    4.0, 0.25, 1.0, 2.0, 0.5, 4.0, 0.25, 2.0, 1.0, 0.5, 4.0, 0.5, 2.0,
];

/// Alternating signs for cancellation (exact).
#[inline]
fn alt_sign(i: usize) -> f64 {
    if i.is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// One ill-conditioned reduction over the state: exact sign/scale
/// diversification (alternating signs, power-of-two magnitudes) makes
/// the evaluation order matter, and the fractional residual preserves
/// the resulting absolute difference. `salt` varies the gather/scale
/// pattern so independent calls have independent rounding sequences.
fn ill_dot(env: &FpEnv, state: &[f64], stride: usize, salt: usize) -> f64 {
    let n = state.len();
    let a: Vec<f64> = (0..n)
        .map(|i| state[(i + salt) % n] * SCALES[(i + salt * 3) % 13])
        .collect();
    let b: Vec<f64> = (0..n)
        .map(|i| alt_sign(i) * state[(i + stride) % n] * SCALES[(i * 5 + 2 + salt * 7) % 13])
        .collect();
    frac_residual(reduce::dot(env, &a, &b))
}

/// Combine three independent reduction residuals into one value in
/// [0, 1]. A compilation-induced difference in *any* of the three
/// almost surely survives (a single marginal reduction can round back
/// to the baseline bits for particular states — combining independent
/// sequences drives that probability to negligible).
fn triple_residual(env: &FpEnv, state: &[f64], stride: usize) -> f64 {
    let r0 = ill_dot(env, state, stride, 0);
    let r1 = ill_dot(env, state, stride + 3, 5);
    let r2 = ill_dot(env, state, stride + 11, 9);
    frac_residual(r0 + 0.5 * r1 + 0.25 * r2) + 0.5
}

/// Fractional residual `x - round(x)` ∈ [-0.5, 0.5]: an *exact*
/// extraction (Sterbenz) that preserves the absolute difference between
/// two nearby inputs. Saturating squashes like `x/(1+|x|)` would crush
/// an order-1e-13 reduction difference below one ulp of the output;
/// the residual keeps it intact, the way phase/remainder computations
/// in real codes do.
#[inline]
fn frac_residual(x: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    x - x.round()
}

impl Kernel {
    /// Evaluate the kernel on `state` under `env`.
    pub fn eval(&self, state: &mut [f64], env: &FpEnv, inj: Option<Injection>) {
        if state.is_empty() {
            return;
        }
        match self {
            Kernel::DotMix { stride } => {
                let t = triple_residual(env, state, *stride);
                for (i, x) in state.iter_mut().enumerate() {
                    let w = WEIGHTS[i % 8];
                    *x = ops::mul_add(env, 0.25 * w, t, 0.75 * *x);
                }
            }
            Kernel::DotMixReproducible { stride } => {
                // Same dataflow as DotMix, but every reduction runs
                // through the reproducible accumulator: exact splits and
                // products of exact splits commute, so no compilation
                // can change the result. The element-wise blend uses
                // plain (strict) arithmetic for the same reason.
                let n = state.len();
                let mut t_acc = 0.0;
                for (salt, stride_off) in [(0usize, 0usize), (5, 3), (9, 11)] {
                    let mut acc = flit_fpsim::compensated::ReproducibleSum::new();
                    for i in 0..n {
                        let a = state[(i + salt) % n] * SCALES[(i + salt * 3) % 13];
                        let b = alt_sign(i)
                            * state[(i + stride + stride_off) % n]
                            * SCALES[(i * 5 + 2 + salt * 7) % 13];
                        acc.add(a * b);
                    }
                    let r = frac_residual(acc.value());
                    t_acc = frac_residual(t_acc + 0.5 * r);
                }
                let t = t_acc + 0.5;
                for (i, x) in state.iter_mut().enumerate() {
                    let w = WEIGHTS[i % 8];
                    *x = 0.25 * w * t + 0.75 * *x;
                }
            }
            Kernel::MatVecMix { n } => {
                let n = (*n).min(state.len());
                let len = state.len();
                let mut a = DenseMatrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        a[(i, j)] = alt_sign(i + j)
                            * (state[(i * 13 + j * 7) % len] - 0.5)
                            * SCALES[(i + 2 * j) % 13];
                    }
                }
                let x: Vec<f64> = (0..n)
                    .map(|j| state[len - 1 - (j % len)] * SCALES[(j * 3 + 1) % 13])
                    .collect();
                let y = a.gemv(env, &x);
                for (i, yi) in y.iter().enumerate() {
                    let t = frac_residual(*yi) + 0.5;
                    let s = &mut state[i % len];
                    *s = ops::mul_add(env, 0.25, t, 0.75 * *s);
                }
                // A final whole-state reduction makes the kernel's
                // sensitivity robust for arbitrary states (individual
                // short rows can round identically by chance).
                let t = triple_residual(env, state, 7);
                for (i, x) in state.iter_mut().enumerate() {
                    *x = ops::mul_add(env, 0.125 * WEIGHTS[i % 8], t, 0.875 * *x);
                }
            }
            Kernel::Rank1Mix { n, alpha } => {
                let n = (*n).min((state.len() as f64).sqrt() as usize).max(2);
                let len = state.len();
                let mut m = DenseMatrix::zeros(n, n);
                let mut a = DenseMatrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        m[(i, j)] = state[(i * n + j) % len] - 0.5;
                        a[(i, j)] = alt_sign(i + j)
                            * (state[(i * 17 + j * 29 + 3) % len] - 0.5)
                            * SCALES[(i * 3 + j) % 13];
                    }
                }
                m.add_a_aat(env, *alpha, &a);
                for i in 0..n {
                    for j in 0..n {
                        let v = m[(i, j)];
                        state[(i * n + j) % len] = frac_residual(v) + 0.5;
                    }
                }
            }
            Kernel::CgSolve { n, tol, cond } => {
                let n = (*n).min(state.len()).max(2);
                let len = state.len();
                // Ill-conditioned SPD system: geometric diagonal plus a
                // weak symmetric coupling (state-independent so the
                // system itself is fixed; only the RHS moves).
                let mut a = DenseMatrix::zeros(n, n);
                for i in 0..n {
                    let expo = i as f64 / (n - 1) as f64;
                    a[(i, i)] = cond.powf(expo);
                    if i + 1 < n {
                        let c = 0.01 * ((i * 7 % 5) as f64 + 1.0);
                        a[(i, i + 1)] = c;
                        a[(i + 1, i)] = c;
                    }
                }
                let b: Vec<f64> = (0..n).map(|i| state[i % len] + 0.1).collect();
                let sol = solve::conjugate_gradient(env, &a, &b, *tol, 8 * n);
                for (i, xi) in sol.x.iter().enumerate() {
                    let t = xi / (1.0 + xi.abs());
                    let s = &mut state[i % len];
                    *s = ops::mul_add(env, 0.25, t, 0.75 * *s);
                }
            }
            Kernel::HeatSmooth { steps, r } => {
                let mut u = state.to_vec();
                for _ in 0..*steps {
                    u = stencil::heat_step(env, &u, *r);
                }
                state.copy_from_slice(&u);
            }
            Kernel::ChaoticAmplify { lambda, steps } => {
                // Map into the logistic basin, iterate, map back.
                for x in state.iter_mut() {
                    *x = 0.2 + 0.6 * *x;
                }
                stencil::nonlinear_relax(env, state, *lambda, *steps);
                for x in state.iter_mut() {
                    // Clamp against basin-edge overshoot, then rescale.
                    let c = x.clamp(0.0, 1.35);
                    *x = c / 1.35;
                }
            }
            Kernel::TranscMap { freq } => {
                // Plain arithmetic around the library calls so this
                // kernel varies with the math library and nothing else.
                for x in state.iter_mut() {
                    let s = mathlib::sin(env, *x * freq);
                    let e = mathlib::exp(env, -(x.abs() + 0.1));
                    *x = 0.45 + 0.35 * s + 0.15 * e;
                }
            }
            Kernel::PolyHorner { degree } => {
                // Mixed-magnitude dyadic coefficients so that contraction
                // and extended-precision effects land well above one ulp
                // of the extracted residual.
                let coeffs: Vec<f64> = (0..=*degree)
                    .map(|k| alt_sign(k) * SCALES[(k * 3 + 1) % 13] * WEIGHTS[k % 8])
                    .collect();
                for x in state.iter_mut() {
                    let p = poly::horner(env, &coeffs, *x);
                    *x = 0.25 + 0.5 * (frac_residual(p) + 0.5);
                }
            }
            Kernel::DivScan => {
                // Loop-invariant denominator: the canonical target of
                // the reciprocal-math rewrite.
                let denom = 1.0 + state[0].abs() + 0.618_034;
                for x in state.iter_mut() {
                    *x = ops::div(env, *x + 0.25, denom);
                }
            }
            Kernel::NormScale => {
                // Norm plus two independent reduction residuals: mixed
                // magnitudes make every reduction order matter.
                let scaled: Vec<f64> = state
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x - 0.5) * SCALES[(i * 7 + 4) % 13])
                    .collect();
                let nrm = reduce::norm_l2(env, &scaled);
                let aux = triple_residual(env, state, 5);
                let t = frac_residual(frac_residual(nrm) + 0.5 * aux) + 0.5;
                for (i, x) in state.iter_mut().enumerate() {
                    let w = WEIGHTS[(i + 3) % 8];
                    *x = ops::mul_add(env, 0.25 * w, t, 0.75 * *x);
                }
            }
            Kernel::AmplifyExact { lambda, steps } => {
                // Environment-independent by construction: plain ops.
                for x in state.iter_mut() {
                    *x = 0.2 + 0.6 * *x;
                }
                for _ in 0..*steps {
                    for x in state.iter_mut() {
                        *x += lambda * (*x * (1.0 - *x));
                    }
                }
                for x in state.iter_mut() {
                    *x = x.clamp(0.0, 1.35) / 1.35;
                }
            }
            Kernel::Benign { flavor } => benign_eval(*flavor, state),
            Kernel::UbSwap => {
                if env.exploit_ub {
                    // `a ^= b ^= a ^= b` on the same object without a
                    // sequence point: a UB-licensed optimizer is free to
                    // produce garbage. xlc++ -O3 did; we model the
                    // observed outcome (NaN results, §3.4).
                    state[0] = f64::NAN;
                    if state.len() > 1 {
                        state[1] = f64::NAN;
                    }
                } else if state.len() > 1 {
                    state.swap(0, 1);
                }
            }
            Kernel::ZeroGate { boost } => {
                // A checksum residual: under strict scalar evaluation
                // the runtime sums reproduce the compile-time constants
                // exactly; reassociated or extended evaluation leaves a
                // tiny nonzero residual in at least one of the three
                // sums (one fixed dataset can reorder losslessly by
                // luck; three independent ones cannot). The exact
                // `== 0.0` test then branches differently — the root
                // cause FLiT isolated in Laghos ("an exact comparison
                // to 0.0 in an if statement", §3.4).
                if zero_gate_fires(env) {
                    for x in state.iter_mut() {
                        // NaN-propagating cap (f64::min would replace a
                        // NaN with 4.0 and launder upstream poison).
                        let y = *x * boost;
                        *x = if y > 4.0 { 4.0 } else { y };
                    }
                    // The divergent branch also violates conservation:
                    // one cell's density goes negative ("a physical
                    // impossibility" — the paper's motivating example).
                    state[0] -= 1.0;
                }
            }
            Kernel::Custom(imp) => imp.eval(state, env, inj),
        }
    }

    /// Number of static FP instruction sites (0 = not injectable).
    pub fn fp_sites(&self) -> usize {
        match self {
            Kernel::Custom(imp) => imp.fp_sites(),
            _ => 0,
        }
    }

    /// Abstract work units for the performance model.
    pub fn work(&self, state_len: usize) -> f64 {
        let n = state_len.max(1) as f64;
        match self {
            Kernel::DotMix { .. } => 4.0 * n,
            Kernel::DotMixReproducible { .. } => 9.0 * n, // binned splits cost ~2x

            Kernel::MatVecMix { n: m } => 2.0 * (*m * *m) as f64 + n,
            Kernel::Rank1Mix { n: m, .. } => 2.0 * (*m * *m * *m) as f64 + n,
            Kernel::CgSolve { n: m, .. } => 30.0 * (*m * *m) as f64,
            Kernel::HeatSmooth { steps, .. } => 4.0 * n * *steps as f64,
            Kernel::ChaoticAmplify { steps, .. } => 3.0 * n * *steps as f64,
            Kernel::AmplifyExact { steps, .. } => 3.0 * n * *steps as f64,
            Kernel::TranscMap { .. } => 40.0 * n,
            Kernel::PolyHorner { degree } => n * (*degree as f64 + 1.0),
            Kernel::DivScan => 2.0 * n,
            Kernel::NormScale => 3.0 * n,
            Kernel::Benign { .. } => n,
            Kernel::UbSwap => 2.0,
            Kernel::ZeroGate { .. } => 64.0 + n,
            Kernel::Custom(imp) => imp.work(),
        }
    }

    /// Kernel class for the performance model.
    pub fn class(&self) -> KernelClass {
        match self {
            Kernel::DotMix { .. }
            | Kernel::DotMixReproducible { .. }
            | Kernel::MatVecMix { .. }
            | Kernel::Rank1Mix { .. }
            | Kernel::CgSolve { .. }
            | Kernel::NormScale
            | Kernel::PolyHorner { .. } => KernelClass::DotHeavy,
            Kernel::HeatSmooth { .. }
            | Kernel::ChaoticAmplify { .. }
            | Kernel::AmplifyExact { .. } => KernelClass::Stencil,
            Kernel::TranscMap { .. } => KernelClass::Transcendental,
            Kernel::DivScan => KernelClass::DivHeavy,
            Kernel::Benign { .. } => KernelClass::Memory,
            Kernel::UbSwap | Kernel::ZeroGate { .. } => KernelClass::Branchy,
            Kernel::Custom(imp) => imp.class(),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> String {
        match self {
            Kernel::DotMix { .. } => "dot_mix".into(),
            Kernel::DotMixReproducible { .. } => "dot_mix_reproducible".into(),
            Kernel::MatVecMix { .. } => "matvec_mix".into(),
            Kernel::Rank1Mix { .. } => "rank1_update".into(),
            Kernel::CgSolve { .. } => "cg_solve".into(),
            Kernel::HeatSmooth { .. } => "heat_smooth".into(),
            Kernel::ChaoticAmplify { .. } => "chaotic_amplify".into(),
            Kernel::AmplifyExact { .. } => "amplify_exact".into(),
            Kernel::TranscMap { .. } => "transc_map".into(),
            Kernel::PolyHorner { .. } => "poly_horner".into(),
            Kernel::DivScan => "div_scan".into(),
            Kernel::NormScale => "norm_scale".into(),
            Kernel::Benign { flavor } => format!("benign_{flavor}"),
            Kernel::UbSwap => "ub_swap".into(),
            Kernel::ZeroGate { .. } => "zero_gate".into(),
            Kernel::Custom(imp) => imp.name().to_string(),
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel::{}", self.name())
    }
}

/// Exact-arithmetic transforms: provably identical under every `FpEnv`
/// (multiplication by powers of two, permutations, negation, clamping).
fn benign_eval(flavor: u8, state: &mut [f64]) {
    match flavor % 8 {
        0 => {
            // Halve then double: exact for all normal values.
            for x in state.iter_mut() {
                *x *= 0.5;
                *x *= 2.0;
            }
        }
        1 => {
            for x in state.iter_mut() {
                *x = -(-*x);
            }
        }
        2 => state.reverse(),
        3 => state.rotate_left(1.min(state.len().saturating_sub(1))),
        4 => {
            for x in state.iter_mut() {
                *x = x.clamp(-8.0, 8.0);
            }
        }
        5 => {
            let half = state.len() / 2;
            let (a, b) = state.split_at_mut(half);
            for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                std::mem::swap(x, y);
            }
        }
        7 => {
            // Center around the chaotic attractor's mean (a dyadic
            // constant; plain subtraction, identical in every env).
            // Used as a final output transform so relative errors are
            // measured against the fluctuation, not the offset.
            for x in state.iter_mut() {
                *x -= 0.468_75;
            }
        }
        _ => { /* pure data movement, no transform */ }
    }
}

/// Fixed ill-conditioned constants for [`Kernel::ZeroGate`]; `series`
/// selects among three structurally different datasets (sign pattern,
/// magnitude stride, length) so that no single lucky reordering can
/// reproduce all three strict sums.
fn zero_gate_values(series: usize) -> Vec<f64> {
    let (n, sign_mod, mag_stride, mag_span) = match series % 3 {
        0 => (48usize, 2usize, 11usize, 13i32),
        1 => (53, 3, 7, 11),
        _ => (61, 2, 5, 9),
    };
    (0..n)
        .map(|i| {
            let sign = if i % sign_mod == 0 { 1.0 } else { -1.0 };
            sign * (1.0 + (i as f64) * 0.013_7)
                * 10f64.powi(((i * mag_stride) % mag_span as usize) as i32 - mag_span / 2 - 2)
        })
        .collect()
}

/// Whether [`Kernel::ZeroGate`]'s exact-zero branch fires under `env`.
///
/// The gate is state-independent: it compares `reduce::sum` of three
/// fixed datasets against their strict left-to-right checksums. Static
/// analysis (flit-absint) uses this to decide whether two environments
/// take the same branch — if they do, the kernel is a pure function of
/// state with identical arithmetic on both sides.
pub fn zero_gate_fires(env: &FpEnv) -> bool {
    let mut q = 0.0;
    for series in 0..3 {
        let vals = zero_gate_values(series);
        let expected = zero_gate_expected(series);
        let s = reduce::sum(env, &vals);
        q += (s - expected).abs();
    }
    q != 0.0
}

/// The compile-time checksum: the strict left-to-right sum of
/// [`zero_gate_values`].
fn zero_gate_expected(series: usize) -> f64 {
    let mut acc = 0.0f64;
    for v in zero_gate_values(series) {
        acc += v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_fpsim::env::SimdWidth;
    use flit_fpsim::ulp::l2_diff;

    fn state0(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.3 + 0.4 * ((i as f64 * 0.7311).sin() * 0.5 + 0.5))
            .collect()
    }

    fn run(k: &Kernel, env: &FpEnv, rounds: usize) -> Vec<f64> {
        let mut s = state0(64);
        for _ in 0..rounds {
            k.eval(&mut s, env, None);
        }
        s
    }

    fn strict() -> FpEnv {
        FpEnv::strict()
    }

    fn reassoc() -> FpEnv {
        FpEnv::strict().with_simd(SimdWidth::W4)
    }

    fn fma() -> FpEnv {
        FpEnv::strict().with_fma(true)
    }

    fn extended() -> FpEnv {
        FpEnv::strict().with_extended(true)
    }

    fn recip() -> FpEnv {
        FpEnv::strict().with_recip(true)
    }

    fn vendor() -> FpEnv {
        FpEnv::strict().with_mathlib(flit_fpsim::env::MathLib::Vendor)
    }

    #[track_caller]
    fn assert_sensitive(k: &Kernel, env: &FpEnv, rounds: usize) {
        let a = run(k, &strict(), rounds);
        let b = run(k, env, rounds);
        assert_ne!(a, b, "{k:?} should vary under {env:?}");
    }

    #[track_caller]
    fn assert_insensitive(k: &Kernel, env: &FpEnv, rounds: usize) {
        let a = run(k, &strict(), rounds);
        let b = run(k, env, rounds);
        assert_eq!(a, b, "{k:?} should NOT vary under {env:?}");
    }

    #[test]
    fn reproducible_dot_mix_is_invariant_under_everything() {
        let k = Kernel::DotMixReproducible { stride: 7 };
        for env in [
            reassoc(),
            fma(),
            extended(),
            recip(),
            vendor(),
            FpEnv::fast(),
        ] {
            assert_insensitive(&k, &env, 3);
        }
        // …while still doing real work (the state changes).
        let mut s = state0(64);
        let before = s.clone();
        k.eval(&mut s, &strict(), None);
        assert_ne!(s, before);
    }

    #[test]
    fn dot_mix_sensitivity_profile() {
        let k = Kernel::DotMix { stride: 7 };
        assert_sensitive(&k, &reassoc(), 3);
        assert_sensitive(&k, &fma(), 3);
        assert_sensitive(&k, &extended(), 3);
        assert_insensitive(&k, &recip(), 3);
        assert_insensitive(&k, &vendor(), 3);
    }

    #[test]
    fn heat_smooth_is_fma_only() {
        // Diffusion *contracts* differences, so probe after few steps:
        // over long horizons smoothing can round a contraction-induced
        // difference back to bitwise equality (which is also why the
        // example apps pair smoothing with nonlinear kernels).
        let k = Kernel::HeatSmooth { steps: 12, r: 0.24 };
        assert_sensitive(&k, &fma(), 1);
        assert_insensitive(&k, &reassoc(), 2);
        assert_insensitive(&k, &recip(), 2);
        assert_insensitive(&k, &vendor(), 2);
    }

    #[test]
    fn transc_map_is_mathlib_only() {
        let k = Kernel::TranscMap { freq: 3.1 };
        assert_sensitive(&k, &vendor(), 1);
        assert_insensitive(&k, &reassoc(), 2);
        assert_insensitive(&k, &fma(), 2);
        assert_insensitive(&k, &recip(), 2);
        assert_insensitive(&k, &extended(), 2);
    }

    #[test]
    fn div_scan_is_recip_only() {
        let k = Kernel::DivScan;
        assert_sensitive(&k, &recip(), 1);
        assert_insensitive(&k, &reassoc(), 2);
        assert_insensitive(&k, &fma(), 2);
        assert_insensitive(&k, &vendor(), 2);
    }

    #[test]
    fn rank1_and_matvec_vary_under_vector_math() {
        assert_sensitive(&Kernel::Rank1Mix { n: 8, alpha: 0.7 }, &reassoc(), 2);
        assert_sensitive(&Kernel::Rank1Mix { n: 8, alpha: 0.7 }, &extended(), 2);
        assert_sensitive(&Kernel::MatVecMix { n: 12 }, &reassoc(), 2);
        assert_sensitive(&Kernel::MatVecMix { n: 12 }, &fma(), 2);
    }

    #[test]
    fn cg_solve_converges_differently() {
        let k = Kernel::CgSolve {
            n: 24,
            tol: 1e-12,
            cond: 1e6,
        };
        assert_sensitive(&k, &fma(), 1);
        assert_sensitive(&k, &reassoc(), 1);
    }

    #[test]
    fn benign_flavors_are_env_invariant_and_value_preserving() {
        for flavor in 0..7 {
            let k = Kernel::Benign { flavor };
            for env in [
                reassoc(),
                fma(),
                extended(),
                recip(),
                vendor(),
                FpEnv::fast(),
            ] {
                assert_insensitive(&k, &env, 4);
            }
            // Benign kernels also preserve the multiset of magnitudes
            // (they only move/negate/scale-exactly).
            let mut s = state0(32);
            let before: f64 = s.iter().map(|x| x.abs()).sum();
            k.eval(&mut s, &strict(), None);
            let after: f64 = s.iter().map(|x| x.abs()).sum();
            assert!((before - after).abs() < 1e-12);
        }
    }

    #[test]
    fn ub_swap_poisons_only_under_exploit_ub() {
        let k = Kernel::UbSwap;
        let mut s = vec![1.0, 2.0, 3.0];
        k.eval(&mut s, &strict(), None);
        assert_eq!(s, vec![2.0, 1.0, 3.0]);
        let ub = FpEnv::strict().with_exploit_ub(true);
        k.eval(&mut s, &ub, None);
        assert!(s[0].is_nan() && s[1].is_nan());
        assert_eq!(s[2], 3.0);
    }

    #[test]
    fn zero_gate_branches_on_reassociation() {
        let k = Kernel::ZeroGate { boost: 1.12 };
        // Strict and FMA-only envs take the quiet branch (no products in
        // the checksum sums, and the scalar order matches the constants).
        assert_insensitive(&k, &fma(), 2);
        assert_insensitive(&k, &recip(), 2);
        // Any reassociated width, and extended evaluation, leave a
        // residual → the divergent branch fires.
        for w in [SimdWidth::W2, SimdWidth::W4, SimdWidth::W8] {
            assert_sensitive(&k, &FpEnv::strict().with_simd(w), 1);
        }
        assert_sensitive(&k, &extended(), 1);
        // FMA combined with W2 (the xlc++ -O3 environment) too.
        assert_sensitive(
            &k,
            &FpEnv::strict().with_simd(SimdWidth::W2).with_fma(true),
            1,
        );
    }

    #[test]
    fn chaotic_amplify_magnifies_small_differences() {
        let k = Kernel::ChaoticAmplify {
            lambda: 2.9,
            steps: 60,
        };
        let mut a = state0(64);
        let mut b = state0(64);
        for x in b.iter_mut() {
            *x += 1e-12;
        }
        k.eval(&mut a, &strict(), None);
        k.eval(&mut b, &strict(), None);
        let d = l2_diff(&a, &b);
        assert!(d > 1e-2, "expected chaotic separation, got {d:e}");
    }

    #[test]
    fn amplify_exact_is_env_invariant_but_amplifies() {
        let k = Kernel::AmplifyExact {
            lambda: 2.9,
            steps: 40,
        };
        for env in [
            reassoc(),
            fma(),
            extended(),
            recip(),
            vendor(),
            FpEnv::fast(),
        ] {
            assert_insensitive(&k, &env, 2);
        }
        let mut a = state0(32);
        let mut b: Vec<f64> = a.iter().map(|x| x + 1e-12).collect();
        k.eval(&mut a, &strict(), None);
        k.eval(&mut b, &strict(), None);
        assert!(l2_diff(&a, &b) > 1e-2);
    }

    #[test]
    fn kernels_keep_state_bounded_and_finite() {
        let kernels = vec![
            Kernel::DotMix { stride: 3 },
            Kernel::MatVecMix { n: 8 },
            Kernel::Rank1Mix { n: 6, alpha: 0.9 },
            Kernel::CgSolve {
                n: 16,
                tol: 1e-10,
                cond: 1e4,
            },
            Kernel::HeatSmooth { steps: 5, r: 0.24 },
            Kernel::ChaoticAmplify {
                lambda: 2.8,
                steps: 10,
            },
            Kernel::TranscMap { freq: 2.3 },
            Kernel::PolyHorner { degree: 9 },
            Kernel::DivScan,
            Kernel::NormScale,
            Kernel::ZeroGate { boost: 1.1 },
        ];
        let env = FpEnv::fast();
        let mut s = state0(64);
        // Chain everything many times; state must stay bounded.
        for _ in 0..10 {
            for k in &kernels {
                k.eval(&mut s, &env, None);
                for &x in s.iter() {
                    assert!(x.is_finite() && x.abs() <= 8.0, "{k:?} produced {x}");
                }
            }
        }
    }

    #[test]
    fn empty_state_is_a_no_op() {
        let mut s: Vec<f64> = vec![];
        for k in [
            Kernel::DotMix { stride: 1 },
            Kernel::UbSwap,
            Kernel::DivScan,
        ] {
            k.eval(&mut s, &strict(), None);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn work_and_class_are_populated() {
        assert!(
            Kernel::CgSolve {
                n: 32,
                tol: 1e-12,
                cond: 1e6
            }
            .work(64)
                > 1000.0
        );
        assert_eq!(Kernel::DivScan.class(), KernelClass::DivHeavy);
        assert_eq!(
            Kernel::TranscMap { freq: 1.0 }.class(),
            KernelClass::Transcendental
        );
        assert_eq!(Kernel::Benign { flavor: 0 }.class(), KernelClass::Memory);
        assert_eq!(Kernel::DotMix { stride: 1 }.fp_sites(), 0);
    }

    #[test]
    fn determinism_across_repeated_eval() {
        let env = FpEnv::fast();
        let k = Kernel::CgSolve {
            n: 20,
            tol: 1e-12,
            cond: 1e5,
        };
        let a = run(&k, &env, 3);
        let b = run(&k, &env, 3);
        assert_eq!(a, b);
    }
}
