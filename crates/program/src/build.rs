//! Builds: a program paired with a compilation, and the mixed-object
//! executables FLiT Bisect links.
//!
//! * [`Build::executable`] — the ordinary whole-program build.
//! * [`file_mixed_executable`] — File Bisect's Test binary: the chosen
//!   files' objects come from the *variable* build, the rest from the
//!   *baseline* build (Figure 3, left).
//! * [`symbol_mixed_executable`] — Symbol Bisect's Test binary: the
//!   target file is compiled under **both** builds with `-fPIC`, the
//!   chosen symbols are kept strong in the variable copy and weakened in
//!   the baseline copy (and vice versa), and both copies are linked in
//!   (Figure 3, right).

use std::collections::BTreeSet;
use std::sync::Arc;

use flit_toolchain::cache::{BuildCtx, ObjectKey, RecipeHasher};
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;
use flit_toolchain::linker::{link, Executable, LinkError};

use crate::model::SimProgram;

/// Unwrap a freshly-built (uncached) executable out of its `Arc`.
fn unwrap_arc(exe: Arc<Executable>) -> Executable {
    Arc::try_unwrap(exe).unwrap_or_else(|a| (*a).clone())
}

/// A program paired with one compilation.
#[derive(Clone)]
pub struct Build<'p> {
    /// The program to compile. File and Symbol Bisect may pair *two*
    /// builds of programs with identical structure (e.g. a clean and an
    /// injected copy of the same source tree).
    pub program: &'p SimProgram,
    /// The compilation triple.
    pub compilation: Compilation,
    /// Build tag stamped onto produced objects (0 = baseline, 1 =
    /// variable by convention). Execution engines use it to bind each
    /// object's function bodies to the right source tree.
    pub tag: u32,
}

impl<'p> Build<'p> {
    /// Create a (baseline-tagged) build.
    pub fn new(program: &'p SimProgram, compilation: Compilation) -> Self {
        Build {
            program,
            compilation,
            tag: 0,
        }
    }

    /// Create a build with an explicit tag.
    pub fn tagged(program: &'p SimProgram, compilation: Compilation, tag: u32) -> Self {
        Build {
            program,
            compilation,
            tag,
        }
    }

    /// Compile one file under this build.
    pub fn object(&self, file_id: usize, pic: bool) -> flit_toolchain::object::ObjectFile {
        let mut comp = self.compilation.clone();
        if pic {
            comp = comp.with_pic();
        }
        let mut obj = self.program.compile_file(file_id, &comp, pic);
        obj.build_tag = self.tag;
        obj
    }

    /// Compile one file through a build context (cache-aware form of
    /// [`Build::object`]).
    pub fn object_in(
        &self,
        ctx: &BuildCtx,
        file_id: usize,
        pic: bool,
    ) -> flit_toolchain::object::ObjectFile {
        ctx.object_with(
            ObjectKey {
                program: self.program.fingerprint(),
                file_id,
                compilation: self.compilation.clone(),
                pic,
                tag: self.tag,
            },
            || self.object(file_id, pic),
        )
    }

    /// Compile every file (without `-fPIC`).
    pub fn all_objects(&self) -> Vec<flit_toolchain::object::ObjectFile> {
        self.all_objects_in(&BuildCtx::uncached())
    }

    /// Compile every file through a build context.
    pub fn all_objects_in(&self, ctx: &BuildCtx) -> Vec<flit_toolchain::object::ObjectFile> {
        (0..self.program.files.len())
            .map(|i| self.object_in(ctx, i, false))
            .collect()
    }

    /// Link the whole program with this build's own driver.
    pub fn executable(&self) -> Result<Executable, LinkError> {
        self.executable_in(&BuildCtx::uncached()).map(unwrap_arc)
    }

    /// Link the whole program through a build context. A link-memo hit
    /// skips both the compiles and the link.
    pub fn executable_in(&self, ctx: &BuildCtx) -> Result<Arc<Executable>, LinkError> {
        let mut h = RecipeHasher::new();
        h.write_str("whole");
        self.hash_into(&mut h);
        ctx.link_with(h.finish(), || {
            link(self.all_objects_in(ctx), self.compilation.compiler)
        })
    }

    /// Mix this build's identity (program structure, compilation, tag)
    /// into a link-recipe digest.
    fn hash_into(&self, h: &mut RecipeHasher) {
        h.write_u64(self.program.fingerprint());
        h.write_str(&self.compilation.label());
        h.write_u64(u64::from(self.tag));
    }
}

/// File Bisect's Test executable: objects for `variable_files` come from
/// `variable`, all others from `baseline`; the link is driven by
/// `driver` (FLiT links mixed binaries consistently — §2.3 forces a
/// common standard library).
pub fn file_mixed_executable(
    baseline: &Build,
    variable: &Build,
    variable_files: &BTreeSet<usize>,
    driver: CompilerKind,
) -> Result<Executable, LinkError> {
    file_mixed_executable_in(
        baseline,
        variable,
        variable_files,
        driver,
        &BuildCtx::uncached(),
    )
    .map(unwrap_arc)
}

/// Cache-aware form of [`file_mixed_executable`]: the link is memoized
/// on `(builds, driver, variable file set)` and the per-file objects are
/// served from the object cache.
pub fn file_mixed_executable_in(
    baseline: &Build,
    variable: &Build,
    variable_files: &BTreeSet<usize>,
    driver: CompilerKind,
    ctx: &BuildCtx,
) -> Result<Arc<Executable>, LinkError> {
    assert_eq!(
        baseline.program.files.len(),
        variable.program.files.len(),
        "mixed builds must share program structure"
    );
    let mut h = recipe(b"file-mixed", baseline, variable, driver);
    for id in variable_files {
        h.write_u64(*id as u64);
    }
    ctx.link_with(h.finish(), || {
        let objects = (0..baseline.program.files.len())
            .map(|i| {
                if variable_files.contains(&i) {
                    variable.object_in(ctx, i, false)
                } else {
                    baseline.object_in(ctx, i, false)
                }
            })
            .collect();
        link(objects, driver)
    })
}

/// Start a link-recipe digest for a mixed executable scheme.
fn recipe(scheme: &[u8], baseline: &Build, variable: &Build, driver: CompilerKind) -> RecipeHasher {
    let mut h = RecipeHasher::new();
    h.write(scheme).write(&[0xFF]);
    baseline.hash_into(&mut h);
    variable.hash_into(&mut h);
    h.write_str(&format!("{driver:?}"));
    h
}

/// Symbol Bisect's Test executable for `target_file`: both builds'
/// copies of that file are compiled `-fPIC`; symbols in
/// `variable_symbols` stay strong in the variable copy (weak in the
/// baseline copy) and vice versa. All other files come from `baseline`.
pub fn symbol_mixed_executable(
    baseline: &Build,
    variable: &Build,
    target_file: usize,
    variable_symbols: &BTreeSet<String>,
    driver: CompilerKind,
) -> Result<Executable, LinkError> {
    symbol_mixed_executable_in(
        baseline,
        variable,
        target_file,
        variable_symbols,
        driver,
        &BuildCtx::uncached(),
    )
    .map(unwrap_arc)
}

/// Cache-aware form of [`symbol_mixed_executable`]. The two `-fPIC`
/// copies of the target file are cached *unweakened*; the
/// selection-specific weakening is applied to clones, and the link is
/// memoized on the full `(builds, driver, target, symbol set)` recipe.
pub fn symbol_mixed_executable_in(
    baseline: &Build,
    variable: &Build,
    target_file: usize,
    variable_symbols: &BTreeSet<String>,
    driver: CompilerKind,
    ctx: &BuildCtx,
) -> Result<Arc<Executable>, LinkError> {
    assert_eq!(
        baseline.program.files.len(),
        variable.program.files.len(),
        "mixed builds must share program structure"
    );
    let mut h = recipe(b"symbol-mixed", baseline, variable, driver);
    h.write_u64(target_file as u64);
    for s in variable_symbols {
        h.write_str(s);
    }
    ctx.link_with(h.finish(), || {
        let mut objects = Vec::with_capacity(baseline.program.files.len() + 1);
        for i in 0..baseline.program.files.len() {
            if i == target_file {
                objects.push(
                    variable
                        .object_in(ctx, i, true)
                        .weaken_except(variable_symbols),
                );
                objects.push(baseline.object_in(ctx, i, true).weaken(variable_symbols));
            } else {
                objects.push(baseline.object_in(ctx, i, false));
            }
        }
        link(objects, driver)
    })
}

/// The executable used to *verify* that variability survives `-fPIC`
/// before Symbol Bisect descends (§2.3: "the target file is recompiled
/// with this flag, and the result is checked"): the whole target file
/// from the variable build at `-fPIC`, everything else baseline.
pub fn pic_probe_executable(
    baseline: &Build,
    variable: &Build,
    target_file: usize,
    driver: CompilerKind,
) -> Result<Executable, LinkError> {
    pic_probe_executable_in(
        baseline,
        variable,
        target_file,
        driver,
        &BuildCtx::uncached(),
    )
    .map(unwrap_arc)
}

/// Cache-aware form of [`pic_probe_executable`].
pub fn pic_probe_executable_in(
    baseline: &Build,
    variable: &Build,
    target_file: usize,
    driver: CompilerKind,
    ctx: &BuildCtx,
) -> Result<Arc<Executable>, LinkError> {
    let mut h = recipe(b"pic-probe", baseline, variable, driver);
    h.write_u64(target_file as u64);
    ctx.link_with(h.finish(), || {
        let objects = (0..baseline.program.files.len())
            .map(|i| {
                if i == target_file {
                    variable.object_in(ctx, i, true)
                } else {
                    baseline.object_in(ctx, i, false)
                }
            })
            .collect();
        link(objects, driver)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::kernel::Kernel;
    use crate::model::{Driver, Function, SourceFile};
    use flit_toolchain::compiler::OptLevel;
    use flit_toolchain::flags::Switch;
    use flit_toolchain::object::Linkage;

    fn program() -> SimProgram {
        SimProgram::new(
            "build-test",
            vec![
                SourceFile::new(
                    "a.cpp",
                    vec![
                        Function::exported("f1", Kernel::DotMix { stride: 2 }),
                        Function::exported("f2", Kernel::NormScale),
                    ],
                ),
                SourceFile::new(
                    "b.cpp",
                    vec![Function::exported(
                        "g",
                        Kernel::HeatSmooth { steps: 3, r: 0.2 },
                    )],
                ),
            ],
        )
    }

    fn var_comp() -> Compilation {
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe])
    }

    #[test]
    fn whole_build_links_every_file_once() {
        let p = program();
        let b = Build::new(&p, Compilation::baseline());
        let exe = b.executable().unwrap();
        assert_eq!(exe.objects.len(), 2);
        assert!(exe.defining_object("f1").is_some());
        assert!(exe.defining_object("g").is_some());
    }

    #[test]
    fn file_mixed_selects_compilations_per_file() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::new(&p, var_comp());
        let exe = file_mixed_executable(
            &base,
            &var,
            &[0usize].into_iter().collect(),
            CompilerKind::Gcc,
        )
        .unwrap();
        assert_eq!(exe.objects[0].compilation, var_comp());
        assert_eq!(exe.objects[1].compilation, Compilation::baseline());
    }

    #[test]
    fn symbol_mixed_links_two_pic_copies() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::new(&p, var_comp());
        let picked: BTreeSet<String> = ["f1".to_string()].into();
        let exe = symbol_mixed_executable(&base, &var, 0, &picked, CompilerKind::Gcc).unwrap();
        assert_eq!(exe.objects.len(), 3);
        // f1 resolves to the variable copy (object 0), f2 to baseline
        // copy (object 1).
        let f1_obj = exe.defining_object("f1").unwrap();
        let f2_obj = exe.defining_object("f2").unwrap();
        assert_eq!(exe.objects[f1_obj].compilation.compiler, CompilerKind::Gcc);
        assert_eq!(exe.objects[f1_obj].compilation.opt, OptLevel::O3);
        assert_eq!(
            exe.objects[f2_obj].compilation,
            Compilation::baseline().with_pic()
        );
        assert!(exe.objects[f1_obj].pic && exe.objects[f2_obj].pic);
        // Both copies carry the full symbol set, complementarily strong.
        assert_eq!(exe.objects[0].linkage_of("f2"), Some(Linkage::Weak));
        assert_eq!(exe.objects[1].linkage_of("f1"), Some(Linkage::Weak));
    }

    #[test]
    fn symbol_mixed_runs_and_takes_only_picked_symbol_from_variable() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::new(&p, var_comp());
        let d = Driver::new("t", vec!["f1".into(), "f2".into(), "g".into()], 2, 32);

        let base_exe = base.executable().unwrap();
        let base_out = Engine::new(&p, &base_exe).run(&d, &[0.4]).unwrap();

        // Empty selection: everything effectively baseline → identical
        // output (pic only washes out extended precision, which the
        // baseline doesn't use).
        let none: BTreeSet<String> = BTreeSet::new();
        let exe0 = symbol_mixed_executable(&base, &var, 0, &none, CompilerKind::Gcc).unwrap();
        let out0 = Engine::new(&p, &exe0).run(&d, &[0.4]).unwrap();
        assert_eq!(out0.output, base_out.output);

        // Picking f1 changes the result; picking f2 changes it
        // differently (unique error).
        let pick1: BTreeSet<String> = ["f1".to_string()].into();
        let exe1 = symbol_mixed_executable(&base, &var, 0, &pick1, CompilerKind::Gcc).unwrap();
        let out1 = Engine::new(&p, &exe1).run(&d, &[0.4]).unwrap();
        assert_ne!(out1.output, base_out.output);

        let pick2: BTreeSet<String> = ["f2".to_string()].into();
        let exe2 = symbol_mixed_executable(&base, &var, 0, &pick2, CompilerKind::Gcc).unwrap();
        let out2 = Engine::new(&p, &exe2).run(&d, &[0.4]).unwrap();
        assert_ne!(out2.output, base_out.output);
        assert_ne!(out2.output, out1.output);
    }

    #[test]
    fn cached_builds_match_uncached_and_hit_the_memo() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, var_comp(), 1);
        let set: BTreeSet<usize> = [0usize].into_iter().collect();
        let ctx = BuildCtx::cached();

        let plain = file_mixed_executable(&base, &var, &set, CompilerKind::Gcc).unwrap();
        let c1 = file_mixed_executable_in(&base, &var, &set, CompilerKind::Gcc, &ctx).unwrap();
        let c2 = file_mixed_executable_in(&base, &var, &set, CompilerKind::Gcc, &ctx).unwrap();
        assert_eq!(c1.objects, plain.objects);
        assert_eq!(c1.hazard_seed, plain.hazard_seed);
        assert!(Arc::ptr_eq(&c1, &c2), "second request must hit the memo");

        let picked: BTreeSet<String> = ["f1".to_string()].into();
        let s_plain = symbol_mixed_executable(&base, &var, 0, &picked, CompilerKind::Gcc).unwrap();
        let s_cached =
            symbol_mixed_executable_in(&base, &var, 0, &picked, CompilerKind::Gcc, &ctx).unwrap();
        assert_eq!(s_cached.objects, s_plain.objects);

        let p_plain = pic_probe_executable(&base, &var, 0, CompilerKind::Gcc).unwrap();
        let p_cached = pic_probe_executable_in(&base, &var, 0, CompilerKind::Gcc, &ctx).unwrap();
        assert_eq!(p_cached.objects, p_plain.objects);

        let w_plain = base.executable().unwrap();
        let w_cached = base.executable_in(&ctx).unwrap();
        assert_eq!(w_cached.objects, w_plain.objects);

        let stats = ctx.stats();
        assert_eq!(stats.link_memo_hits, 1);
        assert!(stats.object_cache_hits > 0, "{stats:?}");
        // Different symbol selections must not alias in the memo.
        let other: BTreeSet<String> = ["f2".to_string()].into();
        let s_other =
            symbol_mixed_executable_in(&base, &var, 0, &other, CompilerKind::Gcc, &ctx).unwrap();
        assert_ne!(s_other.objects, s_cached.objects);
    }

    #[test]
    fn pic_probe_washes_out_extended_precision_variability() {
        // A file whose only variability is extended-precision based
        // loses it under the -fPIC probe — the "cannot go deeper" case.
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let ext = Build::new(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::FpMath387]),
        );
        let d = Driver::new("t", vec!["f1".into()], 2, 32);
        let base_out = Engine::new(&p, &base.executable().unwrap())
            .run(&d, &[0.4])
            .unwrap();
        // Without pic, file 0 under x87 differs…
        let mixed = file_mixed_executable(
            &base,
            &ext,
            &[0usize].into_iter().collect(),
            CompilerKind::Gcc,
        )
        .unwrap();
        let out = Engine::new(&p, &mixed).run(&d, &[0.4]).unwrap();
        assert_ne!(out.output, base_out.output);
        // …but the -fPIC probe reproduces the baseline bitwise.
        let probe = pic_probe_executable(&base, &ext, 0, CompilerKind::Gcc).unwrap();
        let out_pic = Engine::new(&p, &probe).run(&d, &[0.4]).unwrap();
        assert_eq!(out_pic.output, base_out.output);
    }
}
