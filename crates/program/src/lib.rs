//! # flit-program
//!
//! The application model the FLiT reproduction tests and bisects.
//!
//! A [`SimProgram`] is a set of source files; each file holds functions;
//! each function wraps a numerical [`Kernel`] evaluated under the
//! [`flit_fpsim::FpEnv`] of whichever compilation produced its defining
//! object, and may call other functions. The [`engine`] resolves every
//! call the way a real linked binary would:
//!
//! * global symbols resolve through the executable's symbol table
//!   (strong beats weak — what Symbol Bisect exploits);
//! * `static` (local) functions and intra-TU calls to inlinable
//!   functions bind to the *caller's* object file, which is exactly why
//!   the paper's Symbol Bisect needs `-fPIC` and why injection into a
//!   static function yields an "indirect find" at its closest visible
//!   caller;
//! * compiling with `-fPIC` forces intermediates to be stored at ABI
//!   boundaries, which washes out extended-precision variability — the
//!   paper's "if variability is removed by using -fPIC, then the search
//!   cannot go deeper".
//!
//! Kernels expose **static floating-point instruction sites** so the
//! injection framework (`flit-inject`) can plant `x OP' ε` perturbations
//! exactly like the paper's LLVM pass ([`sites`]).

pub mod build;
pub mod engine;
pub mod generate;
pub mod kernel;
pub mod model;
pub mod sites;

pub use build::Build;
pub use engine::{Engine, RunError, RunOutput, TimingProfile};
pub use kernel::{register_custom_kernel, Kernel};
pub use model::{Driver, Function, SimProgram, SourceFile, Visibility};
pub use sites::{InjectOp, Injection, SiteCtx};
