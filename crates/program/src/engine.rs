//! The execution engine: runs a driver against a linked executable,
//! resolving every call the way the binary would.

use flit_toolchain::compilation::Compilation;
use flit_toolchain::linker::Executable;
use flit_toolchain::perf::{fnv1a, noise_factor, simulated_seconds, KernelClass};

use crate::model::{Driver, SimProgram, Visibility};

/// A completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Final program state (the "mesh" the tests compare).
    pub output: Vec<f64>,
    /// Simulated wall-clock seconds (deterministic performance model).
    pub seconds: f64,
    /// Number of function invocations executed.
    pub calls: u64,
}

/// Base (noise-free) seconds of one run, aggregated per
/// `(compilation, kernel class)` — the granularity of the perf model's
/// seeded noise distribution.
///
/// Collected by [`Engine::run_with_profile`] so that N repeated timing
/// samples of a whole binary come from *one* engine run: sample *i* is
/// `Σ base_seconds × noise_factor(comp, class, seed, i)` over the
/// profile's entries, which is exactly what running the binary N times
/// under per-(compilation, kernel-class) multiplicative noise would
/// yield.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingProfile {
    /// `(compilation, class, base seconds)` in first-touch execution
    /// order (deterministic: the engine itself is).
    entries: Vec<(Compilation, KernelClass, f64)>,
}

impl TimingProfile {
    fn add(&mut self, comp: &Compilation, class: KernelClass, secs: f64) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(c, k, _)| *k == class && c == comp)
        {
            e.2 += secs;
        } else {
            self.entries.push((comp.clone(), class, secs));
        }
    }

    /// The aggregated `(compilation, class, base seconds)` entries.
    pub fn entries(&self) -> &[(Compilation, KernelClass, f64)] {
        &self.entries
    }

    /// Total base seconds (equals the run's deterministic `seconds` up
    /// to f64 summation order).
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|(_, _, s)| s).sum()
    }

    /// Draw `n` whole-run timing samples from the seeded noise model.
    /// Byte-deterministic given the seed.
    pub fn samples(&self, seed: u64, n: u32) -> Vec<f64> {
        (0..n)
            .map(|i| {
                self.entries
                    .iter()
                    .map(|(comp, class, secs)| secs * noise_factor(comp, *class, seed, i))
                    .sum()
            })
            .collect()
    }
}

/// Run-time failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The executable segfaulted (mixed-ABI hazard, §3.3).
    Crash(String),
    /// An entry or callee symbol has no definition in the executable.
    MissingSymbol(String),
    /// An object's `build_tag` names a source tree the engine was not
    /// given: the executable was assembled from builds this engine does
    /// not know about (or the tag itself is corrupt).
    CorruptBuildTag {
        /// Index of the offending object in the executable.
        object: usize,
        /// The out-of-range tag.
        tag: u32,
        /// How many source trees the engine binds.
        trees: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Crash(what) => write!(f, "segmentation fault ({what})"),
            RunError::MissingSymbol(s) => write!(f, "undefined symbol `{s}`"),
            RunError::CorruptBuildTag { object, tag, trees } => write!(
                f,
                "object {object} carries build_tag {tag} but the engine binds {trees} source tree(s)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// The engine binds one or two programs to a linked executable.
///
/// When a bisection mixes objects from two *builds* (a baseline and a
/// variable source tree — identical structure, possibly different
/// bodies, as in the injection study), each object's `build_tag` selects
/// which tree provides its function bodies.
pub struct Engine<'a> {
    programs: Vec<&'a SimProgram>,
    exe: &'a Executable,
}

impl<'a> Engine<'a> {
    /// Create an engine over a single program.
    pub fn new(program: &'a SimProgram, exe: &'a Executable) -> Self {
        Engine {
            programs: vec![program],
            exe,
        }
    }

    /// Create an engine over baseline + variable source trees (indexed
    /// by each object's `build_tag`). The trees must be structurally
    /// identical (same files, same symbols).
    pub fn with_variant(
        baseline: &'a SimProgram,
        variable: &'a SimProgram,
        exe: &'a Executable,
    ) -> Self {
        Engine {
            programs: vec![baseline, variable],
            exe,
        }
    }

    /// The source tree providing bodies for object `obj_idx`.
    ///
    /// A single-tree engine binds every object to its one program —
    /// tags only distinguish trees in mixed builds. With multiple
    /// trees, an out-of-range tag is corruption (previously it was
    /// silently clamped to the last tree, masking exactly the fault a
    /// fuzzer would plant) and is reported as a structured error.
    fn program_of(&self, obj_idx: usize) -> Result<&'a SimProgram, RunError> {
        if self.programs.len() == 1 {
            return Ok(self.programs[0]);
        }
        let tag = self.exe.objects[obj_idx].build_tag;
        self.programs
            .get(tag as usize)
            .copied()
            .ok_or(RunError::CorruptBuildTag {
                object: obj_idx,
                tag,
                trees: self.programs.len(),
            })
    }

    /// Run the driver on the given FLiT test input.
    pub fn run(&self, driver: &Driver, input: &[f64]) -> Result<RunOutput, RunError> {
        self.run_with_profile(driver, input).map(|(out, _)| out)
    }

    /// [`Engine::run`], additionally collecting the per-(compilation,
    /// kernel-class) [`TimingProfile`] that seeds repeated timing
    /// samples. The [`RunOutput`] is identical to [`Engine::run`]'s —
    /// profiling only aggregates the per-call seconds the run already
    /// computes.
    pub fn run_with_profile(
        &self,
        driver: &Driver,
        input: &[f64],
    ) -> Result<(RunOutput, TimingProfile), RunError> {
        // The ABI-hazard crash decision is salted by the driver (test),
        // modeling that different tests exercise different call paths.
        let salt = fnv1a(driver.name.as_bytes());
        if self.exe.crashes(salt) {
            return Err(RunError::Crash(format!(
                "mixed-ABI executable, test `{}`",
                driver.name
            )));
        }
        let mut state = driver.init_state(input);
        let mut seconds = 0.0f64;
        let mut calls = 0u64;
        let mut profile = TimingProfile::default();
        for _ in 0..driver.rounds {
            for entry in &driver.entries {
                self.exec(
                    entry,
                    None,
                    &mut state,
                    &mut seconds,
                    &mut profile,
                    &mut calls,
                    0,
                )?;
            }
        }
        Ok((
            RunOutput {
                output: state,
                seconds,
                calls,
            },
            profile,
        ))
    }

    /// Execute one function: resolve its defining object, evaluate its
    /// kernel under that object's environment, then its callees.
    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        symbol: &str,
        caller_obj: Option<usize>,
        state: &mut Vec<f64>,
        seconds: &mut f64,
        profile: &mut TimingProfile,
        calls: &mut u64,
        depth: usize,
    ) -> Result<(), RunError> {
        assert!(depth < 64, "call depth overflow at `{symbol}`");
        // Structure (files, visibility, call graph) is identical across
        // trees; resolve it against the baseline tree.
        let (file_id, func_idx) = self.programs[0]
            .lookup(symbol)
            .ok_or_else(|| RunError::MissingSymbol(symbol.to_string()))?;
        let func = &self.programs[0].files[file_id].functions[func_idx];

        let obj_idx = match func.visibility {
            Visibility::Static => {
                // A local symbol binds within its translation unit: the
                // caller's object if the caller lives in the same file
                // (the Symbol Bisect duplicate-object case), otherwise
                // whichever object provides this file.
                match caller_obj {
                    Some(c) if self.exe.objects[c].file_id == file_id => c,
                    _ => self
                        .find_object_for_file(file_id)
                        .ok_or_else(|| RunError::MissingSymbol(symbol.to_string()))?,
                }
            }
            Visibility::Exported => {
                // Intra-TU inlining: without -fPIC the compiler may
                // inline a same-TU callee, so the call never reaches the
                // interposed (linker-chosen) definition — the exact
                // failure mode that forces Symbol Bisect to recompile
                // with -fPIC (§2.3).
                match caller_obj {
                    Some(c)
                        if self.exe.objects[c].file_id == file_id
                            && func.inlinable
                            && !self.exe.objects[c].pic =>
                    {
                        c
                    }
                    _ => self
                        .exe
                        .defining_object(symbol)
                        .ok_or_else(|| RunError::MissingSymbol(symbol.to_string()))?,
                }
            }
        };

        let mut env = self.exe.env_of_object(obj_idx);
        if self.exe.objects[obj_idx].pic {
            // Position-independent code stores intermediates at ABI
            // boundaries: extended-precision effects do not survive.
            // This is what makes some variability "disappear under
            // -fPIC", capping the search at file granularity.
            env.extended_precision = false;
        }

        // The *body* comes from whichever source tree built the object.
        let body = &self.program_of(obj_idx)?.files[file_id].functions[func_idx];
        body.kernel.eval(state, &env, body.injection);
        let call_seconds = simulated_seconds(
            &self.exe.objects[obj_idx].compilation,
            body.kernel.class(),
            body.kernel.work(state.len()) * body.work_scale,
        );
        *seconds += call_seconds;
        profile.add(
            &self.exe.objects[obj_idx].compilation,
            body.kernel.class(),
            call_seconds,
        );
        *calls += 1;

        for callee in &func.calls {
            self.exec(
                callee,
                Some(obj_idx),
                state,
                seconds,
                profile,
                calls,
                depth + 1,
            )?;
        }
        Ok(())
    }

    fn find_object_for_file(&self, file_id: usize) -> Option<usize> {
        self.exe.objects.iter().position(|o| o.file_id == file_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Build;
    use crate::kernel::Kernel;
    use crate::model::{Function, SourceFile};
    use flit_toolchain::compilation::Compilation;
    use flit_toolchain::compiler::{CompilerKind, OptLevel};
    use flit_toolchain::flags::Switch;

    fn program() -> SimProgram {
        SimProgram::new(
            "engine-test",
            vec![
                SourceFile::new(
                    "solver.cpp",
                    vec![
                        Function::exported("solve", Kernel::DotMix { stride: 5 })
                            .with_calls(vec!["norm".into(), "smooth".into()]),
                        Function::exported("norm", Kernel::NormScale).inlinable(),
                        Function::local("tweak", Kernel::Benign { flavor: 3 }),
                    ],
                ),
                SourceFile::new(
                    "mesh.cpp",
                    vec![Function::exported("smooth", Kernel::MatVecMix { n: 10 })
                        .with_calls(vec!["post".into()])],
                ),
                SourceFile::new(
                    "post.cpp",
                    vec![Function::exported("post", Kernel::PolyHorner { degree: 7 })],
                ),
            ],
        )
    }

    fn driver() -> Driver {
        Driver::new("t0", vec!["solve".into()], 3, 48)
    }

    #[test]
    fn uniform_build_runs_deterministically() {
        let p = program();
        let build = Build::new(&p, Compilation::perf_reference());
        let exe = build.executable().unwrap();
        let engine = Engine::new(&p, &exe);
        let a = engine.run(&driver(), &[0.3, 0.6]).unwrap();
        let b = engine.run(&driver(), &[0.3, 0.6]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.calls, 3 * 4); // 4 functions per round, 3 rounds
        assert!(a.seconds > 0.0);
        assert_eq!(a.output.len(), 48);
    }

    #[test]
    fn different_compilations_give_different_results() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let fast = Build::new(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe]),
        );
        let exe_b = base.executable().unwrap();
        let exe_f = fast.executable().unwrap();
        let out_b = Engine::new(&p, &exe_b).run(&driver(), &[0.5]).unwrap();
        let out_f = Engine::new(&p, &exe_f).run(&driver(), &[0.5]).unwrap();
        assert_ne!(out_b.output, out_f.output);
        // And the optimized build is faster under the cost model.
        assert!(out_f.seconds < out_b.seconds);
    }

    #[test]
    fn plain_o3_gcc_matches_baseline_bitwise() {
        // The headline of Figure 4a: value-safe optimization exists.
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let o3 = Build::new(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![]),
        );
        let out_b = Engine::new(&p, &base.executable().unwrap())
            .run(&driver(), &[0.5])
            .unwrap();
        let out_o3 = Engine::new(&p, &o3.executable().unwrap())
            .run(&driver(), &[0.5])
            .unwrap();
        assert_eq!(out_b.output, out_o3.output);
        assert!(out_o3.seconds < out_b.seconds);
    }

    #[test]
    fn missing_symbol_is_reported() {
        let p = program();
        let build = Build::new(&p, Compilation::baseline());
        let exe = build.executable().unwrap();
        let engine = Engine::new(&p, &exe);
        let d = Driver::new("bad", vec!["nonexistent".into()], 1, 8);
        assert_eq!(
            engine.run(&d, &[]),
            Err(RunError::MissingSymbol("nonexistent".into()))
        );
    }

    #[test]
    fn mixed_file_build_takes_env_per_file() {
        // File bisect's Test function: mesh.cpp from the variable
        // compilation, everything else baseline. Only `smooth` (in
        // mesh.cpp) should feel the variable env.
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::new(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::Avx2Fma]),
        );
        let mixed = crate::build::file_mixed_executable(
            &base,
            &var,
            &[1usize].into_iter().collect(),
            CompilerKind::Gcc,
        )
        .unwrap();
        let out_mixed = Engine::new(&p, &mixed).run(&driver(), &[0.5]).unwrap();
        let out_base = Engine::new(&p, &base.executable().unwrap())
            .run(&driver(), &[0.5])
            .unwrap();
        // MatVecMix is FMA-sensitive, so the mix differs from baseline.
        assert_ne!(out_mixed.output, out_base.output);
        // Mixing only post.cpp (PolyHorner is FMA-sensitive too) also
        // differs, but differently (unique-error assumption).
        let mixed2 = crate::build::file_mixed_executable(
            &base,
            &var,
            &[2usize].into_iter().collect(),
            CompilerKind::Gcc,
        )
        .unwrap();
        let out_mixed2 = Engine::new(&p, &mixed2).run(&driver(), &[0.5]).unwrap();
        assert_ne!(out_mixed2.output, out_base.output);
        assert_ne!(out_mixed2.output, out_mixed.output);
    }

    #[test]
    fn corrupt_build_tag_is_a_structured_error() {
        // Pre-fix, `program_of` clamped an out-of-range tag to the last
        // source tree and the run "succeeded" with the wrong bodies.
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, Compilation::perf_reference(), 1);
        let mut mixed = crate::build::file_mixed_executable(
            &base,
            &var,
            &[1usize].into_iter().collect(),
            CompilerKind::Gcc,
        )
        .unwrap();
        mixed.objects[1].build_tag = 7;
        let err = Engine::with_variant(&p, &p, &mixed)
            .run(&driver(), &[0.5])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RunError::CorruptBuildTag {
                    object: 1,
                    tag: 7,
                    trees: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn single_tree_engine_ignores_build_tags() {
        // Tags only distinguish source trees in mixed builds: a
        // single-program engine binds its one tree no matter what the
        // objects claim (a tagged variable build run standalone).
        let p = program();
        let var = Build::tagged(&p, Compilation::perf_reference(), 1);
        let exe = var.executable().unwrap();
        assert!(exe.objects.iter().all(|o| o.build_tag == 1));
        let out = Engine::new(&p, &exe).run(&driver(), &[0.5]).unwrap();
        assert_eq!(out.output.len(), 48);
    }

    #[test]
    fn timing_profile_accounts_for_every_simulated_second() {
        let p = program();
        let build = Build::new(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2Fma]),
        );
        let exe = build.executable().unwrap();
        let engine = Engine::new(&p, &exe);
        let (out, profile) = engine.run_with_profile(&driver(), &[0.3, 0.6]).unwrap();
        // Profiling never perturbs the run itself.
        assert_eq!(out, engine.run(&driver(), &[0.3, 0.6]).unwrap());
        // The aggregated base seconds equal the run's deterministic
        // total (up to f64 summation order).
        let total = profile.total_seconds();
        assert!(
            (total / out.seconds - 1.0).abs() < 1e-12,
            "{total} vs {}",
            out.seconds
        );
        // A uniform build aggregates by (compilation, class): every
        // executed kernel in this fixture is DotHeavy, so one entry.
        assert_eq!(profile.entries().len(), 1);
    }

    #[test]
    fn profile_samples_are_seeded_and_deterministic() {
        let p = program();
        let build = Build::new(&p, Compilation::perf_reference());
        let exe = build.executable().unwrap();
        let (_, profile) = Engine::new(&p, &exe)
            .run_with_profile(&driver(), &[0.5])
            .unwrap();
        let a = profile.samples(11, 8);
        let b = profile.samples(11, 8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_ne!(a, profile.samples(12, 8));
        // Samples scatter around the deterministic total.
        let total = profile.total_seconds();
        for s in &a {
            assert!((s / total - 1.0).abs() < 0.2, "{s} vs {total}");
        }
    }

    #[test]
    fn mixed_build_profile_splits_entries_by_compilation() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::new(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![]),
        );
        let mixed = crate::build::file_mixed_executable(
            &base,
            &var,
            &[1usize].into_iter().collect(),
            CompilerKind::Gcc,
        )
        .unwrap();
        let (_, profile) = Engine::new(&p, &mixed)
            .run_with_profile(&driver(), &[0.5])
            .unwrap();
        let comps: std::collections::BTreeSet<String> = profile
            .entries()
            .iter()
            .map(|(c, _, _)| c.label())
            .collect();
        assert_eq!(comps.len(), 2, "both compilations appear: {comps:?}");
    }

    #[test]
    fn decomposition_changes_results_but_stays_deterministic() {
        let p = program();
        let build = Build::new(&p, Compilation::perf_reference());
        let exe = build.executable().unwrap();
        let engine = Engine::new(&p, &exe);
        let d1 = driver();
        let d24 = driver().with_decomposition(24);
        let r1 = engine.run(&d1, &[0.5]).unwrap();
        let r24a = engine.run(&d24, &[0.5]).unwrap();
        let r24b = engine.run(&d24, &[0.5]).unwrap();
        assert_eq!(r24a, r24b, "fixed decomposition is bitwise reproducible");
        assert_ne!(
            r1.output.len(),
            r24a.output.len(),
            "changing parallelism changes the grid"
        );
    }
}
