//! Static floating-point instruction sites and the injection hook.
//!
//! The paper's injection framework (§3.5) is an LLVM pass: "given a
//! target floating-point instruction of the form `x OP y` … we introduce
//! an additional operation `x OP' ε`", applied *before* optimization.
//! An injection location is "a file, function and floating-point
//! instruction tuple".
//!
//! Our analog: injectable kernels evaluate their arithmetic through a
//! [`SiteCtx`], which numbers each *lexical* (static) floating-point
//! operation in the kernel body. Loop iterations re-execute the same
//! lexical site, so — exactly like an IR instruction — one injection
//! perturbs every dynamic execution of that instruction.
//!
//! Kernel bodies used with `SiteCtx` must be branch-free per element
//! (use [`SiteCtx::min`]/[`SiteCtx::max`] instead of `if`) so that every
//! iteration executes the same site sequence; [`SiteCtx::begin_body`]
//! re-aligns the counter at the top of each iteration.

use serde::{Deserialize, Serialize};

use flit_fpsim::env::FpEnv;
use flit_fpsim::{mathlib, ops};

/// The additional operation `OP'` applied at an injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectOp {
    /// `x + ε`
    Add,
    /// `x - ε`
    Sub,
    /// `x * (1 + ε·2⁻⁴⁰)` — multiplicative perturbations use a
    /// near-unity factor so the program stays in range; the paper's ε is
    /// similarly chosen "from a uniform distribution between 0 and 1"
    /// scaled to be small (their example uses `1e-100`).
    Mul,
    /// `x / (1 + ε·2⁻⁴⁰)`
    Div,
}

impl InjectOp {
    /// All four basic operations.
    pub const ALL: [InjectOp; 4] = [InjectOp::Add, InjectOp::Sub, InjectOp::Mul, InjectOp::Div];

    /// Apply the perturbation to an operand.
    #[inline]
    pub fn apply(self, x: f64, eps: f64) -> f64 {
        // Additive perturbations are scaled to sit far below the data
        // (like the paper's 1e-100 example but large enough to survive
        // double rounding); multiplicative ones hug 1.0.
        match self {
            InjectOp::Add => x + eps * 1e-13,
            InjectOp::Sub => x - eps * 1e-13,
            InjectOp::Mul => x * (1.0 + eps * 9.094947017729282e-13), // 2^-40
            InjectOp::Div => x / (1.0 + eps * 9.094947017729282e-13),
        }
    }
}

/// An injection: perturb static site `site` (within one function) with
/// `x OP' ε` before the original operation executes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Injection {
    /// Static FP-instruction index within the target function's kernel.
    pub site: usize,
    /// The additional operation.
    pub op: InjectOp,
    /// ε drawn from U(0, 1).
    pub eps: f64,
}

/// Evaluation context for injectable kernels: environment-aware
/// arithmetic with static-site numbering and an optional injection.
pub struct SiteCtx<'a> {
    env: &'a FpEnv,
    injection: Option<Injection>,
    cursor: usize,
    body_base: usize,
    body_len: usize,
    max_site: usize,
    counting: bool,
}

impl<'a> SiteCtx<'a> {
    /// A live evaluation context (with optional injection).
    pub fn new(env: &'a FpEnv, injection: Option<Injection>) -> Self {
        SiteCtx {
            env,
            injection,
            cursor: 0,
            body_base: 0,
            body_len: 0,
            max_site: 0,
            counting: false,
        }
    }

    /// A counting context: evaluates normally (strict env) but its only
    /// purpose is [`SiteCtx::site_count`] — the first pass of the
    /// injection framework, "identifying potential valid injection
    /// locations".
    pub fn counting(env: &'a FpEnv) -> Self {
        let mut c = SiteCtx::new(env, None);
        c.counting = true;
        c
    }

    /// Number of distinct static sites touched so far.
    pub fn site_count(&self) -> usize {
        self.max_site
    }

    /// Mark the start of a loop body executing `sites_in_body` lexical
    /// FP operations: iterations re-run the same site ids.
    ///
    /// Call once before the loop with the per-iteration site count; call
    /// [`SiteCtx::next_iteration`] at the top of each iteration.
    pub fn begin_body(&mut self, sites_in_body: usize) {
        self.body_base = self.cursor;
        self.body_len = sites_in_body;
    }

    /// Reset the cursor to the top of the current loop body.
    pub fn next_iteration(&mut self) {
        self.cursor = self.body_base;
    }

    /// Close the loop: subsequent straight-line sites continue after the
    /// body's site range.
    pub fn end_body(&mut self) {
        self.cursor = self.body_base + self.body_len;
        self.max_site = self.max_site.max(self.cursor);
    }

    #[inline]
    fn tick(&mut self, x: f64) -> f64 {
        let site = self.cursor;
        self.cursor += 1;
        self.max_site = self.max_site.max(self.cursor);
        match self.injection {
            Some(inj) if inj.site == site => inj.op.apply(x, inj.eps),
            _ => x,
        }
    }

    /// `a + b` (one static site; injection perturbs `a`).
    #[inline]
    pub fn add(&mut self, a: f64, b: f64) -> f64 {
        let a = self.tick(a);
        ops::add(self.env, a, b)
    }

    /// `a - b`.
    #[inline]
    pub fn sub(&mut self, a: f64, b: f64) -> f64 {
        let a = self.tick(a);
        ops::sub(self.env, a, b)
    }

    /// `a * b`.
    #[inline]
    pub fn mul(&mut self, a: f64, b: f64) -> f64 {
        let a = self.tick(a);
        ops::mul(self.env, a, b)
    }

    /// `a / b`.
    #[inline]
    pub fn div(&mut self, a: f64, b: f64) -> f64 {
        let a = self.tick(a);
        ops::div(self.env, a, b)
    }

    /// `a*b + c` (contraction-sensitive; counts as one site like an IR
    /// fmuladd).
    #[inline]
    pub fn mul_add(&mut self, a: f64, b: f64, c: f64) -> f64 {
        let a = self.tick(a);
        ops::mul_add(self.env, a, b, c)
    }

    /// `sqrt(a)`.
    #[inline]
    pub fn sqrt(&mut self, a: f64) -> f64 {
        let a = self.tick(a);
        ops::sqrt(self.env, a)
    }

    /// Branch-free `min` (an FP instruction, hence a site).
    #[inline]
    pub fn min(&mut self, a: f64, b: f64) -> f64 {
        let a = self.tick(a);
        if a < b {
            a
        } else {
            b
        }
    }

    /// Branch-free `max`.
    #[inline]
    pub fn max(&mut self, a: f64, b: f64) -> f64 {
        let a = self.tick(a);
        if a > b {
            a
        } else {
            b
        }
    }

    /// `exp(a)` through the environment's math library.
    #[inline]
    pub fn exp(&mut self, a: f64) -> f64 {
        let a = self.tick(a);
        mathlib::exp(self.env, a)
    }

    /// `sin(a)` through the environment's math library.
    #[inline]
    pub fn sin(&mut self, a: f64) -> f64 {
        let a = self.tick(a);
        mathlib::sin(self.env, a)
    }

    /// The environment this context evaluates under.
    pub fn env(&self) -> &FpEnv {
        self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(ctx: &mut SiteCtx, x: f64) -> f64 {
        // 3 lexical sites.
        let a = ctx.mul(x, 2.0);
        let b = ctx.add(a, 1.0);
        ctx.div(b, 3.0)
    }

    #[test]
    fn straight_line_counts_sites() {
        let env = FpEnv::strict();
        let mut ctx = SiteCtx::counting(&env);
        let _ = body(&mut ctx, 1.0);
        assert_eq!(ctx.site_count(), 3);
    }

    #[test]
    fn loop_iterations_share_sites() {
        let env = FpEnv::strict();
        let mut ctx = SiteCtx::counting(&env);
        ctx.begin_body(3);
        for i in 0..10 {
            ctx.next_iteration();
            let _ = body(&mut ctx, i as f64);
        }
        ctx.end_body();
        // 10 iterations, still 3 static sites.
        assert_eq!(ctx.site_count(), 3);
        // Straight-line code after the loop continues numbering.
        let _ = ctx.add(1.0, 2.0);
        assert_eq!(ctx.site_count(), 4);
    }

    #[test]
    fn injection_perturbs_exactly_one_site() {
        let env = FpEnv::strict();
        let clean = {
            let mut ctx = SiteCtx::new(&env, None);
            body(&mut ctx, 0.7)
        };
        for site in 0..3 {
            let inj = Injection {
                site,
                op: InjectOp::Add,
                eps: 0.5,
            };
            let mut ctx = SiteCtx::new(&env, Some(inj));
            let perturbed = body(&mut ctx, 0.7);
            assert_ne!(clean, perturbed, "site {site} should perturb");
        }
        // An out-of-range site leaves the result untouched.
        let inj = Injection {
            site: 99,
            op: InjectOp::Add,
            eps: 0.5,
        };
        let mut ctx = SiteCtx::new(&env, Some(inj));
        assert_eq!(body(&mut ctx, 0.7), clean);
    }

    #[test]
    fn injection_applies_to_every_iteration_of_a_loop_site() {
        let env = FpEnv::strict();
        let run = |inj: Option<Injection>| {
            let mut ctx = SiteCtx::new(&env, inj);
            let mut acc = 0.0;
            ctx.begin_body(1);
            for i in 1..=4 {
                ctx.next_iteration();
                acc = ctx.add(acc, i as f64);
            }
            ctx.end_body();
            acc
        };
        let clean = run(None);
        assert_eq!(clean, 10.0);
        let inj = Injection {
            site: 0,
            op: InjectOp::Add,
            eps: 1.0,
        };
        let perturbed = run(Some(inj));
        // The accumulator operand is perturbed by 1e-13 on each of the 4
        // iterations (modulo rounding of the running sum).
        assert!((perturbed - 10.0 - 4e-13).abs() < 1e-14);
    }

    #[test]
    fn inject_ops_all_do_something() {
        for op in InjectOp::ALL {
            assert_ne!(op.apply(1.0, 0.7), 1.0, "{op:?}");
        }
        // Zero eps is the identity for add/sub and near-identity for mul/div.
        assert_eq!(InjectOp::Add.apply(2.5, 0.0), 2.5);
        assert_eq!(InjectOp::Mul.apply(2.5, 0.0), 2.5);
    }

    #[test]
    fn min_max_are_branch_free_sites() {
        let env = FpEnv::strict();
        let mut ctx = SiteCtx::counting(&env);
        let m = ctx.min(3.0, 1.0);
        let x = ctx.max(m, 2.0);
        assert_eq!((m, x), (1.0, 2.0));
        assert_eq!(ctx.site_count(), 2);
    }
}
