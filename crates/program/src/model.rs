//! The program model: source files, functions, drivers.

use std::collections::HashMap;

use flit_toolchain::cache::RecipeHasher;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::object::{Linkage, ObjectFile, SymbolEntry};
use flit_toolchain::perf::KernelClass;
use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::sites::Injection;

/// Symbol visibility at the source level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// Globally exported (a strong symbol in the object file).
    Exported,
    /// `static` / internal linkage (a local symbol: invisible to the
    /// linker, not interposable, always "inlined" into its TU).
    Static,
}

/// One function: a kernel, its linkage properties, and its callees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Function {
    /// Unique (program-wide) symbol name.
    pub name: String,
    /// Linkage visibility.
    pub visibility: Visibility,
    /// Whether intra-TU callers may inline this function when the TU is
    /// compiled without `-fPIC`.
    pub inlinable: bool,
    /// The body.
    pub kernel: Kernel,
    /// Callee symbol names, invoked in order after the body runs.
    pub calls: Vec<String>,
    /// Modeled source lines (Table 3 statistics).
    pub sloc: u32,
    /// Work multiplier for the performance model (e.g. a mesh routine
    /// that moves far more data than its kernel's nominal cost).
    pub work_scale: f64,
    /// Active injection, if the injection pass has rewritten this
    /// function (`flit-inject`).
    pub injection: Option<Injection>,
}

impl Function {
    /// A plain exported function with defaults derived from the kernel.
    pub fn exported(name: impl Into<String>, kernel: Kernel) -> Self {
        Function {
            name: name.into(),
            visibility: Visibility::Exported,
            inlinable: false,
            kernel,
            calls: vec![],
            sloc: 18,
            work_scale: 1.0,
            injection: None,
        }
    }

    /// A `static` (local) function.
    pub fn local(name: impl Into<String>, kernel: Kernel) -> Self {
        Function {
            visibility: Visibility::Static,
            ..Function::exported(name, kernel)
        }
    }

    /// Builder: mark inlinable.
    pub fn inlinable(mut self) -> Self {
        self.inlinable = true;
        self
    }

    /// Builder: add callees.
    pub fn with_calls(mut self, calls: Vec<String>) -> Self {
        self.calls = calls;
        self
    }

    /// Builder: set modeled SLOC.
    pub fn with_sloc(mut self, sloc: u32) -> Self {
        self.sloc = sloc;
        self
    }

    /// Builder: set the performance-model work multiplier.
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        self.work_scale = scale;
        self
    }

    /// Performance class of the body.
    pub fn class(&self) -> KernelClass {
        self.kernel.class()
    }
}

/// One source file (one translation unit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceFile {
    /// File name (e.g. `linalg/densemat.cpp`).
    pub name: String,
    /// The functions defined in this file.
    pub functions: Vec<Function>,
}

impl SourceFile {
    /// Create a file.
    pub fn new(name: impl Into<String>, functions: Vec<Function>) -> Self {
        SourceFile {
            name: name.into(),
            functions,
        }
    }

    /// Total modeled SLOC (functions plus a per-file header overhead).
    pub fn sloc(&self) -> u32 {
        12 + self.functions.iter().map(|f| f.sloc).sum::<u32>()
    }
}

/// A complete application: files, functions, and a symbol index.
#[derive(Debug, Clone)]
pub struct SimProgram {
    /// Program name.
    pub name: String,
    /// The source files.
    pub files: Vec<SourceFile>,
    index: HashMap<String, (usize, usize)>,
    /// Structural fingerprint: everything object files can depend on
    /// (file names, symbol names, visibility). Function *bodies* are
    /// excluded on purpose — the simulated compiler never encodes them
    /// into objects, so structurally identical programs (e.g. a clean
    /// and an injected copy) may share cached build artifacts.
    fingerprint: u64,
}

impl SimProgram {
    /// Build a program, validating symbol uniqueness.
    ///
    /// # Panics
    /// If two functions share a name, or a call references an undefined
    /// symbol, or a `static` function is called from another file.
    pub fn new(name: impl Into<String>, files: Vec<SourceFile>) -> Self {
        let mut index = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                let prev = index.insert(f.name.clone(), (fi, gi));
                assert!(prev.is_none(), "duplicate symbol `{}`", f.name);
            }
        }
        let mut h = RecipeHasher::new();
        for file in &files {
            h.write_str(&file.name);
            for f in &file.functions {
                h.write_str(&f.name);
                h.write_u64(match f.visibility {
                    Visibility::Exported => 0,
                    Visibility::Static => 1,
                });
            }
        }
        let prog = SimProgram {
            name: name.into(),
            files,
            index,
            fingerprint: h.finish(),
        };
        // Validate the call graph.
        for (fi, file) in prog.files.iter().enumerate() {
            for f in &file.functions {
                for callee in &f.calls {
                    let (cfi, cgi) = *prog
                        .index
                        .get(callee)
                        .unwrap_or_else(|| panic!("`{}` calls undefined `{callee}`", f.name));
                    let target = &prog.files[cfi].functions[cgi];
                    assert!(
                        target.visibility == Visibility::Exported || cfi == fi,
                        "`{}` calls static `{callee}` across files",
                        f.name
                    );
                }
            }
        }
        prog
    }

    /// The structural fingerprint used as the build-cache key component
    /// for this program (see the field docs for what it covers).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Look up a symbol: `(file index, function index)`.
    pub fn lookup(&self, symbol: &str) -> Option<(usize, usize)> {
        self.index.get(symbol).copied()
    }

    /// The function for a symbol.
    pub fn function(&self, symbol: &str) -> Option<&Function> {
        let (fi, gi) = self.lookup(symbol)?;
        Some(&self.files[fi].functions[gi])
    }

    /// Mutable access to a function (used by the injection pass).
    pub fn function_mut(&mut self, symbol: &str) -> Option<&mut Function> {
        let (fi, gi) = self.lookup(symbol)?;
        Some(&mut self.files[fi].functions[gi])
    }

    /// Total number of functions.
    pub fn total_functions(&self) -> usize {
        self.files.iter().map(|f| f.functions.len()).sum()
    }

    /// Number of exported functions (the paper's "functions which are
    /// exported symbols", Table 3).
    pub fn exported_functions(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.functions)
            .filter(|f| f.visibility == Visibility::Exported)
            .count()
    }

    /// Total modeled source lines of code.
    pub fn total_sloc(&self) -> u32 {
        self.files.iter().map(SourceFile::sloc).sum()
    }

    /// Exported symbol names defined in file `file_id`, sorted — the
    /// search space of Symbol Bisect for that file.
    pub fn exported_symbols_of_file(&self, file_id: usize) -> Vec<String> {
        let mut v: Vec<String> = self.files[file_id]
            .functions
            .iter()
            .filter(|f| f.visibility == Visibility::Exported)
            .map(|f| f.name.clone())
            .collect();
        v.sort();
        v
    }

    /// The exported functions that (transitively) call `symbol` — used
    /// to classify "indirect finds" in the injection study (§3.5: "the
    /// source function is not a visible symbol but Bisect was able to
    /// find the visible symbol which used the injected function").
    pub fn visible_callers(&self, symbol: &str) -> Vec<String> {
        let mut out = Vec::new();
        for file in &self.files {
            for f in &file.functions {
                if f.visibility == Visibility::Exported && self.calls_transitively(&f.name, symbol)
                {
                    out.push(f.name.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Does `from` reach `to` through the call graph?
    pub fn calls_transitively(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from.to_string()];
        let mut seen = std::collections::HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(f) = self.function(&cur) {
                for callee in &f.calls {
                    if callee == to {
                        return true;
                    }
                    stack.push(callee.clone());
                }
            }
        }
        false
    }

    /// Compile one file under a compilation, producing its object file.
    pub fn compile_file(&self, file_id: usize, comp: &Compilation, pic: bool) -> ObjectFile {
        let file = &self.files[file_id];
        ObjectFile {
            file_id,
            file_name: file.name.clone(),
            compilation: comp.clone(),
            pic,
            build_tag: 0,
            symbols: file
                .functions
                .iter()
                .map(|f| SymbolEntry {
                    name: f.name.clone(),
                    linkage: match f.visibility {
                        Visibility::Exported => Linkage::Strong,
                        Visibility::Static => Linkage::Local,
                    },
                })
                .collect(),
        }
    }
}

// Manual impls: `index` and `fingerprint` are derived state, so the
// wire carries `{name, files}` only and deserialization rebuilds (and
// re-validates) through [`SimProgram::new`] — a deserialized program is
// structurally identical to the original, fingerprint included.
impl Serialize for SimProgram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), self.name.to_value()),
            ("files".to_string(), self.files.to_value()),
        ])
    }
}

impl Deserialize for SimProgram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let name = String::from_value(v.field("name")?)?;
        let files = Vec::<SourceFile>::from_value(v.field("files")?)?;
        Ok(SimProgram::new(name, files))
    }
}

/// How a test drives the program: the entry sequence `main()` performs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Driver {
    /// Driver (test) name; also salts the ABI-crash model the way real
    /// crash sites depend on the exercised code path.
    pub name: String,
    /// Exported symbols called by `main()`, in order, each round.
    pub entries: Vec<String>,
    /// How many rounds of the entry sequence to run (the time loop).
    pub rounds: usize,
    /// State vector length (the mesh/grid size).
    pub state_size: usize,
    /// Domain-decomposition factor: the number of MPI ranks/threads the
    /// run is decomposed over. Changing it changes the grid density and
    /// therefore the results (§3.6), but any fixed value is
    /// run-to-run deterministic.
    pub decomposition: usize,
}

impl Driver {
    /// A sequential driver.
    pub fn new(
        name: impl Into<String>,
        entries: Vec<String>,
        rounds: usize,
        state_size: usize,
    ) -> Self {
        Driver {
            name: name.into(),
            entries,
            rounds,
            state_size,
            decomposition: 1,
        }
    }

    /// Same driver decomposed over `ranks` domains.
    pub fn with_decomposition(mut self, ranks: usize) -> Self {
        self.decomposition = ranks.max(1);
        self
    }

    /// Build the initial state from the FLiT test input. This runs in
    /// the harness (outside the compiled program), so it uses plain
    /// arithmetic and is environment-independent.
    ///
    /// Domain decomposition adds ghost-layer padding per rank, changing
    /// the effective grid size — the mechanism by which "increasing the
    /// parallelism changed the result" in §3.6.
    pub fn init_state(&self, input: &[f64]) -> Vec<f64> {
        let pad = (self.decomposition - 1) * 2;
        let n = self.state_size + pad;
        (0..n)
            .map(|i| {
                let base = if input.is_empty() {
                    0.5
                } else {
                    input[i % input.len()].clamp(0.0, 1.0)
                };
                let ripple = ((i * 37 + 11) % 101) as f64 / 101.0;
                0.15 + 0.7 * (0.5 * base + 0.5 * ripple)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> SimProgram {
        SimProgram::new(
            "tiny",
            vec![
                SourceFile::new(
                    "a.cpp",
                    vec![
                        Function::exported("alpha", Kernel::DotMix { stride: 3 })
                            .with_calls(vec!["helper".into(), "beta".into()]),
                        Function::local("helper", Kernel::Benign { flavor: 2 }),
                    ],
                ),
                SourceFile::new(
                    "b.cpp",
                    vec![Function::exported("beta", Kernel::NormScale).with_sloc(30)],
                ),
            ],
        )
    }

    #[test]
    fn lookup_and_counts() {
        let p = tiny_program();
        assert_eq!(p.lookup("alpha"), Some((0, 0)));
        assert_eq!(p.lookup("beta"), Some((1, 0)));
        assert_eq!(p.lookup("nope"), None);
        assert_eq!(p.total_functions(), 3);
        assert_eq!(p.exported_functions(), 2);
        assert!(p.total_sloc() > 50);
    }

    #[test]
    fn exported_symbols_of_file_excludes_statics() {
        let p = tiny_program();
        assert_eq!(p.exported_symbols_of_file(0), vec!["alpha".to_string()]);
    }

    #[test]
    fn visible_callers_resolves_transitively() {
        let p = tiny_program();
        assert_eq!(p.visible_callers("helper"), vec!["alpha".to_string()]);
        assert_eq!(p.visible_callers("beta"), vec!["alpha".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbols_rejected() {
        SimProgram::new(
            "dup",
            vec![SourceFile::new(
                "a.cpp",
                vec![
                    Function::exported("f", Kernel::DivScan),
                    Function::exported("f", Kernel::NormScale),
                ],
            )],
        );
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn undefined_callee_rejected() {
        SimProgram::new(
            "bad",
            vec![SourceFile::new(
                "a.cpp",
                vec![Function::exported("f", Kernel::DivScan).with_calls(vec!["ghost".into()])],
            )],
        );
    }

    #[test]
    #[should_panic(expected = "across files")]
    fn cross_file_static_call_rejected() {
        SimProgram::new(
            "bad2",
            vec![
                SourceFile::new(
                    "a.cpp",
                    vec![Function::local("s", Kernel::Benign { flavor: 0 })],
                ),
                SourceFile::new(
                    "b.cpp",
                    vec![Function::exported("f", Kernel::DivScan).with_calls(vec!["s".into()])],
                ),
            ],
        );
    }

    #[test]
    fn compile_file_maps_visibility_to_linkage() {
        let p = tiny_program();
        let comp = Compilation::baseline();
        let obj = p.compile_file(0, &comp, false);
        assert_eq!(obj.file_name, "a.cpp");
        assert_eq!(obj.linkage_of("alpha"), Some(Linkage::Strong));
        assert_eq!(obj.linkage_of("helper"), Some(Linkage::Local));
        assert!(!obj.pic);
        let pic_obj = p.compile_file(0, &comp, true);
        assert!(pic_obj.pic);
    }

    #[test]
    fn driver_init_state_is_deterministic_and_bounded() {
        let d = Driver::new("t", vec!["alpha".into()], 2, 64);
        let s1 = d.init_state(&[0.25, 0.75]);
        let s2 = d.init_state(&[0.25, 0.75]);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 64);
        for &x in &s1 {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn decomposition_changes_grid_density() {
        let d1 = Driver::new("t", vec![], 1, 64);
        let d24 = d1.clone().with_decomposition(24);
        let s1 = d1.init_state(&[0.5]);
        let s24 = d24.init_state(&[0.5]);
        assert_eq!(s1.len(), 64);
        assert_eq!(s24.len(), 64 + 46);
        assert_ne!(s1.len(), s24.len());
    }
}
