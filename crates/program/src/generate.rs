//! Synthetic-codebase generation: deterministic filler files and
//! functions that pad an application out to realistic statistics
//! (Table 3: MFEM has 97 source files, ~31 functions per file, 2,998
//! exported functions, 103,205 SLOC).
//!
//! Filler functions use [`Kernel::Benign`] flavors (exact arithmetic),
//! so they enlarge the Bisect *search space* without perturbing results
//! — exactly the role the thousands of uninvolved MFEM functions play
//! in the paper's searches.

use crate::kernel::Kernel;
use crate::model::{Driver, Function, SourceFile, Visibility};

/// Specification for filler generation.
#[derive(Debug, Clone)]
pub struct FillerSpec {
    /// Number of filler files to generate.
    pub files: usize,
    /// Mean functions per file.
    pub funcs_per_file: usize,
    /// Fraction (per mille) of filler functions with internal linkage.
    pub static_per_mille: u32,
    /// Mean modeled SLOC per function.
    pub sloc_per_func: u32,
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Name prefix for generated files/symbols.
    pub prefix: String,
}

impl Default for FillerSpec {
    fn default() -> Self {
        FillerSpec {
            files: 10,
            funcs_per_file: 30,
            static_per_mille: 150,
            sloc_per_func: 30,
            seed: 0x5EED,
            prefix: "gen".into(),
        }
    }
}

/// A tiny deterministic PRNG (splitmix64) — filler structure must be
/// identical on every run and platform.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` via Lemire's widening-multiply map
    /// (`(x * bound) >> 64`): rejection-free and, unlike the previous
    /// `% bound`, free of modulo bias for bounds that do not divide
    /// 2^64. Note this changes the value stream for any given seed.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generate filler source files per the spec.
pub fn filler_files(spec: &FillerSpec) -> Vec<SourceFile> {
    let mut rng = SplitMix::new(spec.seed);
    let mut files = Vec::with_capacity(spec.files);
    for fi in 0..spec.files {
        let jitter = rng.below(7) as i64 - 3;
        let nfuncs = (spec.funcs_per_file as i64 + jitter).max(1) as usize;
        let mut functions = Vec::with_capacity(nfuncs);
        for gi in 0..nfuncs {
            let name = format!("{}_{fi:03}_{gi:02}", spec.prefix);
            let flavor = rng.below(7) as u8;
            let is_static = rng.below(1000) < spec.static_per_mille as u64;
            let sloc_jitter = rng.below(21) as i64 - 10;
            let sloc = (spec.sloc_per_func as i64 + sloc_jitter).max(4) as u32;
            let mut f = if is_static {
                Function::local(&name, Kernel::Benign { flavor })
            } else {
                Function::exported(&name, Kernel::Benign { flavor })
            };
            // Short intra-file call chains for realistic call graphs:
            // every third function calls its predecessor (statics may
            // only be called within the file, which this satisfies).
            if gi > 0 && gi % 3 == 0 {
                let prev = format!("{}_{fi:03}_{:02}", spec.prefix, gi - 1);
                f = f.with_calls(vec![prev]);
            }
            // Statics must be reachable from an exported function in the
            // same file to matter; chains above handle that when they
            // occur — otherwise they model dead code, which real
            // codebases have too.
            f = f.with_sloc(sloc);
            if rng.below(5) == 0 {
                f = f.inlinable();
            }
            functions.push(f);
        }
        files.push(SourceFile::new(
            format!("{}/{}_{fi:03}.cpp", spec.prefix, spec.prefix),
            functions,
        ));
    }
    files
}

/// The FP-sensitive kernels a fuzz campaign may plant. The menu is
/// restricted to kernels whose sensitivity survives `-fPIC` (FMA,
/// reassociation, reciprocal math — not x87 extended precision), so a
/// planted site is findable at *symbol* granularity, never capped at
/// `file_level_only`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlantKernel {
    /// [`Kernel::DotMix`]: FMA + reassociation sensitive.
    Dot,
    /// [`Kernel::MatVecMix`]: FMA + reassociation sensitive.
    MatVec,
    /// [`Kernel::Rank1Mix`]: FMA + reassociation sensitive (Finding 2).
    Rank1,
    /// [`Kernel::NormScale`]: reassociation sensitive.
    Norm,
    /// [`Kernel::PolyHorner`]: FMA sensitive.
    Poly,
    /// [`Kernel::ChaoticAmplify`]: FMA sensitive, and *amplifies*
    /// incoming differences. `HeatSmooth` is deliberately absent from
    /// the plant menu: smoothing is contractive, so a one-ulp FMA
    /// divergence planted in one round can be absorbed by the next
    /// round's stencil — a non-persistent signal no exact oracle can
    /// key on.
    Chaotic,
    /// [`Kernel::CgSolve`]: sensitive to everything, iteration-path
    /// amplified (Finding 1).
    Cg,
    /// [`Kernel::DivScan`]: reciprocal-math sensitive only.
    Div,
}

impl PlantKernel {
    /// Every plantable kernel.
    pub const ALL: [PlantKernel; 8] = [
        PlantKernel::Dot,
        PlantKernel::MatVec,
        PlantKernel::Rank1,
        PlantKernel::Norm,
        PlantKernel::Poly,
        PlantKernel::Chaotic,
        PlantKernel::Cg,
        PlantKernel::Div,
    ];

    /// Instantiate with parameters drawn from safe menus — varied per
    /// site so two sites planting the same kernel still contribute
    /// decorrelated errors (the unique-error assumption).
    pub fn instantiate(self, rng: &mut SplitMix) -> Kernel {
        match self {
            PlantKernel::Dot => Kernel::DotMix {
                stride: 2 + rng.below(5) as usize,
            },
            PlantKernel::MatVec => Kernel::MatVecMix {
                n: 6 + rng.below(6) as usize,
            },
            PlantKernel::Rank1 => Kernel::Rank1Mix {
                // n in {6, 7}: >= 6 keeps the dot products long enough
                // that the whole update almost never rounds identically
                // under an FMA pair (n = 4 instances were bitwise-neutral
                // on ~40 % of states), while < 8 keeps them under the
                // W4 vectorization threshold (len >= 2 lanes), so the
                // kernel stays bitwise-invariant under reassociation-only
                // pairs — Rank1's hit tables need one answer per pair,
                // not one per draw. Alphas are non-dyadic so the scale
                // multiply always rounds.
                n: 6 + rng.below(2) as usize,
                alpha: 0.35 + 0.07 * rng.below(5) as f64,
            },
            PlantKernel::Norm => Kernel::NormScale,
            PlantKernel::Poly => Kernel::PolyHorner {
                degree: 5 + rng.below(6) as usize,
            },
            PlantKernel::Chaotic => Kernel::ChaoticAmplify {
                // Strictly inside the chaotic regime (> 2.57), so the
                // per-step FMA rounding difference grows instead of
                // washing out across driver rounds.
                lambda: 2.61 + 0.12 * rng.below(4) as f64,
                steps: 3 + rng.below(3) as usize,
            },
            PlantKernel::Cg => Kernel::CgSolve {
                n: 8 + rng.below(8) as usize,
                tol: 1e-10,
                cond: 1e4,
            },
            PlantKernel::Div => Kernel::DivScan,
        }
    }
}

/// How a planted kernel is wired into the codebase — each shape
/// exercises a different binding rule of the engine/linker model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlantShape {
    /// The driver calls the exported kernel function directly.
    ExportedEntry,
    /// An exported benign wrapper calls a same-file exported
    /// *inlinable* kernel: non-PIC builds may inline the call, `-fPIC`
    /// symbol search interposes it. The kernel symbol takes the blame.
    ExportedInlinable,
    /// An exported benign wrapper calls a same-file *static* kernel:
    /// the static binds to its caller's object, so the wrapper symbol
    /// takes the blame at symbol granularity.
    StaticBehindWrapper,
    /// A benign entry function in its own file calls the exported
    /// kernel across files: only the kernel's file may be blamed.
    CrossFileChain,
}

impl PlantShape {
    /// Every plantable shape.
    pub const ALL: [PlantShape; 4] = [
        PlantShape::ExportedEntry,
        PlantShape::ExportedInlinable,
        PlantShape::StaticBehindWrapper,
        PlantShape::CrossFileChain,
    ];
}

/// One planted blame site, recorded as ground truth at generation time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedSite {
    /// File holding the sensitive kernel body.
    pub file_id: usize,
    /// The symbol the driver's entry list calls for this site.
    pub entry: String,
    /// The exported symbol Symbol Bisect must blame when the site's
    /// kernel feels the environment difference.
    pub blamed_symbol: String,
    /// Which kernel was planted.
    pub kernel: PlantKernel,
    /// How it was wired in.
    pub shape: PlantShape,
}

/// Specification for a codebase with planted blame sets. Shrinkable:
/// the fuzz minimizer drops filler files, drops sites, and simplifies
/// kernels/shapes by rewriting this spec and re-planting.
#[derive(Debug, Clone)]
pub struct PlantedSpec {
    /// Benign filler surrounding the planted sites.
    pub filler: FillerSpec,
    /// The sites to plant, in order. Each gets its own source file.
    pub sites: Vec<(PlantKernel, PlantShape)>,
    /// Seed for site parameters (kernel menus, driver geometry).
    pub seed: u64,
}

/// A generated codebase plus its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedCodebase {
    /// The program: filler files first, then one or two files per site,
    /// then one environment-invariant amplifier file that keeps each
    /// site's divergence observable at the output.
    pub program: crate::model::SimProgram,
    /// A driver whose entries reach every planted site (and a filler
    /// function, so reachability scoping is exercised). Each site entry
    /// is followed by the amplifier entry.
    pub driver: Driver,
    /// Ground truth, in site order.
    pub sites: Vec<PlantedSite>,
}

/// Generate a codebase per the spec. Deterministic in the spec.
pub fn plant(spec: &PlantedSpec) -> PlantedCodebase {
    let prefix = spec.filler.prefix.clone();
    let mut files = filler_files(&spec.filler);
    let mut rng = SplitMix::new(spec.seed ^ 0x5EED_F0ED_5EED_F0ED);
    let mut sites = Vec::with_capacity(spec.sites.len());
    let mut entries = Vec::new();

    // One reachable filler entry keeps the benign closure live, so the
    // oracle also checks that bisect/lint *don't* blame filler.
    if let Some(f) = files
        .iter()
        .flat_map(|f| &f.functions)
        .find(|f| f.visibility == Visibility::Exported)
    {
        entries.push(f.name.clone());
    }

    for (i, &(kernel, shape)) in spec.sites.iter().enumerate() {
        let kname = format!("{prefix}_site{i:02}_kern");
        let wname = format!("{prefix}_site{i:02}_wrap");
        let k = kernel.instantiate(&mut rng);
        let (site_functions, entry, blamed) = match shape {
            PlantShape::ExportedEntry => (
                vec![Function::exported(&kname, k)],
                kname.clone(),
                kname.clone(),
            ),
            PlantShape::ExportedInlinable => (
                vec![
                    Function::exported(&wname, Kernel::Benign { flavor: 1 })
                        .with_calls(vec![kname.clone()]),
                    Function::exported(&kname, k).inlinable(),
                ],
                wname.clone(),
                kname.clone(),
            ),
            PlantShape::StaticBehindWrapper => (
                vec![
                    Function::exported(&wname, Kernel::Benign { flavor: 2 })
                        .with_calls(vec![kname.clone()]),
                    Function::local(&kname, k),
                ],
                wname.clone(),
                wname.clone(),
            ),
            PlantShape::CrossFileChain => (
                vec![Function::exported(&kname, k)],
                format!("{prefix}_site{i:02}_entry"),
                kname.clone(),
            ),
        };
        let file_id = files.len();
        files.push(SourceFile::new(
            format!("{prefix}/site_{i:02}.cpp"),
            site_functions,
        ));
        if shape == PlantShape::CrossFileChain {
            // The benign hop lives in its own file; it must never be
            // blamed.
            files.push(SourceFile::new(
                format!("{prefix}/site_{i:02}_entry.cpp"),
                vec![Function::exported(&entry, Kernel::Benign { flavor: 4 })
                    .with_calls(vec![kname.clone()])],
            ));
        }
        entries.push(entry.clone());
        entries.push(format!("{prefix}_amp"));
        sites.push(PlantedSite {
            file_id,
            entry,
            blamed_symbol: blamed,
            kernel,
            shape,
        });
    }

    // An exact chaotic amplifier runs after every site entry. It is
    // environment-invariant (plain arithmetic only, so Bisect never
    // blames it), but it stretches whatever one-ulp difference the
    // preceding site just produced to macroscopic scale before the next
    // kernel runs. Without it a later contractive or overwriting kernel
    // (CgSolve's converge-to-tolerance, Rank1Mix's residual rewrite)
    // can absorb an earlier site's divergence, and the recorded ground
    // truth would overstate the observable blame set.
    files.push(SourceFile::new(
        format!("{prefix}/amplifier.cpp"),
        vec![Function::exported(
            format!("{prefix}_amp"),
            Kernel::AmplifyExact {
                lambda: 2.9,
                steps: 80,
            },
        )],
    ));

    let state_size = 48 + 16 * rng.below(3) as usize;
    // Twelve rounds, not two: a single kernel evaluation under an FP
    // environment pair can round identically by chance (Rank1Mix lands
    // bitwise-equal on ~11 % of random states under pure-FMA pairs).
    // The amplifier scrambles the state between rounds, so each round
    // is an independent chance for the planted kernel to express the
    // difference: per-site miss probability drops to ~0.11^12 ≈ 3e-12,
    // which keeps every planted site observable — the property the
    // oracle's exact found-set comparison relies on.
    let driver = Driver::new(format!("{prefix}_drv"), entries, 12, state_size);
    let program = crate::model::SimProgram::new(format!("{prefix}_app"), files);
    PlantedCodebase {
        program,
        driver,
        sites,
    }
}

/// A random spec for one fuzz seed: small filler (a few files), one to
/// three planted sites with seed-chosen kernels and shapes. Symbol and
/// file names embed the seed, so structurally distinct seeds never
/// share a program fingerprint (which keys build caches and journals).
pub fn random_planted(seed: u64) -> PlantedSpec {
    let mut rng = SplitMix::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFACE);
    let prefix = format!("fz{seed:06x}");
    let filler = FillerSpec {
        files: 3 + rng.below(5) as usize,
        funcs_per_file: 6 + rng.below(8) as usize,
        static_per_mille: 150,
        sloc_per_func: 30,
        seed: rng.next_u64(),
        prefix,
    };
    let nsites = 1 + rng.below(3) as usize;
    let sites = (0..nsites)
        .map(|_| {
            (
                PlantKernel::ALL[rng.below(PlantKernel::ALL.len() as u64) as usize],
                PlantShape::ALL[rng.below(PlantShape::ALL.len() as u64) as usize],
            )
        })
        .collect();
    PlantedSpec {
        filler,
        sites,
        seed: rng.next_u64(),
    }
}

/// Count functions by visibility in a set of files.
pub fn count_by_visibility(files: &[SourceFile]) -> (usize, usize) {
    let mut exported = 0;
    let mut statics = 0;
    for file in files {
        for f in &file.functions {
            match f.visibility {
                Visibility::Exported => exported += 1,
                Visibility::Static => statics += 1,
            }
        }
    }
    (exported, statics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimProgram;

    #[test]
    fn generation_is_deterministic() {
        let spec = FillerSpec::default();
        let a = filler_files(&spec);
        let b = filler_files(&spec);
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.functions.len(), fb.functions.len());
            for (ga, gb) in fa.functions.iter().zip(&fb.functions) {
                assert_eq!(ga.name, gb.name);
                assert_eq!(ga.sloc, gb.sloc);
            }
        }
    }

    #[test]
    fn seed_changes_structure() {
        let a = filler_files(&FillerSpec::default());
        let b = filler_files(&FillerSpec {
            seed: 999,
            ..FillerSpec::default()
        });
        let funcs_a: usize = a.iter().map(|f| f.functions.len()).sum();
        let funcs_b: usize = b.iter().map(|f| f.functions.len()).sum();
        // Same scale, different detail.
        assert!(funcs_a.abs_diff(funcs_b) < 100);
        let sloc_a: u32 = a.iter().map(super::super::model::SourceFile::sloc).sum();
        let sloc_b: u32 = b.iter().map(super::super::model::SourceFile::sloc).sum();
        assert_ne!(sloc_a, sloc_b);
    }

    #[test]
    fn filler_forms_a_valid_program() {
        let files = filler_files(&FillerSpec {
            files: 20,
            ..FillerSpec::default()
        });
        let p = SimProgram::new("filler", files);
        assert!(p.total_functions() > 400);
        let (exported, statics) = count_by_visibility(&p.files);
        assert!(exported > statics, "most filler is exported");
        assert!(statics > 0, "some filler is static");
    }

    #[test]
    fn filler_scale_tracks_spec() {
        let spec = FillerSpec {
            files: 50,
            funcs_per_file: 31,
            ..FillerSpec::default()
        };
        let files = filler_files(&spec);
        assert_eq!(files.len(), 50);
        let total: usize = files.iter().map(|f| f.functions.len()).sum();
        let mean = total as f64 / 50.0;
        assert!((28.0..34.0).contains(&mean), "mean funcs/file = {mean}");
    }

    #[test]
    fn splitmix_basics() {
        let mut r = SplitMix::new(1);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        assert_eq!(SplitMix::new(1).next_u64(), a);
        for _ in 0..100 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn planting_is_deterministic_and_valid() {
        for seed in 0..25u64 {
            let spec = random_planted(seed);
            let a = plant(&spec);
            let b = plant(&spec);
            // SimProgram::new validated symbols/calls, or we'd have
            // panicked. Ground truth must be reproducible.
            assert_eq!(a.sites, b.sites, "seed {seed}");
            assert_eq!(a.program.fingerprint(), b.program.fingerprint());
            assert_eq!(a.driver.entries, b.driver.entries);
            assert!(!a.sites.is_empty() && a.sites.len() <= 3);
            for site in &a.sites {
                // The blamed symbol must be exported (Symbol Bisect
                // only interposes exported symbols) and live in the
                // recorded file or, for wrappers, alongside it.
                let (fid, fi) = a.program.lookup(&site.blamed_symbol).unwrap();
                assert_eq!(fid, site.file_id, "seed {seed}");
                let f = &a.program.files[fid].functions[fi];
                assert_eq!(f.visibility, Visibility::Exported, "seed {seed}");
                assert!(a.driver.entries.contains(&site.entry));
            }
        }
    }

    #[test]
    fn shapes_wire_the_documented_bindings() {
        let spec = PlantedSpec {
            filler: FillerSpec {
                files: 2,
                funcs_per_file: 4,
                prefix: "shape".into(),
                ..FillerSpec::default()
            },
            sites: vec![
                (PlantKernel::Dot, PlantShape::ExportedEntry),
                (PlantKernel::Poly, PlantShape::ExportedInlinable),
                (PlantKernel::MatVec, PlantShape::StaticBehindWrapper),
                (PlantKernel::Div, PlantShape::CrossFileChain),
            ],
            seed: 7,
        };
        let planted = plant(&spec);
        let p = &planted.program;
        let by_shape = |s: PlantShape| {
            planted
                .sites
                .iter()
                .find(|site| site.shape == s)
                .unwrap()
                .clone()
        };
        // ExportedEntry: driver calls the kernel symbol itself.
        let s = by_shape(PlantShape::ExportedEntry);
        assert_eq!(s.entry, s.blamed_symbol);
        // ExportedInlinable: kernel is exported + inlinable, blamed.
        let s = by_shape(PlantShape::ExportedInlinable);
        let (_, fi) = p.lookup(&s.blamed_symbol).unwrap();
        assert!(p.files[s.file_id].functions[fi].inlinable);
        assert_ne!(s.entry, s.blamed_symbol);
        // StaticBehindWrapper: the kernel is static; the wrapper takes
        // the blame.
        let s = by_shape(PlantShape::StaticBehindWrapper);
        let static_kern = p.files[s.file_id]
            .functions
            .iter()
            .find(|f| f.visibility == Visibility::Static)
            .unwrap();
        assert!(static_kern.name.ends_with("_kern"));
        assert!(s.blamed_symbol.ends_with("_wrap"));
        // CrossFileChain: the entry lives in a different file than the
        // blamed kernel.
        let s = by_shape(PlantShape::CrossFileChain);
        let (entry_file, _) = p.lookup(&s.entry).unwrap();
        assert_ne!(entry_file, s.file_id);
    }

    #[test]
    fn seeds_produce_distinct_fingerprints() {
        // Fingerprints key build caches and checkpoint journals; two
        // seeds must never collide structurally.
        let mut prints = std::collections::BTreeSet::new();
        for seed in 0..50u64 {
            assert!(prints.insert(plant(&random_planted(seed)).program.fingerprint()));
        }
    }

    #[test]
    fn below_uses_lemire_widening_multiply() {
        // Pins the sampling map: `below(b)` must equal
        // `(next_u64() as u128 * b) >> 64`, the scaled high half of the
        // raw draw — not `next_u64() % b`, which over-weights small
        // residues for bounds that do not divide 2^64. Fails on the
        // pre-fix modulo stream.
        let mut raw = SplitMix::new(42);
        let mut sampled = SplitMix::new(42);
        for bound in [1u64, 3, 7, 10, 21, 1000, u64::MAX / 2 + 1] {
            let x = raw.next_u64();
            let expect = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            assert_eq!(sampled.below(bound), expect, "bound {bound}");
        }
        // The high-half map preserves order: the top of the raw range
        // lands at bound-1, the bottom at 0.
        let mut r = SplitMix::new(7);
        for _ in 0..200 {
            assert!(r.below(13) < 13);
        }
    }
}
