//! Synthetic-codebase generation: deterministic filler files and
//! functions that pad an application out to realistic statistics
//! (Table 3: MFEM has 97 source files, ~31 functions per file, 2,998
//! exported functions, 103,205 SLOC).
//!
//! Filler functions use [`Kernel::Benign`] flavors (exact arithmetic),
//! so they enlarge the Bisect *search space* without perturbing results
//! — exactly the role the thousands of uninvolved MFEM functions play
//! in the paper's searches.

use crate::kernel::Kernel;
use crate::model::{Function, SourceFile, Visibility};

/// Specification for filler generation.
#[derive(Debug, Clone)]
pub struct FillerSpec {
    /// Number of filler files to generate.
    pub files: usize,
    /// Mean functions per file.
    pub funcs_per_file: usize,
    /// Fraction (per mille) of filler functions with internal linkage.
    pub static_per_mille: u32,
    /// Mean modeled SLOC per function.
    pub sloc_per_func: u32,
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Name prefix for generated files/symbols.
    pub prefix: String,
}

impl Default for FillerSpec {
    fn default() -> Self {
        FillerSpec {
            files: 10,
            funcs_per_file: 30,
            static_per_mille: 150,
            sloc_per_func: 30,
            seed: 0x5EED,
            prefix: "gen".into(),
        }
    }
}

/// A tiny deterministic PRNG (splitmix64) — filler structure must be
/// identical on every run and platform.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generate filler source files per the spec.
pub fn filler_files(spec: &FillerSpec) -> Vec<SourceFile> {
    let mut rng = SplitMix::new(spec.seed);
    let mut files = Vec::with_capacity(spec.files);
    for fi in 0..spec.files {
        let jitter = rng.below(7) as i64 - 3;
        let nfuncs = (spec.funcs_per_file as i64 + jitter).max(1) as usize;
        let mut functions = Vec::with_capacity(nfuncs);
        for gi in 0..nfuncs {
            let name = format!("{}_{fi:03}_{gi:02}", spec.prefix);
            let flavor = rng.below(7) as u8;
            let is_static = rng.below(1000) < spec.static_per_mille as u64;
            let sloc_jitter = rng.below(21) as i64 - 10;
            let sloc = (spec.sloc_per_func as i64 + sloc_jitter).max(4) as u32;
            let mut f = if is_static {
                Function::local(&name, Kernel::Benign { flavor })
            } else {
                Function::exported(&name, Kernel::Benign { flavor })
            };
            // Short intra-file call chains for realistic call graphs:
            // every third function calls its predecessor (statics may
            // only be called within the file, which this satisfies).
            if gi > 0 && gi % 3 == 0 {
                let prev = format!("{}_{fi:03}_{:02}", spec.prefix, gi - 1);
                f = f.with_calls(vec![prev]);
            }
            // Statics must be reachable from an exported function in the
            // same file to matter; chains above handle that when they
            // occur — otherwise they model dead code, which real
            // codebases have too.
            f = f.with_sloc(sloc);
            if rng.below(5) == 0 {
                f = f.inlinable();
            }
            functions.push(f);
        }
        files.push(SourceFile::new(
            format!("{}/{}_{fi:03}.cpp", spec.prefix, spec.prefix),
            functions,
        ));
    }
    files
}

/// Count functions by visibility in a set of files.
pub fn count_by_visibility(files: &[SourceFile]) -> (usize, usize) {
    let mut exported = 0;
    let mut statics = 0;
    for file in files {
        for f in &file.functions {
            match f.visibility {
                Visibility::Exported => exported += 1,
                Visibility::Static => statics += 1,
            }
        }
    }
    (exported, statics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimProgram;

    #[test]
    fn generation_is_deterministic() {
        let spec = FillerSpec::default();
        let a = filler_files(&spec);
        let b = filler_files(&spec);
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.functions.len(), fb.functions.len());
            for (ga, gb) in fa.functions.iter().zip(&fb.functions) {
                assert_eq!(ga.name, gb.name);
                assert_eq!(ga.sloc, gb.sloc);
            }
        }
    }

    #[test]
    fn seed_changes_structure() {
        let a = filler_files(&FillerSpec::default());
        let b = filler_files(&FillerSpec {
            seed: 999,
            ..FillerSpec::default()
        });
        let funcs_a: usize = a.iter().map(|f| f.functions.len()).sum();
        let funcs_b: usize = b.iter().map(|f| f.functions.len()).sum();
        // Same scale, different detail.
        assert!(funcs_a.abs_diff(funcs_b) < 100);
        let sloc_a: u32 = a.iter().map(|f| f.sloc()).sum();
        let sloc_b: u32 = b.iter().map(|f| f.sloc()).sum();
        assert_ne!(sloc_a, sloc_b);
    }

    #[test]
    fn filler_forms_a_valid_program() {
        let files = filler_files(&FillerSpec {
            files: 20,
            ..FillerSpec::default()
        });
        let p = SimProgram::new("filler", files);
        assert!(p.total_functions() > 400);
        let (exported, statics) = count_by_visibility(&p.files);
        assert!(exported > statics, "most filler is exported");
        assert!(statics > 0, "some filler is static");
    }

    #[test]
    fn filler_scale_tracks_spec() {
        let spec = FillerSpec {
            files: 50,
            funcs_per_file: 31,
            ..FillerSpec::default()
        };
        let files = filler_files(&spec);
        assert_eq!(files.len(), 50);
        let total: usize = files.iter().map(|f| f.functions.len()).sum();
        let mean = total as f64 / 50.0;
        assert!((28.0..34.0).contains(&mean), "mean funcs/file = {mean}");
    }

    #[test]
    fn splitmix_basics() {
        let mut r = SplitMix::new(1);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        assert_eq!(SplitMix::new(1).next_u64(), a);
        for _ in 0..100 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }
}
