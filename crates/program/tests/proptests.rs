//! Property-based tests for the program substrate: benign programs are
//! invariant under every compilation, file mixing is exact, inlining
//! binds as documented, and the codebase generator is stable.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flit_program::build::{file_mixed_executable, Build};
use flit_program::engine::Engine;
use flit_program::generate::{filler_files, FillerSpec};
use flit_program::kernel::Kernel;
use flit_program::model::{Driver, Function, SimProgram, SourceFile};
use flit_toolchain::compilation::mfem_matrix;
use flit_toolchain::compiler::CompilerKind;

fn benign_program(flavors: &[u8]) -> SimProgram {
    let functions: Vec<Function> = flavors
        .iter()
        .enumerate()
        .map(|(i, &f)| Function::exported(format!("b{i}"), Kernel::Benign { flavor: f }))
        .collect();
    SimProgram::new("benign", vec![SourceFile::new("b.cpp", functions)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A program built only from exact (benign) kernels produces
    /// bitwise-identical output under EVERY compilation in the study
    /// matrix — the foundation of the filler-codebase design.
    #[test]
    fn benign_programs_are_invariant(
        flavors in prop::collection::vec(0u8..8, 1..8),
        idx in 0usize..244,
        input in 0.0f64..1.0,
    ) {
        let program = benign_program(&flavors);
        let entries: Vec<String> = (0..flavors.len()).map(|i| format!("b{i}")).collect();
        let driver = Driver::new("benign", entries, 2, 32);
        let baseline = Build::new(&program, flit_toolchain::compilation::Compilation::baseline());
        let other = Build::new(&program, mfem_matrix()[idx].clone());
        let out_a = Engine::new(&program, &baseline.executable().unwrap())
            .run(&driver, &[input])
            .unwrap();
        let out_b = Engine::new(&program, &other.executable().unwrap())
            .run(&driver, &[input])
            .unwrap();
        prop_assert_eq!(out_a.output, out_b.output);
    }

    /// File mixing is exact: for any subset S of files, the mixed
    /// executable's objects carry the variable compilation exactly on S.
    #[test]
    fn file_mixing_selects_exactly(bits in prop::collection::vec(any::<bool>(), 5)) {
        let files: Vec<SourceFile> = (0..5)
            .map(|i| {
                SourceFile::new(
                    format!("f{i}.cpp"),
                    vec![Function::exported(format!("fn{i}"), Kernel::Benign { flavor: i as u8 })],
                )
            })
            .collect();
        let program = SimProgram::new("mix", files);
        let base = Build::new(&program, flit_toolchain::compilation::Compilation::baseline());
        let var = Build::tagged(&program, flit_toolchain::compilation::Compilation::perf_reference(), 1);
        let picked: BTreeSet<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        let exe = file_mixed_executable(&base, &var, &picked, CompilerKind::Gcc).unwrap();
        for (i, obj) in exe.objects.iter().enumerate() {
            prop_assert_eq!(obj.build_tag == 1, picked.contains(&i), "file {}", i);
        }
    }

    /// The filler generator is a pure function of its spec, and its
    /// output always forms a valid program whose function count tracks
    /// the spec within the jitter bound.
    #[test]
    fn filler_is_pure_and_in_spec(files in 1usize..30, fpf in 4usize..40, seed in any::<u64>()) {
        let spec = FillerSpec {
            files,
            funcs_per_file: fpf,
            static_per_mille: 150,
            sloc_per_func: 25,
            seed,
            prefix: "p".into(),
        };
        let a = filler_files(&spec);
        let b = filler_files(&spec);
        prop_assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            prop_assert_eq!(&fa.name, &fb.name);
            prop_assert_eq!(fa.functions.len(), fb.functions.len());
        }
        let program = SimProgram::new("filler", a);
        let total = program.total_functions();
        // Per-file jitter is ±3 around the mean.
        prop_assert!(total >= files * fpf.saturating_sub(3).max(1));
        prop_assert!(total <= files * (fpf + 3));
    }

    /// Driver state initialization is bounded and depends only on the
    /// input and the decomposition.
    #[test]
    fn init_state_is_bounded(input in prop::collection::vec(0.0f64..1.0, 0..5), ranks in 1usize..32) {
        let d = Driver::new("t", vec![], 1, 64).with_decomposition(ranks);
        let s = d.init_state(&input);
        prop_assert_eq!(s.len(), 64 + (ranks - 1) * 2);
        for &x in &s {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        prop_assert_eq!(d.init_state(&input), s);
    }

    /// Inlining binds intra-TU calls to the caller's object unless the
    /// object is PIC: observable through the env an inlinable callee
    /// sees when its own interposed definition differs.
    #[test]
    fn inlining_respects_pic(pic in any::<bool>()) {
        use flit_program::build::symbol_mixed_executable;
        // callee is inlinable and env-sensitive; caller calls it.
        let program = SimProgram::new(
            "inline",
            vec![SourceFile::new(
                "tu.cpp",
                vec![
                    Function::exported("caller", Kernel::Benign { flavor: 6 })
                        .with_calls(vec!["callee".into()]),
                    Function::exported("callee", Kernel::DotMix { stride: 3 }).inlinable(),
                ],
            )],
        );
        let base = Build::new(&program, flit_toolchain::compilation::Compilation::baseline());
        let var = Build::tagged(
            &program,
            flit_toolchain::compilation::Compilation::new(
                CompilerKind::Gcc,
                flit_toolchain::compiler::OptLevel::O3,
                vec![flit_toolchain::flags::Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        let driver = Driver::new("t", vec!["caller".into()], 1, 32);
        let base_out = Engine::new(&program, &base.executable().unwrap())
            .run(&driver, &[0.5])
            .unwrap();
        // Interpose the callee from the variable build.
        let picked: BTreeSet<String> = ["callee".to_string()].into();
        let exe = symbol_mixed_executable(&base, &var, 0, &picked, CompilerKind::Gcc).unwrap();
        let out = Engine::new(&program, &exe).run(&driver, &[0.5]).unwrap();
        // Symbol-level interposition always compiles the TU with -fPIC,
        // so the interposed (variable) definition is reached and the
        // output differs from baseline regardless of `pic` — while a
        // non-pic *whole-file* caller would inline its own copy. Check
        // the second case explicitly:
        prop_assert_ne!(&out.output, &base_out.output);
        let _ = pic;
    }
}
