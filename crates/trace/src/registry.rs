//! Named monotonic counters behind a sharded registry.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Lock shards for the name → counter map. Registration takes one
/// shard lock briefly; increments never touch a lock at all.
const SHARDS: usize = 8;

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; cheap and stable.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SHARDS as u64) as usize
}

/// A handle to one monotonic counter. Clones share the same cell, so a
/// subsystem can resolve its counters once and increment lock-free on
/// the hot path.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere: increments are recorded but
    /// only visible through this handle. Used by disabled trace sinks
    /// so call sites never need to branch.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add `delta` (relaxed; totals are read only at snapshot time).
    pub fn incr(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sharded name → [`Counter`] registry.
///
/// `counter(name)` is get-or-create: every caller asking for a name
/// gets a handle to the *same* cell, which is what lets the build
/// cache, the runner, and the bisect hierarchy all contribute to one
/// coherent snapshot.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    shards: [Mutex<HashMap<String, Counter>>; SHARDS],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolve (or create) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut shard = self.shards[shard_of(name)].lock();
        shard
            .entry(name.to_string())
            .or_insert_with(Counter::detached)
            .clone()
    }

    /// Deterministic snapshot of every registered counter, sorted by
    /// name. Zero-valued counters are included: a counter that was
    /// resolved but never incremented is still part of the vocabulary.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (name, counter) in shard.lock().iter() {
                out.insert(name.clone(), counter.get());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.incr(2);
        b.incr(3);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.counter("x").get(), 5);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("zz").incr(1);
        reg.counter("aa").incr(7);
        reg.counter("mm"); // resolved, never incremented
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["aa", "mm", "zz"]);
        assert_eq!(snap["aa"], 7);
        assert_eq!(snap["mm"], 0);
    }

    #[test]
    fn detached_counters_work_standalone() {
        let c = Counter::detached();
        c.incr(4);
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn concurrent_increments_are_lost_update_free() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("hot");
                for _ in 0..1000 {
                    c.incr(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hot").get(), 8000);
    }
}
