//! Trace events and the serialized trace.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A completed unit of work.
///
/// `duration` is in **wall units** — the toolchain's simulated seconds,
/// a deterministic function of the workload — never host time. `cost`
/// is the unit's logical size: records produced for a sweep span,
/// Test-function executions for a bisect span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Which pipeline phase this span belongs to (see
    /// [`crate::names::phase`]).
    pub phase: String,
    /// What ran: a compilation label, a `test/compilation` pair, a
    /// workflow stage.
    pub label: String,
    /// Logical cost (records, executions, ...).
    pub cost: u64,
    /// Wall-unit (simulated-second) duration.
    pub duration: f64,
}

/// One line of a JSONL trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A completed span.
    Span(Span),
    /// A counter total (emitted once per counter at snapshot time).
    Counter {
        /// Counter name (see [`crate::names::counter`]).
        name: String,
        /// Final value.
        value: u64,
    },
}

/// A complete, canonically-ordered trace: all spans (sorted by phase,
/// label, cost, duration bits), then all counters (sorted by name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, in canonical order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Build a trace from raw parts, imposing the canonical order.
    pub fn from_parts(mut spans: Vec<Span>, counters: BTreeMap<String, u64>) -> Self {
        spans.sort_by(|a, b| {
            a.phase
                .cmp(&b.phase)
                .then_with(|| a.label.cmp(&b.label))
                .then_with(|| a.cost.cmp(&b.cost))
                .then_with(|| a.duration.total_cmp(&b.duration))
        });
        let mut events: Vec<TraceEvent> = spans.into_iter().map(TraceEvent::Span).collect();
        events.extend(
            counters
                .into_iter()
                .map(|(name, value)| TraceEvent::Counter { name, value }),
        );
        Trace { events }
    }

    /// Serialize to JSONL: one compact JSON event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("trace events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL trace (blank lines are skipped).
    pub fn from_jsonl(s: &str) -> Result<Self, serde_json::Error> {
        let mut events = Vec::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            events.push(serde_json::from_str::<TraceEvent>(line)?);
        }
        Ok(Trace { events })
    }

    /// All spans, in trace order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            TraceEvent::Counter { .. } => None,
        })
    }

    /// Spans of one phase.
    pub fn spans_in(&self, phase: &str) -> Vec<&Span> {
        self.spans().filter(|s| s.phase == phase).collect()
    }

    /// Distinct phases, in trace (sorted) order.
    pub fn phases(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in self.spans() {
            if out.last().map(String::as_str) != Some(s.phase.as_str()) {
                out.push(s.phase.clone());
            }
        }
        out
    }

    /// All counters as a sorted map.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { name, value } => Some((name.clone(), *value)),
                TraceEvent::Span(_) => None,
            })
            .collect()
    }

    /// One counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Counter { name: n, value } if n == name => Some(*value),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// The `top` spans of a phase with the largest wall-unit duration
    /// (ties broken by label so the cut is deterministic).
    pub fn slowest(&self, phase: &str, top: usize) -> Vec<&Span> {
        let mut spans = self.spans_in(phase);
        spans.sort_by(|a, b| {
            b.duration
                .total_cmp(&a.duration)
                .then_with(|| a.label.cmp(&b.label))
        });
        spans.truncate(top);
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: &str, label: &str, cost: u64, duration: f64) -> Span {
        Span {
            phase: phase.into(),
            label: label.into(),
            cost,
            duration,
        }
    }

    #[test]
    fn from_parts_imposes_canonical_order() {
        let spans = vec![
            span("sweep", "b", 1, 2.0),
            span("bisect.file", "z", 3, 1.0),
            span("sweep", "a", 1, 9.0),
            span("sweep", "a", 1, 3.0),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("zz".to_string(), 1);
        counters.insert("aa".to_string(), 2);
        let t = Trace::from_parts(spans, counters);
        let labels: Vec<(&str, &str)> = t
            .spans()
            .map(|s| (s.phase.as_str(), s.label.as_str()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("bisect.file", "z"),
                ("sweep", "a"),
                ("sweep", "a"),
                ("sweep", "b")
            ]
        );
        // Duration tiebreak within equal (phase, label, cost).
        let a_spans = t.spans_in("sweep");
        assert_eq!(a_spans[0].duration, 3.0);
        // Counters come after spans, sorted by name.
        let names: Vec<String> = t.counters().keys().cloned().collect();
        assert_eq!(names, vec!["aa".to_string(), "zz".to_string()]);
    }

    #[test]
    fn jsonl_round_trips() {
        let t = Trace::from_parts(
            vec![span("sweep", "g++ -O2", 19, 1.25)],
            [("build.links".to_string(), 7u64)].into_iter().collect(),
        );
        let text = t.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.counter("build.links"), 7);
        assert_eq!(back.counter("missing"), 0);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_reports_garbage() {
        let t = Trace::from_jsonl("\n\n").unwrap();
        assert!(t.events.is_empty());
        assert!(Trace::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn queries_filter_phases_and_rank_slowest() {
        let t = Trace::from_parts(
            vec![
                span("sweep", "fast", 1, 0.5),
                span("sweep", "slow", 1, 5.0),
                span("sweep", "mid", 1, 2.0),
                span("bisect.file", "x", 10, 1.0),
            ],
            BTreeMap::new(),
        );
        assert_eq!(t.phases(), vec!["bisect.file", "sweep"]);
        assert_eq!(t.spans_in("sweep").len(), 3);
        let top: Vec<&str> = t
            .slowest("sweep", 2)
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert_eq!(top, vec!["slow", "mid"]);
    }

    #[test]
    fn nan_durations_still_order_deterministically() {
        let t1 = Trace::from_parts(
            vec![span("p", "a", 1, f64::NAN), span("p", "a", 1, 1.0)],
            BTreeMap::new(),
        );
        let t2 = Trace::from_parts(
            vec![span("p", "a", 1, 1.0), span("p", "a", 1, f64::NAN)],
            BTreeMap::new(),
        );
        // total_cmp puts NaN after finite values, in both input orders.
        let d1: Vec<bool> = t1.spans().map(|s| s.duration.is_nan()).collect();
        let d2: Vec<bool> = t2.spans().map(|s| s.duration.is_nan()).collect();
        assert_eq!(d1, d2);
        assert_eq!(d1, vec![false, true]);
    }
}
