//! # flit-trace
//!
//! Structured tracing and metrics for the FLiT pipeline.
//!
//! The paper's contribution is *diagnosis*: FLiT reports which
//! compilation, file, and function caused variability and how many
//! executions the search cost (§2.3, Tables 2/4/5). This crate gives
//! the pipeline the same discipline about its *own* execution: a
//! lock-cheap, deterministic event layer that the matrix runner, the
//! bisect hierarchy, the build-artifact cache, and the Figure-1
//! workflow all record into.
//!
//! Three pieces:
//!
//! * [`registry::Counter`] / [`registry::MetricsRegistry`] — named
//!   monotonic counters behind a sharded registry. Increments are a
//!   single relaxed atomic add; registration is a short sharded lock.
//!   The build cache's `BuildStats` counters live here, so compile,
//!   link, and hit counts have one source of truth.
//! * [`event::Span`] — a completed unit of work: *(phase, label,
//!   logical cost, wall-unit duration)*. Durations are **simulated**
//!   seconds (the toolchain's deterministic performance model), never
//!   host wall-clock, so traces are bit-identical across runs and
//!   machines.
//! * [`sink::TraceSink`] — a cheap cloneable handle (the [`event`] and
//!   counter recording side), defaulting to disabled so every existing
//!   call site works unchanged. [`sink::TraceSink::snapshot`] produces
//!   a canonically-ordered [`event::Trace`] that serializes to JSONL
//!   via the serde shims and renders through `flit-report`.
//!
//! Determinism contract: for a fixed workload and configuration, the
//! JSONL bytes of two snapshots are identical regardless of thread
//! schedule. Spans may be *recorded* in any order (workers race on the
//! shards), but the snapshot sorts them by `(phase, label, cost,
//! duration bits)` and the counter set by name, so the serialized trace
//! depends only on the multiset of events — which the work-queue runner
//! and the bisect hierarchy keep schedule-independent.

pub mod event;
pub mod names;
pub mod registry;
pub mod sink;

pub use event::{Span, Trace, TraceEvent};
pub use registry::{Counter, MetricsRegistry};
pub use sink::TraceSink;
