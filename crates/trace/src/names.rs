//! Canonical phase and counter names.
//!
//! Every subsystem records under a fixed name so that traces from
//! different runs (and the `flit trace` renderer) agree on vocabulary.

/// Span phases.
pub mod phase {
    /// Matrix-sweep spans: one per compilation, plus the baseline pass.
    pub const SWEEP: &str = "sweep";
    /// File-level bisection spans (one per hierarchical search).
    pub const BISECT_FILE: &str = "bisect.file";
    /// Symbol-level bisection spans (one per searched file).
    pub const BISECT_SYMBOL: &str = "bisect.symbol";
    /// Workflow-driver spans (Figure 1's numbered stages).
    pub const WORKFLOW: &str = "workflow";
    /// Executor scheduling waves: one span per frontier wave dispatched
    /// by a parallel bisect driver (cost = wave width in queries).
    pub const EXEC_WAVE: &str = "exec.wave";
    /// Canonical per-query spans of a planner-driven search, emitted in
    /// serial consumption order (cost = item-set size, duration =
    /// simulated seconds) — byte-identical at any `--jobs` value.
    pub const EXEC_QUERY: &str = "exec.query";
    /// Static lint-analysis spans: one per analyzed (baseline,
    /// variable) compilation pair (cost = functions analyzed).
    pub const LINT: &str = "lint";
    /// Fuzz-campaign spans: one per checked seed (cost = program
    /// executions the seed's serial search spent).
    pub const FUZZ: &str = "fuzz";
    /// File-level performance-bisect spans (one per perf search).
    pub const PERF_FILE: &str = "perf.file";
    /// Symbol-level performance-bisect spans (one per searched file).
    pub const PERF_SYMBOL: &str = "perf.symbol";
    /// `flit-serve` daemon spans: one per completed workflow submission
    /// (cost = 1, duration = the job's simulated seconds).
    pub const SERVE: &str = "serve";
}

/// Counter names.
pub mod counter {
    /// Object files actually produced by the simulated compiler.
    pub const BUILD_OBJECTS_COMPILED: &str = "build.objects_compiled";
    /// Object requests served from the cache.
    pub const BUILD_OBJECT_CACHE_HITS: &str = "build.object_cache_hits";
    /// Link steps actually performed.
    pub const BUILD_LINKS: &str = "build.links";
    /// Executable requests served from the link memo.
    pub const BUILD_LINK_MEMO_HITS: &str = "build.link_memo_hits";

    /// Compilations claimed from the runner's work queue.
    pub const RUNNER_QUEUE_CLAIMED: &str = "runner.queue.claimed";
    /// Terminal queue pulls that found the queue empty (one per worker).
    pub const RUNNER_QUEUE_DRAINED: &str = "runner.queue.drained";

    /// Reference (trusted-baseline) executions of hierarchical searches.
    pub const BISECT_REFERENCE_RUNS: &str = "bisect.executions.reference";
    /// File-level Test-function executions (Table 2's File Bisect runs).
    pub const BISECT_FILE_RUNS: &str = "bisect.executions.file";
    /// `-fPIC` probe executions.
    pub const BISECT_PROBE_RUNS: &str = "bisect.executions.probe";
    /// Symbol-level Test-function executions (Table 2's Symbol Bisect
    /// runs).
    pub const BISECT_SYMBOL_RUNS: &str = "bisect.executions.symbol";

    /// Jobs submitted to a `flit-exec` executor.
    pub const EXEC_JOBS_SUBMITTED: &str = "exec.jobs.submitted";
    /// Jobs that ran to completion on an executor worker.
    pub const EXEC_JOBS_COMPLETED: &str = "exec.jobs.completed";
    /// Jobs whose closure panicked (captured, not process-aborting).
    pub const EXEC_JOBS_PANICKED: &str = "exec.jobs.panicked";
    /// Frontier waves dispatched by the parallel bisect drivers.
    pub const EXEC_WAVES: &str = "exec.waves";
    /// Oracle queries actually evaluated (single-flight memo misses).
    pub const EXEC_QUERIES_EXECUTED: &str = "exec.queries.executed";
    /// Oracle queries served from the shared memo.
    pub const EXEC_QUERIES_MEMOIZED: &str = "exec.queries.memoized";
    /// Ledger queries answered by a *different* search's earlier
    /// execution (workflow-wide cross-search deduplication).
    pub const EXEC_QUERIES_SHARED_HITS: &str = "exec.queries.shared_hits";

    /// Query envelopes dispatched to a remote execution backend.
    pub const EXEC_BACKEND_DISPATCHED: &str = "exec.backend.dispatched";
    /// Worker subprocesses spawned by the process backend.
    pub const EXEC_BACKEND_WORKER_SPAWNS: &str = "exec.backend.worker_spawns";
    /// Worker subprocesses that died mid-exchange and were retired.
    pub const EXEC_BACKEND_WORKER_DEATHS: &str = "exec.backend.worker_deaths";
    /// In-flight queries requeued after a worker death.
    pub const EXEC_BACKEND_REQUEUED: &str = "exec.backend.requeued";

    /// Checkpoint-journal records replayed into the ledger on resume.
    pub const JOURNAL_REPLAYED: &str = "journal.records.replayed";
    /// Checkpoint-journal records appended during this run.
    pub const JOURNAL_APPENDED: &str = "journal.records.appended";

    /// Functions statically analyzed by `flit-lint`.
    pub const LINT_FUNCTIONS_ANALYZED: &str = "lint.functions_analyzed";
    /// Symbols the lint pass predicts variable for a compilation pair.
    pub const LINT_PREDICTED_SYMBOLS: &str = "lint.predicted.symbols";
    /// Files the lint pass predicts variable for a compilation pair.
    pub const LINT_PREDICTED_FILES: &str = "lint.predicted.files";
    /// Hazard lints raised (exact FP compares, UB-dependent kernels).
    pub const LINT_HAZARDS: &str = "lint.hazards";
    /// Speculative planner queries skipped because every item was
    /// lint-predicted invariant (prioritization, not pruning — found
    /// sets are unaffected).
    pub const LINT_SPECULATION_SKIPPED: &str = "lint.speculation.skipped";
    /// Files excluded from the search space by `--lint-prune`.
    pub const LINT_PRUNED_FILES: &str = "lint.pruned.files";
    /// Symbols excluded from the search space by `--lint-prune`.
    pub const LINT_PRUNED_SYMBOLS: &str = "lint.pruned.symbols";
    /// Algorithm-1-style dynamic verification runs guarding pruning.
    pub const LINT_PRUNE_VERIFICATIONS: &str = "lint.prune.verifications";

    /// Items certified `Invariant` by the abstract interpreter.
    pub const ABSINT_CERTIFIED_INVARIANT: &str = "absint.certified.invariant";
    /// Items certified `Bounded(ε)` by the abstract interpreter.
    pub const ABSINT_CERTIFIED_BOUNDED: &str = "absint.certified.bounded";
    /// Items the abstract interpreter could not certify (`Unknown`).
    pub const ABSINT_CERTIFIED_UNKNOWN: &str = "absint.certified.unknown";
    /// Files excluded from the search space by `--prune certified`.
    pub const ABSINT_PRUNED_FILES: &str = "absint.pruned.files";
    /// Symbols excluded from the search space by `--prune certified`.
    pub const ABSINT_PRUNED_SYMBOLS: &str = "absint.pruned.symbols";
    /// Residual audit queries run by a certified prune (one per pruned
    /// level, vs the lint prune's two).
    pub const ABSINT_PRUNE_AUDITS: &str = "absint.prune.audits";

    /// Hierarchical searches launched by the workflow driver.
    pub const WORKFLOW_BISECTIONS: &str = "workflow.bisections";
    /// Variable (test, compilation) rows found by the workflow sweep.
    pub const WORKFLOW_VARIABLE_ROWS: &str = "workflow.variable_rows";

    /// Trusted baseline timing runs of performance-bisect searches.
    pub const PERF_REFERENCE_RUNS: &str = "perf.executions.reference";
    /// File-level perf Test executions (timed file-mixed binaries).
    pub const PERF_FILE_RUNS: &str = "perf.executions.file";
    /// Symbol-level perf Test executions (timed symbol-mixed binaries).
    pub const PERF_SYMBOL_RUNS: &str = "perf.executions.symbol";
    /// Timing samples drawn from the seeded noise model.
    pub const PERF_SAMPLES_DRAWN: &str = "perf.samples.drawn";
    /// Welch verdicts concluding the candidate is faster.
    pub const PERF_VERDICTS_FASTER: &str = "perf.verdicts.faster";
    /// Welch verdicts concluding the candidate is slower.
    pub const PERF_VERDICTS_SLOWER: &str = "perf.verdicts.slower";
    /// Welch verdicts unable to separate the pair at the chosen α.
    pub const PERF_VERDICTS_INCONCLUSIVE: &str = "perf.verdicts.inconclusive";

    /// Seeds the fuzz campaign checked.
    pub const FUZZ_SEEDS_RUN: &str = "fuzz.seeds.run";
    /// Seeds on which every oracle layer agreed with the planted truth.
    pub const FUZZ_SEEDS_PASSED: &str = "fuzz.seeds.passed";
    /// Seeds whose search crashed on a planted ABI hazard (explained —
    /// the Table-2 outcome, counted separately from passes).
    pub const FUZZ_CRASHES_EXPLAINED: &str = "fuzz.crashes.explained";
    /// Oracle divergences (ground truth violated) found by the campaign.
    pub const FUZZ_DIVERGENCES: &str = "fuzz.divergences";
    /// Seeds that additionally ran the kill-and-resume oracle layer.
    pub const FUZZ_RESUME_CHECKS: &str = "fuzz.resume.checks";
    /// Seeds that additionally ran the certified-bound soundness layer
    /// (observed divergence vs `flit-absint` certificates).
    pub const FUZZ_BOUND_CHECKS: &str = "fuzz.bound.checks";
    /// Accepted delta-debugging shrink steps across all divergences.
    pub const FUZZ_SHRINK_STEPS: &str = "fuzz.shrink.steps";

    /// Workflow submissions accepted by the `flit-serve` daemon.
    pub const SERVE_SUBMISSIONS: &str = "serve.submissions";
    /// Submissions that ran to completion (success or structured
    /// workflow error — everything that produced a response).
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// Submissions refused by admission control (queue at capacity or
    /// daemon draining).
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Distinct tenant ids seen since the daemon started.
    pub const SERVE_TENANTS: &str = "serve.tenants";
    /// Status endpoint requests served.
    pub const SERVE_STATUS_REQUESTS: &str = "serve.status.requests";
}
