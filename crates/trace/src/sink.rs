//! The recording handle threaded through the pipeline.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{Span, Trace};
use crate::registry::{Counter, MetricsRegistry};

/// Span-buffer shards: workers append to the shard owned by the span's
/// label hash, so concurrent recording rarely contends.
const SPAN_SHARDS: usize = 8;

fn shard_of(label: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SPAN_SHARDS as u64) as usize
}

#[derive(Debug)]
struct SinkInner {
    spans: [Mutex<Vec<Span>>; SPAN_SHARDS],
    registry: Arc<MetricsRegistry>,
}

/// A cheap cloneable trace handle.
///
/// The default ([`TraceSink::disabled`]) records nothing and resolves
/// [`Counter::detached`] counters, so instrumented code never branches
/// on "is tracing on?". Clones share the same buffers and registry;
/// the handle is `Send + Sync` and safe to use from worker threads.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<SinkInner>>);

impl TraceSink {
    /// The no-op sink (the default).
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// An enabled sink with its own fresh [`MetricsRegistry`].
    pub fn enabled() -> Self {
        TraceSink::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// An enabled sink recording counters into an existing registry
    /// (e.g. one already shared with a `BuildCtx`).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        TraceSink(Some(Arc::new(SinkInner {
            spans: Default::default(),
            registry,
        })))
    }

    /// Is this sink recording?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The sink's registry (`None` when disabled). Hand this to
    /// subsystems with their own counters — the build cache — so their
    /// totals land in the same snapshot.
    pub fn registry(&self) -> Option<Arc<MetricsRegistry>> {
        self.0.as_ref().map(|i| i.registry.clone())
    }

    /// Resolve a named counter ([`Counter::detached`] when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            Some(inner) => inner.registry.counter(name),
            None => Counter::detached(),
        }
    }

    /// Record a completed span. No-op when disabled.
    pub fn span(&self, phase: &str, label: impl Into<String>, cost: u64, duration: f64) {
        if let Some(inner) = &self.0 {
            let label = label.into();
            inner.spans[shard_of(&label)].lock().push(Span {
                phase: phase.to_string(),
                label,
                cost,
                duration,
            });
        }
    }

    /// Snapshot the recorded events as a canonically-ordered
    /// [`Trace`]. The sink keeps recording afterwards; snapshots are
    /// cumulative. A disabled sink snapshots to an empty trace.
    pub fn snapshot(&self) -> Trace {
        match &self.0 {
            None => Trace::default(),
            Some(inner) => {
                let mut spans = Vec::new();
                for shard in &inner.spans {
                    spans.extend(shard.lock().iter().cloned());
                }
                Trace::from_parts(spans, inner.registry.snapshot())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{counter, phase};

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.registry().is_none());
        sink.span(phase::SWEEP, "g++ -O2", 1, 1.0);
        sink.counter(counter::BUILD_LINKS).incr(5);
        assert!(sink.snapshot().events.is_empty());
    }

    #[test]
    fn enabled_sink_records_spans_and_counters() {
        let sink = TraceSink::enabled();
        sink.span(phase::SWEEP, "g++ -O2", 2, 0.5);
        sink.span(phase::SWEEP, "g++ -O0", 2, 1.5);
        sink.counter(counter::RUNNER_QUEUE_CLAIMED).incr(2);
        let t = sink.snapshot();
        assert_eq!(t.spans_in(phase::SWEEP).len(), 2);
        assert_eq!(t.counter(counter::RUNNER_QUEUE_CLAIMED), 2);
        // Sorted by label within the phase.
        assert_eq!(t.spans_in(phase::SWEEP)[0].label, "g++ -O0");
    }

    #[test]
    fn clones_share_state_and_snapshots_are_cumulative() {
        let sink = TraceSink::enabled();
        let other = sink.clone();
        other.span(phase::WORKFLOW, "sweep", 1, 0.0);
        assert_eq!(sink.snapshot().events.len(), 1);
        sink.span(phase::WORKFLOW, "bisect", 1, 0.0);
        assert_eq!(other.snapshot().events.len(), 2);
    }

    #[test]
    fn snapshot_is_schedule_independent() {
        // Record the same multiset of spans from racing threads twice;
        // the serialized traces must be byte-identical.
        let run = || {
            let sink = TraceSink::enabled();
            let mut handles = Vec::new();
            for worker in 0..4 {
                let sink = sink.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..50 {
                        sink.span(phase::SWEEP, format!("comp-{i}"), worker, i as f64);
                        sink.counter(counter::RUNNER_QUEUE_CLAIMED).incr(1);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            sink.snapshot().to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shared_registry_merges_external_counters() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter(counter::BUILD_OBJECTS_COMPILED).incr(9);
        let sink = TraceSink::with_registry(registry.clone());
        sink.counter(counter::BUILD_LINKS).incr(1);
        let t = sink.snapshot();
        assert_eq!(t.counter(counter::BUILD_OBJECTS_COMPILED), 9);
        assert_eq!(t.counter(counter::BUILD_LINKS), 1);
    }
}
