//! # flit-inject
//!
//! The paper's §3.5 injection framework, rebuilt on the kernel IR's
//! static floating-point sites instead of LLVM IR:
//!
//! > "Our variability injection framework … introduces an additional
//! > floating-point operation in a given floating-point instruction …
//! > The first pass identifies potential valid injection locations; an
//! > injection location is defined by a file, function and
//! > floating-point instruction tuple in the program. The second pass
//! > injects in a user-specified location, using a specific ε and
//! > operation OP'."
//!
//! [`enumerate_sites`] is the first pass; [`apply_injection`] is the
//! second (it rewrites a *copy* of the program, before any compilation,
//! matching "we perform the injections at an early stage during the
//! LLVM optimization step"). [`study`] runs the full §3.5 protocol —
//! 4 `OP'`s per site, Bisect on every measurable injection, and the
//! exact / indirect / wrong / missed / not-measurable classification of
//! Table 5.

pub mod sites;
pub mod study;

pub use sites::{apply_injection, enumerate_sites, SiteRef};
pub use study::{run_study, Classification, InjectionRecord, StudyConfig, StudySummary};
