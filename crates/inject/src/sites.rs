//! Pass 1 (site enumeration) and pass 2 (injection application).

use flit_program::model::SimProgram;
use flit_program::sites::Injection;

/// A valid injection location: "a file, function and floating-point
/// instruction tuple".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SiteRef {
    /// Source file index.
    pub file_id: usize,
    /// Function symbol name.
    pub symbol: String,
    /// Static FP-instruction index within the function.
    pub site: usize,
}

/// Enumerate every injectable floating-point instruction site in the
/// program (functions whose kernels expose static sites).
pub fn enumerate_sites(program: &SimProgram) -> Vec<SiteRef> {
    let mut out = Vec::new();
    for (file_id, file) in program.files.iter().enumerate() {
        for func in &file.functions {
            let n = func.kernel.fp_sites();
            for site in 0..n {
                out.push(SiteRef {
                    file_id,
                    symbol: func.name.clone(),
                    site,
                });
            }
        }
    }
    out
}

/// Apply one injection: returns a rewritten copy of the program in
/// which the target function carries the perturbation. The original is
/// untouched (the study compares clean vs injected *builds*).
///
/// # Panics
/// If the symbol does not exist or the site index is out of range.
pub fn apply_injection(program: &SimProgram, site: &SiteRef, inj: Injection) -> SimProgram {
    let mut p = program.clone();
    let func = p
        .function_mut(&site.symbol)
        .unwrap_or_else(|| panic!("unknown injection target `{}`", site.symbol));
    assert!(
        inj.site < func.kernel.fp_sites(),
        "site {} out of range for `{}` ({} sites)",
        inj.site,
        site.symbol,
        func.kernel.fp_sites()
    );
    func.injection = Some(inj);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_fpsim::env::FpEnv;
    use flit_program::kernel::{Kernel, KernelImpl};
    use flit_program::model::{Function, SourceFile};
    use flit_program::sites::{InjectOp, SiteCtx};
    use flit_toolchain::perf::KernelClass;
    use std::sync::Arc;

    /// A minimal injectable kernel for tests: 3 static sites.
    struct Tiny;
    impl KernelImpl for Tiny {
        fn name(&self) -> &str {
            "tiny"
        }
        fn eval(&self, state: &mut [f64], env: &FpEnv, inj: Option<Injection>) {
            let mut ctx = SiteCtx::new(env, inj);
            for x in state.iter_mut() {
                ctx.next_iteration();
                let a = ctx.mul(*x, 0.5);
                let b = ctx.add(a, 0.125);
                *x = ctx.div(b, 1.5);
            }
        }
        fn fp_sites(&self) -> usize {
            3
        }
        fn work(&self) -> f64 {
            3.0
        }
        fn class(&self) -> KernelClass {
            KernelClass::Stencil
        }
    }

    fn program() -> SimProgram {
        SimProgram::new(
            "inj-test",
            vec![SourceFile::new(
                "a.cpp",
                vec![
                    Function::exported("hydro", Kernel::Custom(Arc::new(Tiny))),
                    Function::exported("util", Kernel::Benign { flavor: 1 }),
                ],
            )],
        )
    }

    #[test]
    fn enumeration_lists_injectable_sites_only() {
        let p = program();
        let sites = enumerate_sites(&p);
        assert_eq!(sites.len(), 3);
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.symbol, "hydro");
            assert_eq!(s.site, i);
            assert_eq!(s.file_id, 0);
        }
    }

    #[test]
    fn applied_injection_changes_results() {
        let p = program();
        let sites = enumerate_sites(&p);
        let injected = apply_injection(
            &p,
            &sites[1],
            Injection {
                site: 1,
                op: InjectOp::Add,
                eps: 0.7,
            },
        );
        // Original untouched.
        assert!(p.function("hydro").unwrap().injection.is_none());
        assert!(injected.function("hydro").unwrap().injection.is_some());
        // Outputs differ.
        let env = FpEnv::strict();
        let mut clean = vec![0.3, 0.6];
        let mut dirty = clean.clone();
        p.function("hydro")
            .unwrap()
            .kernel
            .eval(&mut clean, &env, None);
        injected.function("hydro").unwrap().kernel.eval(
            &mut dirty,
            &env,
            injected.function("hydro").unwrap().injection,
        );
        assert_ne!(clean, dirty);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_site_rejected() {
        let p = program();
        let bad = SiteRef {
            file_id: 0,
            symbol: "hydro".into(),
            site: 99,
        };
        apply_injection(
            &p,
            &bad,
            Injection {
                site: 99,
                op: InjectOp::Add,
                eps: 0.5,
            },
        );
    }
}
