//! The full §3.5 study protocol: inject at every site with every `OP'`,
//! run Bisect, classify, and compute precision/recall (Table 5).

use crossbeam::thread;

use flit_bisect::hierarchy::{bisect_hierarchical, HierarchicalConfig, SearchOutcome};
use flit_fpsim::ulp::l2_diff;
use flit_program::build::Build;
use flit_program::engine::Engine;
use flit_program::generate::SplitMix;
use flit_program::model::{Driver, SimProgram};
use flit_program::sites::{InjectOp, Injection};
use flit_toolchain::compilation::Compilation;
use flit_toolchain::perf::fnv1a;

use crate::sites::{apply_injection, enumerate_sites, SiteRef};

/// Table 5's categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// Bisect reported exactly the injected function.
    Exact,
    /// The injected function is not a visible symbol; Bisect reported a
    /// visible (transitive) caller.
    Indirect,
    /// Bisect reported a function that does not explain the injection —
    /// a false positive. (The paper, and this reproduction, observe 0.)
    Wrong,
    /// Variability was measured but Bisect reported nothing — a false
    /// negative. (Observed 0.)
    Missed,
    /// The injection did not change the program output (dead code or a
    /// perturbation absorbed by rounding): benign.
    NotMeasurable,
}

/// One injection's outcome.
#[derive(Debug, Clone)]
pub struct InjectionRecord {
    /// Where we injected.
    pub site: SiteRef,
    /// Which additional operation.
    pub op: InjectOp,
    /// The ε drawn from U(0, 1).
    pub eps: f64,
    /// Outcome category.
    pub classification: Classification,
    /// Program executions Bisect used (0 for not-measurable).
    pub runs: usize,
    /// What Bisect reported (symbols).
    pub reported: Vec<String>,
}

/// Study configuration.
#[derive(Clone)]
pub struct StudyConfig {
    /// The compilation both builds use (the injection is the only
    /// difference between the two source trees).
    pub compilation: Compilation,
    /// The test driver.
    pub driver: Driver,
    /// Test input.
    pub input: Vec<f64>,
    /// RNG seed for the ε values.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

/// Aggregated Table-5 statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StudySummary {
    /// Exact finds.
    pub exact: usize,
    /// Indirect finds.
    pub indirect: usize,
    /// Wrong finds (false positives).
    pub wrong: usize,
    /// Missed finds (false negatives).
    pub missed: usize,
    /// Benign injections.
    pub not_measurable: usize,
    /// Total injections.
    pub total: usize,
    /// Mean Bisect executions over measurable injections.
    pub avg_runs: f64,
}

impl StudySummary {
    /// Precision over measurable injections: correct finds / all finds.
    pub fn precision(&self) -> f64 {
        let correct = (self.exact + self.indirect) as f64;
        let reported = correct + self.wrong as f64;
        if reported == 0.0 {
            1.0
        } else {
            correct / reported
        }
    }

    /// Recall over measurable injections.
    pub fn recall(&self) -> f64 {
        let correct = (self.exact + self.indirect) as f64;
        let measurable = correct + self.missed as f64;
        if measurable == 0.0 {
            1.0
        } else {
            correct / measurable
        }
    }
}

/// Classify one completed bisection against the injected site.
fn classify(program: &SimProgram, site: &SiteRef, reported: &[String]) -> Classification {
    if reported.is_empty() {
        return Classification::Missed;
    }
    if reported.iter().any(|s| s == &site.symbol) {
        return Classification::Exact;
    }
    let callers = program.visible_callers(&site.symbol);
    if reported.iter().any(|s| callers.contains(s)) {
        return Classification::Indirect;
    }
    Classification::Wrong
}

/// Run one injection end-to-end.
pub fn run_one(
    program: &SimProgram,
    cfg: &StudyConfig,
    site: &SiteRef,
    op: InjectOp,
    eps: f64,
) -> InjectionRecord {
    let injection = Injection {
        site: site.site,
        op,
        eps,
    };
    let injected = apply_injection(program, site, injection);

    // Is the injection measurable at all? Compare clean vs injected
    // whole-program runs under the same compilation.
    let clean_build = Build::new(program, cfg.compilation.clone());
    let injected_build = Build::tagged(&injected, cfg.compilation.clone(), 1);
    let clean_exe = clean_build.executable().expect("clean build links");
    let injected_exe = injected_build.executable().expect("injected build links");
    let clean_out = Engine::new(program, &clean_exe)
        .run(&cfg.driver, &cfg.input)
        .expect("clean run");
    let injected_out = Engine::new(&injected, &injected_exe)
        .run(&cfg.driver, &cfg.input)
        .expect("injected run");
    if l2_diff(&clean_out.output, &injected_out.output) == 0.0 {
        return InjectionRecord {
            site: site.clone(),
            op,
            eps,
            classification: Classification::NotMeasurable,
            runs: 0,
            reported: vec![],
        };
    }

    // Bisect: clean tree is the baseline build, injected tree the
    // variable build, identical compilation on both sides.
    let res = bisect_hierarchical(
        &clean_build,
        &injected_build,
        &cfg.driver,
        &cfg.input,
        &l2_diff,
        &HierarchicalConfig::all(),
    );
    let reported: Vec<String> = res.symbols.iter().map(|s| s.symbol.clone()).collect();
    let classification = match res.outcome {
        SearchOutcome::Crashed(_) => Classification::Missed,
        _ => classify(program, site, &reported),
    };
    InjectionRecord {
        site: site.clone(),
        op,
        eps,
        classification,
        runs: res.executions,
        reported,
    }
}

/// Run the full study: every site × every `OP'`.
pub fn run_study(program: &SimProgram, cfg: &StudyConfig) -> (Vec<InjectionRecord>, StudySummary) {
    let sites = enumerate_sites(program);
    let mut jobs: Vec<(SiteRef, InjectOp, f64)> = Vec::with_capacity(sites.len() * 4);
    for site in &sites {
        for op in InjectOp::ALL {
            // ε ~ U(0,1), deterministic per (seed, site, op).
            let h =
                fnv1a(format!("{}|{}|{:?}|{}", site.symbol, site.site, op, cfg.seed).as_bytes());
            let eps = SplitMix::new(h).unit().max(1e-3);
            jobs.push((site.clone(), op, eps));
        }
    }

    let nthreads = cfg.threads.max(1);
    let records: Vec<InjectionRecord> = if nthreads == 1 {
        jobs.iter()
            .map(|(s, op, eps)| run_one(program, cfg, s, *op, *eps))
            .collect()
    } else {
        let chunk = jobs.len().div_ceil(nthreads);
        thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        part.iter()
                            .map(|(s, op, eps)| run_one(program, cfg, s, *op, *eps))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .expect("study threads must not panic")
    };

    let mut summary = StudySummary {
        total: records.len(),
        ..Default::default()
    };
    let mut measurable_runs = 0usize;
    let mut measurable = 0usize;
    for r in &records {
        match r.classification {
            Classification::Exact => summary.exact += 1,
            Classification::Indirect => summary.indirect += 1,
            Classification::Wrong => summary.wrong += 1,
            Classification::Missed => summary.missed += 1,
            Classification::NotMeasurable => summary.not_measurable += 1,
        }
        if r.classification != Classification::NotMeasurable {
            measurable += 1;
            measurable_runs += r.runs;
        }
    }
    summary.avg_runs = if measurable == 0 {
        0.0
    } else {
        measurable_runs as f64 / measurable as f64
    };
    (records, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_fpsim::env::FpEnv;
    use flit_program::kernel::{Kernel, KernelImpl};
    use flit_program::model::{Function, SourceFile};
    use flit_program::sites::SiteCtx;
    use flit_toolchain::perf::KernelClass;
    use std::sync::Arc;

    struct Wave;
    impl KernelImpl for Wave {
        fn name(&self) -> &str {
            "wave"
        }
        fn eval(&self, state: &mut [f64], env: &FpEnv, inj: Option<Injection>) {
            let mut ctx = SiteCtx::new(env, inj);
            ctx.begin_body(4);
            for x in state.iter_mut() {
                ctx.next_iteration();
                let a = ctx.mul(*x, 0.733);
                let b = ctx.add(a, 0.117);
                let c = ctx.mul_add(b, 0.91, 0.03);
                *x = ctx.div(c, 1.87);
            }
            ctx.end_body();
        }
        fn fp_sites(&self) -> usize {
            4
        }
        fn work(&self) -> f64 {
            4.0
        }
        fn class(&self) -> KernelClass {
            KernelClass::Stencil
        }
    }

    fn program() -> SimProgram {
        SimProgram::new(
            "study-test",
            vec![
                SourceFile::new(
                    "hydro.cpp",
                    vec![
                        Function::exported("wave_step", Kernel::Custom(Arc::new(Wave))),
                        // A static helper with sites, reachable from an
                        // exported caller → indirect finds.
                        Function::local("wave_helper", Kernel::Custom(Arc::new(Wave))),
                        Function::exported("wave_outer", Kernel::Benign { flavor: 1 })
                            .with_calls(vec!["wave_helper".into()]),
                    ],
                ),
                SourceFile::new(
                    "dead.cpp",
                    // Never called by the driver → not measurable.
                    vec![Function::exported(
                        "dead_code",
                        Kernel::Custom(Arc::new(Wave)),
                    )],
                ),
            ],
        )
    }

    fn config() -> StudyConfig {
        StudyConfig {
            compilation: Compilation::perf_reference(),
            driver: Driver::new(
                "study",
                vec!["wave_step".into(), "wave_outer".into()],
                2,
                16,
            ),
            input: vec![0.4],
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn study_classifies_all_three_ways() {
        let p = program();
        let (records, summary) = run_study(&p, &config());
        // 3 injectable functions × 4 sites × 4 ops.
        assert_eq!(summary.total, 48);
        assert_eq!(summary.wrong, 0, "no false positives allowed");
        assert_eq!(summary.missed, 0, "no false negatives allowed");
        // Dead-code sites (16 injections) are not measurable; live ones
        // may occasionally be absorbed by rounding but mostly measure.
        assert!(summary.not_measurable >= 16);
        assert!(summary.exact >= 12, "exact = {}", summary.exact);
        assert!(summary.indirect >= 12, "indirect = {}", summary.indirect);
        assert_eq!(summary.precision(), 1.0);
        assert_eq!(summary.recall(), 1.0);
        assert!(summary.avg_runs > 2.0 && summary.avg_runs < 40.0);
        // Indirect finds report the visible caller.
        for r in &records {
            if r.classification == Classification::Indirect {
                assert_eq!(r.site.symbol, "wave_helper");
                assert_eq!(r.reported, vec!["wave_outer".to_string()]);
            }
            if r.site.symbol == "dead_code" {
                assert_eq!(r.classification, Classification::NotMeasurable);
            }
        }
    }

    #[test]
    fn study_is_deterministic_and_parallel_invariant() {
        let p = program();
        let (seq, sum1) = run_study(&p, &config());
        let mut cfg = config();
        cfg.threads = 4;
        let (par, sum2) = run_study(&p, &cfg);
        assert_eq!(sum1, sum2);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.classification, b.classification);
            assert_eq!(a.eps, b.eps);
            assert_eq!(a.runs, b.runs);
        }
    }
}
