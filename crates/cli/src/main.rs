//! The `flit` binary: thin wrapper over `flit_cli`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match flit_cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The worker subcommand is an interactive protocol loop over
    // stdin/stdout, not a report-producing command.
    if cli.command == flit_cli::Command::Worker {
        return match flit_cli::run_worker() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("worker error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match flit_cli::commands::execute(&cli) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
