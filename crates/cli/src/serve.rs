//! The CLI side of `flit serve`: the daemon entry point and the
//! [`WorkflowRunner`] that executes submissions with the bundled
//! applications.
//!
//! The daemon crate (`flit-serve`) is deliberately ignorant of the
//! workflow stack; this module closes the loop by implementing its
//! runner trait with [`run_workflow`] and the shared
//! [`render_workflow_report`] renderer — which is what makes a daemon
//! submission byte-identical to a serial `flit workflow` run.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use flit_bisect::ledger::QueryLedger;
use flit_core::workflow::{render_workflow_report, run_workflow, LintMode, WorkflowConfig};
use flit_exec::{ExecBackend, ProcessBackend};
use flit_serve::daemon::{serve, JobOutcome, JobRequest, ServeConfig, WorkflowRunner};
use flit_trace::sink::TraceSink;

use crate::args::ParseError;
use crate::commands::{get_app, matrix_for, worker_cmd};

/// The daemon-side workflow executor: resolves bundled applications
/// and runs each submission against the tenant ledger the daemon
/// prepared (journal attached, fleet upstream chained).
pub struct CliRunner {
    /// The shared execution backend for the bisection stage, if the
    /// daemon was started with `--backend process`.
    backend: Option<Arc<dyn ExecBackend>>,
    /// Report-header note matching the serial CLI's for the same
    /// backend choice (empty for threads).
    note: String,
}

impl CliRunner {
    /// A runner using the in-process `threads` backend — how
    /// benchmarks and harnesses embed the daemon without a socket-side
    /// CLI.
    pub fn threads() -> Self {
        CliRunner {
            backend: None,
            note: String::new(),
        }
    }
}

impl WorkflowRunner for CliRunner {
    fn fingerprint(&self, app: &str) -> Result<u64, String> {
        Ok(get_app(app)
            .map_err(|e| e.to_string())?
            .program
            .fingerprint())
    }

    fn run(&self, req: &JobRequest, ledger: Arc<QueryLedger>) -> Result<JobOutcome, String> {
        let app = get_app(&req.app).map_err(|e| e.to_string())?;
        let comps = matrix_for(&app, None).map_err(|e| e.to_string())?;
        let mut cfg = WorkflowConfig {
            max_bisections: req.max_bisections.unwrap_or(usize::MAX),
            jobs: req.jobs.unwrap_or(1),
            trace: TraceSink::disabled(),
            lint: LintMode::Off,
            ledger: Some(ledger),
            ..Default::default()
        };
        if let Some(backend) = &self.backend {
            cfg.bisect = cfg.bisect.clone().with_backend(backend.clone());
        }
        let report =
            run_workflow(&app.program, &app.tests, &comps, &cfg).map_err(|e| e.to_string())?;
        // The submit endpoint's latency unit: the submission's total
        // simulated wall-clock, which is deterministic — so the
        // latency targets published in EXPERIMENTS.md are stable.
        let simulated_seconds = report.db.rows.iter().filter_map(|r| r.seconds).sum();
        Ok(JobOutcome {
            body: render_workflow_report(app.name, &self.note, &report),
            simulated_seconds,
        })
    }
}

/// Run the daemon: bind, advertise the address, and serve until a
/// `Shutdown` request drains it. Blocks for the daemon's lifetime and
/// returns the drain summary as the command report.
pub fn run_serve(
    listen: &str,
    state_dir: &str,
    max_inflight: Option<usize>,
    backend: Option<&str>,
    workers: Option<usize>,
    trace_export: Option<&str>,
) -> Result<String, ParseError> {
    let listener = TcpListener::bind(listen)
        .map_err(|e| ParseError(format!("cannot listen on `{listen}`: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ParseError(format!("cannot resolve the listen address: {e}")))?;
    let state_dir = PathBuf::from(state_dir);
    std::fs::create_dir_all(&state_dir).map_err(|e| {
        ParseError(format!(
            "cannot create state dir {}: {e}",
            state_dir.display()
        ))
    })?;
    // Advertise the bound address (port 0 resolves to an ephemeral
    // one) so scripts can `--connect $(cat <state>/serve.addr)`.
    flit_persist::write_atomic(state_dir.join("serve.addr"), addr.to_string().as_bytes())
        .map_err(|e| ParseError(format!("cannot write serve.addr: {e}")))?;

    let trace = TraceSink::enabled();
    let workers = workers.unwrap_or(4).max(1);
    let process = backend == Some("process");
    let exec_backend: Option<Arc<dyn ExecBackend>> = if process {
        Some(Arc::new(ProcessBackend::with_trace(
            worker_cmd()?,
            workers,
            trace.clone(),
        )))
    } else {
        None
    };
    let note = if process {
        format!(" | process backend ({workers} workers)")
    } else {
        String::new()
    };

    println!("flit-serve listening on {addr}");
    let cfg = ServeConfig {
        state_dir,
        max_inflight: max_inflight.unwrap_or(2).max(1),
        trace,
        backend: exec_backend.clone(),
        trace_export: trace_export.map(PathBuf::from),
        ..ServeConfig::default()
    };
    let runner = Arc::new(CliRunner {
        backend: exec_backend,
        note,
    });
    let summary =
        serve(listener, runner, cfg).map_err(|e| ParseError(format!("daemon failed: {e}")))?;
    Ok(format!(
        "flit-serve drained: {} submissions accepted ({} completed, {} rejected) \
         from {} tenant(s)\n",
        summary.submissions, summary.completed, summary.rejected, summary.tenants
    ))
}
