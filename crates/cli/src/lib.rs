//! # flit-cli
//!
//! Library backing the `flit` command-line tool (argument parsing and
//! command implementations live here so they can be unit-tested; the
//! binary is a thin wrapper).
//!
//! The subcommand surface mirrors the real FLiT tool:
//!
//! ```text
//! flit apps                      list the bundled applications
//! flit run    <app> [opts]       sweep the compilation matrix
//! flit analyze <app> [opts]      performance-vs-reproducibility report
//! flit bisect <app> --test T --compilation "icpc -O2" [opts]
//! flit inject <app> [--limit N]  run the perturbation-injection study
//! ```

pub mod apps;
pub mod args;
pub mod commands;
pub mod serve;
pub mod worker;

pub use apps::{app_names, resolve_app, BundledApp};
pub use args::{parse, Cli, Command};
pub use worker::run_worker;
