//! The `flit worker` subcommand: the worker half of the `process`
//! execution backend.
//!
//! A worker is a plain subprocess speaking the CRC-framed
//! [`flit_exec::process`] protocol over stdin/stdout: the coordinator
//! registers search tasks (serialized [`flit_bisect::wire::WireTask`]
//! bodies) under their digests, then streams Test/Time queries;
//! answers use the checkpoint-journal record schema, so the
//! coordinator's ledger cannot tell a worker answer from a local one.
//!
//! Custom kernels ([`flit_program::Kernel::Custom`] holds a trait
//! object) travel by *name* on the wire, so before serving anything
//! the worker registers every custom kernel reachable from the
//! bundled applications — the same set a coordinator built from
//! [`crate::apps`] can reference.

use crate::apps::{app_names, resolve_app};
use flit_exec::{serve_worker, WORKER_EXIT_AFTER_ENV};

/// Register every custom kernel used by the bundled applications, so
/// serialized programs referencing them deserialize in this process.
fn register_bundled_kernels() {
    for name in app_names() {
        let app = resolve_app(name).expect("listed apps resolve");
        for file in &app.program.files {
            for function in &file.functions {
                if let flit_program::Kernel::Custom(imp) = &function.kernel {
                    flit_program::register_custom_kernel(imp.clone());
                }
            }
        }
    }
}

/// Serve queries from stdin until the coordinator closes the pipe.
///
/// `FLIT_WORKER_EXIT_AFTER=n` (set by the coordinator's kill schedule)
/// makes the worker exit cleanly right before its `n`-th answer, which
/// is how crash recovery is exercised deterministically in tests.
pub fn run_worker() -> std::io::Result<()> {
    register_bundled_kernels();
    let exit_after = std::env::var(WORKER_EXIT_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_worker(
        stdin.lock(),
        stdout.lock(),
        exit_after,
        flit_bisect::wire::evaluate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_custom_kernels_round_trip_after_registration() {
        register_bundled_kernels();
        // LULESH is the app with `Kernel::Custom` bodies: its program
        // must survive a serde round trip once the registry is primed.
        let app = resolve_app("lulesh").expect("lulesh is bundled");
        use serde::{Deserialize, Serialize};
        let value = app.program.to_value();
        let back = flit_program::SimProgram::from_value(&value).expect("round trip");
        assert_eq!(back.fingerprint(), app.program.fingerprint());
    }
}
