//! Command implementations. Every command returns its report as a
//! `String` (so it can be tested) and the binary prints it.

use std::sync::Arc;

use flit_bisect::hierarchy::{
    bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig, SearchOutcome,
};
use flit_bisect::journal::JournalWriter;
use flit_bisect::ledger::{LedgerHandle, QueryLedger};
use flit_core::analysis::{
    category_bars, compiler_summary, fastest_is_reproducible_count, variability_summary,
};
use flit_core::metrics::l2_compare;
use flit_core::runner::{run_matrix, RunnerConfig, RunnerError};
use flit_core::test::FlitTest;
use flit_exec::{ExecBackend, ProcessBackend, ThreadsBackend};
use flit_inject::study::{run_study, StudyConfig};
use flit_program::build::Build;
use flit_report::table::{fmt_f64, Align, Table};
use flit_report::trace_view::render_trace;
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::{compilation_matrix, Compilation};
use flit_toolchain::compiler::CompilerKind;
use flit_trace::event::Trace;
use flit_trace::sink::TraceSink;

use crate::apps::{app_names, resolve_app, BundledApp};
use crate::args::{parse_compilation, Cli, Command, ParseError, USAGE};

/// Execute a parsed command line.
pub fn execute(cli: &Cli) -> Result<String, ParseError> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Apps => Ok(cmd_apps()),
        Command::Run {
            app,
            compiler,
            json,
        } => cmd_run(app, compiler.as_deref(), *json),
        Command::Analyze { app } => cmd_analyze(app),
        Command::Bisect {
            app,
            test,
            compilation,
            biggest,
            jobs,
            lint_seed,
            lint_prune,
            prune,
            checkpoint,
            resume,
            backend,
            workers,
            kill_workers,
        } => cmd_bisect(
            app,
            test.as_deref(),
            compilation,
            *biggest,
            *jobs,
            *lint_seed,
            *lint_prune,
            prune.as_deref() == Some("certified"),
            checkpoint.as_deref(),
            resume.as_deref(),
            &BackendChoice::parse(backend.as_deref(), *workers, *jobs, kill_workers.clone()),
        ),
        Command::Bound {
            app,
            test,
            base,
            candidate,
            trace,
        } => cmd_bound(app, test.as_deref(), base, candidate, trace.as_deref()),
        Command::Perf {
            app,
            test,
            base,
            candidate,
            samples,
            alpha,
            seed,
            jobs,
            trace,
            backend,
            workers,
            kill_workers,
        } => cmd_perf(
            app,
            test.as_deref(),
            base,
            candidate,
            *samples,
            *alpha,
            *seed,
            *jobs,
            trace.as_deref(),
            &BackendChoice::parse(backend.as_deref(), *workers, *jobs, kill_workers.clone()),
        ),
        Command::Lint {
            app,
            test,
            compilation,
        } => cmd_lint(app, test.as_deref(), compilation.as_deref()),
        Command::Inject { app, limit } => cmd_inject(app, *limit),
        Command::Workflow {
            app,
            max_bisections,
            jobs,
            trace,
            lint,
            checkpoint,
            resume,
            backend,
            workers,
            kill_workers,
        } => cmd_workflow(
            app,
            *max_bisections,
            *jobs,
            trace.as_deref(),
            lint.as_deref(),
            checkpoint.as_deref(),
            resume.as_deref(),
            &BackendChoice::parse(backend.as_deref(), *workers, *jobs, kill_workers.clone()),
        ),
        Command::Fuzz {
            seeds,
            budget_secs,
            shrink,
            jobs,
            trace,
            backend,
        } => cmd_fuzz(
            *seeds,
            *budget_secs,
            *shrink,
            *jobs,
            trace.as_deref(),
            backend.as_deref() == Some("process"),
        ),
        Command::Trace { file, top } => cmd_trace(file, top.unwrap_or(10)),
        Command::Serve {
            listen,
            status,
            connect,
            state_dir,
            max_inflight,
            backend,
            workers,
            trace,
            ..
        } => match listen {
            Some(listen) => crate::serve::run_serve(
                listen,
                state_dir.as_deref().unwrap_or("flit-serve-state"),
                *max_inflight,
                backend.as_deref(),
                *workers,
                trace.as_deref(),
            ),
            None => {
                // The parser guarantees --connect for --status/--shutdown.
                let addr = connect
                    .as_deref()
                    .ok_or_else(|| ParseError("`serve` control endpoints need --connect".into()))?;
                if *status {
                    cmd_serve_status(addr)
                } else {
                    cmd_serve_shutdown(addr)
                }
            }
        },
        Command::Submit {
            app,
            connect,
            tenant,
            max_bisections,
            jobs,
        } => cmd_submit(app, connect, tenant, *max_bisections, *jobs),
        Command::Worker => Err(ParseError(
            "`flit worker` serves a coordinator over stdin/stdout; it is spawned by \
             `--backend process`, not run for a report"
                .into(),
        )),
    }
}

/// The resolved `--backend` / `--workers` / `--kill-workers` choice.
struct BackendChoice {
    /// `--backend process` was requested.
    process: bool,
    /// Process-backend pool width (`--workers`, falling back to
    /// `--jobs`, then 4).
    workers: usize,
    /// Deterministic worker-kill schedule for recovery testing.
    kill_schedule: Vec<u64>,
}

impl BackendChoice {
    fn parse(
        backend: Option<&str>,
        workers: Option<usize>,
        jobs: Option<usize>,
        kill_workers: Option<Vec<u64>>,
    ) -> Self {
        BackendChoice {
            process: backend == Some("process"),
            workers: workers.or(jobs).unwrap_or(4).max(1),
            kill_schedule: kill_workers.unwrap_or_default(),
        }
    }

    /// Build the process backend: `flit worker` subprocesses recording
    /// `exec.backend.*` counters into `trace`.
    fn process_backend(&self, trace: &TraceSink) -> Result<Arc<dyn ExecBackend>, ParseError> {
        let mut backend = ProcessBackend::with_trace(worker_cmd()?, self.workers, trace.clone());
        if !self.kill_schedule.is_empty() {
            backend = backend.with_kill_schedule(self.kill_schedule.clone());
        }
        Ok(Arc::new(backend))
    }

    /// The report-header note for this choice (empty for threads).
    fn note(&self) -> String {
        if self.process {
            format!(" | process backend ({} workers)", self.workers)
        } else {
            String::new()
        }
    }
}

/// The command line workers execute: this binary's own executable with
/// the `worker` subcommand. `FLIT_WORKER_EXE` overrides the executable
/// path (used by tests, whose `current_exe` is the test harness, not
/// `flit`).
pub(crate) fn worker_cmd() -> Result<Vec<String>, ParseError> {
    let exe = match std::env::var("FLIT_WORKER_EXE") {
        Ok(path) => path,
        Err(_) => std::env::current_exe()
            .map_err(|e| ParseError(format!("cannot locate the flit executable: {e}")))?
            .to_string_lossy()
            .into_owned(),
    };
    Ok(vec![exe, "worker".to_string()])
}

fn runner_error(e: RunnerError) -> ParseError {
    ParseError(format!("runner failed: {e}"))
}

pub(crate) fn get_app(name: &str) -> Result<BundledApp, ParseError> {
    resolve_app(name).ok_or_else(|| {
        ParseError(format!(
            "unknown application `{name}` (available: {})",
            app_names().join(", ")
        ))
    })
}

pub(crate) fn matrix_for(
    app: &BundledApp,
    compiler: Option<&str>,
) -> Result<Vec<Compilation>, ParseError> {
    let compilers: Vec<CompilerKind> = match compiler {
        None => {
            if app.name.starts_with("laghos") {
                vec![CompilerKind::Gcc, CompilerKind::Xlc]
            } else {
                CompilerKind::MFEM_STUDY.to_vec()
            }
        }
        Some("gcc") | Some("g++") => vec![CompilerKind::Gcc],
        Some("clang") | Some("clang++") => vec![CompilerKind::Clang],
        Some("icpc") | Some("intel") => vec![CompilerKind::Icpc],
        Some("xlc") | Some("xlc++") => vec![CompilerKind::Xlc],
        Some(other) => {
            return Err(ParseError(format!(
                "unknown compiler `{other}` (gcc, clang, icpc, xlc)"
            )))
        }
    };
    Ok(compilers.into_iter().flat_map(compilation_matrix).collect())
}

fn cmd_apps() -> String {
    let mut out = String::from("bundled applications:\n");
    for name in app_names() {
        let app = resolve_app(name).expect("listed apps resolve");
        out.push_str(&format!(
            "  {:<12} {} ({} files, {} functions, {} tests)\n",
            app.name,
            app.description,
            app.program.files.len(),
            app.program.total_functions(),
            app.tests.len(),
        ));
    }
    out
}

fn cmd_run(app: &str, compiler: Option<&str>, json: bool) -> Result<String, ParseError> {
    let app = get_app(app)?;
    let comps = matrix_for(&app, compiler)?;
    let dyn_tests: Vec<&dyn FlitTest> = app.tests.iter().map(|t| t as &dyn FlitTest).collect();
    let db = run_matrix(&app.program, &dyn_tests, &comps, &RunnerConfig::default())
        .map_err(runner_error)?;
    if json {
        return Ok(db.to_json());
    }
    let mut table = Table::new(&["test", "variable / total", "worst comparison"])
        .with_aligns(&[Align::Left, Align::Right, Align::Right])
        .with_title(format!(
            "flit run {}: {} compilations x {} tests",
            app.name,
            comps.len(),
            app.tests.len()
        ));
    for test in db.tests() {
        let rows = db.for_test(&test);
        let variable = rows.iter().filter(|r| r.is_variable()).count();
        let worst = rows
            .iter()
            .map(|r| r.comparison)
            .filter(|c| c.is_finite())
            .fold(0.0f64, f64::max);
        table.row(&[
            test.clone(),
            format!("{variable} / {}", rows.len()),
            fmt_f64(worst, 2),
        ]);
    }
    Ok(table.render())
}

fn cmd_analyze(app: &str) -> Result<String, ParseError> {
    let app = get_app(app)?;
    let comps = matrix_for(&app, None)?;
    let dyn_tests: Vec<&dyn FlitTest> = app.tests.iter().map(|t| t as &dyn FlitTest).collect();
    let db = run_matrix(&app.program, &dyn_tests, &comps, &RunnerConfig::default())
        .map_err(runner_error)?;

    let mut out = String::new();
    let mut table = Table::new(&["compiler", "variable runs", "best average flags", "speedup"])
        .with_title(format!("flit analyze {}", app.name))
        .with_aligns(&[Align::Left, Align::Right, Align::Left, Align::Right]);
    for compiler in db
        .compilations()
        .iter()
        .map(|c| c.compiler)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let s = compiler_summary(&db, compiler);
        table.row(&[
            compiler.to_string(),
            format!("{}/{}", s.variable_runs, s.total_runs),
            s.best_flags,
            fmt_f64(s.best_avg_speedup, 3),
        ]);
    }
    out.push_str(&table.render());

    let (wins, total) = fastest_is_reproducible_count(&db);
    out.push_str(&format!(
        "\n{wins} of {total} tests have their fastest compilation among the bitwise-equal ones\n\n"
    ));
    for test in db.tests() {
        let v = variability_summary(&db, &test);
        let bars = category_bars(&db, &test);
        let fastest = bars.fastest_variable.map_or_else(
            || "no variable compilations".into(),
            |p| format!("fastest variable {:.3} ({})", p.speedup, p.label),
        );
        out.push_str(&format!(
            "  {test}: {}/{} variable, rel err [{:.1e}, {:.1e}], {fastest}\n",
            v.variable_compilations, v.total_compilations, v.min_rel_err, v.max_rel_err
        ));
    }

    let b = &db.build_stats;
    out.push_str(&format!(
        "\nbuild cache: {} objects compiled ({} cache hits), {} links ({} memo hits)\n",
        b.objects_compiled, b.object_cache_hits, b.links, b.link_memo_hits
    ));
    Ok(out)
}

/// The default variable compilation for `flit lint` when none is
/// given: the paper's most variability-inducing gcc configuration.
const DEFAULT_LINT_COMPILATION: &str = "g++ -O3 -mavx2 -mfma -funsafe-math-optimizations";

fn cmd_lint(
    app: &str,
    test: Option<&str>,
    compilation: Option<&str>,
) -> Result<String, ParseError> {
    let app = get_app(app)?;
    let comp = parse_compilation(compilation.unwrap_or(DEFAULT_LINT_COMPILATION))?;
    let test = match test {
        Some(name) => app
            .tests
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| ParseError(format!("unknown test `{name}` for {}", app.name)))?,
        None => &app.tests[0],
    };
    let baseline = Build::new(&app.program, Compilation::baseline());
    let variable = Build::tagged(&app.program, comp.clone(), 1);
    let pred =
        flit_lint::predict_pair(&baseline, &variable, Some(test.driver()), CompilerKind::Gcc);
    let title = format!(
        "{} | test {} | {} vs {}",
        app.name,
        test.name(),
        Compilation::baseline().label(),
        comp.label()
    );
    Ok(flit_lint::render_prediction(&title, &pred))
}

/// Build the query ledger behind `--checkpoint` / `--resume`:
/// `--checkpoint` starts a fresh journal, `--resume` replays an existing
/// one (validating its program fingerprint) and keeps appending to it.
fn ledger_for(
    fingerprint: u64,
    trace: &TraceSink,
    checkpoint: Option<&str>,
    resume: Option<&str>,
) -> Result<Option<Arc<QueryLedger>>, ParseError> {
    if checkpoint.is_some() && resume.is_some() {
        return Err(ParseError(
            "pass --checkpoint to start a new journal or --resume to continue one, not both".into(),
        ));
    }
    let ledger = QueryLedger::new(fingerprint, trace);
    if let Some(path) = resume {
        let (writer, records) = JournalWriter::resume(std::path::Path::new(path), fingerprint)
            .map_err(|e| ParseError(format!("cannot resume checkpoint journal: {e}")))?;
        ledger.preload(&records);
        ledger.attach_journal(writer);
    } else if let Some(path) = checkpoint {
        let writer = JournalWriter::create(std::path::Path::new(path), fingerprint)
            .map_err(|e| ParseError(format!("cannot create checkpoint journal: {e}")))?;
        ledger.attach_journal(writer);
    } else {
        return Ok(None);
    }
    Ok(Some(ledger))
}

/// The journal/dedup footer shared by `flit bisect` and `flit workflow`.
fn ledger_footer(ledger: &QueryLedger) -> String {
    let s = ledger.stats();
    let mut out = format!(
        "journal: {} executed, {} replayed ({} served), {} shared hits, {} appended\n",
        s.executed, s.replayed, s.replay_served, s.shared_hits, s.appended
    );
    if let Some(err) = ledger.journal_error() {
        out.push_str(&format!("WARNING: {err}\n"));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn cmd_bisect(
    app: &str,
    test: Option<&str>,
    compilation: &str,
    biggest: Option<usize>,
    jobs: Option<usize>,
    lint_seed: bool,
    lint_prune: bool,
    prune_certified: bool,
    checkpoint: Option<&str>,
    resume: Option<&str>,
    choice: &BackendChoice,
) -> Result<String, ParseError> {
    if prune_certified && lint_prune {
        return Err(ParseError(
            "--prune certified and --lint-prune are different prune disciplines; pick one".into(),
        ));
    }
    let app = get_app(app)?;
    let comp = parse_compilation(compilation)?;
    let test = match test {
        Some(name) => app
            .tests
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| ParseError(format!("unknown test `{name}` for {}", app.name)))?,
        None => &app.tests[0],
    };
    let baseline = Build::new(&app.program, Compilation::baseline());
    let variable = Build::tagged(&app.program, comp.clone(), 1);
    let mut cfg = HierarchicalConfig {
        link_driver: CompilerKind::Gcc,
        k: biggest,
        ctx: BuildCtx::cached(),
        trace: TraceSink::disabled(),
        prescreen: None,
        ledger: None,
        backend: None,
    };
    if prune_certified {
        // The certificates must model exactly the searched pair: the
        // search links mixed binaries with the baseline's compiler
        // (gcc), which is precisely `link_driver` above.
        let mut certs = flit_absint::certify_pair(
            &app.program,
            &app.program,
            test.driver(),
            &Compilation::baseline(),
            &comp,
            CompilerKind::Gcc,
        );
        // Test hook (like FLIT_WORKER_EXIT_AFTER): forge a dishonest
        // Invariant certificate for the named file so the integration
        // suite can prove the residual audit fails the process.
        if let Ok(name) = std::env::var("FLIT_FORGE_INVARIANT") {
            if let Some(fid) = app.program.files.iter().position(|f| f.name == name) {
                certs.files[fid] = flit_absint::Certificate::Invariant;
            }
        }
        record_certificates(&cfg.trace, &certs);
        let mut pred =
            flit_lint::predict_pair(&baseline, &variable, Some(test.driver()), CompilerKind::Gcc);
        cfg = cfg.with_prescreen(pred.certified_prescreen(certs, true));
    } else if lint_seed || lint_prune {
        let pred =
            flit_lint::predict_pair(&baseline, &variable, Some(test.driver()), CompilerKind::Gcc);
        cfg = cfg.with_prescreen(pred.prescreen(lint_prune));
    }
    let ledger = ledger_for(app.program.fingerprint(), &cfg.trace, checkpoint, resume)?;
    if let Some(ledger) = &ledger {
        cfg.ledger = Some(LedgerHandle::new(
            ledger.clone(),
            1,
            format!("{}/{}", test.name(), comp.label()),
        ));
    }
    let input = test.default_input();
    let input = &input[..test.inputs_per_run().min(input.len())];
    let jobs = jobs.unwrap_or(1);
    // `--jobs` routes through the planner-driven parallel search and
    // `--backend process` additionally evaluates every query in worker
    // subprocesses; the result is byte-identical to the serial
    // algorithm by construction either way.
    let res = if choice.process {
        let backend = choice.process_backend(&cfg.trace)?;
        cfg = cfg.with_backend(backend.clone());
        if let Some(ledger) = &ledger {
            ledger.set_backend_label("process");
        }
        bisect_hierarchical_parallel(
            &baseline,
            &variable,
            test.driver(),
            input,
            &l2_compare,
            &cfg,
            &*backend,
        )
    } else if jobs > 1 {
        bisect_hierarchical_parallel(
            &baseline,
            &variable,
            test.driver(),
            input,
            &l2_compare,
            &cfg,
            &ThreadsBackend::new(jobs),
        )
    } else {
        bisect_hierarchical(
            &baseline,
            &variable,
            test.driver(),
            input,
            &l2_compare,
            &cfg,
        )
    };

    let mode_note = {
        let mut note = choice.note();
        if note.is_empty() && jobs > 1 {
            note.push_str(&format!(" | {jobs} jobs"));
        }
        if prune_certified {
            note.push_str(" | certified prune");
        } else if lint_prune {
            note.push_str(" | lint prune");
        } else if lint_seed {
            note.push_str(" | lint seed");
        }
        note
    };
    let mut out = format!(
        "flit bisect {}: test {} | baseline {} | variable {}{}\n\n",
        app.name,
        test.name(),
        Compilation::baseline().label(),
        comp.label(),
        mode_note
    );
    match res.outcome {
        SearchOutcome::Crashed(ref why) => {
            out.push_str(&format!(
                "search ABORTED: mixed executable crashed ({why})\n"
            ));
        }
        SearchOutcome::LinkStepOnly => {
            out.push_str("no file blame: the variability is introduced by the link step itself\n");
        }
        _ => {
            out.push_str(&format!("files  ({}):\n", res.files.len()));
            for f in &res.files {
                out.push_str(&format!("  {:<28} Test = {:.3e}\n", f.file_name, f.value));
            }
            out.push_str(&format!("symbols ({}):\n", res.symbols.len()));
            for s in &res.symbols {
                out.push_str(&format!("  {:<28} Test = {:.3e}\n", s.symbol, s.value));
            }
            for fid in &res.file_level_only {
                out.push_str(&format!(
                    "  (file-level only: {} — variability does not survive -fPIC)\n",
                    app.program.files[*fid].name
                ));
            }
        }
    }
    out.push_str(&format!("\nprogram executions: {}\n", res.executions));
    if !res.violations.is_empty() {
        out.push_str("WARNING: assumption violations (possible false negatives):\n");
        for v in &res.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    if let Some(ledger) = &ledger {
        out.push_str(&ledger_footer(ledger));
    }
    if prune_certified && !res.violations.is_empty() {
        // A violated certified prune means a certificate lied: fail the
        // process (the report, violations included, goes to stderr).
        return Err(ParseError(out));
    }
    Ok(out)
}

/// Record the `absint.*` certification counters for one pair.
fn record_certificates(trace: &TraceSink, certs: &flit_absint::PairCertificates) {
    use flit_trace::names::counter;
    let (inv, bnd, unk) = certs.counts();
    trace.counter(counter::ABSINT_CERTIFIED_INVARIANT).incr(inv);
    trace.counter(counter::ABSINT_CERTIFIED_BOUNDED).incr(bnd);
    trace.counter(counter::ABSINT_CERTIFIED_UNKNOWN).incr(unk);
}

/// Render one certificate as (kind, bound) table cells.
fn cert_cells(cert: &flit_absint::Certificate) -> (String, String) {
    let bound = match cert {
        flit_absint::Certificate::Bounded(e) => format!("{e:.3e}"),
        _ => "-".to_string(),
    };
    (cert.kind().to_string(), bound)
}

fn cmd_bound(
    app: &str,
    test: Option<&str>,
    base: &str,
    candidate: &str,
    trace_path: Option<&str>,
) -> Result<String, ParseError> {
    let app = get_app(app)?;
    let base_comp = parse_compilation(base)?;
    let cand_comp = parse_compilation(candidate)?;
    if base_comp == cand_comp {
        return Err(ParseError("--pair needs two distinct compilations".into()));
    }
    let test = match test {
        Some(name) => app
            .tests
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| ParseError(format!("unknown test `{name}` for {}", app.name)))?,
        None => &app.tests[0],
    };
    let trace = if trace_path.is_some() {
        TraceSink::enabled()
    } else {
        TraceSink::disabled()
    };
    // Certify against the bisection model: mixed binaries linked by the
    // baseline-side driver (gcc), the same contract `flit bisect` uses.
    let certs = flit_absint::certify_pair(
        &app.program,
        &app.program,
        test.driver(),
        &base_comp,
        &cand_comp,
        CompilerKind::Gcc,
    );
    record_certificates(&trace, &certs);

    let (inv, bnd, unk) = certs.counts();
    let (whole_kind, whole_bound) = cert_cells(&certs.whole);
    let mut out = format!(
        "flit bound {}: test {} | {} vs {} | link driver g++\n\n",
        app.name,
        test.name(),
        base_comp.label(),
        cand_comp.label()
    );
    out.push_str(&format!(
        "whole pair: {whole_kind}{}\n",
        if whole_bound == "-" {
            String::new()
        } else {
            format!(" (l2_diff <= {whole_bound})")
        }
    ));
    out.push_str(&format!(
        "items: {inv} invariant, {bnd} bounded, {unk} unknown\n\n"
    ));

    // Invariant items are the (usually vast) boring majority; list only the
    // items that can actually move the result.
    let mut files = Table::new(&["#", "file", "certificate", "bound"])
        .with_title("Certified bounds — files (invariant files omitted)")
        .with_aligns(&[Align::Right, Align::Left, Align::Left, Align::Right]);
    let mut invariant_files = 0usize;
    for (fid, file) in app.program.files.iter().enumerate() {
        let cert = certs.file(fid);
        if cert == flit_absint::Certificate::Invariant {
            invariant_files += 1;
            continue;
        }
        let (kind, bound) = cert_cells(&cert);
        files.row(&[fid.to_string(), file.name.clone(), kind, bound]);
    }
    out.push_str(&files.render());
    out.push_str(&format!("{invariant_files} invariant files omitted\n\n"));

    let mut symbols = Table::new(&["symbol", "certificate", "bound"])
        .with_title("Certified bounds — symbols (invariant symbols omitted)")
        .with_aligns(&[Align::Left, Align::Left, Align::Right]);
    let mut invariant_symbols = 0usize;
    for (name, cert) in &certs.symbols {
        if *cert == flit_absint::Certificate::Invariant {
            invariant_symbols += 1;
            continue;
        }
        let (kind, bound) = cert_cells(cert);
        symbols.row(&[name.clone(), kind, bound]);
    }
    out.push_str(&symbols.render());
    out.push_str(&format!("{invariant_symbols} invariant symbols omitted\n"));

    if let Some(path) = trace_path {
        let jsonl = trace.snapshot().to_jsonl();
        flit_persist::write_atomic(std::path::Path::new(path), jsonl.as_bytes())
            .map_err(|e| ParseError(format!("cannot write trace `{path}`: {e}")))?;
        out.push_str(&format!(
            "\ntrace: {} events written to {path} (render with `flit trace {path}`)\n",
            jsonl.lines().count()
        ));
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn cmd_perf(
    app: &str,
    test: Option<&str>,
    base: &str,
    candidate: &str,
    samples: Option<usize>,
    alpha: Option<f64>,
    seed: Option<u64>,
    jobs: Option<usize>,
    trace_path: Option<&str>,
    choice: &BackendChoice,
) -> Result<String, ParseError> {
    use flit_bisect::perf::{perf_bisect, PerfConfig, PerfOutcome};
    use flit_report::speedup::SpeedupReport;
    use flit_report::stats::Verdict;
    let app = get_app(app)?;
    let base_comp = parse_compilation(base)?;
    let cand_comp = parse_compilation(candidate)?;
    if base_comp == cand_comp {
        return Err(ParseError("--pair needs two distinct compilations".into()));
    }
    if let Some(n) = samples {
        if n < 2 {
            return Err(ParseError(format!(
                "--samples needs at least 2 (a variance estimate), got {n}"
            )));
        }
    }
    let test = match test {
        Some(name) => app
            .tests
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| ParseError(format!("unknown test `{name}` for {}", app.name)))?,
        None => &app.tests[0],
    };
    let baseline = Build::new(&app.program, base_comp.clone());
    let cand_build = Build::tagged(&app.program, cand_comp.clone(), 1);
    let trace = if trace_path.is_some() {
        TraceSink::enabled()
    } else {
        TraceSink::disabled()
    };
    let mut cfg = PerfConfig::new()
        .with_ctx(BuildCtx::cached())
        .with_trace(trace);
    if let Some(n) = samples {
        cfg = cfg.with_samples(n as u32);
    }
    if let Some(a) = alpha {
        cfg = cfg.with_alpha(a);
    }
    if let Some(s) = seed {
        cfg = cfg.with_seed(s);
    }
    let input = test.default_input();
    let input = &input[..test.inputs_per_run().min(input.len())];
    let jobs = jobs.unwrap_or(1);
    let res = if choice.process {
        let backend = choice.process_backend(&cfg.trace)?;
        cfg = cfg.with_backend(backend.clone());
        perf_bisect(
            &baseline,
            &cand_build,
            test.driver(),
            input,
            &cfg,
            &*backend,
        )
    } else {
        perf_bisect(
            &baseline,
            &cand_build,
            test.driver(),
            input,
            &cfg,
            &ThreadsBackend::new(jobs),
        )
    };

    let mut out = format!(
        "flit perf {}: test {} | baseline {} | candidate {} | {} samples @ alpha={}{}\n\n",
        app.name,
        test.name(),
        base_comp.label(),
        cand_comp.label(),
        cfg.samples,
        cfg.alpha,
        if choice.process {
            choice.note()
        } else if jobs > 1 {
            format!(" | {jobs} jobs")
        } else {
            String::new()
        }
    );
    if let Some(overall) = &res.overall {
        out.push_str(&format!("overall: {}\n", overall.render()));
    }
    match res.outcome {
        PerfOutcome::Crashed(ref why) => {
            out.push_str(&format!(
                "search ABORTED: timed executable failed ({why})\n"
            ));
        }
        PerfOutcome::NoRegression => {
            out.push_str(
                match res.overall.as_ref().map(SpeedupReport::verdict) {
                    Some(Verdict::Faster) => {
                        "no regression: the candidate is statistically FASTER — nothing to bisect\n"
                    }
                    _ => "no regression: the pair is statistically indistinguishable at this alpha — nothing to bisect\n",
                },
            );
        }
        PerfOutcome::LinkStepOnly => {
            out.push_str("no file blame: the slowdown is introduced by the link step itself\n");
        }
        _ => {
            out.push_str(&format!("files  ({}):\n", res.files.len()));
            for f in &res.files {
                out.push_str(&format!("  {:<28} {}\n", f.file_name, f.report.render()));
            }
            out.push_str(&format!("symbols ({}):\n", res.symbols.len()));
            for s in &res.symbols {
                out.push_str(&format!("  {:<28} {}\n", s.symbol, s.report.render()));
            }
            for fid in &res.file_level_only {
                out.push_str(&format!(
                    "  (file-level only: {} — the slowdown does not survive -fPIC interposition)\n",
                    app.program.files[*fid].name
                ));
            }
        }
    }
    out.push_str(&format!(
        "\ntimed executions: {} (x{} samples each)\n",
        res.executions, cfg.samples
    ));
    if !res.violations.is_empty() {
        out.push_str("WARNING: assumption violations (possible false negatives):\n");
        for v in &res.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    if let Some(path) = trace_path {
        let jsonl = cfg.trace.snapshot().to_jsonl();
        flit_persist::write_atomic(std::path::Path::new(path), jsonl.as_bytes())
            .map_err(|e| ParseError(format!("cannot write trace `{path}`: {e}")))?;
        out.push_str(&format!(
            "trace: {} events written to {path} (render with `flit trace {path}`)\n",
            jsonl.lines().count()
        ));
    }
    Ok(out)
}

fn cmd_inject(app: &str, limit: Option<usize>) -> Result<String, ParseError> {
    let app = get_app(app)?;
    let sites = flit_inject::enumerate_sites(&app.program);
    if sites.is_empty() {
        return Err(ParseError(format!(
            "{} has no injectable FP instruction sites (try `lulesh`)",
            app.name
        )));
    }
    // Respect the limit by truncating the program's site list via a
    // filtered study: simplest is to run the full study when no limit.
    let test = &app.tests[0];
    let cfg = StudyConfig {
        compilation: Compilation::perf_reference(),
        driver: test.driver().clone(),
        input: test.default_input(),
        seed: 42,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
    };
    let (records, summary) = run_study(&app.program, &cfg);
    let mut out = format!(
        "flit inject {}: {} sites, {} injections\n",
        app.name,
        sites.len(),
        summary.total
    );
    if let Some(n) = limit {
        out.push_str(&format!("first {n} records:\n"));
        for r in records.iter().take(n * 4) {
            out.push_str(&format!(
                "  {}#{} {:?} eps={:.3} -> {:?} ({} runs)\n",
                r.site.symbol, r.site.site, r.op, r.eps, r.classification, r.runs
            ));
        }
    }
    out.push_str(&format!(
        "exact {} | indirect {} | wrong {} | missed {} | not measurable {}\n",
        summary.exact, summary.indirect, summary.wrong, summary.missed, summary.not_measurable
    ));
    out.push_str(&format!(
        "precision {:.3}, recall {:.3}, avg runs {:.1}\n",
        summary.precision(),
        summary.recall(),
        summary.avg_runs
    ));
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn cmd_workflow(
    app: &str,
    max_bisections: Option<usize>,
    jobs: Option<usize>,
    trace_path: Option<&str>,
    lint: Option<&str>,
    checkpoint: Option<&str>,
    resume: Option<&str>,
    choice: &BackendChoice,
) -> Result<String, ParseError> {
    use flit_core::workflow::{run_workflow, LintMode, WorkflowConfig};
    let app = get_app(app)?;
    let comps = matrix_for(&app, None)?;
    let trace = if trace_path.is_some() || checkpoint.is_some() || resume.is_some() {
        TraceSink::enabled()
    } else {
        TraceSink::disabled()
    };
    let ledger = ledger_for(app.program.fingerprint(), &trace, checkpoint, resume)?;
    let mut cfg = WorkflowConfig {
        max_bisections: max_bisections.unwrap_or(usize::MAX),
        jobs: jobs.unwrap_or(1),
        trace,
        lint: match lint {
            Some("seed") => LintMode::Seed,
            Some("prune") => LintMode::Prune,
            _ => LintMode::Off,
        },
        ledger: ledger.clone(),
        ..Default::default()
    };
    if choice.process {
        // The bisection stage's Test queries evaluate in worker
        // subprocesses; the workflow's own row fan-out stays on
        // threads (the planner always runs in the coordinator).
        cfg.bisect = cfg
            .bisect
            .clone()
            .with_backend(choice.process_backend(&cfg.trace)?);
        if let Some(ledger) = &ledger {
            ledger.set_backend_label("process");
        }
    }
    let report = run_workflow(&app.program, &app.tests, &comps, &cfg)
        .map_err(|e| ParseError(format!("workflow failed: {e}")))?;

    let mut out = flit_core::workflow::render_workflow_report(app.name, &choice.note(), &report);
    if let Some(path) = trace_path {
        let jsonl = cfg.trace.snapshot().to_jsonl();
        // Atomic tmp-file + rename: a reader (or a crash mid-write) can
        // never observe a partially written trace export.
        flit_persist::write_atomic(std::path::Path::new(path), jsonl.as_bytes())
            .map_err(|e| ParseError(format!("cannot write trace `{path}`: {e}")))?;
        out.push_str(&format!(
            "trace: {} events written to {path} (render with `flit trace {path}`)\n",
            jsonl.lines().count()
        ));
    }
    if let Some(ledger) = &ledger {
        out.push_str(&ledger_footer(ledger));
    }
    Ok(out)
}

fn cmd_fuzz(
    seeds: (u64, u64),
    budget_secs: Option<u64>,
    shrink: bool,
    jobs: Option<usize>,
    trace_path: Option<&str>,
    process: bool,
) -> Result<String, ParseError> {
    let cfg = flit_fuzz::CampaignConfig {
        start: seeds.0,
        end: seeds.1,
        budget_secs,
        jobs: jobs.unwrap_or(8),
        shrink,
        process_cmd: if process { Some(worker_cmd()?) } else { None },
        ..flit_fuzz::CampaignConfig::default()
    };
    let trace = TraceSink::enabled();
    let result = flit_fuzz::run_campaign(&cfg, &trace);
    let mut out = flit_fuzz::render_report(&cfg, &result);
    if let Some(path) = trace_path {
        let jsonl = trace.snapshot().to_jsonl();
        flit_persist::write_atomic(std::path::Path::new(path), jsonl.as_bytes())
            .map_err(|e| ParseError(format!("cannot write trace `{path}`: {e}")))?;
        out.push_str(&format!(
            "\ntrace: {} events written to {path} (render with `flit trace {path}`)\n",
            jsonl.lines().count()
        ));
    }
    if result.clean() {
        Ok(out)
    } else {
        // A divergence is a pipeline bug: fail the process so CI trips.
        Err(ParseError(out))
    }
}

/// Map a daemon exchange onto the command result: transport failures
/// and the daemon's structured `Error` responses both become
/// `ParseError`s — never a panic, never a silent empty report.
fn daemon_response(
    what: &str,
    addr: &str,
    result: std::io::Result<flit_serve::protocol::Response>,
) -> Result<flit_serve::protocol::Response, ParseError> {
    match result {
        Ok(flit_serve::protocol::Response::Error { message }) => {
            Err(ParseError(format!("daemon refused {what}: {message}")))
        }
        Ok(response) => Ok(response),
        Err(e) => Err(ParseError(format!(
            "cannot reach a flit-serve daemon at `{addr}`: {e}"
        ))),
    }
}

fn cmd_submit(
    app: &str,
    connect: &str,
    tenant: &str,
    max_bisections: Option<usize>,
    jobs: Option<usize>,
) -> Result<String, ParseError> {
    let response = daemon_response(
        "the submission",
        connect,
        flit_serve::protocol::submit(connect, tenant, app, max_bisections, jobs),
    )?;
    match response {
        flit_serve::protocol::Response::Report { body, .. } => Ok(body),
        other => Err(ParseError(format!(
            "unexpected daemon response to a submission: {other:?}"
        ))),
    }
}

fn cmd_serve_status(connect: &str) -> Result<String, ParseError> {
    let response = daemon_response(
        "the status request",
        connect,
        flit_serve::protocol::status(connect),
    )?;
    let flit_serve::protocol::Response::Status(s) = response else {
        return Err(ParseError(format!(
            "unexpected daemon response to a status request: {response:?}"
        )));
    };
    let mut out = format!("flit-serve status ({connect})\n\n");
    out.push_str(&format!("protocol version: {}\n", s.version));
    out.push_str(&format!(
        "tenants ({}): {}\n",
        s.tenants.len(),
        if s.tenants.is_empty() {
            "-".to_string()
        } else {
            s.tenants.join(", ")
        }
    ));
    out.push_str(&format!(
        "submissions: {} accepted, {} completed, {} rejected\n",
        s.submissions, s.completed, s.rejected
    ));
    out.push_str(&format!(
        "fleet queries: {} executed, {} memoized, {} shared hits\n",
        s.fleet.executed, s.fleet.memoized, s.fleet.shared_hits
    ));
    match s.latency {
        Some(l) => out.push_str(&format!(
            "submit latency (simulated s): n={} mean={} ci{:.0}=[{}, {}] p95={}\n",
            l.n,
            fmt_f64(l.mean, 3),
            l.level * 100.0,
            fmt_f64(l.ci_lo, 3),
            fmt_f64(l.ci_hi, 3),
            fmt_f64(l.p95, 3)
        )),
        None => out.push_str("submit latency: no completed submissions yet\n"),
    }
    Ok(out)
}

fn cmd_serve_shutdown(connect: &str) -> Result<String, ParseError> {
    let response = daemon_response(
        "the shutdown request",
        connect,
        flit_serve::protocol::shutdown(connect),
    )?;
    match response {
        flit_serve::protocol::Response::ShutdownAck { completed } => Ok(format!(
            "daemon at {connect} drained and stopped ({completed} submissions completed)\n"
        )),
        other => Err(ParseError(format!(
            "unexpected daemon response to a shutdown request: {other:?}"
        ))),
    }
}

fn cmd_trace(file: &str, top: usize) -> Result<String, ParseError> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| ParseError(format!("cannot read trace `{file}`: {e}")))?;
    let trace =
        Trace::from_jsonl(&text).map_err(|e| ParseError(format!("bad trace `{file}`: {e}")))?;
    Ok(format!(
        "flit trace {file}\n\n{}",
        render_trace(&trace, top)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_cli(args: &[&str]) -> Result<String, ParseError> {
        let v: Vec<String> = args.iter().map(ToString::to_string).collect();
        execute(&parse(&v)?)
    }

    #[test]
    fn apps_lists_everything() {
        let out = run_cli(&["apps"]).unwrap();
        for name in app_names() {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn run_laghos_gcc_only() {
        let out = run_cli(&["run", "laghos", "--compiler", "gcc"]).unwrap();
        assert!(out.contains("laghos"));
        assert!(out.contains("68 compilations"));
    }

    #[test]
    fn run_json_emits_database() {
        let out = run_cli(&["run", "laghos", "--compiler", "xlc", "--json"]).unwrap();
        let db = flit_core::db::ResultsDb::from_json(&out).expect("valid JSON db");
        assert_eq!(db.app, "laghos");
        assert_eq!(db.rows.len(), 24); // 6 combos x 4 levels x 1 test
    }

    #[test]
    fn bisect_mfem_example13_blames_the_rank1_update() {
        let out = run_cli(&[
            "bisect",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ])
        .unwrap();
        assert!(out.contains("DenseMatrix_AddMultAAt"), "{out}");
        assert!(out.contains("linalg/densemat.cpp"));
    }

    #[test]
    fn bisect_with_jobs_reports_the_same_findings() {
        let args = [
            "bisect",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ];
        let serial = run_cli(&args).unwrap();
        let mut with_jobs = args.to_vec();
        with_jobs.extend(["--jobs", "8"]);
        let parallel = run_cli(&with_jobs).unwrap();
        // Identical reports modulo the header's jobs note.
        assert_eq!(
            parallel.replace(" | 8 jobs", ""),
            serial,
            "--jobs must not change the findings"
        );
    }

    #[test]
    fn certified_prune_matches_the_unpruned_findings_with_fewer_executions() {
        let args = [
            "bisect",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ];
        let plain = run_cli(&args).unwrap();
        let mut pruned_args = args.to_vec();
        pruned_args.extend(["--prune", "certified"]);
        let pruned = run_cli(&pruned_args).unwrap();
        assert!(pruned.contains(" | certified prune"), "{pruned}");
        let executions = |report: &str| -> u64 {
            report
                .lines()
                .find_map(|l| l.strip_prefix("program executions: "))
                .expect("executions line")
                .parse()
                .unwrap()
        };
        let strip = |report: &str| -> String {
            report
                .replace(" | certified prune", "")
                .lines()
                .filter(|l| !l.starts_with("program executions: "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // Same findings, strictly cheaper.
        assert_eq!(strip(&pruned), strip(&plain));
        assert!(
            executions(&pruned) < executions(&plain),
            "certified prune must reduce executions: {} vs {}",
            executions(&pruned),
            executions(&plain)
        );
        // Parallel certified prune is byte-identical to serial.
        let mut jobs_args = pruned_args.clone();
        jobs_args.extend(["--jobs", "8"]);
        let parallel = run_cli(&jobs_args).unwrap();
        assert_eq!(parallel.replace(" | 8 jobs", ""), pruned);
    }

    #[test]
    fn certified_prune_rejects_the_lint_prune_combination() {
        let err = run_cli(&[
            "bisect",
            "mfem",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
            "--prune",
            "certified",
            "--lint-prune",
        ])
        .unwrap_err();
        assert!(err.0.contains("different prune disciplines"), "{}", err.0);
    }

    #[test]
    fn bound_renders_certificates_for_a_pair() {
        let out = run_cli(&[
            "bound",
            "mfem",
            "--pair",
            "g++ -O2",
            "g++ -O3 -mavx2 -mfma -funsafe-math-optimizations",
        ])
        .unwrap();
        assert!(out.contains("whole pair: bounded"), "{out}");
        assert!(out.contains("Certified bounds — files"), "{out}");
        assert!(out.contains("Certified bounds — symbols"), "{out}");
        assert!(out.contains("linalg/vector.cpp"), "{out}");
        // Identical compilations have nothing to certify.
        let err = run_cli(&["bound", "mfem", "--pair", "g++ -O2", "g++ -O2"]).unwrap_err();
        assert!(err.0.contains("distinct"), "{}", err.0);
    }

    #[test]
    fn bound_writes_a_trace_with_absint_counters() {
        let path = std::env::temp_dir().join("flit-cli-bound-trace.jsonl");
        std::fs::remove_file(&path).ok();
        let path_s = path.to_string_lossy().to_string();
        let out = run_cli(&[
            "bound",
            "laghos",
            "--pair",
            "g++ -O2",
            "g++ -O3 -mavx2 -mfma -funsafe-math-optimizations",
            "--trace",
            &path_s,
        ])
        .unwrap();
        assert!(out.contains("trace:"), "{out}");
        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(jsonl.contains("absint.certified"), "{jsonl}");
        let rendered = run_cli(&["trace", &path_s]).unwrap();
        assert!(rendered.contains("Certified bounds (absint)"), "{rendered}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpointed_bisect_resumes_with_zero_live_executions() {
        let path = std::env::temp_dir().join("flit-cli-bisect-journal.jsonl");
        std::fs::remove_file(&path).ok();
        let path_s = path.to_string_lossy().to_string();
        let args = [
            "bisect",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ];
        let plain = run_cli(&args).unwrap();
        let mut ck = args.to_vec();
        ck.extend(["--checkpoint", &path_s]);
        let first = run_cli(&ck).unwrap();
        // The journal footer is additive: the findings are unchanged.
        assert!(first.starts_with(&plain), "{first}");
        assert!(first.contains("journal:"), "{first}");
        let mut rs = args.to_vec();
        rs.extend(["--resume", &path_s]);
        let resumed = run_cli(&rs).unwrap();
        // Every answer replays from the journal; nothing runs live.
        assert!(resumed.starts_with(&plain), "{resumed}");
        assert!(resumed.contains("journal: 0 executed"), "{resumed}");
        let mut both = ck.clone();
        both.extend(["--resume", &path_s]);
        assert!(
            run_cli(&both).is_err(),
            "--checkpoint + --resume must error"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpointed_workflow_resumes_with_zero_live_executions() {
        let path = std::env::temp_dir().join("flit-cli-workflow-journal.jsonl");
        std::fs::remove_file(&path).ok();
        let path_s = path.to_string_lossy().to_string();
        let base = ["workflow", "laghos", "--max-bisections", "3"];
        let plain = run_cli(&base).unwrap();
        let mut ck = base.to_vec();
        ck.extend(["--checkpoint", &path_s]);
        let first = run_cli(&ck).unwrap();
        assert!(first.starts_with(&plain), "{first}");
        let mut rs = base.to_vec();
        rs.extend(["--resume", &path_s]);
        let resumed = run_cli(&rs).unwrap();
        assert!(resumed.starts_with(&plain), "{resumed}");
        assert!(resumed.contains("journal: 0 executed"), "{resumed}");
        // Resuming under a different program is a structured error.
        let err = run_cli(&["workflow", "mfem", "--resume", &path_s]).unwrap_err();
        assert!(err.0.contains("fingerprint"), "{}", err.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perf_mfem_blames_the_transcendental_kernel_exactly() {
        let out = run_cli(&[
            "perf",
            "mfem",
            "--test",
            "ex09",
            "--pair",
            "icpc -O2",
            "icpc -O2 -fimf-precision=high",
        ])
        .unwrap();
        // `-fimf-precision=high` slows exactly one kernel class
        // (Transcendental); the planted blame is the single vendor-math
        // kernel reached by the compute-dominated ex09.
        assert!(out.contains("files  (1):"), "{out}");
        assert!(out.contains("fem/coefficient.cpp"), "{out}");
        assert!(out.contains("symbols (1):"), "{out}");
        assert!(out.contains("SineCoefficient_Eval"), "{out}");
        assert!(out.contains("overall:"), "{out}");
        // Every speedup claim carries a confidence interval and a
        // verdict — no bare point estimates in the perf path.
        let claims: Vec<&str> = out.lines().filter(|l| l.contains("x  CI [")).collect();
        assert!(claims.len() >= 3, "{out}");
        for line in claims {
            assert!(
                line.contains("Slower") || line.contains("Faster") || line.contains("Inconclusive"),
                "claim without a verdict: {line}"
            );
            assert!(line.contains("@95%"), "claim without a CI level: {line}");
        }
    }

    #[test]
    fn perf_with_jobs_is_byte_identical() {
        let args = [
            "perf",
            "mfem",
            "--test",
            "ex09",
            "--pair",
            "icpc -O2",
            "icpc -O2 -fimf-precision=high",
        ];
        let serial = run_cli(&args).unwrap();
        let mut with_jobs = args.to_vec();
        with_jobs.extend(["--jobs", "8"]);
        let parallel = run_cli(&with_jobs).unwrap();
        assert_eq!(
            parallel.replace(" | 8 jobs", ""),
            serial,
            "--jobs must not change the perf findings"
        );
    }

    #[test]
    fn perf_faster_candidate_is_an_honest_no_regression() {
        // Swapping the pair turns the regression into a speedup: the
        // gate reports FASTER instead of inventing blame.
        let out = run_cli(&[
            "perf",
            "mfem",
            "--test",
            "ex09",
            "--pair",
            "icpc -O2 -fimf-precision=high",
            "icpc -O2",
        ])
        .unwrap();
        assert!(out.contains("no regression"), "{out}");
        assert!(out.contains("FASTER"), "{out}");
        assert!(out.contains("x  CI ["), "{out}");
    }

    #[test]
    fn perf_trace_renders_the_performance_bisect_table() {
        let path = std::env::temp_dir().join("flit-cli-perf-trace.jsonl");
        std::fs::remove_file(&path).ok();
        let path_s = path.to_string_lossy().to_string();
        run_cli(&[
            "perf",
            "mfem",
            "--test",
            "ex09",
            "--pair",
            "icpc -O2",
            "icpc -O2 -fimf-precision=high",
            "--trace",
            &path_s,
        ])
        .unwrap();
        let rendered = run_cli(&["trace", &path_s]).unwrap();
        assert!(rendered.contains("Performance bisect"), "{rendered}");
        assert!(rendered.contains("verdicts: slower"), "{rendered}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_mfem_predicts_the_blamed_kernel() {
        let out = run_cli(&[
            "lint",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ])
        .unwrap();
        assert!(out.contains("Predicted-variable files"), "{out}");
        assert!(out.contains("linalg/densemat.cpp"), "{out}");
        assert!(out.contains("DenseMatrix_AddMultAAt"), "{out}");
    }

    #[test]
    fn lint_defaults_are_usable_end_to_end() {
        let out = run_cli(&["lint", "mfem"]).unwrap();
        assert!(out.contains("Predicted-variable symbols"), "{out}");
    }

    #[test]
    fn lint_seeded_bisect_reports_identical_findings() {
        let args = [
            "bisect",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ];
        let plain = run_cli(&args).unwrap();
        let mut seeded_args = args.to_vec();
        seeded_args.push("--lint-seed");
        let seeded = run_cli(&seeded_args).unwrap();
        assert_eq!(
            seeded.replace(" | lint seed", ""),
            plain,
            "--lint-seed must not change the report"
        );
    }

    #[test]
    fn lint_pruned_bisect_finds_the_same_blame_set() {
        let args = [
            "bisect",
            "mfem",
            "--test",
            "ex13",
            "--compilation",
            "g++ -O3 -mavx2 -mfma",
        ];
        let plain = run_cli(&args).unwrap();
        let mut pruned_args = args.to_vec();
        pruned_args.push("--lint-prune");
        let pruned = run_cli(&pruned_args).unwrap();
        // Pruning adds verification executions, so compare the findings
        // rather than the whole report.
        for line in plain.lines().filter(|l| l.contains("Test = ")) {
            assert!(pruned.contains(line), "missing `{line}` in:\n{pruned}");
        }
        assert!(
            !pruned.contains("assumption violations"),
            "prune verification must agree on mfem:\n{pruned}"
        );
    }

    #[test]
    fn bisect_biggest_limits_the_find() {
        let out = run_cli(&[
            "bisect",
            "mfem",
            "--test",
            "ex08",
            "--compilation",
            "g++ -O3 -funsafe-math-optimizations",
            "--biggest",
            "1",
        ])
        .unwrap();
        assert!(out.contains("symbols (1)"), "{out}");
    }

    #[test]
    fn workflow_laghos_names_the_viscosity_gate() {
        let out = run_cli(&["workflow", "laghos", "--max-bisections", "6"]).unwrap();
        assert!(out.contains("determinism pre-check: passed"), "{out}");
        assert!(out.contains("QUpdate_Viscosity"), "{out}");
    }

    #[test]
    fn fuzz_campaign_runs_clean_and_traces() {
        let path = std::env::temp_dir().join("flit-cli-fuzz-test.jsonl");
        let path_s = path.to_string_lossy().to_string();
        let out = run_cli(&["fuzz", "--seeds", "0..3", "--jobs", "2", "--trace", &path_s]).unwrap();
        assert!(out.contains("no divergences"), "{out}");
        assert!(out.contains("events written"), "{out}");
        let rendered = run_cli(&["trace", &path_s]).unwrap();
        assert!(rendered.contains("Fuzz campaign"), "{rendered}");
        assert!(rendered.contains("seeds run"), "{rendered}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn workflow_trace_round_trips_through_flit_trace() {
        let path = std::env::temp_dir().join("flit-cli-trace-test.jsonl");
        let path_s = path.to_string_lossy().to_string();
        let out = run_cli(&[
            "workflow",
            "laghos",
            "--max-bisections",
            "2",
            "--trace",
            &path_s,
        ])
        .unwrap();
        assert!(out.contains("events written"), "{out}");
        let rendered = run_cli(&["trace", &path_s, "--top", "3"]).unwrap();
        assert!(rendered.contains("Trace summary by phase"), "{rendered}");
        assert!(rendered.contains("sweep"), "{rendered}");
        assert!(
            rendered.contains("Bisect executions by level"),
            "{rendered}"
        );
        assert!(rendered.contains("Build-cache hit rates"), "{rendered}");
        assert!(
            !rendered.contains("Static prescreen (lint)"),
            "lint section must be absent without --lint: {rendered}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_seeded_workflow_trace_shows_lint_counters() {
        let path = std::env::temp_dir().join("flit-cli-lint-trace-test.jsonl");
        let path_s = path.to_string_lossy().to_string();
        run_cli(&[
            "workflow",
            "laghos",
            "--max-bisections",
            "2",
            "--lint",
            "seed",
            "--trace",
            &path_s,
        ])
        .unwrap();
        let rendered = run_cli(&["trace", &path_s, "--top", "3"]).unwrap();
        assert!(
            rendered.contains("Static prescreen (lint)"),
            "lint.* counters must surface in flit trace: {rendered}"
        );
        assert!(rendered.contains("functions analyzed"), "{rendered}");
        std::fs::remove_file(&path).ok();
        assert!(run_cli(&["workflow", "laghos", "--lint", "turbo"]).is_err());
    }

    #[test]
    fn trace_command_reports_missing_and_bad_files() {
        assert!(run_cli(&["trace", "/nonexistent/x.jsonl"])
            .unwrap_err()
            .0
            .contains("cannot read trace"));
        let path = std::env::temp_dir().join("flit-cli-bad-trace.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = run_cli(&["trace", &path.to_string_lossy()]).unwrap_err();
        assert!(err.0.contains("bad trace"), "{}", err.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run_cli(&["run", "doom"])
            .unwrap_err()
            .0
            .contains("unknown application"));
        assert!(run_cli(&["bisect", "mfem", "--compilation", "tcc -O9"])
            .unwrap_err()
            .0
            .contains("unknown compilation"));
        assert!(run_cli(&["inject", "mfem"])
            .unwrap_err()
            .0
            .contains("no injectable"));
    }
}
