//! Hand-rolled argument parsing (no external dependency; the surface is
//! small and stable).

use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// The `flit` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List bundled applications.
    Apps,
    /// Sweep the compilation matrix for one application.
    Run {
        /// Application name.
        app: String,
        /// Restrict to one compiler (`gcc`, `clang`, `icpc`, `xlc`).
        compiler: Option<String>,
        /// Emit the results database as JSON instead of a table.
        json: bool,
    },
    /// Performance-vs-reproducibility analysis.
    Analyze {
        /// Application name.
        app: String,
    },
    /// Hierarchical File → Symbol bisection of one variable compilation.
    Bisect {
        /// Application name.
        app: String,
        /// Test name (defaults to the app's first test).
        test: Option<String>,
        /// The variable compilation, e.g. `"icpc -O2"` or
        /// `"g++ -O3 -mavx2 -mfma"`.
        compilation: String,
        /// `BisectBiggest(k)` instead of the verifying `BisectAll`.
        biggest: Option<usize>,
        /// Worker threads for the search's Test queries (1 = the serial
        /// algorithm; the result is identical either way).
        jobs: Option<usize>,
        /// Seed speculation from the static prescreen (identical
        /// findings, fewer Test executions).
        lint_seed: bool,
        /// Additionally prune statically-clean files/symbols (adds a
        /// dynamic verification probe; implies seeding).
        lint_prune: bool,
        /// `--prune certified`: drop `Invariant`-certified items using
        /// sound bounds from the abstract interpreter (found sets stay
        /// byte-identical; a single residual audit replaces the lint
        /// prune's two-execution probe).
        prune: Option<String>,
        /// Journal every completed Test answer to this file (atomic
        /// appends; safe to kill the process at any point).
        checkpoint: Option<String>,
        /// Replay a checkpoint journal before issuing any live query,
        /// continuing a killed search exactly where it stopped.
        resume: Option<String>,
        /// Execution backend for Test queries: `threads` (default) or
        /// `process` (coordinator + `flit worker` subprocesses).
        backend: Option<String>,
        /// Worker count for the process backend.
        workers: Option<usize>,
        /// Deterministic worker-kill schedule (testing): the i-th
        /// spawned worker exits right before its n_i-th answer.
        kill_workers: Option<Vec<u64>>,
    },
    /// Statistical performance bisect: confirm a compilation is slower
    /// than another, then root-cause the slowdown to files and symbols
    /// with a confidence interval and Welch verdict on every claim.
    Perf {
        /// Application name.
        app: String,
        /// Test name (defaults to the app's first test).
        test: Option<String>,
        /// Baseline compilation label, e.g. `"icpc -O2"`.
        base: String,
        /// Candidate compilation label, e.g. `"icpc -O2 -prec-div"`.
        candidate: String,
        /// Timing samples per executable (default 8).
        samples: Option<usize>,
        /// Significance level for the Welch tests (default 0.05).
        alpha: Option<f64>,
        /// Noise-model seed (default 42).
        seed: Option<u64>,
        /// Worker threads for the search's timing queries (the result
        /// is byte-identical at any width).
        jobs: Option<usize>,
        /// Write a JSONL trace of the search here.
        trace: Option<String>,
        /// Execution backend for timing queries: `threads` (default) or
        /// `process`.
        backend: Option<String>,
        /// Worker count for the process backend.
        workers: Option<usize>,
        /// Deterministic worker-kill schedule (testing).
        kill_workers: Option<Vec<u64>>,
    },
    /// Certified per-pair divergence bounds: run the abstract
    /// interpreter over one compilation pair and print every item's
    /// certificate without executing anything.
    Bound {
        /// Application name.
        app: String,
        /// Test name scoping the driver (defaults to the app's first
        /// test).
        test: Option<String>,
        /// Baseline compilation label, e.g. `"g++ -O0"`.
        base: String,
        /// Candidate compilation label, e.g. `"g++ -O3 -mavx2 -mfma"`.
        candidate: String,
        /// Write a JSONL trace (with `absint.*` counters) here.
        trace: Option<String>,
    },
    /// Static FP-sensitivity analysis: predict the variable set for a
    /// compilation pair without running anything.
    Lint {
        /// Application name.
        app: String,
        /// Test name scoping reachability (defaults to the app's first
        /// test).
        test: Option<String>,
        /// The variable compilation (defaults to
        /// `g++ -O3 -mavx2 -mfma -funsafe-math-optimizations`).
        compilation: Option<String>,
    },
    /// Run the perturbation-injection study.
    Inject {
        /// Application name.
        app: String,
        /// Cap the number of sites (all four OP's still run per site).
        limit: Option<usize>,
    },
    /// The full Figure-1 workflow: determinism check → sweep → analysis
    /// → bisect everything variable.
    Workflow {
        /// Application name.
        app: String,
        /// Cap on bisections (default: all).
        max_bisections: Option<usize>,
        /// Worker threads for the bisection stage (searches fan out on
        /// one shared executor; the report is identical at any width).
        jobs: Option<usize>,
        /// Write a JSONL trace of the whole workflow here.
        trace: Option<String>,
        /// Static prescreen mode for the bisection stage: `seed` or
        /// `prune` (default: off).
        lint: Option<String>,
        /// Journal every completed bisection Test answer to this file.
        checkpoint: Option<String>,
        /// Replay a checkpoint journal before the bisection stage.
        resume: Option<String>,
        /// Execution backend for the bisection stage's Test queries:
        /// `threads` (default) or `process`.
        backend: Option<String>,
        /// Worker count for the process backend.
        workers: Option<usize>,
        /// Deterministic worker-kill schedule (testing).
        kill_workers: Option<Vec<u64>>,
    },
    /// Generative differential-testing campaign: random codebases with
    /// planted blame sets, checked against the whole pipeline.
    Fuzz {
        /// Seed range, inclusive start, exclusive end.
        seeds: (u64, u64),
        /// Wall-clock budget in seconds (default: run the whole range).
        budget_secs: Option<u64>,
        /// Shrink divergent seeds and print fixture snippets.
        shrink: bool,
        /// Width of the parallel cross-check (default 8; 1 skips it).
        jobs: Option<usize>,
        /// Write a JSONL trace of the campaign here.
        trace: Option<String>,
        /// `process` additionally cross-checks every corpus seed
        /// against `flit worker` subprocesses (default: threads only).
        backend: Option<String>,
    },
    /// Summarize a JSONL trace produced by `flit workflow --trace`.
    Trace {
        /// Path to the JSONL trace file.
        file: String,
        /// How many slowest compilations to show (default 10).
        top: Option<usize>,
    },
    /// Serve Test/Time queries over stdin/stdout for a coordinator
    /// (the worker half of the `process` execution backend).
    Worker,
    /// The multi-tenant workflow daemon and its control endpoints.
    Serve {
        /// Listen address (e.g. `127.0.0.1:7070`, port 0 for
        /// ephemeral). Present = run the daemon (blocks until a
        /// shutdown request drains it).
        listen: Option<String>,
        /// Query a running daemon's fleet status instead.
        status: bool,
        /// Drain and stop a running daemon instead.
        shutdown: bool,
        /// Daemon address for `--status` / `--shutdown`.
        connect: Option<String>,
        /// Root of the daemon's persistent state (per-tenant journals
        /// live under `<dir>/tenants/`). Default `flit-serve-state`.
        state_dir: Option<String>,
        /// Concurrent submissions executed (runner threads).
        max_inflight: Option<usize>,
        /// Execution backend for submissions' bisection queries:
        /// `threads` (default) or `process` (one shared worker pool,
        /// drained at shutdown).
        backend: Option<String>,
        /// Worker count for the process backend.
        workers: Option<usize>,
        /// Export the daemon's JSONL trace here during shutdown drain
        /// (render with `flit trace`; includes the Fleet table).
        trace: Option<String>,
    },
    /// Submit one workflow to a running daemon and print the report.
    Submit {
        /// Application name.
        app: String,
        /// Daemon address.
        connect: String,
        /// Tenant id (namespaces the daemon-side checkpoint journal).
        tenant: String,
        /// Cap on bisections (default: all).
        max_bisections: Option<usize>,
        /// Worker threads for the workflow's bisection stage.
        jobs: Option<usize>,
    },
    /// Print usage.
    Help,
}

/// A parse failure, with a message for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text.
pub const USAGE: &str = "\
flit — compiler-induced variability tester (FLiT reproduction)

USAGE:
  flit apps
  flit run <app> [--compiler gcc|clang|icpc|xlc] [--json]
  flit analyze <app>
  flit bisect <app> --compilation \"<compiler -On [flags]>\" [--test <name>] [--biggest <k>] [--jobs <n>] [--lint-seed] [--lint-prune] [--prune certified] [--checkpoint <file.jsonl>] [--resume <file.jsonl>] [--backend threads|process] [--workers <n>]
  flit perf <app> --pair \"<base>\" \"<candidate>\" [--test <name>] [--samples <n>] [--alpha <a>] [--seed <s>] [--jobs <n>] [--trace <file.jsonl>] [--backend threads|process] [--workers <n>]
  flit bound <app> --pair \"<base>\" \"<candidate>\" [--test <name>] [--trace <file.jsonl>]
  flit lint <app> [--compilation \"<compiler -On [flags]>\"] [--test <name>]
  flit inject <app> [--limit <n-sites>]
  flit workflow <app> [--max-bisections <n>] [--jobs <n>] [--trace <file.jsonl>] [--lint seed|prune] [--checkpoint <file.jsonl>] [--resume <file.jsonl>] [--backend threads|process] [--workers <n>]
  flit fuzz --seeds <a>..<b> [--budget-secs <n>] [--shrink] [--jobs <n>] [--trace <file.jsonl>] [--backend threads|process]
  flit trace <file.jsonl> [--top <n>]
  flit serve --listen <addr> [--state-dir <dir>] [--max-inflight <n>] [--backend threads|process] [--workers <n>] [--trace <file.jsonl>]
  flit serve --status --connect <addr>
  flit serve --shutdown --connect <addr>
  flit submit <app> --connect <addr> --tenant <id> [--max-bisections <n>] [--jobs <n>]
  flit worker
  flit help

The `process` backend evaluates Test/timing queries in `flit worker`
subprocesses (crash-isolated; results byte-identical to serial).
`--kill-workers n1,n2,...` installs a deterministic worker-kill
schedule for recovery testing.
";

/// Parse a command line (excluding the program name).
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut it = args.iter();
    let cmd = it.next().map_or("help", String::as_str);
    let rest: Vec<&String> = it.collect();
    let flag_value = |name: &str| -> Option<String> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(ToString::to_string)
    };
    let has_flag = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let positional = || -> Result<String, ParseError> {
        rest.first()
            .filter(|a| !a.starts_with("--"))
            .map(ToString::to_string)
            .ok_or_else(|| ParseError(format!("`{cmd}` needs an application name\n\n{USAGE}")))
    };

    let num_flag = |name: &str| -> Result<Option<usize>, ParseError> {
        match flag_value(name) {
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| ParseError(format!("{name} takes a number, got `{v}`"))),
            None => Ok(None),
        }
    };

    let backend_flag = || -> Result<Option<String>, ParseError> {
        match flag_value("--backend") {
            Some(v) if v == "threads" || v == "process" => Ok(Some(v)),
            Some(v) => Err(ParseError(format!(
                "--backend takes `threads` or `process`, got `{v}`"
            ))),
            None => Ok(None),
        }
    };
    let kill_flag = || -> Result<Option<Vec<u64>>, ParseError> {
        match flag_value("--kill-workers") {
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim().parse::<u64>().map_err(|_| {
                        ParseError(format!(
                            "--kill-workers takes comma-separated counts like 1,2,1, got `{v}`"
                        ))
                    })
                })
                .collect::<Result<Vec<u64>, ParseError>>()
                .map(Some),
            None => Ok(None),
        }
    };

    let pair_labels = || -> Result<(String, String), ParseError> {
        let pair_at = rest
            .iter()
            .position(|a| a.as_str() == "--pair")
            .ok_or_else(|| {
                ParseError(format!(
                    "`{cmd}` needs --pair \"<base>\" \"<candidate>\"\n\n{USAGE}"
                ))
            })?;
        let pair_label = |off: usize| -> Result<String, ParseError> {
            rest.get(pair_at + off)
                .filter(|a| !a.starts_with("--"))
                .map(ToString::to_string)
                .ok_or_else(|| {
                    ParseError(format!("--pair takes two compilation labels\n\n{USAGE}"))
                })
        };
        Ok((pair_label(1)?, pair_label(2)?))
    };

    let command = match cmd {
        "apps" => Command::Apps,
        "run" => Command::Run {
            app: positional()?,
            compiler: flag_value("--compiler"),
            json: has_flag("--json"),
        },
        "analyze" => Command::Analyze { app: positional()? },
        "bisect" => {
            let compilation = flag_value("--compilation")
                .ok_or_else(|| ParseError(format!("`bisect` needs --compilation\n\n{USAGE}")))?;
            let prune = flag_value("--prune");
            if let Some(mode) = &prune {
                if mode != "certified" {
                    return Err(ParseError(format!(
                        "--prune takes `certified`, got `{mode}` (for the static prescreen use --lint-prune)"
                    )));
                }
            }
            Command::Bisect {
                app: positional()?,
                test: flag_value("--test"),
                compilation,
                biggest: num_flag("--biggest")?,
                jobs: num_flag("--jobs")?,
                lint_seed: has_flag("--lint-seed"),
                lint_prune: has_flag("--lint-prune"),
                prune,
                checkpoint: flag_value("--checkpoint"),
                resume: flag_value("--resume"),
                backend: backend_flag()?,
                workers: num_flag("--workers")?,
                kill_workers: kill_flag()?,
            }
        }
        "perf" => {
            let (base, candidate) = pair_labels()?;
            let alpha = match flag_value("--alpha") {
                Some(v) => Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|a| *a > 0.0 && *a < 1.0)
                        .ok_or_else(|| {
                            ParseError(format!("--alpha takes a number in (0, 1), got `{v}`"))
                        })?,
                ),
                None => None,
            };
            let seed = match flag_value("--seed") {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| ParseError(format!("--seed takes a number, got `{v}`")))?,
                ),
                None => None,
            };
            Command::Perf {
                app: positional()?,
                test: flag_value("--test"),
                base,
                candidate,
                samples: num_flag("--samples")?,
                alpha,
                seed,
                jobs: num_flag("--jobs")?,
                trace: flag_value("--trace"),
                backend: backend_flag()?,
                workers: num_flag("--workers")?,
                kill_workers: kill_flag()?,
            }
        }
        "bound" => {
            let (base, candidate) = pair_labels()?;
            Command::Bound {
                app: positional()?,
                test: flag_value("--test"),
                base,
                candidate,
                trace: flag_value("--trace"),
            }
        }
        "lint" => Command::Lint {
            app: positional()?,
            test: flag_value("--test"),
            compilation: flag_value("--compilation"),
        },
        "inject" => Command::Inject {
            app: positional()?,
            limit: num_flag("--limit")?,
        },
        "workflow" => {
            let lint = flag_value("--lint");
            if let Some(mode) = &lint {
                if mode != "seed" && mode != "prune" {
                    return Err(ParseError(format!(
                        "--lint takes `seed` or `prune`, got `{mode}`"
                    )));
                }
            }
            Command::Workflow {
                app: positional()?,
                max_bisections: num_flag("--max-bisections")?,
                jobs: num_flag("--jobs")?,
                trace: flag_value("--trace"),
                lint,
                checkpoint: flag_value("--checkpoint"),
                resume: flag_value("--resume"),
                backend: backend_flag()?,
                workers: num_flag("--workers")?,
                kill_workers: kill_flag()?,
            }
        }
        "fuzz" => {
            let spec = flag_value("--seeds")
                .ok_or_else(|| ParseError(format!("`fuzz` needs --seeds <a>..<b>\n\n{USAGE}")))?;
            let seeds = spec
                .split_once("..")
                .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)))
                .filter(|(a, b)| a < b)
                .ok_or_else(|| {
                    ParseError(format!(
                        "--seeds takes an ascending range like 0..1000, got `{spec}`"
                    ))
                })?;
            let budget_secs =
                match flag_value("--budget-secs") {
                    Some(v) => Some(v.parse::<u64>().map_err(|_| {
                        ParseError(format!("--budget-secs takes a number, got `{v}`"))
                    })?),
                    None => None,
                };
            Command::Fuzz {
                seeds,
                budget_secs,
                shrink: has_flag("--shrink"),
                jobs: num_flag("--jobs")?,
                trace: flag_value("--trace"),
                backend: backend_flag()?,
            }
        }
        "trace" => {
            let file = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .map(ToString::to_string)
                .ok_or_else(|| ParseError(format!("`trace` needs a trace file\n\n{USAGE}")))?;
            Command::Trace {
                file,
                top: num_flag("--top")?,
            }
        }
        "serve" => {
            let listen = flag_value("--listen");
            let status = has_flag("--status");
            let shutdown = has_flag("--shutdown");
            let modes = usize::from(listen.is_some()) + usize::from(status) + usize::from(shutdown);
            if modes != 1 {
                return Err(ParseError(format!(
                    "`serve` takes exactly one of --listen <addr>, --status, --shutdown\n\n{USAGE}"
                )));
            }
            let connect = flag_value("--connect");
            if (status || shutdown) && connect.is_none() {
                return Err(ParseError(format!(
                    "`serve --status`/`--shutdown` need --connect <addr>\n\n{USAGE}"
                )));
            }
            Command::Serve {
                listen,
                status,
                shutdown,
                connect,
                state_dir: flag_value("--state-dir"),
                max_inflight: num_flag("--max-inflight")?,
                backend: backend_flag()?,
                workers: num_flag("--workers")?,
                trace: flag_value("--trace"),
            }
        }
        "submit" => {
            let connect = flag_value("--connect")
                .ok_or_else(|| ParseError(format!("`submit` needs --connect <addr>\n\n{USAGE}")))?;
            let tenant = flag_value("--tenant")
                .ok_or_else(|| ParseError(format!("`submit` needs --tenant <id>\n\n{USAGE}")))?;
            Command::Submit {
                app: positional()?,
                connect,
                tenant,
                max_bisections: num_flag("--max-bisections")?,
                jobs: num_flag("--jobs")?,
            }
        }
        "worker" => Command::Worker,
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(ParseError(format!("unknown command `{other}`\n\n{USAGE}"))),
    };
    Ok(Cli { command })
}

/// Parse a compilation label like `"icpc -O2 -fp-model fast=2"` back
/// into a [`flit_toolchain::compilation::Compilation`], by matching
/// against the known matrix (plus the xlc catalog).
pub fn parse_compilation(
    label: &str,
) -> Result<flit_toolchain::compilation::Compilation, ParseError> {
    use flit_toolchain::compilation::compilation_matrix;
    use flit_toolchain::compiler::CompilerKind;
    let all = [
        CompilerKind::Gcc,
        CompilerKind::Clang,
        CompilerKind::Icpc,
        CompilerKind::Xlc,
    ];
    let norm = label.split_whitespace().collect::<Vec<_>>().join(" ");
    for compiler in all {
        for comp in compilation_matrix(compiler) {
            if comp.label() == norm {
                return Ok(comp);
            }
        }
    }
    Err(ParseError(format!(
        "unknown compilation `{label}` (expected e.g. \"g++ -O3 -mavx2 -mfma\" from the study matrix)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_all_subcommands() {
        assert_eq!(parse(&v(&["apps"])).unwrap().command, Command::Apps);
        assert_eq!(
            parse(&v(&["run", "mfem", "--compiler", "gcc", "--json"]))
                .unwrap()
                .command,
            Command::Run {
                app: "mfem".into(),
                compiler: Some("gcc".into()),
                json: true
            }
        );
        assert_eq!(
            parse(&v(&["analyze", "laghos"])).unwrap().command,
            Command::Analyze {
                app: "laghos".into()
            }
        );
        assert_eq!(
            parse(&v(&[
                "bisect",
                "mfem",
                "--test",
                "ex13",
                "--compilation",
                "icpc -O2",
                "--biggest",
                "2",
                "--jobs",
                "8"
            ]))
            .unwrap()
            .command,
            Command::Bisect {
                app: "mfem".into(),
                test: Some("ex13".into()),
                compilation: "icpc -O2".into(),
                biggest: Some(2),
                jobs: Some(8),
                lint_seed: false,
                lint_prune: false,
                prune: None,
                checkpoint: None,
                resume: None,
                backend: None,
                workers: None,
                kill_workers: None,
            }
        );
        assert_eq!(
            parse(&v(&[
                "bisect",
                "mfem",
                "--compilation",
                "icpc -O2",
                "--lint-seed",
                "--lint-prune"
            ]))
            .unwrap()
            .command,
            Command::Bisect {
                app: "mfem".into(),
                test: None,
                compilation: "icpc -O2".into(),
                biggest: None,
                jobs: None,
                lint_seed: true,
                lint_prune: true,
                prune: None,
                checkpoint: None,
                resume: None,
                backend: None,
                workers: None,
                kill_workers: None,
            }
        );
        assert_eq!(
            parse(&v(&["lint", "mfem", "--test", "ex13"]))
                .unwrap()
                .command,
            Command::Lint {
                app: "mfem".into(),
                test: Some("ex13".into()),
                compilation: None,
            }
        );
        assert_eq!(
            parse(&v(&["inject", "lulesh", "--limit", "10"]))
                .unwrap()
                .command,
            Command::Inject {
                app: "lulesh".into(),
                limit: Some(10)
            }
        );
        assert_eq!(
            parse(&v(&[
                "workflow",
                "laghos",
                "--max-bisections",
                "3",
                "--jobs",
                "4",
                "--trace",
                "wf.jsonl"
            ]))
            .unwrap()
            .command,
            Command::Workflow {
                app: "laghos".into(),
                max_bisections: Some(3),
                jobs: Some(4),
                trace: Some("wf.jsonl".into()),
                lint: None,
                checkpoint: None,
                resume: None,
                backend: None,
                workers: None,
                kill_workers: None,
            }
        );
        assert_eq!(
            parse(&v(&["trace", "wf.jsonl", "--top", "5"]))
                .unwrap()
                .command,
            Command::Trace {
                file: "wf.jsonl".into(),
                top: Some(5)
            }
        );
        assert_eq!(
            parse(&v(&[
                "fuzz",
                "--seeds",
                "0..1000",
                "--budget-secs",
                "60",
                "--shrink",
                "--jobs",
                "4",
                "--trace",
                "fuzz.jsonl"
            ]))
            .unwrap()
            .command,
            Command::Fuzz {
                seeds: (0, 1000),
                budget_secs: Some(60),
                shrink: true,
                jobs: Some(4),
                trace: Some("fuzz.jsonl".into()),
                backend: None,
            }
        );
        assert_eq!(
            parse(&v(&["fuzz", "--seeds", "7..13"])).unwrap().command,
            Command::Fuzz {
                seeds: (7, 13),
                budget_secs: None,
                shrink: false,
                jobs: None,
                trace: None,
                backend: None,
            }
        );
        assert_eq!(parse(&v(&[])).unwrap().command, Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_certified_prune_and_the_bound_subcommand() {
        match parse(&v(&[
            "bisect",
            "mfem",
            "--compilation",
            "icpc -O2",
            "--prune",
            "certified",
        ]))
        .unwrap()
        .command
        {
            Command::Bisect { prune, .. } => assert_eq!(prune.as_deref(), Some("certified")),
            other => panic!("parsed {other:?}"),
        }
        // Any other prune mode is rejected.
        assert!(parse(&v(&[
            "bisect",
            "mfem",
            "--compilation",
            "icpc -O2",
            "--prune",
            "lint"
        ]))
        .is_err());

        assert_eq!(
            parse(&v(&[
                "bound",
                "mfem",
                "--test",
                "ex13",
                "--pair",
                "g++ -O0",
                "g++ -O3 -mavx2 -mfma",
                "--trace",
                "bound.jsonl"
            ]))
            .unwrap()
            .command,
            Command::Bound {
                app: "mfem".into(),
                test: Some("ex13".into()),
                base: "g++ -O0".into(),
                candidate: "g++ -O3 -mavx2 -mfma".into(),
                trace: Some("bound.jsonl".into()),
            }
        );
        // Missing or one-label pairs fail, same as perf.
        assert!(parse(&v(&["bound", "mfem"])).is_err());
        assert!(parse(&v(&["bound", "mfem", "--pair", "g++ -O0"])).is_err());
    }

    #[test]
    fn parses_perf_with_a_pair_and_protocol_flags() {
        assert_eq!(
            parse(&v(&[
                "perf",
                "mfem",
                "--test",
                "ex19",
                "--pair",
                "icpc -O2",
                "icpc -O2 -prec-div",
                "--samples",
                "16",
                "--alpha",
                "0.01",
                "--seed",
                "7",
                "--jobs",
                "8",
                "--trace",
                "perf.jsonl"
            ]))
            .unwrap()
            .command,
            Command::Perf {
                app: "mfem".into(),
                test: Some("ex19".into()),
                base: "icpc -O2".into(),
                candidate: "icpc -O2 -prec-div".into(),
                samples: Some(16),
                alpha: Some(0.01),
                seed: Some(7),
                jobs: Some(8),
                trace: Some("perf.jsonl".into()),
                backend: None,
                workers: None,
                kill_workers: None,
            }
        );
        assert_eq!(
            parse(&v(&["perf", "mfem", "--pair", "g++ -O2", "g++ -O3"]))
                .unwrap()
                .command,
            Command::Perf {
                app: "mfem".into(),
                test: None,
                base: "g++ -O2".into(),
                candidate: "g++ -O3".into(),
                samples: None,
                alpha: None,
                seed: None,
                jobs: None,
                trace: None,
                backend: None,
                workers: None,
                kill_workers: None,
            }
        );
        // Missing pair, a one-label pair, and out-of-range alpha all fail.
        assert!(parse(&v(&["perf", "mfem"])).is_err());
        assert!(parse(&v(&["perf", "mfem", "--pair", "g++ -O2"])).is_err());
        assert!(parse(&v(&["perf", "mfem", "--pair", "g++ -O2", "--jobs", "2"])).is_err());
        assert!(parse(&v(&[
            "perf", "mfem", "--pair", "g++ -O2", "g++ -O3", "--alpha", "1.5"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "perf", "mfem", "--pair", "g++ -O2", "g++ -O3", "--seed", "x"
        ]))
        .is_err());
    }

    #[test]
    fn parses_backend_flags_and_the_worker_subcommand() {
        assert_eq!(parse(&v(&["worker"])).unwrap().command, Command::Worker);
        match parse(&v(&[
            "bisect",
            "mfem",
            "--compilation",
            "icpc -O2",
            "--backend",
            "process",
            "--workers",
            "4",
            "--kill-workers",
            "1,2,1",
        ]))
        .unwrap()
        .command
        {
            Command::Bisect {
                backend,
                workers,
                kill_workers,
                ..
            } => {
                assert_eq!(backend.as_deref(), Some("process"));
                assert_eq!(workers, Some(4));
                assert_eq!(kill_workers, Some(vec![1, 2, 1]));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&v(&[
            "workflow",
            "laghos",
            "--backend",
            "threads",
            "--workers",
            "2",
        ]))
        .unwrap()
        .command
        {
            Command::Workflow {
                backend, workers, ..
            } => {
                assert_eq!(backend.as_deref(), Some("threads"));
                assert_eq!(workers, Some(2));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&v(&["fuzz", "--seeds", "0..2", "--backend", "process"]))
            .unwrap()
            .command
        {
            Command::Fuzz { backend, .. } => assert_eq!(backend.as_deref(), Some("process")),
            other => panic!("parsed {other:?}"),
        }
        // Unknown backends and malformed kill schedules are errors.
        assert!(parse(&v(&[
            "bisect",
            "mfem",
            "--compilation",
            "icpc -O2",
            "--backend",
            "gpu"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "perf",
            "mfem",
            "--pair",
            "g++ -O2",
            "g++ -O3",
            "--kill-workers",
            "1,x"
        ]))
        .is_err());
    }

    #[test]
    fn parses_serve_and_submit() {
        assert_eq!(
            parse(&v(&[
                "serve",
                "--listen",
                "127.0.0.1:7070",
                "--state-dir",
                "fleet",
                "--max-inflight",
                "4",
                "--backend",
                "process",
                "--workers",
                "3",
                "--trace",
                "serve.jsonl"
            ]))
            .unwrap()
            .command,
            Command::Serve {
                listen: Some("127.0.0.1:7070".into()),
                status: false,
                shutdown: false,
                connect: None,
                state_dir: Some("fleet".into()),
                max_inflight: Some(4),
                backend: Some("process".into()),
                workers: Some(3),
                trace: Some("serve.jsonl".into()),
            }
        );
        assert_eq!(
            parse(&v(&["serve", "--status", "--connect", "127.0.0.1:7070"]))
                .unwrap()
                .command,
            Command::Serve {
                listen: None,
                status: true,
                shutdown: false,
                connect: Some("127.0.0.1:7070".into()),
                state_dir: None,
                max_inflight: None,
                backend: None,
                workers: None,
                trace: None,
            }
        );
        assert_eq!(
            parse(&v(&["serve", "--shutdown", "--connect", "127.0.0.1:7070"]))
                .unwrap()
                .command,
            Command::Serve {
                listen: None,
                status: false,
                shutdown: true,
                connect: Some("127.0.0.1:7070".into()),
                state_dir: None,
                max_inflight: None,
                backend: None,
                workers: None,
                trace: None,
            }
        );
        assert_eq!(
            parse(&v(&[
                "submit",
                "mfem",
                "--connect",
                "127.0.0.1:7070",
                "--tenant",
                "team-a",
                "--max-bisections",
                "2",
                "--jobs",
                "1"
            ]))
            .unwrap()
            .command,
            Command::Submit {
                app: "mfem".into(),
                connect: "127.0.0.1:7070".into(),
                tenant: "team-a".into(),
                max_bisections: Some(2),
                jobs: Some(1),
            }
        );
        // Exactly one serve mode; control endpoints need an address;
        // submissions need a daemon and a tenant.
        assert!(parse(&v(&["serve"])).is_err());
        assert!(parse(&v(&["serve", "--listen", "127.0.0.1:0", "--status"])).is_err());
        assert!(parse(&v(&["serve", "--status"])).is_err());
        assert!(parse(&v(&["serve", "--shutdown"])).is_err());
        assert!(parse(&v(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--backend",
            "gpu"
        ]))
        .is_err());
        assert!(parse(&v(&["submit", "mfem", "--tenant", "team-a"])).is_err());
        assert!(parse(&v(&["submit", "mfem", "--connect", "127.0.0.1:7070"])).is_err());
        assert!(parse(&v(&["submit", "--connect", "x", "--tenant", "t"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run"])).is_err());
        assert!(parse(&v(&["bisect", "mfem"])).is_err());
        assert!(parse(&v(&[
            "bisect",
            "mfem",
            "--compilation",
            "g++ -O2",
            "--biggest",
            "x"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "bisect",
            "mfem",
            "--compilation",
            "g++ -O2",
            "--jobs",
            "-1"
        ]))
        .is_err());
        assert!(parse(&v(&["inject", "lulesh", "--limit", "NaN"])).is_err());
        assert!(parse(&v(&["trace"])).is_err());
        assert!(parse(&v(&["trace", "wf.jsonl", "--top", "many"])).is_err());
        assert!(parse(&v(&["fuzz"])).is_err());
        assert!(parse(&v(&["fuzz", "--seeds", "10"])).is_err());
        assert!(parse(&v(&["fuzz", "--seeds", "9..3"])).is_err());
        assert!(parse(&v(&["fuzz", "--seeds", "5..5"])).is_err());
        assert!(parse(&v(&["fuzz", "--seeds", "0..4", "--budget-secs", "soon"])).is_err());
    }

    #[test]
    fn compilation_labels_round_trip() {
        for label in [
            "g++ -O0",
            "g++ -O3 -mavx2 -mfma -funsafe-math-optimizations",
            "icpc -O2 -fp-model fast=2",
            "xlc++ -O3 -qstrict=vectorprecision",
        ] {
            let c = parse_compilation(label).unwrap();
            assert_eq!(c.label(), label);
        }
        assert!(parse_compilation("tcc -O9").is_err());
    }
}
