//! The bundled applications the CLI can operate on.

use flit_core::test::DriverTest;
use flit_laghos::{laghos_driver, laghos_program, LaghosVariant};
use flit_lulesh::{lulesh_driver, lulesh_program};
use flit_mfem::{mfem_examples, mfem_program};
use flit_program::model::SimProgram;

/// A bundled application: a program plus its FLiT test suite.
pub struct BundledApp {
    /// Application name (the CLI argument).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The program under test.
    pub program: SimProgram,
    /// Its FLiT tests.
    pub tests: Vec<DriverTest>,
}

/// Names of all bundled applications.
pub fn app_names() -> Vec<&'static str> {
    vec!["mfem", "laghos", "laghos-xsw", "lulesh"]
}

/// Resolve an application by name.
pub fn resolve_app(name: &str) -> Option<BundledApp> {
    match name {
        "mfem" => Some(BundledApp {
            name: "mfem",
            description: "mini finite-element library, 19 examples (§3.1-§3.3)",
            program: mfem_program(),
            tests: mfem_examples(),
        }),
        "laghos" => Some(BundledApp {
            name: "laghos",
            description: "Lagrangian hydro proxy, xsw fixed, ==0.0 viscosity bug present (§3.4)",
            program: laghos_program(LaghosVariant::XswFixed),
            tests: vec![DriverTest::new(laghos_driver(), 2, vec![0.42, 0.77])],
        }),
        "laghos-xsw" => Some(BundledApp {
            name: "laghos-xsw",
            description: "Lagrangian hydro proxy, public branch with the xsw UB macro (§3.4)",
            program: laghos_program(LaghosVariant::WithXswBug),
            tests: vec![DriverTest::new(laghos_driver(), 2, vec![0.42, 0.77])],
        }),
        "lulesh" => Some(BundledApp {
            name: "lulesh",
            description: "shock-hydro proxy with 1,094 injectable FP instructions (§3.5)",
            program: lulesh_program(),
            tests: vec![DriverTest::new(lulesh_driver(), 2, vec![0.53, 0.31])],
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_core::test::FlitTest;

    #[test]
    fn every_listed_app_resolves() {
        for name in app_names() {
            let app = resolve_app(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(app.name, name);
            assert!(!app.tests.is_empty());
            assert!(app.program.total_functions() > 5);
            // Test drivers resolve against the program.
            for t in &app.tests {
                assert!(app.program.function(&t.driver().entries[0]).is_some());
                assert!(!t.name().is_empty());
            }
        }
        assert!(resolve_app("nope").is_none());
    }
}
