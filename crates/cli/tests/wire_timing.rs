//! One-off timing probe for the wire layer (run with --nocapture).

use flit_bisect::wire::WireTask;
use flit_core::test::FlitTest;
use flit_program::build::Build;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;

#[test]
#[ignore]
fn time_wire_task_round_trip() {
    let app = flit_cli::resolve_app("mfem").unwrap();
    let comp = flit_cli::args::parse_compilation("g++ -O3 -mavx2 -mfma").unwrap();
    let baseline = Build::new(&app.program, Compilation::baseline());
    let variable = Build::tagged(&app.program, comp, 1);
    let test = &app.tests[0];
    let input = test.default_input();

    let t0 = std::time::Instant::now();
    let task = WireTask::capture(
        &baseline,
        &variable,
        test.driver(),
        &input,
        CompilerKind::Gcc,
    );
    eprintln!("capture: {:?}", t0.elapsed());

    let t0 = std::time::Instant::now();
    let body = task.to_wire();
    eprintln!("to_wire: {:?} ({} bytes)", t0.elapsed(), body.len());

    let t0 = std::time::Instant::now();
    let digest = WireTask::digest_of(&body);
    eprintln!("digest: {:?} ({digest})", t0.elapsed());

    let t0 = std::time::Instant::now();
    let back: WireTask = serde_json::from_str(&body).unwrap();
    eprintln!("from_str: {:?}", t0.elapsed());
    assert_eq!(back.baseline_tag, 0);
}
