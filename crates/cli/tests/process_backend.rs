//! End-to-end tests of the `process` execution backend.
//!
//! Every test here spawns the real `flit` binary so the coordinator
//! resolves its own executable for `flit worker` subprocesses — the
//! exact production path. The invariant under test is the issue's
//! acceptance bar: the process backend must be a pure execution-plane
//! substitution, producing byte-identical reports to the serial
//! in-process algorithm at any worker count and under any worker-kill
//! schedule, with exactly-once ledger accounting.

use proptest::prelude::*;
use std::process::Command;

fn flit(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_flit"))
        .args(args)
        .output()
        .expect("flit binary runs");
    assert!(
        out.status.success(),
        "flit {args:?} failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const BISECT: &[&str] = &[
    "bisect",
    "mfem",
    "--test",
    "ex13",
    "--compilation",
    "g++ -O3 -mavx2 -mfma",
];

const PERF: &[&str] = &[
    "perf",
    "mfem",
    "--test",
    "ex09",
    "--pair",
    "icpc -O2",
    "icpc -O2 -fimf-precision=high",
];

fn with(base: &[&str], extra: &[&str]) -> Vec<&'static str> {
    // Leak is fine in tests; keeps the call sites readable.
    base.iter()
        .chain(extra.iter())
        .map(|s| -> &'static str { Box::leak(s.to_string().into_boxed_str()) })
        .collect()
}

#[test]
fn process_bisect_is_byte_identical_to_serial() {
    let serial = flit(BISECT);
    let process = flit(&with(BISECT, &["--backend", "process", "--workers", "4"]));
    assert_eq!(
        process.replace(" | process backend (4 workers)", ""),
        serial,
        "the process backend must not change bisect findings"
    );
}

#[test]
fn process_certified_prune_is_byte_identical_to_serial() {
    let certified = with(BISECT, &["--prune", "certified"]);
    let serial = flit(&certified);
    let process = flit(&with(
        &certified,
        &["--backend", "process", "--workers", "4"],
    ));
    assert_eq!(
        process.replace(" | process backend (4 workers)", ""),
        serial,
        "the process backend must not change certified-prune findings"
    );
}

#[test]
fn a_forged_invariant_certificate_fails_the_process() {
    // FLIT_FORGE_INVARIANT is the dishonest-certificate test hook: it
    // stamps an Invariant certificate on a file the search would blame.
    // The residual audit must catch the lie and exit nonzero, on both
    // execution backends.
    for backend in [&[][..], &["--backend", "process", "--workers", "2"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_flit"))
            .args(with(BISECT, &["--prune", "certified"]))
            .args(backend)
            .env("FLIT_FORGE_INVARIANT", "linalg/densemat.cpp")
            .output()
            .expect("flit binary runs");
        assert!(
            !out.status.success(),
            "a dishonest certificate must fail the process ({backend:?})"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("certified-prune audit failed"),
            "the violation must be reported, not silently swallowed: {stderr}"
        );
    }
}

#[test]
fn process_perf_is_byte_identical_to_serial() {
    let serial = flit(PERF);
    let process = flit(&with(PERF, &["--backend", "process", "--workers", "3"]));
    assert_eq!(
        process.replace(" | process backend (3 workers)", ""),
        serial,
        "the process backend must not change perf verdicts"
    );
}

#[test]
fn process_workflow_is_byte_identical_to_serial() {
    let base = ["workflow", "laghos", "--max-bisections", "3"];
    let serial = flit(&base);
    let process = flit(&with(&base, &["--backend", "process", "--workers", "2"]));
    assert_eq!(
        process.replace(" | process backend (2 workers)", ""),
        serial,
        "the process backend must not change workflow results"
    );
}

#[test]
fn a_worker_killed_at_every_query_never_changes_findings() {
    let serial = flit(BISECT);
    // Each worker dies right before its 2nd answer, so every other
    // dispatch is lost and requeued for the full length of the search:
    // every query is exercised against the recovery path.
    let schedule = vec!["1"; 40].join(",");
    let process = flit(&with(
        BISECT,
        &[
            "--backend",
            "process",
            "--workers",
            "2",
            "--kill-workers",
            &schedule,
        ],
    ));
    assert_eq!(
        process.replace(" | process backend (2 workers)", ""),
        serial,
        "crash recovery must be invisible in the report"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized kill schedules: whatever subset of workers dies, and
    /// whenever they die, the report stays byte-identical to serial.
    #[test]
    fn random_kill_schedules_never_change_findings(
        schedule in proptest::collection::vec(0u64..3, 1..10),
        workers in 1usize..4,
    ) {
        let serial = flit(BISECT);
        let csv = schedule
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let w = workers.to_string();
        let process = flit(&with(
            BISECT,
            &["--backend", "process", "--workers", &w, "--kill-workers", &csv],
        ));
        prop_assert_eq!(
            process.replace(&format!(" | process backend ({workers} workers)"), ""),
            serial
        );
    }
}

#[test]
fn process_checkpoint_accounts_exactly_once_and_resumes_dead() {
    let path = std::env::temp_dir().join("flit-process-backend-journal.jsonl");
    std::fs::remove_file(&path).ok();
    let path_s = path.to_string_lossy().to_string();

    let plain = flit(BISECT);
    // Checkpoint through the process backend, with workers dying
    // mid-search: the journal must still record each query exactly once.
    let first = flit(&with(
        BISECT,
        &[
            "--backend",
            "process",
            "--workers",
            "2",
            "--kill-workers",
            "1,0,2",
            "--checkpoint",
            &path_s,
        ],
    ));
    // The binary prints the report with a trailing newline; the journal
    // footer lands before it, so prefix-match against the trimmed body.
    let stripped = first.replace(" | process backend (2 workers)", "");
    assert!(
        stripped.starts_with(plain.trim_end()),
        "plain:\n{plain}\nstripped:\n{stripped}"
    );
    assert!(first.contains("journal:"), "{first}");

    // Journal records carry the execution-plane provenance, and the
    // crash-recovery requeue path never double-appends a query: every
    // ledger key appears exactly once.
    let text = std::fs::read_to_string(&path).expect("journal written");
    assert!(
        text.contains("\"backend\":\"process\""),
        "journal must label process-backend answers: {text}"
    );
    let keys: Vec<&str> = text
        .lines()
        .filter_map(|l| l.split("\"key\":\"").nth(1))
        .filter_map(|rest| rest.split('"').next())
        .collect();
    let unique: std::collections::BTreeSet<&str> = keys.iter().copied().collect();
    assert_eq!(
        keys.len(),
        unique.len(),
        "requeued queries must not duplicate ledger entries"
    );

    // Resume serially: every answer replays; nothing runs live, and no
    // entry was lost or duplicated by the crash-recovery path.
    let resumed = flit(&with(BISECT, &["--resume", &path_s]));
    assert!(resumed.starts_with(plain.trim_end()), "{resumed}");
    assert!(resumed.contains("journal: 0 executed"), "{resumed}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_poisoned_pool_lock_mid_search_never_aborts_and_accounts_exactly_once() {
    use flit_bisect::hierarchy::{bisect_hierarchical_parallel, HierarchicalConfig};
    use flit_bisect::ledger::{LedgerHandle, QueryLedger};
    use flit_core::test::FlitTest;
    use flit_exec::{ExecBackend, ProcessBackend};
    use flit_program::build::Build;
    use flit_toolchain::cache::BuildCtx;
    use flit_toolchain::compilation::Compilation;
    use flit_toolchain::compiler::CompilerKind;
    use flit_trace::sink::TraceSink;
    use std::sync::Arc;

    let app = flit_cli::resolve_app("mfem").expect("mfem is bundled");
    let test = app
        .tests
        .iter()
        .find(|t| t.name() == "ex13")
        .expect("ex13 exists");
    let comp = flit_cli::args::parse_compilation("g++ -O3 -mavx2 -mfma").unwrap();
    let baseline = Build::new(&app.program, Compilation::baseline());
    let variable = Build::tagged(&app.program, comp.clone(), 1);
    let input = test.default_input();
    let input = &input[..test.inputs_per_run().min(input.len())];

    let worker = vec![env!("CARGO_BIN_EXE_flit").to_string(), "worker".to_string()];
    let run = |poison: bool| {
        let backend = Arc::new(ProcessBackend::new(worker.clone(), 2));
        if poison {
            // A panic while holding the pool lock used to abort every
            // subsequent dispatch via `.expect("pool lock")`; now the
            // poisoned lock is recovered and the search proceeds.
            backend.poison_pool_for_tests();
        }
        let ledger = QueryLedger::new(app.program.fingerprint(), &TraceSink::disabled());
        let cfg = HierarchicalConfig {
            link_driver: CompilerKind::Gcc,
            k: None,
            ctx: BuildCtx::cached(),
            trace: TraceSink::disabled(),
            prescreen: None,
            ledger: Some(LedgerHandle::new(
                ledger.clone(),
                1,
                format!("{}/{}", test.name(), comp.label()),
            )),
            backend: None,
        }
        .with_backend(backend.clone() as Arc<dyn ExecBackend>);
        let result = bisect_hierarchical_parallel(
            &baseline,
            &variable,
            test.driver(),
            input,
            &flit_core::metrics::l2_compare,
            &cfg,
            &*backend,
        );
        (result, ledger.stats())
    };

    let (clean, clean_stats) = run(false);
    let (poisoned, poisoned_stats) = run(true);
    assert_eq!(
        poisoned, clean,
        "recovering a poisoned pool lock must not change findings"
    );
    // Exactly-once completion: the recovery path must not lose or
    // double-count a single physical query.
    assert_eq!(poisoned_stats, clean_stats);
    assert!(clean_stats.executed > 0);
}

#[test]
fn process_trace_renders_the_distributed_execution_table() {
    let path = std::env::temp_dir().join("flit-process-backend-trace.jsonl");
    std::fs::remove_file(&path).ok();
    let path_s = path.to_string_lossy().to_string();
    flit(&with(
        PERF,
        &["--backend", "process", "--workers", "2", "--trace", &path_s],
    ));
    let rendered = flit(&["trace", &path_s]);
    assert!(rendered.contains("Distributed execution"), "{rendered}");
    assert!(rendered.contains("queries dispatched"), "{rendered}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn fuzz_corpus_seeds_cross_check_the_process_backend() {
    // Corpus seeds always run the resume layer, which under
    // `--backend process` also re-runs each search through worker
    // subprocesses and requires a bit-identical result.
    // `flit fuzz` exits nonzero on any divergence, so `flit()`
    // succeeding already certifies a clean campaign.
    let out = flit(&[
        "fuzz",
        "--seeds",
        "0..4",
        "--jobs",
        "2",
        "--backend",
        "process",
    ]);
    assert!(!out.contains("DIVERGENCE"), "{out}");
    let checks: u64 = out
        .lines()
        .find(|l| l.trim_start().starts_with("process checks"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|n| n.parse().ok())
        .expect("summary reports process checks");
    assert!(checks > 0, "at least one seed must cross-check: {out}");
}
