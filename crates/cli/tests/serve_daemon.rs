//! End-to-end tests of the `flit serve` multi-tenant workflow daemon.
//!
//! Every test spawns the real `flit` binary as the daemon — so the
//! daemon resolves its own executable for `flit worker` subprocesses
//! under `--backend process`, the exact production path — and drives
//! it with the real `flit submit` / `flit serve --status` /
//! `flit serve --shutdown` clients. The invariants under test are the
//! issue's acceptance bar: concurrent multi-tenant submissions must be
//! byte-identical to serial `flit workflow` runs (under both execution
//! backends, and across a daemon kill-and-restart), and the fleet's
//! cross-tenant dedup must be strictly positive and surfaced.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WORKFLOW: &[&str] = &["workflow", "laghos", "--max-bisections", "2"];

fn flit(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_flit"))
        .args(args)
        .output()
        .expect("flit binary runs");
    assert!(
        out.status.success(),
        "flit {args:?} failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flit-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn a daemon on an ephemeral port and wait for it to advertise
/// its address via `<state_dir>/serve.addr`.
fn spawn_daemon(dir: &Path, extra: &[&str]) -> (Child, String) {
    let addr_file = dir.join("serve.addr");
    // A previous daemon over the same state dir left its address
    // behind; make sure we wait for the *new* daemon's file.
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_flit"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--state-dir",
            &dir.to_string_lossy(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.trim().is_empty() {
                break addr.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never advertised its address in {}",
            addr_file.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

fn shutdown_daemon(mut child: Child, addr: &str) {
    let ack = flit(&["serve", "--shutdown", "--connect", addr]);
    assert!(ack.contains("drained and stopped"), "{ack}");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit cleanly after a drain");
}

/// Pull one `<label>: ...` value line out of the rendered status report.
fn status_line(status: &str, label: &str) -> String {
    status
        .lines()
        .find(|l| l.starts_with(label))
        .unwrap_or_else(|| panic!("no `{label}` line in:\n{status}"))
        .to_string()
}

fn shared_hits(status: &str) -> u64 {
    let line = status_line(status, "fleet queries:");
    line.split(',')
        .find(|part| part.contains("shared hits"))
        .and_then(|part| part.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable fleet line: {line}"))
}

fn fleet_executed(status: &str) -> u64 {
    let line = status_line(status, "fleet queries:");
    line.split(':')
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable fleet line: {line}"))
}

#[test]
fn concurrent_tenants_are_byte_identical_to_serial_and_dedupe_fleet_wide() {
    let serial = flit(WORKFLOW);
    let dir = state_dir("threads");
    let (child, addr) = spawn_daemon(&dir, &["--max-inflight", "3"]);

    let tenants = ["team-a", "team-b", "team-c"];
    let handles: Vec<_> = tenants
        .into_iter()
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                flit(&[
                    "submit",
                    "laghos",
                    "--connect",
                    &addr,
                    "--tenant",
                    tenant,
                    "--max-bisections",
                    "2",
                ])
            })
        })
        .collect();
    for handle in handles {
        let body = handle.join().unwrap();
        assert_eq!(
            body, serial,
            "a daemon submission must be byte-identical to the serial CLI"
        );
    }

    let status = flit(&["serve", "--status", "--connect", &addr]);
    assert!(
        status_line(&status, "tenants").contains("team-a, team-b, team-c"),
        "{status}"
    );
    assert!(
        status_line(&status, "submissions:").contains("3 accepted, 3 completed, 0 rejected"),
        "{status}"
    );
    // Three tenants ran the identical workflow: all of the 2nd and 3rd
    // tenants' physical queries dedupe against the first's.
    let hits = shared_hits(&status);
    assert!(
        hits > 0,
        "cross-tenant dedup must be strictly positive:\n{status}"
    );
    let executed = fleet_executed(&status);
    assert!(executed > 0, "{status}");
    assert!(
        hits >= 2 * executed,
        "3 identical submissions should share at least twice what one executes \
         (executed {executed}, shared {hits}):\n{status}"
    );
    // The latency endpoint reports simulated seconds with a Student-t
    // CI once submissions completed.
    let latency = status_line(&status, "submit latency");
    assert!(latency.contains("n=3"), "{latency}");
    assert!(latency.contains("ci95=["), "{latency}");
    assert!(latency.contains("p95="), "{latency}");

    // Every tenant's journal landed in its own namespace.
    for tenant in tenants {
        let tenant_dir = dir.join("tenants").join(tenant);
        assert!(tenant_dir.is_dir(), "missing {}", tenant_dir.display());
    }

    shutdown_daemon(child, &addr);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn process_backend_daemon_is_byte_identical_to_the_serial_process_cli() {
    let serial = flit(&[
        "workflow",
        "laghos",
        "--max-bisections",
        "2",
        "--backend",
        "process",
        "--workers",
        "2",
    ]);
    let dir = state_dir("process");
    let (child, addr) = spawn_daemon(&dir, &["--backend", "process", "--workers", "2"]);
    let body = flit(&[
        "submit",
        "laghos",
        "--connect",
        &addr,
        "--tenant",
        "team-a",
        "--max-bisections",
        "2",
    ]);
    assert_eq!(
        body, serial,
        "a process-backend submission must match the serial process-backend CLI"
    );
    // The graceful shutdown drains the shared worker pool before
    // acking; a clean daemon exit is the observable proof.
    shutdown_daemon(child, &addr);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_killed_daemon_resumes_every_tenants_journal_on_restart() {
    let dir = state_dir("restart");
    let (mut child, addr) = spawn_daemon(&dir, &[]);
    let submit = |addr: &str, tenant: &str| {
        flit(&[
            "submit",
            "laghos",
            "--connect",
            addr,
            "--tenant",
            tenant,
            "--max-bisections",
            "2",
        ])
    };
    let first_a = submit(&addr, "team-a");
    let first_b = submit(&addr, "team-b");

    // Kill the daemon hard — no drain, no warning. The per-tenant
    // journals are written atomically per append, so they are complete
    // on disk the moment each submission's response left.
    child.kill().expect("daemon killed");
    child.wait().expect("killed daemon reaped");

    let (child, addr) = spawn_daemon(&dir, &[]);
    assert_eq!(submit(&addr, "team-a"), first_a, "tenant a must resume");
    assert_eq!(submit(&addr, "team-b"), first_b, "tenant b must resume");
    let status = flit(&["serve", "--status", "--connect", &addr]);
    assert_eq!(
        fleet_executed(&status),
        0,
        "resubmissions after a restart must replay from the tenant journals, \
         not re-execute fleet-wide:\n{status}"
    );
    shutdown_daemon(child, &addr);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_trace_export_renders_the_fleet_table() {
    let dir = state_dir("trace");
    let trace_path = dir.join("serve-trace.jsonl");
    let trace_s = trace_path.to_string_lossy().to_string();
    let (child, addr) = spawn_daemon(&dir, &["--trace", &trace_s]);
    for tenant in ["team-a", "team-b"] {
        flit(&[
            "submit",
            "laghos",
            "--connect",
            &addr,
            "--tenant",
            tenant,
            "--max-bisections",
            "1",
        ]);
    }
    shutdown_daemon(child, &addr);

    let rendered = flit(&["trace", &trace_s]);
    assert!(rendered.contains("Fleet (flit-serve)"), "{rendered}");
    let line = |label: &str| {
        rendered
            .lines()
            .find(|l| l.contains(label))
            .unwrap_or_else(|| panic!("no `{label}` row in:\n{rendered}"))
            .to_string()
    };
    assert!(line("submissions accepted").contains('2'), "{rendered}");
    assert!(line("tenants").contains('2'), "{rendered}");
    // Table rows render as `| <counter> | <value> |`.
    let shared: u64 = line("cross-tenant shared hits")
        .split('|')
        .find_map(|cell| cell.trim().parse().ok())
        .expect("shared-hits row is numeric");
    assert!(shared > 0, "two identical tenants must dedupe:\n{rendered}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_and_unknown_app_are_structured_refusals() {
    let dir = state_dir("errors");
    let (child, addr) = spawn_daemon(&dir, &[]);

    // An unknown application is a structured daemon-side error: the
    // client exits nonzero with the message, the daemon stays up.
    let out = Command::new(env!("CARGO_BIN_EXE_flit"))
        .args(["submit", "no-such-app", "--connect", &addr, "--tenant", "t"])
        .output()
        .expect("flit binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown application"), "{stderr}");

    // A client speaking a future protocol version is refused by name.
    let response = flit_serve::protocol::roundtrip(
        addr.as_str(),
        &flit_serve::protocol::Request::Status {
            version: flit_serve::protocol::PROTOCOL_VERSION + 1,
        },
    )
    .expect("daemon answers");
    match response {
        flit_serve::protocol::Response::Error { message } => {
            assert!(message.contains("protocol version mismatch"), "{message}");
        }
        other => panic!("expected a structured error, got {other:?}"),
    }

    // The daemon survived both refusals, and neither executed anything.
    let status = flit(&["serve", "--status", "--connect", &addr]);
    assert_eq!(fleet_executed(&status), 0, "{status}");
    shutdown_daemon(child, &addr);
    let _ = std::fs::remove_dir_all(&dir);
}
