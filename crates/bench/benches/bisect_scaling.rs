//! Criterion benchmarks of the search algorithms' complexity claims
//! (§2.2/§2.4): Bisect is O(k·log N), delta debugging O(k²·log N),
//! linear search O(N) — including the crossover where linear wins when
//! k is proportional to N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flit_bisect::algo::{bisect_all, bisect_all_unpruned};
use flit_bisect::baselines::{ddmin, linear_search};
use flit_bisect::biggest::bisect_biggest;
use flit_bisect::test_fn::TestError;

/// A scripted Test with `k` variable elements spread over `n`.
fn weights(n: usize, k: usize) -> Vec<(u32, f64)> {
    (0..k)
        .map(|j| (((j * n) / k + n / (2 * k).max(1)) as u32, 1.0 + j as f64))
        .collect()
}

fn scripted(weights: Vec<(u32, f64)>) -> impl FnMut(&[u32]) -> Result<f64, TestError> {
    move |items: &[u32]| {
        Ok(items
            .iter()
            .map(|i| {
                weights
                    .iter()
                    .find(|(w, _)| w == i)
                    .map_or(0.0, |(_, v)| *v)
            })
            .sum())
    }
}

fn bench_search_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_scaling_n");
    for &n in &[256usize, 1024, 4096] {
        let items: Vec<u32> = (0..n as u32).collect();
        let k = 4;
        group.bench_with_input(BenchmarkId::new("bisect_all", n), &n, |b, _| {
            b.iter(|| bisect_all(scripted(weights(n, k)), &items).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ddmin", n), &n, |b, _| {
            b.iter(|| ddmin(scripted(weights(n, k)), &items).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| linear_search(scripted(weights(n, k)), &items).unwrap());
        });
    }
    group.finish();
}

fn bench_search_scaling_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_scaling_k");
    let n = 1024usize;
    let items: Vec<u32> = (0..n as u32).collect();
    for &k in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("bisect_all", k), &k, |b, _| {
            b.iter(|| bisect_all(scripted(weights(n, k)), &items).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bisect_biggest_top1", k), &k, |b, _| {
            b.iter(|| bisect_biggest(scripted(weights(n, k)), &items, 1).unwrap());
        });
    }
    group.finish();
}

/// Execution-count report (the paper's unit): printed once per run so
/// `cargo bench` output documents the complexity table alongside the
/// wall-clock numbers.
fn report_execution_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_counts");
    group.sample_size(10);
    group.bench_function("report", |b| {
        b.iter(|| {
            let n = 2998usize; // MFEM's exported-function count
            let items: Vec<u32> = (0..n as u32).collect();
            let k = 9; // example 8's blame-set size
            let bis = bisect_all(scripted(weights(n, k)), &items).unwrap();
            let lin = linear_search(scripted(weights(n, k)), &items).unwrap();
            assert!(bis.executions < lin.executions / 10);
            (bis.executions, lin.executions)
        });
    });
    group.finish();
}

/// Ablation of the §2.2 found-set pruning optimization ("one
/// significant deviation from Delta debugging").
fn bench_pruning_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_ablation");
    let n = 2048usize;
    let items: Vec<u32> = (0..n as u32).collect();
    for &k in &[4usize, 12] {
        let w: Vec<(u32, f64)> = (0..k)
            .map(|j| ((n - 1 - j * 3) as u32, 1.0 + j as f64))
            .collect();
        group.bench_with_input(BenchmarkId::new("pruned", k), &k, |b, _| {
            b.iter(|| bisect_all(scripted(w.clone()), &items).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("unpruned", k), &k, |b, _| {
            b.iter(|| bisect_all_unpruned(scripted(w.clone()), &items).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_scaling,
    bench_search_scaling_k,
    bench_pruning_ablation,
    report_execution_counts
);
criterion_main!(benches);
