//! Wall-clock scaling of the planner-driven parallel bisection: one
//! hierarchical search with its frontier fanned out, and the
//! whole-study characterization with every (test, compilation) search
//! on one executor, at 1/2/4/8 workers.
//!
//! The searches are byte-identical at every width (asserted in the
//! determinism suite); this bench measures only the wall-clock effect.
//! The speedup ceiling is the host's core count — on a single-core
//! container every width measures ~1×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flit_bench::mfem_study::bisect_all_variable_with;
use flit_bisect::hierarchy::{
    bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig,
};
use flit_core::metrics::l2_compare;
use flit_core::runner::{run_matrix, RunnerConfig};
use flit_core::test::FlitTest;
use flit_exec::ThreadsBackend;
use flit_mfem::examples::example_driver;
use flit_mfem::{mfem_examples, mfem_program};
use flit_program::build::Build;
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::{mfem_matrix, Compilation};
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;

/// One hierarchical search, frontier fanned out on an executor. A
/// fresh uncached build context per iteration keeps the jobs arms
/// comparable (no warm cache favoring whichever ran second).
fn bench_single_search(c: &mut Criterion) {
    let program = mfem_program();
    let baseline = Build::new(&program, Compilation::baseline());
    let variable = Build::tagged(
        &program,
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2Fma]),
        1,
    );
    let driver = example_driver(13, 1);
    let mut group = c.benchmark_group("bisect_parallel/single_search");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            bisect_hierarchical(
                &baseline,
                &variable,
                &driver,
                &[0.35, 0.62],
                &l2_compare,
                &HierarchicalConfig::all(),
            )
        });
    });
    for &jobs in &[1usize, 2, 4, 8] {
        let exec = ThreadsBackend::new(jobs);
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, _| {
            b.iter(|| {
                bisect_hierarchical_parallel(
                    &baseline,
                    &variable,
                    &driver,
                    &[0.35, 0.62],
                    &l2_compare,
                    &HierarchicalConfig::all(),
                    &exec,
                )
            });
        });
    }
    group.finish();
}

/// The Table-2 characterization (every variable (test, compilation)
/// pair of a thinned sweep) with all searches on one executor.
fn bench_characterization(c: &mut Criterion) {
    let program = mfem_program();
    let tests = mfem_examples();
    let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();
    let comps: Vec<Compilation> = mfem_matrix()
        .into_iter()
        .filter(|c| {
            c.label() == "g++ -O0"
                || c.label() == "g++ -O3 -mavx2 -mfma -funsafe-math-optimizations"
                || c.label() == "clang++ -O3 -funsafe-math-optimizations"
        })
        .collect();
    let db = run_matrix(&program, &dyn_tests, &comps, &RunnerConfig::default())
        .expect("thinned sweep runs");
    let mut group = c.benchmark_group("bisect_parallel/characterization");
    group.sample_size(10);
    for &jobs in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, _| {
            b.iter(|| bisect_all_variable_with(&program, &db, jobs, &BuildCtx::uncached()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_search, bench_characterization);
criterion_main!(benches);
