//! Criterion benchmarks of the substrates: FP-semantics kernels under
//! different environments, the linker, and objcopy weakening.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flit_fpsim::env::{FpEnv, SimdWidth};
use flit_fpsim::{linalg::DenseMatrix, reduce, solve};
use flit_program::build::Build;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::linker::link;

fn bench_reductions(c: &mut Criterion) {
    let xs: Vec<f64> = (0..4096)
        .map(|i| ((i as f64) * 0.7311).sin() * 10f64.powi((i % 9) - 4))
        .collect();
    let mut group = c.benchmark_group("fpsim_dot");
    for (name, env) in [
        ("strict", FpEnv::strict()),
        ("w4", FpEnv::strict().with_simd(SimdWidth::W4)),
        ("fma", FpEnv::strict().with_fma(true)),
        ("extended", FpEnv::strict().with_extended(true)),
        ("fast", FpEnv::fast()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &env, |b, env| {
            b.iter(|| reduce::dot(env, &xs, &xs));
        });
    }
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    let n = 48;
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = 3.0 + (i as f64 * 0.61).sin() * 0.2;
        if i + 1 < n {
            a[(i, i + 1)] = -1.0;
            a[(i + 1, i)] = -1.0;
        }
    }
    let bvec: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) * 0.1).collect();
    let mut group = c.benchmark_group("fpsim_cg");
    for (name, env) in [("strict", FpEnv::strict()), ("fast", FpEnv::fast())] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &env, |b, env| {
            b.iter(|| solve::conjugate_gradient(env, &a, &bvec, 1e-12, 500));
        });
    }
    group.finish();
}

fn bench_linker(c: &mut Criterion) {
    let program = flit_mfem::mfem_program();
    let build = Build::new(&program, Compilation::perf_reference());
    let objects = build.all_objects();
    c.bench_function("linker_mfem_97_objects", |b| {
        b.iter(|| link(objects.clone(), CompilerKind::Gcc).unwrap());
    });
    let var = Build::tagged(
        &program,
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![]),
        1,
    );
    c.bench_function("compile_and_link_mfem", |b| {
        b.iter(|| var.executable().unwrap());
    });
}

fn bench_engine(c: &mut Criterion) {
    let program = flit_mfem::mfem_program();
    let build = Build::new(&program, Compilation::perf_reference());
    let exe = build.executable().unwrap();
    let driver = flit_mfem::examples::example_driver(8, 1);
    c.bench_function("engine_run_ex08", |b| {
        b.iter(|| {
            flit_program::engine::Engine::new(&program, &exe)
                .run(&driver, &[0.35, 0.62])
                .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_reductions,
    bench_cg,
    bench_linker,
    bench_engine
);
criterion_main!(benches);
