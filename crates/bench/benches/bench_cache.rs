//! Criterion benchmark of the build-artifact cache: hierarchical
//! bisection and the gcc matrix sweep with the cache off (every object
//! compiled fresh), with a cold cache per run, and with a warm cache
//! shared across runs (the workflow/Table-2 regime, where repeated
//! links memo-hit).

use criterion::{criterion_group, criterion_main, Criterion};

use flit_bisect::hierarchy::{bisect_hierarchical, HierarchicalConfig};
use flit_core::metrics::l2_compare;
use flit_core::runner::{run_matrix, RunnerConfig};
use flit_core::test::FlitTest;
use flit_mfem::examples::example_driver;
use flit_mfem::{mfem_examples, mfem_program};
use flit_program::build::Build;
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::{compilation_matrix, Compilation};
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;

fn bench_bisect(c: &mut Criterion) {
    let program = mfem_program();
    let driver = example_driver(13, 1);
    let baseline = Build::new(&program, Compilation::baseline());
    let variable = Build::tagged(
        &program,
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2Fma]),
        1,
    );
    let input = [0.35, 0.62];

    let run = |cfg: &HierarchicalConfig| {
        bisect_hierarchical(&baseline, &variable, &driver, &input, &l2_compare, cfg)
    };

    let mut group = c.benchmark_group("cache_bisect");
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        b.iter(|| run(&HierarchicalConfig::all().with_ctx(BuildCtx::counting())));
    });
    group.bench_function("cold_cache", |b| {
        b.iter(|| run(&HierarchicalConfig::all().with_ctx(BuildCtx::cached())));
    });
    let warm = HierarchicalConfig::all().with_ctx(BuildCtx::cached());
    group.bench_function("warm_cache", |b| b.iter(|| run(&warm)));
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let program = mfem_program();
    let tests = mfem_examples();
    let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();
    let gcc_only = compilation_matrix(CompilerKind::Gcc);

    let mut group = c.benchmark_group("cache_sweep");
    group.sample_size(10);
    group.bench_function("gcc_68_uncached", |b| {
        b.iter(|| {
            run_matrix(
                &program,
                &dyn_tests,
                &gcc_only,
                &RunnerConfig {
                    cache: false,
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("gcc_68_cached", |b| {
        b.iter(|| run_matrix(&program, &dyn_tests, &gcc_only, &RunnerConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_bisect, bench_sweep);
criterion_main!(benches);
