//! Criterion benchmark of the tracing layer's overhead: the gcc matrix
//! sweep with tracing disabled (the default no-op sink), with a live
//! sink, and the raw recording primitives (span push, counter
//! increment, snapshot serialization) in isolation.

use criterion::{criterion_group, criterion_main, Criterion};

use flit_core::runner::{run_matrix, RunnerConfig};
use flit_core::test::FlitTest;
use flit_mfem::{mfem_examples, mfem_program};
use flit_toolchain::compilation::compilation_matrix;
use flit_toolchain::compiler::CompilerKind;
use flit_trace::names::{counter, phase};
use flit_trace::sink::TraceSink;

fn bench_traced_sweep(c: &mut Criterion) {
    let program = mfem_program();
    let tests = mfem_examples();
    let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();
    let gcc_only = compilation_matrix(CompilerKind::Gcc);

    let mut group = c.benchmark_group("trace_sweep");
    group.sample_size(10);
    group.bench_function("gcc_68_untraced", |b| {
        b.iter(|| run_matrix(&program, &dyn_tests, &gcc_only, &RunnerConfig::default()));
    });
    group.bench_function("gcc_68_traced", |b| {
        b.iter(|| {
            run_matrix(
                &program,
                &dyn_tests,
                &gcc_only,
                &RunnerConfig {
                    trace: TraceSink::enabled(),
                    ..Default::default()
                },
            )
        });
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_primitives");

    let disabled = TraceSink::disabled();
    group.bench_function("span_disabled", |b| {
        b.iter(|| disabled.span(phase::SWEEP, "g++ -O2", 19, 1.25));
    });
    let enabled = TraceSink::enabled();
    group.bench_function("span_enabled", |b| {
        b.iter(|| enabled.span(phase::SWEEP, "g++ -O2", 19, 1.25));
    });

    let hot = enabled.counter(counter::RUNNER_QUEUE_CLAIMED);
    group.bench_function("counter_incr", |b| b.iter(|| hot.incr(1)));

    let snap = TraceSink::enabled();
    for i in 0..500 {
        snap.span(phase::SWEEP, format!("comp-{i}"), i, i as f64 * 0.25);
    }
    snap.counter(counter::BUILD_LINKS).incr(42);
    group.bench_function("snapshot_500_spans_jsonl", |b| {
        b.iter(|| snap.snapshot().to_jsonl());
    });
    group.finish();
}

criterion_group!(benches, bench_traced_sweep, bench_primitives);
criterion_main!(benches);
