//! Criterion benchmark of the FLiT matrix runner: the 244-compilation ×
//! 19-example MFEM sweep (the workload behind Tables 1–2 and Figures
//! 4–6), sequential vs parallel.

use criterion::{criterion_group, criterion_main, Criterion};

use flit_core::runner::{run_matrix, RunnerConfig};
use flit_core::test::FlitTest;
use flit_mfem::{mfem_examples, mfem_program};
use flit_toolchain::compilation::{compilation_matrix, mfem_matrix};
use flit_toolchain::compiler::CompilerKind;

fn bench_sweep(c: &mut Criterion) {
    let program = mfem_program();
    let tests = mfem_examples();
    let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();

    let gcc_only = compilation_matrix(CompilerKind::Gcc);
    let mut group = c.benchmark_group("mfem_sweep");
    group.sample_size(10);
    group.bench_function("gcc_68_compilations_seq", |b| {
        b.iter(|| {
            run_matrix(
                &program,
                &dyn_tests,
                &gcc_only,
                &RunnerConfig {
                    threads: 1,
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("gcc_68_compilations_par", |b| {
        b.iter(|| run_matrix(&program, &dyn_tests, &gcc_only, &RunnerConfig::default()));
    });
    let full = mfem_matrix();
    group.bench_function("full_244_compilations_par", |b| {
        b.iter(|| run_matrix(&program, &dyn_tests, &full, &RunnerConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
