//! Criterion benchmark of the static prescreen: analyzer throughput
//! over the MFEM program and a Table-3-sized synthetic codebase, full
//! pair prediction, and the end-to-end payoff — a lint-seeded parallel
//! hierarchical search against the unseeded one on the Table-2 MFEM
//! fixture.

use criterion::{criterion_group, criterion_main, Criterion};

use flit_bisect::hierarchy::{bisect_hierarchical_parallel, HierarchicalConfig};
use flit_core::metrics::l2_compare;
use flit_exec::ThreadsBackend;
use flit_lint::{analyze_program, predict_pair};
use flit_mfem::examples::example_driver;
use flit_mfem::mfem_program;
use flit_program::build::Build;
use flit_program::generate::{filler_files, FillerSpec};
use flit_program::model::SimProgram;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;

fn bench_analyze(c: &mut Criterion) {
    let mfem = mfem_program();
    // Table 3's MFEM shape: ~97 files, ~31 functions per file.
    let synthetic = SimProgram::new(
        "table3",
        filler_files(&FillerSpec {
            files: 97,
            funcs_per_file: 31,
            ..FillerSpec::default()
        }),
    );

    let mut group = c.benchmark_group("lint_analyze");
    group.bench_function("mfem", |b| b.iter(|| analyze_program(&mfem)));
    group.bench_function("synthetic_97x31", |b| {
        b.iter(|| analyze_program(&synthetic));
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let program = mfem_program();
    let baseline = Build::new(&program, Compilation::baseline());
    let variable = Build::tagged(
        &program,
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2Fma]),
        1,
    );
    let driver = example_driver(13, 1);

    let mut group = c.benchmark_group("lint_predict");
    group.bench_function("mfem_pair", |b| {
        b.iter(|| predict_pair(&baseline, &variable, Some(&driver), CompilerKind::Gcc));
    });
    group.finish();
}

fn bench_seeded_search(c: &mut Criterion) {
    let program = mfem_program();
    let baseline = Build::new(&program, Compilation::baseline());
    let variable = Build::tagged(
        &program,
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2Fma]),
        1,
    );
    let driver = example_driver(13, 1);
    let input = [0.35, 0.62];
    let pred = predict_pair(&baseline, &variable, Some(&driver), CompilerKind::Gcc);
    let exec = ThreadsBackend::new(8);

    let run = |cfg: &HierarchicalConfig| {
        bisect_hierarchical_parallel(
            &baseline,
            &variable,
            &driver,
            &input,
            &l2_compare,
            cfg,
            &exec,
        )
    };

    let mut group = c.benchmark_group("lint_seeded_search");
    group.sample_size(10);
    group.bench_function("unseeded_jobs8", |b| {
        b.iter(|| run(&HierarchicalConfig::all()));
    });
    group.bench_function("seeded_jobs8", |b| {
        b.iter(|| run(&HierarchicalConfig::all().with_prescreen(pred.prescreen(false))));
    });
    group.finish();
}

criterion_group!(benches, bench_analyze, bench_predict, bench_seeded_search);
criterion_main!(benches);
