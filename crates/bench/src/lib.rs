//! # flit-bench
//!
//! The experiment harness: shared drivers for the paper's tables and
//! figures. Each `src/bin/` binary regenerates one table or figure
//! (`table1` … `table5`, `fig2`, `fig4`, `fig5`, `fig6`, `motivation`,
//! `mpi_study`); `benches/` holds the Criterion microbenchmarks
//! (Bisect vs delta debugging vs linear scaling, substrate throughput).

pub mod mfem_study;

pub use mfem_study::{
    bisect_all_variable, bisect_all_variable_with, mfem_sweep, mfem_sweep_with,
    BisectCharacterization,
};
