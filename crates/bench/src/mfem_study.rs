//! Shared drivers for the MFEM study: the 4,636-run sweep and the
//! bisect-every-variable-compilation characterization (Tables 1–2,
//! Figures 4–6).

use flit_bisect::hierarchy::{bisect_hierarchical, HierarchicalConfig, SearchOutcome};
use flit_core::db::ResultsDb;
use flit_core::metrics::l2_compare;
use flit_core::runner::{run_matrix, RunnerConfig};
use flit_core::test::FlitTest;
use flit_exec::Executor;
use flit_mfem::examples::example_driver;
use flit_mfem::mfem_examples;
use flit_program::build::Build;
use flit_program::model::SimProgram;
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::{mfem_matrix, Compilation};
use flit_toolchain::compiler::CompilerKind;

/// Run the full 244-compilation × 19-example sweep.
pub fn mfem_sweep(program: &SimProgram) -> ResultsDb {
    mfem_sweep_with(program, &RunnerConfig::default())
}

/// [`mfem_sweep`] with explicit runner options (e.g. cache off for the
/// A/B build-work comparison).
pub fn mfem_sweep_with(program: &SimProgram, cfg: &RunnerConfig) -> ResultsDb {
    let tests = mfem_examples();
    let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();
    run_matrix(program, &dyn_tests, &mfem_matrix(), cfg).expect("the MFEM sweep runs")
}

/// Outcome counters of one compiler's bisect characterization
/// (a Table-2 column).
#[derive(Debug, Clone, Default)]
pub struct BisectCharacterization {
    /// Searches attempted (variable runs for this compiler).
    pub searches: usize,
    /// File Bisect completions (no crash; link-step-only counts as a
    /// completion with zero files, as in the paper's accounting).
    pub file_successes: usize,
    /// Searches that found files; the Symbol Bisect denominator.
    pub with_files: usize,
    /// Searches where every found file descended to symbol level.
    pub symbol_successes: usize,
    /// Searches ended by a mixed-ABI crash.
    pub crashes: usize,
    /// Total Test executions across searches.
    pub executions: usize,
}

impl BisectCharacterization {
    /// Mean executions per search.
    pub fn avg_executions(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.executions as f64 / self.searches as f64
        }
    }
}

/// Bisect every variable (test, compilation) pair in the sweep,
/// aggregated per compiler. Searches are independent, so they fan out
/// over `threads` workers with deterministic aggregation.
pub fn bisect_all_variable(
    program: &SimProgram,
    db: &ResultsDb,
    threads: usize,
) -> Vec<(CompilerKind, BisectCharacterization)> {
    bisect_all_variable_with(program, db, threads, &BuildCtx::cached())
}

/// [`bisect_all_variable`] with an explicit build context. All searches
/// share `ctx`, so repeated baselines and mixed links across jobs are
/// built once; its counters afterwards describe the whole
/// characterization.
pub fn bisect_all_variable_with(
    program: &SimProgram,
    db: &ResultsDb,
    threads: usize,
    ctx: &BuildCtx,
) -> Vec<(CompilerKind, BisectCharacterization)> {
    let jobs: Vec<(String, Compilation)> = db
        .rows
        .iter()
        .filter(|r| r.is_variable())
        .map(|r| (r.test.clone(), r.compilation.clone()))
        .collect();

    let run_job =
        |test: &str, comp: &Compilation| -> (CompilerKind, SearchOutcome, bool, bool, usize) {
            let ex: usize = test[2..].parse().expect("test names are exNN");
            let driver = example_driver(ex, 1);
            let base = Build::new(program, Compilation::baseline());
            let var = Build::tagged(program, comp.clone(), 1);
            let res = bisect_hierarchical(
                &base,
                &var,
                &driver,
                &[0.35, 0.62],
                &l2_compare,
                &HierarchicalConfig::all().with_ctx(ctx.clone()),
            );
            let with_files = !res.files.is_empty();
            let symbol_ok = with_files && res.file_level_only.is_empty() && !res.symbols.is_empty();
            (
                comp.compiler,
                res.outcome,
                with_files,
                symbol_ok,
                res.executions,
            )
        };

    // A work queue (not static chunking): searches vary wildly in cost,
    // and the queue keeps every worker busy until the jobs run out.
    // Results land in job order, so aggregation is schedule-independent.
    let results: Vec<(CompilerKind, SearchOutcome, bool, bool, usize)> = Executor::new(threads)
        .run(jobs.len(), |i| {
            let (t, c) = &jobs[i];
            run_job(t, c)
        })
        .unwrap_or_else(|e| panic!("bisect workers must not panic: {e}"));

    let mut per: Vec<(CompilerKind, BisectCharacterization)> = CompilerKind::MFEM_STUDY
        .iter()
        .map(|&c| (c, BisectCharacterization::default()))
        .collect();
    for (compiler, outcome, with_files, symbol_ok, executions) in results {
        let entry = &mut per
            .iter_mut()
            .find(|(c, _)| *c == compiler)
            .expect("MFEM compilers only")
            .1;
        entry.searches += 1;
        entry.executions += executions;
        match outcome {
            SearchOutcome::Crashed(_) => entry.crashes += 1,
            _ => {
                entry.file_successes += 1;
                if with_files {
                    entry.with_files += 1;
                    if symbol_ok {
                        entry.symbol_successes += 1;
                    }
                }
            }
        }
    }
    per
}

/// Default worker count for the heavy studies.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_mfem::mfem_program;

    #[test]
    fn sweep_and_characterization_smoke() {
        // Full pipeline on a thinned matrix: baseline + a handful of
        // compilations, to keep the unit test fast.
        let program = mfem_program();
        let tests = mfem_examples();
        let dyn_tests: Vec<&dyn FlitTest> = tests.iter().map(|t| t as &dyn FlitTest).collect();
        let comps: Vec<Compilation> = mfem_matrix()
            .into_iter()
            .filter(|c| {
                c.label() == "g++ -O0"
                    || c.label() == "g++ -O2"
                    || c.label() == "g++ -O3 -mavx2 -mfma -funsafe-math-optimizations"
                    || c.label() == "icpc -O0"
            })
            .collect();
        assert_eq!(comps.len(), 4);
        let db = run_matrix(&program, &dyn_tests, &comps, &RunnerConfig::default())
            .expect("thinned sweep runs");
        assert_eq!(db.rows.len(), 4 * 19);
        let character = bisect_all_variable(&program, &db, 4);
        let total_searches: usize = character.iter().map(|(_, c)| c.searches).sum();
        let variable = db.rows.iter().filter(|r| r.is_variable()).count();
        assert_eq!(total_searches, variable);
        assert!(variable > 5, "expected some variable runs, got {variable}");
        // gcc searches never crash (no ABI hazard).
        let gcc = &character
            .iter()
            .find(|(c, _)| *c == CompilerKind::Gcc)
            .unwrap()
            .1;
        assert_eq!(gcc.crashes, 0);
        assert!(gcc.avg_executions() > 3.0);
    }
}
