//! Regenerate **Table 1**: compilers used in the MFEM study with
//! summary statistics — # variable runs, best average flags, speedup
//! relative to `g++ -O2`.

use flit_bench::mfem_sweep;
use flit_core::analysis::compiler_summary;
use flit_mfem::mfem_program;
use flit_report::table::{fmt_f64, Align, Table};
use flit_toolchain::compiler::CompilerKind;

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);

    let mut table = Table::new(&[
        "Compiler",
        "Released",
        "# Variable Runs",
        "Best Flags",
        "Speedup",
    ])
    .with_title("Table 1: compilers used in the MFEM study (speedup vs g++ -O2)")
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Right,
    ]);

    for compiler in CompilerKind::MFEM_STUDY {
        let s = compiler_summary(&db, compiler);
        let pct = 100.0 * s.variable_runs as f64 / s.total_runs as f64;
        table.row(&[
            compiler.to_string(),
            compiler.released().to_string(),
            format!("{} of {} ({:.1}%)", s.variable_runs, s.total_runs, pct),
            s.best_flags
                .trim_start_matches(compiler.driver())
                .trim()
                .to_string(),
            fmt_f64(s.best_avg_speedup, 3),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(paper: gcc 78/1,288 = 6.0% @ 1.097; clang 24/1,368 = 1.8% @ 1.042; icpc 984/1,976 = 49.8% @ 1.056)"
    );
}
