//! Regenerate the **§3.6 MPI support study**:
//!
//! 1. verify run-to-run determinism of the 17 wrappable MFEM examples
//!    under 24-way decomposition (100 executions each);
//! 2. show that changing the parallelism changes the ℓ2 result (domain
//!    decomposition changes the grid density);
//! 3. verify Bisect finds the same files and functions under the
//!    parallel configuration as it did sequentially.

use flit_bisect::hierarchy::{bisect_hierarchical, HierarchicalConfig, SearchOutcome};
use flit_core::metrics::l2_compare;
use flit_fpsim::ulp::l2_norm;
use flit_mfem::examples::{example_driver, mpi_wrappable};
use flit_mfem::mfem_program;
use flit_program::build::Build;
use flit_program::engine::Engine;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;

const RANKS: usize = 24;
const INPUT: [f64; 2] = [0.35, 0.62];

fn main() {
    let program = mfem_program();
    let build = Build::new(&program, Compilation::perf_reference());
    let exe = build.executable().expect("reference build links");
    let engine = Engine::new(&program, &exe);

    // Step 1: 100-run bitwise determinism under MPI for the 17
    // wrappable examples.
    println!("Step 1: run-to-run determinism under {RANKS} ranks (100 runs each)");
    let mut deterministic = 0;
    for ex in 1..=19 {
        if !mpi_wrappable(ex) {
            println!("  ex{ex:02}: skipped (cannot wrap MPI_Init/MPI_Finalize)");
            continue;
        }
        let driver = example_driver(ex, RANKS);
        let first = engine.run(&driver, &INPUT).expect("example runs");
        let ok = (1..100).all(|_| {
            engine
                .run(&driver, &INPUT)
                .is_ok_and(|o| o.output == first.output)
        });
        if ok {
            deterministic += 1;
        }
        println!(
            "  ex{ex:02}: {}",
            if ok {
                "bitwise deterministic"
            } else {
                "NON-DETERMINISTIC"
            }
        );
    }
    println!("  {deterministic}/17 verified (paper: all 17 converted tests passed)");
    println!();

    // Step 2: parallelism changes the result.
    println!("Step 2: does parallelization change the result?");
    let mut changed = 0;
    for ex in 1..=19 {
        if !mpi_wrappable(ex) {
            continue;
        }
        let seq = engine
            .run(&example_driver(ex, 1), &INPUT)
            .expect("sequential run");
        let par = engine
            .run(&example_driver(ex, RANKS), &INPUT)
            .expect("parallel run");
        let differs = seq.output != par.output;
        if differs {
            changed += 1;
        }
        println!(
            "  ex{ex:02}: sequential |u| = {:.6}, {RANKS}-rank |u| = {:.6} → {}",
            l2_norm(&seq.output),
            l2_norm(&par.output),
            if differs { "changed" } else { "identical" }
        );
    }
    println!(
        "  {changed}/17 changed (paper: all — \"increasing the parallelism changed the result\", via grid density)"
    );
    println!();

    // Step 3: Bisect under MPI finds the same files/functions.
    println!("Step 3: Bisect agreement between sequential and {RANKS}-rank runs");
    let variable = Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe]);
    let mut agree = 0;
    let mut attempted = 0;
    for ex in [1usize, 4, 8, 9, 13, 14, 17, 19] {
        let base = Build::new(&program, Compilation::baseline());
        let var = Build::tagged(&program, variable.clone(), 1);
        let run = |ranks: usize| {
            bisect_hierarchical(
                &base,
                &var,
                &example_driver(ex, ranks),
                &INPUT,
                &l2_compare,
                &HierarchicalConfig::all(),
            )
        };
        let seq = run(1);
        let par = run(RANKS);
        if seq.outcome != SearchOutcome::Completed || seq.files.is_empty() {
            println!("  ex{ex:02}: no successful sequential Bisect run — skipped");
            continue;
        }
        attempted += 1;
        let names = |r: &flit_bisect::hierarchy::HierarchicalResult| {
            let mut f: Vec<String> = r.files.iter().map(|x| x.file_name.clone()).collect();
            let mut s: Vec<String> = r.symbols.iter().map(|x| x.symbol.clone()).collect();
            f.sort();
            s.sort();
            (f, s)
        };
        let (sf, ss) = names(&seq);
        let (pf, ps) = names(&par);
        let same = sf == pf && ss == ps;
        if same {
            agree += 1;
        }
        println!(
            "  ex{ex:02}: files {sf:?}, symbols {ss:?} → {}",
            if same {
                "identical under MPI"
            } else {
                "DIFFERENT under MPI"
            }
        );
    }
    println!(
        "  {agree}/{attempted} agree (paper: every sampled test isolated the same sets of files and functions)"
    );
}
