//! Audit the static prescreen (`flit-lint`) against dynamic ground
//! truth, in the paper's two heavyweight regimes:
//!
//! 1. **Table 2** — bisect every variable (test, compilation) MFEM
//!    pair, predict each pair statically, and score file/symbol recall
//!    and precision (micro-averaged), plus the ABI-crash prediction.
//! 2. **Seeding savings** — rerun every ex13 variable pair at 8 jobs
//!    unseeded vs lint-seeded and total the executed Test queries.
//! 3. **Table 5** — the LULESH injection study, auditing the
//!    prediction's coverage of every measurable injection.

use flit_bench::mfem_study::{default_threads, mfem_sweep};
use flit_bisect::hierarchy::{
    bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig, SearchOutcome,
};
use flit_core::metrics::l2_compare;
use flit_exec::{Executor, ThreadsBackend};
use flit_inject::study::{run_study, StudyConfig};
use flit_lint::{audit_hierarchy, audit_injection, predict_pair};
use flit_lulesh::{lulesh_driver, lulesh_program};
use flit_mfem::examples::example_driver;
use flit_mfem::mfem_program;
use flit_program::build::Build;
use flit_program::model::SimProgram;
use flit_report::table::{Align, Table};
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;
use flit_trace::names::counter;
use flit_trace::sink::TraceSink;

struct LevelTotals {
    found: usize,
    predicted: usize,
    hits: usize,
    missed: usize,
}

impl LevelTotals {
    fn new() -> Self {
        LevelTotals {
            found: 0,
            predicted: 0,
            hits: 0,
            missed: 0,
        }
    }
    fn recall(&self) -> f64 {
        if self.found == 0 {
            1.0
        } else {
            self.hits as f64 / self.found as f64
        }
    }
    fn precision(&self) -> f64 {
        if self.predicted == 0 {
            1.0
        } else {
            self.hits as f64 / self.predicted as f64
        }
    }
}

fn table2_audit(program: &SimProgram) {
    let db = mfem_sweep(program);
    let jobs: Vec<(String, Compilation)> = db
        .rows
        .iter()
        .filter(|r| r.is_variable())
        .map(|r| (r.test.clone(), r.compilation.clone()))
        .collect();
    let ctx = BuildCtx::cached();

    let run_job = |test: &str, comp: &Compilation| {
        let ex: usize = test[2..].parse().expect("test names are exNN");
        let driver = example_driver(ex, 1);
        let base = Build::new(program, Compilation::baseline());
        let var = Build::tagged(program, comp.clone(), 1);
        let pred = predict_pair(&base, &var, Some(&driver), CompilerKind::Gcc);
        let res = bisect_hierarchical(
            &base,
            &var,
            &driver,
            &[0.35, 0.62],
            &l2_compare,
            &HierarchicalConfig::all().with_ctx(ctx.clone()),
        );
        let crashed = matches!(res.outcome, SearchOutcome::Crashed(_));
        (audit_hierarchy(&pred, &res), pred.abi_hazard, crashed)
    };

    let results = Executor::new(default_threads())
        .run(jobs.len(), |i| {
            let (t, c) = &jobs[i];
            run_job(t, c)
        })
        .unwrap_or_else(|e| panic!("audit workers must not panic: {e}"));

    let mut files = LevelTotals::new();
    let mut symbols = LevelTotals::new();
    let mut crash_hits = 0usize;
    let mut crashes = 0usize;
    let mut false_alarms = 0usize;
    let mut unsound = 0usize;
    for (audit, abi_hazard, crashed) in &results {
        for (t, level) in [(&mut files, &audit.files), (&mut symbols, &audit.symbols)] {
            t.found += level.found.len();
            t.predicted += level.predicted.len();
            t.hits += level.hits;
            t.missed += level.missed.len();
        }
        if !audit.sound() {
            unsound += 1;
        }
        if *crashed {
            crashes += 1;
            if *abi_hazard {
                crash_hits += 1;
            }
        } else if *abi_hazard {
            false_alarms += 1;
        }
    }

    let mut table = Table::new(&["Level", "Found", "Predicted", "Hits", "Recall", "Precision"])
        .with_title(format!(
            "Static audit vs Table 2 ({} variable pairs)",
            results.len()
        ))
        .with_aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for (name, t) in [("files", &files), ("symbols", &symbols)] {
        table.row(&[
            name.into(),
            t.found.to_string(),
            t.predicted.to_string(),
            t.hits.to_string(),
            format!("{:.3}", t.recall()),
            format!("{:.3}", t.precision()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "unsound pairs = {unsound} (recall < 1.0 anywhere); \
         ABI crashes predicted = {crash_hits}/{crashes}, false alarms = {false_alarms}"
    );
    assert_eq!(unsound, 0, "static recall must be 1.0 on every pair");
}

fn seeding_savings(program: &SimProgram) {
    let db = mfem_sweep(program);
    let pairs: Vec<Compilation> = db
        .rows
        .iter()
        .filter(|r| r.is_variable() && r.test == "ex13")
        .map(|r| r.compilation.clone())
        .collect();
    let driver = example_driver(13, 1);
    let base = Build::new(program, Compilation::baseline());
    let exec = ThreadsBackend::new(8);
    let ctx = BuildCtx::cached();

    let mut unseeded = 0u64;
    let mut seeded = 0u64;
    for comp in &pairs {
        let var = Build::tagged(program, comp.clone(), 1);
        let pred = predict_pair(&base, &var, Some(&driver), CompilerKind::Gcc);
        for (seed, total) in [(false, &mut unseeded), (true, &mut seeded)] {
            let trace = TraceSink::enabled();
            let mut cfg = HierarchicalConfig::all()
                .with_ctx(ctx.clone())
                .with_trace(trace.clone());
            if seed {
                cfg = cfg.with_prescreen(pred.prescreen(false));
            }
            let a = bisect_hierarchical_parallel(
                &base,
                &var,
                &driver,
                &[0.35, 0.62],
                &l2_compare,
                &cfg,
                &exec,
            );
            let b = bisect_hierarchical(
                &base,
                &var,
                &driver,
                &[0.35, 0.62],
                &l2_compare,
                &HierarchicalConfig::all().with_ctx(ctx.clone()),
            );
            assert_eq!(a, b, "seeding/width must never change findings");
            *total += trace.snapshot().counter(counter::EXEC_QUERIES_EXECUTED);
        }
    }
    println!(
        "Seeding savings (ex13, {} variable pairs, 8 jobs): \
         {unseeded} executed queries unseeded vs {seeded} lint-seeded ({:.1}% saved)",
        pairs.len(),
        100.0 * (unseeded.saturating_sub(seeded)) as f64 / unseeded.max(1) as f64
    );
}

fn table5_audit() {
    let program = lulesh_program();
    let cfg = StudyConfig {
        compilation: Compilation::perf_reference(),
        driver: lulesh_driver(),
        input: vec![0.53, 0.31],
        seed: 42,
        threads: default_threads(),
    };
    let (records, summary) = run_study(&program, &cfg);
    let audit = audit_injection(&program, &cfg, &records);
    println!(
        "Injection audit vs Table 5: {} measurable injections, {} fully covered; \
         reported-symbol recall = {:.3}, precision = {:.3} \
         (dynamic study: precision {:.3}, recall {:.3})",
        audit.measurable,
        audit.covered,
        audit.recall(),
        audit.precision(),
        summary.precision(),
        summary.recall()
    );
    assert!(audit.sound(), "every reported blame must be predicted");
}

fn main() {
    let program = mfem_program();
    table2_audit(&program);
    seeding_savings(&program);
    table5_audit();
}
