//! Regenerate **Figure 5**: per-example histogram of the fastest
//! compilation in each category — the fastest *bitwise-equal* build per
//! compiler (three bars) and the fastest *variable* build overall (one
//! bar). Missing bars reproduce the paper's: examples 12 and 18 have no
//! variable compilations; examples 4, 5, 9, 10 and 15 have no
//! bitwise-equal Intel bar (link-step variability).

use flit_bench::mfem_sweep;
use flit_core::analysis::{category_bars, fastest_is_reproducible_count};
use flit_mfem::mfem_program;
use flit_report::plot::{bar_chart, BarRow};

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);

    for test in db.tests() {
        let bars = category_bars(&db, &test);
        let mut rows = Vec::new();
        for (compiler, point) in &bars.fastest_equal {
            match point {
                Some(p) => rows.push(BarRow {
                    label: format!("{} equal", compiler.driver()),
                    value: p.speedup,
                    marker: '=',
                }),
                None => rows.push(BarRow {
                    label: format!("{} equal", compiler.driver()),
                    value: 0.0,
                    marker: ' ',
                }),
            }
        }
        match &bars.fastest_variable {
            Some(p) => rows.push(BarRow {
                label: "any variable".into(),
                value: p.speedup,
                marker: 'x',
            }),
            None => rows.push(BarRow {
                label: "any variable".into(),
                value: 0.0,
                marker: ' ',
            }),
        }
        println!("{}", bar_chart(&format!("Figure 5, {test}"), &rows, 48));
    }

    let (wins, total) = fastest_is_reproducible_count(&db);
    println!(
        "{wins} of {total} examples have their fastest compilation among the bitwise-equal ones"
    );
    println!("(paper: 14 of 19; variable noticeably faster in only 2 groupings)");
}
