//! Extension of §3.3's compiler characterization: attribute variability
//! to individual *switches* across the whole MFEM sweep — which flags a
//! project can allow without risking reproducibility, and which
//! libraries the blame concentrates in.

use flit_bench::mfem_sweep;
use flit_bisect::hierarchy::{bisect_hierarchical, HierarchicalConfig};
use flit_core::analysis::switch_attribution;
use flit_core::metrics::l2_compare;
use flit_mfem::examples::example_driver;
use flit_mfem::mfem_program;
use flit_program::build::Build;
use flit_report::table::{Align, Table};
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);

    let mut table = Table::new(&["switch", "variable runs", "rate"])
        .with_title("Per-switch variability attribution (MFEM, 4,636 runs)")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    for (switch, variable, total) in switch_attribution(&db) {
        table.row(&[
            switch,
            format!("{variable}/{total}"),
            format!("{:.1}%", 100.0 * variable as f64 / total as f64),
        ]);
    }
    println!("{}", table.render());

    // Library-level blame for one representative search (the workflow's
    // "Library, Source, and Function Blame" box).
    let base = Build::new(&program, Compilation::baseline());
    let var = Build::tagged(
        &program,
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe]),
        1,
    );
    let res = bisect_hierarchical(
        &base,
        &var,
        &example_driver(8, 1),
        &[0.35, 0.62],
        &l2_compare,
        &HierarchicalConfig::all(),
    );
    println!("library blame for ex08 under g++ -O3 -mavx2 -mfma -funsafe-math-optimizations:");
    for (lib, value) in res.library_blame() {
        println!("  {lib:<12} Test magnitude {value:.3e}");
    }
}
