//! Regenerate **Table 3**: general statistics of the code used by the
//! MFEM examples (plus the LULESH counts quoted in §3.5).

use flit_lulesh::{lulesh_program, LULESH_FP_OPS, LULESH_SLOC};
use flit_mfem::codebase::{mfem_program, stats_of, TABLE3};
use flit_report::table::{Align, Table};

fn main() {
    let mfem = mfem_program();
    let s = stats_of(&mfem);

    let mut table = Table::new(&["statistic", "measured", "paper"])
        .with_title("Table 3: general statistics of the code used by the MFEM examples")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    table.row(&[
        "source files".into(),
        s.files.to_string(),
        TABLE3.files.to_string(),
    ]);
    table.row(&[
        "average functions per file".into(),
        s.avg_functions_per_file.to_string(),
        TABLE3.avg_functions_per_file.to_string(),
    ]);
    table.row(&[
        "total functions".into(),
        s.exported_functions.to_string(),
        TABLE3.exported_functions.to_string(),
    ]);
    table.row(&[
        "source lines of code".into(),
        s.sloc.to_string(),
        TABLE3.sloc.to_string(),
    ]);
    println!("{}", table.render());

    let lulesh = lulesh_program();
    let fp_ops: usize = lulesh
        .files
        .iter()
        .flat_map(|f| &f.functions)
        .map(|f| f.kernel.fp_sites())
        .sum();
    let mut t2 = Table::new(&["statistic", "measured", "paper"])
        .with_title("LULESH (§3.5)")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    t2.row(&[
        "source lines of code".into(),
        lulesh.total_sloc().to_string(),
        LULESH_SLOC.to_string(),
    ]);
    t2.row(&[
        "floating point operations".into(),
        fp_ops.to_string(),
        LULESH_FP_OPS.to_string(),
    ]);
    println!("{}", t2.render());
}
