//! Regenerate **Table 4**: Bisect statistics of the Laghos experiment —
//! baselines × digit-limited comparisons × BisectBiggest k. Prefixed by
//! the §3.4 xsw hunt.

use flit_laghos::experiment::{hunt_xsw_bug, table4_grid};
use flit_report::table::{Align, Table};

fn main() {
    // Act 1: the xsw undefined-behaviour hunt on the public branch.
    let hunt = hunt_xsw_bug();
    println!("xsw hunt (public branch, xlc++ -O3 vs g++ -O2):");
    println!(
        "  found symbols {:?} in {} program executions (paper: the two visible symbols nearest the macro, 45 executions)",
        hunt.symbols.iter().map(|s| s.symbol.as_str()).collect::<Vec<_>>(),
        hunt.executions
    );
    println!();

    // Act 2: Table 4 on the xsw-fixed branch.
    let grid = table4_grid();
    let mut table = Table::new(&[
        "baseline",
        "digits",
        "k",
        "# files",
        "# funcs",
        "# runs",
        "top = viscosity?",
    ])
    .with_title("Table 4: Bisect statistics of the Laghos experiment (vs xlc++ -O3)")
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    for cell in &grid {
        table.row(&[
            cell.baseline.clone(),
            cell.digits.map_or("all".into(), |d| d.to_string()),
            cell.k.map_or("all".into(), |k| k.to_string()),
            cell.files.to_string(),
            cell.funcs.to_string(),
            cell.runs.to_string(),
            if cell.top_is_viscosity { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: digit-limited rows find 1 file / 1 func in 14-18 runs; full-precision k=all finds 5-7 funcs in 57-69 runs; every configuration identifies the ==0.0 viscosity comparison as the top contributor)");
}
