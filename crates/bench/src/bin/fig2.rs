//! Regenerate **Figure 2**: the illustrative BisectAll trace over ten
//! elements with variability-inducing items {2, 8, 9}.

use flit_bisect::algo::bisect_all;
use flit_bisect::test_fn::TestError;

fn main() {
    let items: Vec<u32> = (1..=10).collect();
    // Unique magnitudes for the three variable elements, so Assumption 1
    // holds by construction.
    let weights = [(2u32, 0.25f64), (8, 1.5), (9, 0.125)];
    let test = |set: &[u32]| -> Result<f64, TestError> {
        Ok(set
            .iter()
            .map(|i| {
                weights
                    .iter()
                    .find(|(w, _)| w == i)
                    .map_or(0.0, |(_, v)| *v)
            })
            .sum())
    };
    let out = bisect_all(test, &items).expect("scripted test cannot fail");

    println!("Figure 2: illustrative example of BisectAll (Algorithm 1)");
    println!();
    println!("Step | items fed to Test                | result");
    println!("-----+----------------------------------+-------");
    for (step, row) in out.trace.iter().enumerate() {
        let mut cells = String::new();
        for i in 1..=10u32 {
            let c = if row.tested.contains(&i) {
                format!("{i:>2} ")
            } else if row.space.contains(&i) {
                " · ".to_string()
            } else {
                " x ".to_string()
            };
            cells.push_str(&c);
        }
        let verdict = if row.value > 0.0 { "✘" } else { "✔" };
        println!("{:>4} | {cells} | {verdict}", step + 1);
    }
    let mut found: Vec<u32> = out.found.iter().map(|(i, _)| *i).collect();
    found.sort();
    println!("-----+----------------------------------+-------");
    println!("Result: {found:?}   (paper: {{2, 8, 9}})");
    println!(
        "Test executions: {} (Figure 2 shows 13 rows; memoization prunes repeats)",
        out.executions
    );
    println!(
        "Dynamic verification: {}",
        if out.verified() {
            "passed (no false negatives possible; false positives impossible)"
        } else {
            "VIOLATED"
        }
    );
    assert_eq!(found, vec![2, 8, 9]);
}
