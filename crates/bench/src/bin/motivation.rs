//! Regenerate the **§1 motivating example**: Laghos under IBM xlc,
//! `-O2` → `-O3` — the 11.2 % energy difference, the negative density,
//! and the 2.42× speedup.

use flit_laghos::motivation_numbers;

fn main() {
    let m = motivation_numbers();
    println!("Laghos motivating example (xlc++ -O2 vs -O3):");
    println!();
    println!("                         measured       paper");
    println!("  energy l2 at -O2   : {:>12.1}    129,664.9", m.energy_o2);
    println!("  energy l2 at -O3   : {:>12.1}    144,174.9", m.energy_o3);
    println!(
        "  relative difference: {:>11.1}%        11.2%",
        m.relative_diff_percent
    );
    println!(
        "  negative density   : {:>12}          yes",
        if m.negative_density { "yes" } else { "no" }
    );
    println!(
        "  runtime at -O2     : {:>10.1} s       51.5 s",
        m.seconds_o2
    );
    println!(
        "  runtime at -O3     : {:>10.1} s       21.3 s",
        m.seconds_o3
    );
    println!(
        "  speedup            : {:>11.2}x        2.42x",
        m.seconds_o2 / m.seconds_o3
    );
}
