//! Fleet-dedup and latency characterization of the `flit-serve`
//! multi-tenant daemon.
//!
//! Embeds a real daemon (TCP listener, runner pool, tenant journals)
//! with the CLI's workflow runner, drives it with concurrent tenants
//! submitting identical workflows, and reports:
//!
//! - the fleet-wide dedup ratio the cross-tenant single-flight ledger
//!   buys (`shared_hits / (executed + shared_hits)`), and
//! - the submit endpoint's latency distribution in *simulated seconds*
//!   (deterministic), with the Student-t confidence interval the
//!   status endpoint publishes.
//!
//! Emits `BENCH_serve.json` for CI to archive, and **enforces** the
//! published targets — a dedup ratio below [`DEDUP_RATIO_MIN`] or a
//! p95 above [`P95_SIM_SECONDS_MAX`] exits nonzero so verify.sh trips.

use std::net::TcpListener;
use std::sync::Arc;

use flit_cli::serve::CliRunner;
use flit_report::table::{fmt_f64, Align, Table};
use flit_serve::daemon::{serve, ServeConfig};
use flit_serve::protocol::{self, Response, StatusReport};
use serde::Serialize;

/// Fleet dedup ratio floor: 4 tenants running identical workflows
/// must share at least half of all physical query traffic (the ideal
/// for 4 tenants is 0.75; anything under 0.5 means cross-tenant
/// single-flight regressed).
const DEDUP_RATIO_MIN: f64 = 0.5;

/// Submit-endpoint p95 ceiling in simulated seconds. The workload is
/// deterministic (laghos and mfem workflows, 2 bisections each), so
/// this is a stable published target, not a flaky wall-clock bound:
/// measured p95 is 5944.61 simulated seconds (the mfem workflow's
/// matrix sweep dominates); regressions that inflate the simulated
/// cost of a submission — extra sweep runs, lost memoization — trip
/// this.
const P95_SIM_SECONDS_MAX: f64 = 6200.0;

const TENANTS: [&str; 4] = ["team-a", "team-b", "team-c", "team-d"];
const APPS: [&str; 2] = ["laghos", "mfem"];

#[derive(Serialize)]
struct LatencyJson {
    n: u64,
    mean: f64,
    ci_lo: f64,
    ci_hi: f64,
    level: f64,
    p95: f64,
}

#[derive(Serialize)]
struct FleetJson {
    executed: u64,
    memoized: u64,
    shared_hits: u64,
    dedup_ratio: f64,
}

#[derive(Serialize)]
struct TargetsJson {
    dedup_ratio_min: f64,
    p95_sim_seconds_max: f64,
}

#[derive(Serialize)]
struct ServeBenchJson {
    tenants: Vec<String>,
    apps: Vec<String>,
    submissions: u64,
    completed: u64,
    rejected: u64,
    fleet: FleetJson,
    latency: LatencyJson,
    targets: TargetsJson,
    pass: bool,
}

fn submit_all(addr: std::net::SocketAddr) -> Vec<f64> {
    let handles: Vec<_> = TENANTS
        .iter()
        .flat_map(|tenant| APPS.iter().map(move |app| (*tenant, *app)))
        .map(|(tenant, app)| {
            std::thread::spawn(move || {
                match protocol::submit(addr, tenant, app, Some(2), None).expect("daemon reachable")
                {
                    Response::Report {
                        simulated_seconds, ..
                    } => simulated_seconds,
                    other => panic!("submission failed: {other:?}"),
                }
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn fetch_status(addr: std::net::SocketAddr) -> StatusReport {
    match protocol::status(addr).expect("daemon reachable") {
        Response::Status(s) => s,
        other => panic!("status failed: {other:?}"),
    }
}

fn main() {
    let state_dir = std::path::PathBuf::from("target/serve-bench-state");
    let _ = std::fs::remove_dir_all(&state_dir);
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let cfg = ServeConfig {
        state_dir,
        max_inflight: 4,
        ..ServeConfig::default()
    };
    let daemon = std::thread::spawn(move || {
        serve(listener, Arc::new(CliRunner::threads()), cfg).expect("daemon runs")
    });

    // Round 1: every tenant submits the identical app set concurrently
    // — the cross-tenant dedup measurement. Round 2 resubmits: each
    // tenant's journal replays its own answers, which must not add
    // fleet traffic (and doubles the latency sample).
    let mut latencies = submit_all(addr);
    let fleet_after_round1 = fetch_status(addr).fleet;
    latencies.extend(submit_all(addr));
    let status = fetch_status(addr);
    assert_eq!(
        status.fleet, fleet_after_round1,
        "resubmissions must replay from tenant journals, not re-execute fleet-wide"
    );

    match protocol::shutdown(addr).expect("daemon reachable") {
        Response::ShutdownAck { .. } => {}
        other => panic!("shutdown failed: {other:?}"),
    }
    daemon.join().expect("daemon thread joins");

    let fleet = status.fleet;
    let dedup_ratio = fleet.shared_hits as f64 / (fleet.executed + fleet.shared_hits) as f64;
    let latency = status.latency.expect("completed submissions have latency");
    assert_eq!(latency.n as usize, latencies.len());

    let mut t = Table::new(&["metric", "value", "target"])
        .with_title("flit-serve fleet characterization (4 tenants x 2 apps x 2 rounds)")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    t.row(&[
        "fleet queries executed".into(),
        fleet.executed.to_string(),
        String::new(),
    ]);
    t.row(&[
        "cross-tenant shared hits".into(),
        fleet.shared_hits.to_string(),
        String::new(),
    ]);
    t.row(&[
        "dedup ratio".into(),
        fmt_f64(dedup_ratio, 3),
        format!(">= {DEDUP_RATIO_MIN}"),
    ]);
    t.row(&[
        "submit latency mean (sim s)".into(),
        fmt_f64(latency.mean, 2),
        String::new(),
    ]);
    t.row(&[
        "submit latency 95% CI (sim s)".into(),
        format!(
            "[{}, {}]",
            fmt_f64(latency.ci_lo, 2),
            fmt_f64(latency.ci_hi, 2)
        ),
        String::new(),
    ]);
    t.row(&[
        "submit latency p95 (sim s)".into(),
        fmt_f64(latency.p95, 2),
        format!("<= {P95_SIM_SECONDS_MAX}"),
    ]);
    println!("{}", t.render());

    let dedup_ok = dedup_ratio >= DEDUP_RATIO_MIN;
    let p95_ok = latency.p95 <= P95_SIM_SECONDS_MAX;
    let pass = dedup_ok && p95_ok;
    let json = ServeBenchJson {
        tenants: TENANTS.iter().map(ToString::to_string).collect(),
        apps: APPS.iter().map(ToString::to_string).collect(),
        submissions: status.submissions,
        completed: status.completed,
        rejected: status.rejected,
        fleet: FleetJson {
            executed: fleet.executed,
            memoized: fleet.memoized,
            shared_hits: fleet.shared_hits,
            dedup_ratio,
        },
        latency: LatencyJson {
            n: latency.n,
            mean: latency.mean,
            ci_lo: latency.ci_lo,
            ci_hi: latency.ci_hi,
            level: latency.level,
            p95: latency.p95,
        },
        targets: TargetsJson {
            dedup_ratio_min: DEDUP_RATIO_MIN,
            p95_sim_seconds_max: P95_SIM_SECONDS_MAX,
        },
        pass,
    };
    std::fs::write(
        "BENCH_serve.json",
        serde_json::to_string_pretty(&json).expect("serializable") + "\n",
    )
    .expect("BENCH_serve.json written");
    println!("wrote BENCH_serve.json");

    if !dedup_ok {
        eprintln!("FAIL: dedup ratio {dedup_ratio:.3} < {DEDUP_RATIO_MIN}");
    }
    if !p95_ok {
        eprintln!(
            "FAIL: submit p95 {:.2} sim s > {P95_SIM_SECONDS_MAX}",
            latency.p95
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
