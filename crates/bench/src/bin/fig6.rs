//! Regenerate **Figure 6**: for each MFEM test, the number of
//! variability-inducing compilations (top) and a log-scale boxplot of
//! the relative ℓ2 errors (bottom). Tests 12 and 18 are omitted from
//! the boxplot because they have no found variabilities.

use flit_bench::mfem_sweep;
use flit_core::analysis::variability_summary;
use flit_core::db::ResultsDb;
use flit_mfem::mfem_program;
use flit_report::stats::Summary;

fn main() {
    let program = mfem_program();
    let db: ResultsDb = mfem_sweep(&program);

    println!("Figure 6 (top): # variable compilations (of 244) per test");
    for test in db.tests() {
        let s = variability_summary(&db, &test);
        let bar = "#".repeat(s.variable_compilations / 3);
        println!("  {test}: {:>3} {bar}", s.variable_compilations);
    }
    println!();
    println!("Figure 6 (bottom): relative l2 error boxplots (log10 scale, 1e-18 .. 1e1)");
    println!("          {}", "-".repeat(60));
    for test in db.tests() {
        let errs: Vec<f64> = db
            .for_test(&test)
            .iter()
            .filter(|r| r.is_variable())
            .map(|r| r.relative_error())
            .collect();
        match Summary::of(&errs) {
            None => println!("  {test}: (no found variabilities — omitted)"),
            Some(s) => {
                println!(
                    "  {test}: {}  min {:.1e} med {:.1e} max {:.1e}",
                    s.render_log_box(-18, 1, 60),
                    s.min,
                    s.median,
                    s.max
                );
            }
        }
    }
    println!();
    println!(
        "(paper: tests 12 and 18 omitted; example 8 reaches ~1e-6; example 13 reaches 183-197%)"
    );
}
