//! Regenerate **Figure 4**: speedup vs compilation for MFEM examples 5
//! and 9, compilations sorted by speedup, bitwise-equal vs variable.

use flit_bench::mfem_sweep;
use flit_core::analysis::speedup_series;
use flit_mfem::mfem_program;
use flit_report::plot::series_plot;

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);

    for (ex, paper) in [
        (
            "ex05",
            "paper 4(a): fastest bitwise-equal g++ -O3 @ 1.128 — the fastest overall",
        ),
        (
            "ex09",
            "paper 4(b): fastest variable icpc -O3 -fp-model fast=1 @ 1.396 ≫ fastest equal 1.094",
        ),
    ] {
        let series = speedup_series(&db, ex);
        let points: Vec<(f64, bool)> = series
            .iter()
            .map(|p| (p.speedup, p.bitwise_equal))
            .collect();
        println!(
            "{}",
            series_plot(
                &format!("Figure 4, MFEM example {ex}: speedup vs compilation (sorted)"),
                &points,
                16,
            )
        );
        let fastest_equal = series.iter().rfind(|p| p.bitwise_equal);
        let fastest_variable = series.iter().rfind(|p| !p.bitwise_equal);
        if let Some(p) = fastest_equal {
            println!("  fastest bitwise-equal: {} @ {:.3}", p.label, p.speedup);
        }
        if let Some(p) = fastest_variable {
            println!(
                "  fastest variable:      {} @ {:.3} (variability {:.2e})",
                p.label, p.speedup, p.comparison
            );
        }
        println!("  ({paper})");
        println!();
    }
}
