//! Regenerate **Table 2**: compiler characterization of Bisect with
//! MFEM — average test executions, File Bisect successes, Symbol Bisect
//! successes. "A failure here means the resulting mixed executable
//! crashed."

use flit_bench::{bisect_all_variable_with, mfem_study::default_threads, mfem_sweep};
use flit_mfem::mfem_program;
use flit_report::table::{Align, Table};
use flit_toolchain::cache::BuildCtx;

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);

    // A/B the build work on the hierarchical-bisect workload: the
    // counting context does every compile fresh, the cached context
    // shares objects and memoizes links across searches.
    let counting = BuildCtx::counting();
    let character = bisect_all_variable_with(&program, &db, default_threads(), &counting);
    let cached = BuildCtx::cached();
    let _ = bisect_all_variable_with(&program, &db, default_threads(), &cached);

    let mut table = Table::new(&["", "g++", "clang++", "icpc", "total"])
        .with_title("Table 2: compiler characterization of Bisect with MFEM")
        .with_aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);

    let total_execs: usize = character.iter().map(|(_, c)| c.executions).sum();
    let total_searches: usize = character.iter().map(|(_, c)| c.searches).sum();
    let mut avg_row = vec!["average test executions".to_string()];
    let mut file_row = vec!["File Bisect successes".to_string()];
    let mut sym_row = vec!["Symbol Bisect successes".to_string()];
    for (_, c) in &character {
        avg_row.push(format!("{:.0}", c.avg_executions()));
        file_row.push(format!("{}/{}", c.file_successes, c.searches));
        sym_row.push(format!("{}/{}", c.symbol_successes, c.with_files));
    }
    avg_row.push(format!(
        "{:.0}",
        total_execs as f64 / total_searches.max(1) as f64
    ));
    file_row.push(format!(
        "{}/{}",
        character
            .iter()
            .map(|(_, c)| c.file_successes)
            .sum::<usize>(),
        total_searches
    ));
    sym_row.push(format!(
        "{}/{}",
        character
            .iter()
            .map(|(_, c)| c.symbol_successes)
            .sum::<usize>(),
        character.iter().map(|(_, c)| c.with_files).sum::<usize>()
    ));
    table.row(&avg_row);
    table.row(&file_row);
    table.row(&sym_row);
    println!("{}", table.render());
    println!("(paper: avg execs 64/29/27 → 30; file 78/78, 24/24, 778/984 = 880/1,086; symbol 51/78, 24/24, 585/778 = 660/880)");
    for (compiler, c) in &character {
        println!(
            "  {compiler:?}: {} crashes out of {} searches ({:.1}%)",
            c.crashes,
            c.searches,
            100.0 * c.crashes as f64 / c.searches.max(1) as f64
        );
    }

    let off = counting.stats();
    let on = cached.stats();
    println!("\nbuild work (cache off vs on):");
    println!(
        "  objects compiled: {} -> {} ({} cache hits)",
        off.objects_compiled, on.objects_compiled, on.object_cache_hits
    );
    println!(
        "  links:            {} -> {} ({} memo hits)",
        off.links, on.links, on.link_memo_hits
    );
    println!(
        "  compile reduction: {:.1}x",
        off.objects_compiled as f64 / on.objects_compiled.max(1) as f64
    );
}
