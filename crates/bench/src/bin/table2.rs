//! Regenerate **Table 2**: compiler characterization of Bisect with
//! MFEM — average test executions, File Bisect successes, Symbol Bisect
//! successes. "A failure here means the resulting mixed executable
//! crashed."

use flit_bench::{bisect_all_variable, mfem_study::default_threads, mfem_sweep};
use flit_mfem::mfem_program;
use flit_report::table::{Align, Table};

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);
    let character = bisect_all_variable(&program, &db, default_threads());

    let mut table = Table::new(&[
        "",
        "g++",
        "clang++",
        "icpc",
        "total",
    ])
    .with_title("Table 2: compiler characterization of Bisect with MFEM")
    .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right, Align::Right]);

    let total_execs: usize = character.iter().map(|(_, c)| c.executions).sum();
    let total_searches: usize = character.iter().map(|(_, c)| c.searches).sum();
    let mut avg_row = vec!["average test executions".to_string()];
    let mut file_row = vec!["File Bisect successes".to_string()];
    let mut sym_row = vec!["Symbol Bisect successes".to_string()];
    for (_, c) in &character {
        avg_row.push(format!("{:.0}", c.avg_executions()));
        file_row.push(format!("{}/{}", c.file_successes, c.searches));
        sym_row.push(format!("{}/{}", c.symbol_successes, c.with_files));
    }
    avg_row.push(format!(
        "{:.0}",
        total_execs as f64 / total_searches.max(1) as f64
    ));
    file_row.push(format!(
        "{}/{}",
        character.iter().map(|(_, c)| c.file_successes).sum::<usize>(),
        total_searches
    ));
    sym_row.push(format!(
        "{}/{}",
        character.iter().map(|(_, c)| c.symbol_successes).sum::<usize>(),
        character.iter().map(|(_, c)| c.with_files).sum::<usize>()
    ));
    table.row(&avg_row);
    table.row(&file_row);
    table.row(&sym_row);
    println!("{}", table.render());
    println!("(paper: avg execs 64/29/27 → 30; file 78/78, 24/24, 778/984 = 880/1,086; symbol 51/78, 24/24, 585/778 = 660/880)");
    for (compiler, c) in &character {
        println!(
            "  {compiler:?}: {} crashes out of {} searches ({:.1}%)",
            c.crashes,
            c.searches,
            100.0 * c.crashes as f64 / c.searches.max(1) as f64
        );
    }
}
