//! Regenerate **Table 2**: compiler characterization of Bisect with
//! MFEM — average test executions, File Bisect successes, Symbol Bisect
//! successes. "A failure here means the resulting mixed executable
//! crashed."
//!
//! Besides the rendered table this binary emits `BENCH_table2.json`
//! (machine-readable characterization, build-cache A/B, and a
//! perf-bisect demonstration with per-phase simulated seconds plus
//! cache/ledger counters) for CI to archive.

use std::collections::BTreeMap;

use flit_bench::{bisect_all_variable_with, mfem_study::default_threads, mfem_sweep};
use flit_bisect::ledger::{LedgerHandle, QueryLedger};
use flit_bisect::perf::{perf_bisect, PerfConfig};
use flit_exec::ThreadsBackend;
use flit_mfem::examples::example_driver;
use flit_mfem::mfem_program;
use flit_program::build::Build;
use flit_report::table::{Align, Table};
use flit_toolchain::cache::{BuildCtx, BuildStats};
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::{CompilerKind, OptLevel};
use flit_toolchain::flags::Switch;
use flit_trace::sink::TraceSink;
use serde::Serialize;

/// One Table-2 column, machine-readable.
#[derive(Serialize)]
struct CompilerRowJson {
    compiler: String,
    searches: usize,
    executions: usize,
    avg_executions: f64,
    file_successes: usize,
    with_files: usize,
    symbol_successes: usize,
    crashes: usize,
}

#[derive(Serialize)]
struct CacheSideJson {
    objects_compiled: u64,
    object_cache_hits: u64,
    links: u64,
    link_memo_hits: u64,
}

impl From<BuildStats> for CacheSideJson {
    fn from(s: BuildStats) -> Self {
        CacheSideJson {
            objects_compiled: s.objects_compiled,
            object_cache_hits: s.object_cache_hits,
            links: s.links,
            link_memo_hits: s.link_memo_hits,
        }
    }
}

#[derive(Serialize)]
struct BuildCacheJson {
    off: CacheSideJson,
    on: CacheSideJson,
    compile_reduction: f64,
}

/// Aggregated span totals of one trace phase: how many simulated
/// seconds the perf search spent where.
#[derive(Serialize)]
struct PhaseJson {
    phase: String,
    spans: usize,
    cost: u64,
    simulated_seconds: f64,
}

#[derive(Serialize)]
struct LedgerJson {
    executed: u64,
    memoized: u64,
    shared_hits: u64,
}

#[derive(Serialize)]
struct PerfJson {
    test: String,
    baseline: String,
    candidate: String,
    samples: u32,
    alpha: f64,
    seed: u64,
    outcome: String,
    overall: Option<String>,
    files: Vec<String>,
    symbols: Vec<String>,
    executions: usize,
    phases: Vec<PhaseJson>,
    counters: BTreeMap<String, u64>,
    ledger: LedgerJson,
}

#[derive(Serialize)]
struct BenchJson {
    schema: String,
    table2: Vec<CompilerRowJson>,
    build_cache: BuildCacheJson,
    perf_bisect: PerfJson,
}

/// Run the perf-bisect demonstration on the Table-2 workload: ex09 is
/// the compute-dominated example, and `-fimf-precision=high` slows its
/// transcendental kernels only.
fn perf_demo(program: &flit_program::model::SimProgram) -> PerfJson {
    let base_comp = Compilation::new(CompilerKind::Icpc, OptLevel::O2, vec![]);
    let cand_comp = Compilation::new(
        CompilerKind::Icpc,
        OptLevel::O2,
        vec![Switch::ImfPrecisionHigh],
    );
    let base = Build::new(program, base_comp.clone());
    let cand = Build::tagged(program, cand_comp.clone(), 1);
    let driver = example_driver(9, 1);

    let trace = TraceSink::enabled();
    let ledger = QueryLedger::new(program.fingerprint(), &trace);
    let handle = LedgerHandle::new(ledger.clone(), 1, "perf/table2");
    let cfg = PerfConfig::new()
        .with_ctx(BuildCtx::cached())
        .with_trace(trace.clone())
        .with_ledger(handle);
    let res = perf_bisect(
        &base,
        &cand,
        &driver,
        &[0.35, 0.62],
        &cfg,
        &ThreadsBackend::new(default_threads()),
    );

    let snapshot = trace.snapshot();
    let phases = snapshot
        .phases()
        .into_iter()
        .map(|phase| {
            let spans = snapshot.spans_in(&phase);
            PhaseJson {
                spans: spans.len(),
                cost: spans.iter().map(|s| s.cost).sum(),
                simulated_seconds: spans.iter().map(|s| s.duration).sum(),
                phase,
            }
        })
        .collect();
    let stats = ledger.stats();
    PerfJson {
        test: driver.name.clone(),
        baseline: base_comp.label(),
        candidate: cand_comp.label(),
        samples: cfg.samples,
        alpha: cfg.alpha,
        seed: cfg.seed,
        outcome: format!("{:?}", res.outcome),
        overall: res.overall.as_ref().map(flit_report::SpeedupReport::render),
        files: res.files.iter().map(|f| f.file_name.clone()).collect(),
        symbols: res.symbols.iter().map(|s| s.symbol.clone()).collect(),
        executions: res.executions,
        phases,
        counters: snapshot.counters(),
        ledger: LedgerJson {
            executed: stats.executed,
            memoized: stats.memoized,
            shared_hits: stats.shared_hits,
        },
    }
}

fn main() {
    let program = mfem_program();
    let db = mfem_sweep(&program);

    // A/B the build work on the hierarchical-bisect workload: the
    // counting context does every compile fresh, the cached context
    // shares objects and memoizes links across searches.
    let counting = BuildCtx::counting();
    let character = bisect_all_variable_with(&program, &db, default_threads(), &counting);
    let cached = BuildCtx::cached();
    let _ = bisect_all_variable_with(&program, &db, default_threads(), &cached);

    let mut table = Table::new(&["", "g++", "clang++", "icpc", "total"])
        .with_title("Table 2: compiler characterization of Bisect with MFEM")
        .with_aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);

    let total_execs: usize = character.iter().map(|(_, c)| c.executions).sum();
    let total_searches: usize = character.iter().map(|(_, c)| c.searches).sum();
    let mut avg_row = vec!["average test executions".to_string()];
    let mut file_row = vec!["File Bisect successes".to_string()];
    let mut sym_row = vec!["Symbol Bisect successes".to_string()];
    for (_, c) in &character {
        avg_row.push(format!("{:.0}", c.avg_executions()));
        file_row.push(format!("{}/{}", c.file_successes, c.searches));
        sym_row.push(format!("{}/{}", c.symbol_successes, c.with_files));
    }
    avg_row.push(format!(
        "{:.0}",
        total_execs as f64 / total_searches.max(1) as f64
    ));
    file_row.push(format!(
        "{}/{}",
        character
            .iter()
            .map(|(_, c)| c.file_successes)
            .sum::<usize>(),
        total_searches
    ));
    sym_row.push(format!(
        "{}/{}",
        character
            .iter()
            .map(|(_, c)| c.symbol_successes)
            .sum::<usize>(),
        character.iter().map(|(_, c)| c.with_files).sum::<usize>()
    ));
    table.row(&avg_row);
    table.row(&file_row);
    table.row(&sym_row);
    println!("{}", table.render());
    println!("(paper: avg execs 64/29/27 → 30; file 78/78, 24/24, 778/984 = 880/1,086; symbol 51/78, 24/24, 585/778 = 660/880)");
    for (compiler, c) in &character {
        println!(
            "  {compiler:?}: {} crashes out of {} searches ({:.1}%)",
            c.crashes,
            c.searches,
            100.0 * c.crashes as f64 / c.searches.max(1) as f64
        );
    }

    let off = counting.stats();
    let on = cached.stats();
    println!("\nbuild work (cache off vs on):");
    println!(
        "  objects compiled: {} -> {} ({} cache hits)",
        off.objects_compiled, on.objects_compiled, on.object_cache_hits
    );
    println!(
        "  links:            {} -> {} ({} memo hits)",
        off.links, on.links, on.link_memo_hits
    );
    let compile_reduction = off.objects_compiled as f64 / on.objects_compiled.max(1) as f64;
    println!("  compile reduction: {compile_reduction:.1}x");

    let perf = perf_demo(&program);
    println!("\nperf bisect ({} vs {}):", perf.baseline, perf.candidate);
    if let Some(overall) = &perf.overall {
        println!("  overall: {overall}");
    }
    println!(
        "  blamed: {} / {}",
        perf.files.join(", "),
        perf.symbols.join(", ")
    );

    let bench = BenchJson {
        schema: "flit-bench/table2/v1".into(),
        table2: character
            .iter()
            .map(|(compiler, c)| CompilerRowJson {
                compiler: format!("{compiler:?}"),
                searches: c.searches,
                executions: c.executions,
                avg_executions: c.avg_executions(),
                file_successes: c.file_successes,
                with_files: c.with_files,
                symbol_successes: c.symbol_successes,
                crashes: c.crashes,
            })
            .collect(),
        build_cache: BuildCacheJson {
            off: off.into(),
            on: on.into(),
            compile_reduction,
        },
        perf_bisect: perf,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench summary serializes");
    std::fs::write("BENCH_table2.json", json + "\n").expect("BENCH_table2.json writes");
    println!("\nwrote BENCH_table2.json");
}
