//! Regenerate **Table 5**: the LULESH injection study — 1,094 sites ×
//! 4 OP's = 4,376 injections, classified exact / indirect / wrong /
//! missed / not measurable, with precision and recall.

use flit_bench::mfem_study::default_threads;
use flit_inject::study::{run_study, StudyConfig};
use flit_lulesh::{lulesh_driver, lulesh_program};
use flit_report::table::{Align, Table};
use flit_toolchain::compilation::Compilation;

fn main() {
    let program = lulesh_program();
    let cfg = StudyConfig {
        compilation: Compilation::perf_reference(),
        driver: lulesh_driver(),
        input: vec![0.53, 0.31],
        seed: 42,
        threads: default_threads(),
    };
    let (_records, summary) = run_study(&program, &cfg);

    let mut table = Table::new(&["Category", "Count", "Paper"])
        .with_title("Table 5: LULESH compiler perturbation injection study")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    table.row(&[
        "exact finds".into(),
        summary.exact.to_string(),
        "2,690".into(),
    ]);
    table.row(&[
        "indirect finds".into(),
        summary.indirect.to_string(),
        "984".into(),
    ]);
    table.row(&["wrong finds".into(), summary.wrong.to_string(), "0".into()]);
    table.row(&[
        "missed finds".into(),
        summary.missed.to_string(),
        "0".into(),
    ]);
    table.row(&[
        "not measurable".into(),
        summary.not_measurable.to_string(),
        "702".into(),
    ]);
    table.row(&["total".into(), summary.total.to_string(), "4,376".into()]);
    println!("{}", table.render());
    println!(
        "precision = {:.3}, recall = {:.3} (paper: 100% / 100%)",
        summary.precision(),
        summary.recall()
    );
    println!(
        "average executions per measurable injection = {:.1} (paper: ~15)",
        summary.avg_runs
    );
}
