//! Audit the abstract interpreter (`flit-absint`) against dynamic
//! ground truth, in two regimes:
//!
//! 1. **Table 2 soundness + tightness** — certify every variable
//!    (test, compilation) MFEM pair, bisect it dynamically, and check
//!    that no dynamically-blamed item was certified `Invariant` and
//!    that every file-level singleton Test value sits inside its
//!    certified bound. Tightness is reported as the bound/observed
//!    ratio (1.0 = exact; large = sound but loose).
//! 2. **Prune savings** — rerun every ex13 variable pair at 8 jobs
//!    unseeded, lint-seeded, and certified-pruned, totalling executed
//!    Test queries. The certified prune must land on identical
//!    findings with strictly fewer executed queries.

use flit_absint::{certify_pair, Certificate};
use flit_bench::mfem_study::{default_threads, mfem_sweep};
use flit_bisect::hierarchy::{
    bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig, SearchOutcome,
};
use flit_core::metrics::l2_compare;
use flit_exec::{Executor, ThreadsBackend};
use flit_lint::predict_pair;
use flit_mfem::examples::example_driver;
use flit_mfem::mfem_program;
use flit_program::build::Build;
use flit_program::engine::Engine;
use flit_program::model::SimProgram;
use flit_report::table::{Align, Table};
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;
use flit_trace::names::counter;
use flit_trace::sink::TraceSink;

const INPUT: [f64; 2] = [0.35, 0.62];

/// Per-pair audit result.
struct PairAudit {
    inv: u64,
    bnd: u64,
    unk: u64,
    /// Dynamically blamed items certified Invariant (unsound).
    unsound: usize,
    /// File findings whose observed value exceeds the certified bound.
    violated: usize,
    /// bound/observed ratios for file findings with a positive observed
    /// value and a Bounded certificate.
    file_ratios: Vec<f64>,
    /// bound/observed ratio for the whole pair, when measurable.
    whole_ratio: Option<f64>,
    crashed: bool,
}

fn audit_pair(program: &SimProgram, test: &str, comp: &Compilation, ctx: &BuildCtx) -> PairAudit {
    let ex: usize = test[2..].parse().expect("test names are exNN");
    let driver = example_driver(ex, 1);
    let base = Build::new(program, Compilation::baseline());
    let var = Build::tagged(program, comp.clone(), 1);
    let certs = certify_pair(
        program,
        program,
        &driver,
        &Compilation::baseline(),
        comp,
        CompilerKind::Gcc,
    );
    let (inv, bnd, unk) = certs.counts();
    let res = bisect_hierarchical(
        &base,
        &var,
        &driver,
        &INPUT,
        &l2_compare,
        &HierarchicalConfig::all().with_ctx(ctx.clone()),
    );
    let crashed = matches!(res.outcome, SearchOutcome::Crashed(_));

    let mut unsound = 0;
    let mut violated = 0;
    let mut file_ratios = Vec::new();
    for f in &res.files {
        match certs.file(f.file_id) {
            Certificate::Invariant => unsound += 1,
            cert @ Certificate::Bounded(e) => {
                if cert.contradicted_by(f.value) {
                    violated += 1;
                } else if f.value > 0.0 {
                    file_ratios.push(e / f.value);
                }
            }
            Certificate::Unknown => {}
        }
    }
    for s in &res.symbols {
        if certs.symbol(&s.symbol) == Certificate::Invariant {
            unsound += 1;
        }
    }

    // Whole-pair tightness: each pure binary linked by its own
    // compiler, the certifier's whole-pair model.
    let whole_ratio = match certs.whole {
        Certificate::Bounded(e) if !crashed => {
            let run = |b: &Build| -> Option<Vec<f64>> {
                let exe = b.executable().ok()?;
                Engine::new(program, &exe)
                    .run(&driver, &INPUT)
                    .ok()
                    .map(|o| o.output)
            };
            match (run(&base), run(&Build::new(program, comp.clone()))) {
                (Some(a), Some(b)) => {
                    let observed = l2_compare(&a, &b);
                    if certs.whole.contradicted_by(observed) {
                        violated += 1;
                        None
                    } else if observed > 0.0 {
                        Some(e / observed)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    };

    PairAudit {
        inv,
        bnd,
        unk,
        unsound,
        violated,
        file_ratios,
        whole_ratio,
        crashed,
    }
}

fn ratio_stats(ratios: &mut [f64]) -> (f64, f64, f64) {
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = *ratios.first().unwrap_or(&f64::NAN);
    let med = ratios.get(ratios.len() / 2).copied().unwrap_or(f64::NAN);
    let max = *ratios.last().unwrap_or(&f64::NAN);
    (min, med, max)
}

fn table2_bounds(program: &SimProgram) {
    let db = mfem_sweep(program);
    let jobs: Vec<(String, Compilation)> = db
        .rows
        .iter()
        .filter(|r| r.is_variable())
        .map(|r| (r.test.clone(), r.compilation.clone()))
        .collect();
    let ctx = BuildCtx::cached();

    let results = Executor::new(default_threads())
        .run(jobs.len(), |i| {
            let (t, c) = &jobs[i];
            audit_pair(program, t, c, &ctx)
        })
        .unwrap_or_else(|e| panic!("audit workers must not panic: {e}"));

    let (mut inv, mut bnd, mut unk) = (0u64, 0u64, 0u64);
    let mut unsound = 0usize;
    let mut violated = 0usize;
    let mut crashes = 0usize;
    let mut file_ratios = Vec::new();
    let mut whole_ratios = Vec::new();
    for a in &results {
        inv += a.inv;
        bnd += a.bnd;
        unk += a.unk;
        unsound += a.unsound;
        violated += a.violated;
        crashes += a.crashed as usize;
        file_ratios.extend_from_slice(&a.file_ratios);
        whole_ratios.extend(a.whole_ratio);
    }

    let total = inv + bnd + unk;
    let mut table = Table::new(&["Certificate", "Items", "Share"])
        .with_title(format!(
            "Certificates across Table 2 ({} variable pairs)",
            results.len()
        ))
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    for (name, n) in [("invariant", inv), ("bounded", bnd), ("unknown", unk)] {
        table.row(&[
            name.into(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / total.max(1) as f64),
        ]);
    }
    println!("{}", table.render());

    let mut tight = Table::new(&["Level", "Samples", "Min", "Median", "Max"])
        .with_title("Bound tightness (certified bound / observed divergence)")
        .with_aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for (name, ratios) in [
        ("file singleton", &mut file_ratios),
        ("whole pair", &mut whole_ratios),
    ] {
        let n = ratios.len();
        let (min, med, max) = ratio_stats(ratios);
        tight.row(&[
            name.into(),
            n.to_string(),
            format!("{min:.2e}"),
            format!("{med:.2e}"),
            format!("{max:.2e}"),
        ]);
    }
    println!("{}", tight.render());
    println!(
        "soundness: {unsound} blamed items certified Invariant, \
         {violated} observed values above their bound \
         ({crashes} ABI-crashed pairs certify Unknown and are exempt)"
    );
    assert_eq!(unsound, 0, "no blamed item may be certified Invariant");
    assert_eq!(violated, 0, "no observed divergence may exceed its bound");
}

fn prune_savings(program: &SimProgram) {
    let db = mfem_sweep(program);
    let pairs: Vec<Compilation> = db
        .rows
        .iter()
        .filter(|r| r.is_variable() && r.test == "ex13")
        .map(|r| r.compilation.clone())
        .collect();
    let driver = example_driver(13, 1);
    let base = Build::new(program, Compilation::baseline());
    let exec = ThreadsBackend::new(8);
    let ctx = BuildCtx::cached();

    let mut totals = [0u64; 3]; // unseeded, lint-seeded, certified-pruned
    for comp in &pairs {
        let var = Build::tagged(program, comp.clone(), 1);
        let gold = bisect_hierarchical(
            &base,
            &var,
            &driver,
            &INPUT,
            &l2_compare,
            &HierarchicalConfig::all().with_ctx(ctx.clone()),
        );
        for (mode, total) in totals.iter_mut().enumerate() {
            let trace = TraceSink::enabled();
            let mut cfg = HierarchicalConfig::all()
                .with_ctx(ctx.clone())
                .with_trace(trace.clone());
            let mut pred = predict_pair(&base, &var, Some(&driver), CompilerKind::Gcc);
            match mode {
                1 => cfg = cfg.with_prescreen(pred.prescreen(false)),
                2 => {
                    let certs = certify_pair(
                        program,
                        program,
                        &driver,
                        &Compilation::baseline(),
                        comp,
                        CompilerKind::Gcc,
                    );
                    cfg = cfg.with_prescreen(pred.certified_prescreen(certs, true));
                }
                _ => {}
            }
            let res = bisect_hierarchical_parallel(
                &base,
                &var,
                &driver,
                &INPUT,
                &l2_compare,
                &cfg,
                &exec,
            );
            assert_eq!(res.files, gold.files, "prune must not change file blame");
            assert_eq!(
                res.symbols, gold.symbols,
                "prune must not change symbol blame"
            );
            assert_eq!(res.file_level_only, gold.file_level_only);
            assert!(res.violations.is_empty(), "{:?}", res.violations);
            *total += trace.snapshot().counter(counter::EXEC_QUERIES_EXECUTED);
        }
    }
    let [unseeded, seeded, certified] = totals;
    println!(
        "Prune savings (ex13, {} variable pairs, 8 jobs): \
         {unseeded} executed queries unseeded, {seeded} lint-seeded, \
         {certified} certified-pruned ({:.1}% below lint-seeded)",
        pairs.len(),
        100.0 * (seeded.saturating_sub(certified)) as f64 / seeded.max(1) as f64
    );
    assert!(
        certified < seeded && certified < unseeded,
        "the certified prune must strictly reduce executed queries: \
         {certified} vs seeded {seeded} / unseeded {unseeded}"
    );
}

fn main() {
    let program = mfem_program();
    table2_bounds(&program);
    prune_savings(&program);
}
