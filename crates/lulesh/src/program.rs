//! Program assembly: the LULESH proxy's files, call graph, and the
//! exact Table-3/Table-5 statistics (5,459 SLOC, 1,094 static FP
//! instructions).

use std::sync::Arc;

use flit_program::kernel::Kernel;
use flit_program::model::{Driver, Function, SimProgram, SourceFile};
use flit_toolchain::perf::KernelClass;

use crate::kernels::{self, ElemLoopKernel, ELEM_WIDTH};

/// The paper's LULESH statistics (§3.5).
pub const LULESH_SLOC: u32 = 5_459;
/// Static floating-point instruction count (§3.5: "there are 1,094
/// floating point operations"; ×4 `OP'`s = the 4,376 injections).
pub const LULESH_FP_OPS: usize = 1_094;

fn elem(
    name: &'static str,
    body: fn(&mut flit_program::sites::SiteCtx, &mut [f64]),
    corners: usize,
    class: KernelClass,
) -> Kernel {
    Kernel::Custom(Arc::new(ElemLoopKernel {
        name,
        body,
        corners,
        class,
    }))
}

/// Build the LULESH proxy program.
///
/// Structure follows LULESH 2.0: the hot kernels (several of them
/// `static`) in `lulesh.cc`; EOS/utility code; and init/comm/viz files
/// the benchmark driver never calls. The dead `EOSTableSeries`
/// padding function is sized at build time so the total static FP
/// instruction count is exactly [`LULESH_FP_OPS`], and the final
/// function's SLOC is padded to [`LULESH_SLOC`].
pub fn lulesh_program() -> SimProgram {
    use kernels::*;
    use KernelClass::*;

    let lulesh_cc = SourceFile::new(
        "lulesh.cc",
        vec![
            // --- Nodal phase ---
            Function::exported(
                "LagrangeNodal",
                elem("LagrangeNodal", lagrange_nodal, 3, Stencil),
            )
            .with_calls(vec![
                "CalcForceForNodes".into(),
                "CalcAccelerationForNodes".into(),
                "CalcVelocityForNodes".into(),
                "CalcPositionForNodes".into(),
            ])
            .with_sloc(64),
            Function::exported(
                "CalcForceForNodes",
                elem("CalcForceForNodes", calc_force_for_nodes, 4, Stencil),
            )
            .with_calls(vec!["CalcVolumeForceForElems".into()])
            .with_sloc(48),
            Function::exported(
                "CalcVolumeForceForElems",
                elem(
                    "CalcVolumeForceForElems",
                    calc_volume_force_for_elems,
                    7,
                    Stencil,
                ),
            )
            .with_calls(vec![
                "SumElemFaceNormal".into(),
                "CalcElemNodalForce".into(),
            ])
            .with_sloc(92),
            Function::exported(
                "CalcAccelerationForNodes",
                elem(
                    "CalcAccelerationForNodes",
                    calc_acceleration_for_nodes,
                    3,
                    Stencil,
                ),
            )
            .with_sloc(37),
            Function::exported(
                "CalcVelocityForNodes",
                elem("CalcVelocityForNodes", calc_velocity_for_nodes, 3, Stencil),
            )
            .with_sloc(41),
            Function::exported(
                "CalcPositionForNodes",
                elem("CalcPositionForNodes", calc_position_for_nodes, 3, Stencil),
            )
            .with_sloc(28),
            // --- Element phase ---
            Function::exported(
                "LagrangeElements",
                elem("LagrangeElements", lagrange_elements, 3, Stencil),
            )
            .with_calls(vec![
                "CalcKinematicsForElems".into(),
                "CalcQForElems".into(),
                "ApplyMaterialPropertiesForElems".into(),
                "UpdateVolumesForElems".into(),
            ])
            .with_sloc(71),
            Function::exported(
                "CalcKinematicsForElems",
                elem(
                    "CalcKinematicsForElems",
                    calc_kinematics_for_elems,
                    6,
                    DotHeavy,
                ),
            )
            .with_calls(vec![
                "CalcElemShapeFunctionDerivatives".into(),
                "CalcElemVelocityGradient".into(),
                "CalcElemVolume".into(),
                "CalcElemCharacteristicLength".into(),
            ])
            .with_sloc(102),
            Function::exported(
                "CalcQForElems",
                elem("CalcQForElems", calc_monotonic_q_gradients, 3, Stencil),
            )
            .with_calls(vec!["CalcMonotonicQRegionForElems".into()])
            .with_sloc(58),
            Function::exported(
                "CalcMonotonicQRegionForElems",
                elem(
                    "CalcMonotonicQRegionForElems",
                    calc_monotonic_q_region,
                    4,
                    Branchy,
                ),
            )
            .with_sloc(118),
            Function::exported(
                "ApplyMaterialPropertiesForElems",
                elem(
                    "ApplyMaterialPropertiesForElems",
                    apply_material_properties,
                    3,
                    Branchy,
                ),
            )
            .with_calls(vec!["EvalEOSForElems".into()])
            .with_sloc(66),
            Function::exported(
                "EvalEOSForElems",
                elem("EvalEOSForElems", eval_eos_for_elems, 6, DotHeavy),
            )
            .with_calls(vec![
                "CalcPressureForElems".into(),
                "CalcEnergyForElems".into(),
                "CalcSoundSpeedForElems".into(),
            ])
            .with_sloc(124),
            Function::exported(
                "CalcPressureForElems",
                elem("CalcPressureForElems", calc_pressure_for_elems, 4, DotHeavy),
            )
            .with_sloc(53),
            Function::exported(
                "CalcEnergyForElems",
                elem("CalcEnergyForElems", calc_energy_for_elems, 9, DotHeavy),
            )
            .with_sloc(186),
            Function::exported(
                "CalcSoundSpeedForElems",
                elem(
                    "CalcSoundSpeedForElems",
                    calc_sound_speed_for_elems,
                    3,
                    DivHeavy,
                ),
            )
            .with_sloc(39),
            Function::exported(
                "UpdateVolumesForElems",
                elem("UpdateVolumesForElems", update_volumes_for_elems, 3, Memory),
            )
            .with_sloc(31),
            // --- Time constraints ---
            Function::exported(
                "CalcTimeConstraintsForElems",
                elem(
                    "CalcTimeConstraintsForElems",
                    calc_time_constraints,
                    3,
                    Branchy,
                ),
            )
            .with_calls(vec![
                "CalcCourantConstraintForElems".into(),
                "CalcHydroConstraintForElems".into(),
            ])
            .with_sloc(42),
            Function::exported(
                "CalcCourantConstraintForElems",
                elem(
                    "CalcCourantConstraintForElems",
                    calc_courant_constraint,
                    6,
                    DivHeavy,
                ),
            )
            .with_sloc(61),
            Function::exported(
                "CalcHydroConstraintForElems",
                elem(
                    "CalcHydroConstraintForElems",
                    calc_hydro_constraint,
                    6,
                    DivHeavy,
                ),
            )
            .with_sloc(57),
            // --- static inline helpers (indirect-find territory) ---
            Function::local(
                "CalcElemShapeFunctionDerivatives",
                elem(
                    "CalcElemShapeFunctionDerivatives",
                    calc_elem_shape_function_derivatives,
                    4,
                    DotHeavy,
                ),
            )
            .with_sloc(118),
            Function::local(
                "CalcElemVelocityGradient",
                elem(
                    "CalcElemVelocityGradient",
                    calc_elem_velocity_gradient,
                    4,
                    DotHeavy,
                ),
            )
            .with_sloc(74),
            Function::local(
                "CalcElemVolume",
                elem("CalcElemVolume", calc_elem_volume, 5, DotHeavy),
            )
            .with_calls(vec!["VoluDer".into()])
            .with_sloc(139),
            Function::local(
                "CalcElemCharacteristicLength",
                elem(
                    "CalcElemCharacteristicLength",
                    calc_elem_characteristic_length,
                    3,
                    DivHeavy,
                ),
            )
            .with_calls(vec!["AreaFace".into()])
            .with_sloc(67),
            Function::local("AreaFace", elem("AreaFace", area_face, 2, DotHeavy)).with_sloc(33),
            Function::local("VoluDer", elem("VoluDer", volu_der, 3, Stencil)).with_sloc(44),
            Function::local(
                "SumElemFaceNormal",
                elem("SumElemFaceNormal", sum_elem_face_normal, 5, Stencil),
            )
            .with_sloc(88),
            Function::local(
                "CalcElemNodalForce",
                elem("CalcElemNodalForce", calc_elem_nodal_force, 4, Stencil),
            )
            .with_sloc(52),
            // --- dead: hourglass control (regular proxy mesh) ---
            Function::exported(
                "CalcFBHourglassForceForElems",
                elem(
                    "CalcFBHourglassForceForElems",
                    calc_fb_hourglass_force,
                    2,
                    Stencil,
                ),
            )
            .with_calls(vec!["CalcElemFBHourglassForce".into()])
            .with_sloc(161),
            Function::local(
                "CalcElemFBHourglassForce",
                elem(
                    "CalcElemFBHourglassForce",
                    calc_elem_fb_hourglass_force,
                    2,
                    Stencil,
                ),
            )
            .with_sloc(95),
        ],
    );

    let lulesh_init = SourceFile::new(
        "lulesh-init.cc",
        vec![
            Function::exported(
                "InitStressTermsForElems",
                elem("InitStressTermsForElems", init_stress_terms, 4, Memory),
            )
            .with_sloc(44),
            // The padding EOS table, sized below for the exact FP count.
            Function::exported(
                "EOSTableSeries",
                Kernel::Custom(Arc::new(PaddedSeries {
                    name: "EOSTableSeries",
                    terms: 1, // replaced below
                })),
            )
            .with_sloc(210),
            Function::exported("BuildMeshTopology", Kernel::Benign { flavor: 3 }).with_sloc(148),
            Function::exported("SetupBoundaryConditions", Kernel::Benign { flavor: 2 })
                .with_sloc(96),
        ],
    );

    let lulesh_comm = SourceFile::new(
        "lulesh-comm.cc",
        vec![
            Function::exported(
                "CommSendPosVel",
                elem("CommSendPosVel", comm_send_pos_vel, 2, Memory),
            )
            .with_sloc(132),
            Function::exported(
                "CommSyncEnergy",
                elem("CommSyncEnergy", comm_sync_energy, 2, Memory),
            )
            .with_sloc(104),
            Function::exported("CommAllocateBuffers", Kernel::Benign { flavor: 6 }).with_sloc(71),
        ],
    );

    let lulesh_viz = SourceFile::new(
        "lulesh-viz.cc",
        vec![
            Function::exported("DumpToVisit", elem("DumpToVisit", dump_to_visit, 3, Memory))
                .with_sloc(123),
            Function::exported("DumpDomainToVisit", Kernel::Benign { flavor: 1 }).with_sloc(87),
        ],
    );

    let lulesh_util = SourceFile::new(
        "lulesh-util.cc",
        vec![
            Function::exported("ParseCommandLineOptions", Kernel::Benign { flavor: 4 })
                .with_sloc(141),
            Function::exported("VerifyAndWriteFinalOutput", Kernel::Benign { flavor: 5 })
                .with_sloc(68),
        ],
    );

    let mut files = vec![lulesh_cc, lulesh_init, lulesh_comm, lulesh_viz, lulesh_util];

    // Size the padding series so the static FP-instruction total is
    // exactly LULESH_FP_OPS.
    let current: usize = files
        .iter()
        .flat_map(|f| &f.functions)
        .map(|f| f.kernel.fp_sites())
        .sum();
    assert!(
        current < LULESH_FP_OPS,
        "hand-written kernels overshot the FP-op budget: {current}"
    );
    // The 1-term stub is included in `current`; replace it with a
    // series sized so the total lands exactly on the published count.
    let pad_terms = LULESH_FP_OPS - (current - 1);
    for f in &mut files[1].functions {
        if f.name == "EOSTableSeries" {
            f.kernel = Kernel::Custom(Arc::new(PaddedSeries {
                name: "EOSTableSeries",
                terms: pad_terms,
            }));
        }
    }

    // Pad SLOC to the published count.
    let sloc: u32 = files.iter().map(SourceFile::sloc).sum();
    assert!(sloc <= LULESH_SLOC, "SLOC overshot: {sloc}");
    let deficit = LULESH_SLOC - sloc;
    files.last_mut().unwrap().functions.last_mut().unwrap().sloc += deficit;

    SimProgram::new("lulesh", files)
}

/// The benchmark driver: the standard LULESH time loop
/// (`LagrangeNodal` → `LagrangeElements` → `CalcTimeConstraints`),
/// over a 16-element mesh, two time steps.
pub fn lulesh_driver() -> Driver {
    Driver::new(
        "lulesh",
        vec![
            "LagrangeNodal".into(),
            "LagrangeElements".into(),
            "CalcTimeConstraintsForElems".into(),
        ],
        2,
        16 * ELEM_WIDTH,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::build::Build;
    use flit_program::engine::Engine;
    use flit_toolchain::compilation::Compilation;

    #[test]
    fn fp_op_count_matches_the_paper_exactly() {
        let p = lulesh_program();
        let total: usize = p
            .files
            .iter()
            .flat_map(|f| &f.functions)
            .map(|f| f.kernel.fp_sites())
            .sum();
        assert_eq!(total, LULESH_FP_OPS);
    }

    #[test]
    fn sloc_matches_the_paper_exactly() {
        let p = lulesh_program();
        assert_eq!(p.total_sloc(), LULESH_SLOC);
    }

    #[test]
    fn live_static_dead_split_is_reasonable() {
        // Table 5 shape: ~61% of injections exact (exported, live),
        // ~22% indirect (static, live), ~16% not measurable (dead).
        let p = lulesh_program();
        let driver = lulesh_driver();
        let mut live_exported = 0usize;
        let mut live_static = 0usize;
        let mut dead = 0usize;
        for file in &p.files {
            for f in &file.functions {
                let sites = f.kernel.fp_sites();
                if sites == 0 {
                    continue;
                }
                let reachable = driver
                    .entries
                    .iter()
                    .any(|e| e == &f.name || p.calls_transitively(e, &f.name));
                if !reachable {
                    dead += sites;
                } else if f.visibility == flit_program::model::Visibility::Exported {
                    live_exported += sites;
                } else {
                    live_static += sites;
                }
            }
        }
        let total = live_exported + live_static + dead;
        assert_eq!(total, LULESH_FP_OPS);
        let frac = |n: usize| n as f64 / total as f64;
        assert!(
            (0.45..0.75).contains(&frac(live_exported)),
            "exported fraction {}",
            frac(live_exported)
        );
        assert!(
            (0.12..0.35).contains(&frac(live_static)),
            "static fraction {}",
            frac(live_static)
        );
        assert!(
            (0.08..0.30).contains(&frac(dead)),
            "dead fraction {}",
            frac(dead)
        );
    }

    #[test]
    fn driver_runs_deterministically_and_bounded() {
        let p = lulesh_program();
        let build = Build::new(&p, Compilation::perf_reference());
        let exe = build.executable().unwrap();
        let engine = Engine::new(&p, &exe);
        let a = engine.run(&lulesh_driver(), &[0.53]).unwrap();
        let b = engine.run(&lulesh_driver(), &[0.53]).unwrap();
        assert_eq!(a, b);
        for &x in &a.output {
            assert!(x.is_finite() && (0.0..=2.0).contains(&x));
        }
        // The full time loop executes all live functions.
        assert!(a.calls >= 2 * 20, "calls = {}", a.calls);
    }
}
