//! The hydro kernels: each is a loop over elements whose body is a
//! branch-free straight-line sequence of floating-point operations
//! through [`SiteCtx`] — so every lexical operation is one static,
//! injectable instruction, exactly like an instruction in the LLVM IR
//! the paper's pass rewrites.
//!
//! Element layout: the program state is a flat array of 4-wide element
//! records `[x, v, e, q]` — coordinate/volume, velocity, internal
//! energy, artificial viscosity. Every body maintains the invariant
//! that all fields stay within `[FLOOR, CEIL]` via branch-free
//! min/max clamps (which are FP instructions, and injection sites, in
//! their own right).

use flit_fpsim::env::FpEnv;
use flit_program::kernel::KernelImpl;
use flit_program::sites::{Injection, SiteCtx};
use flit_toolchain::perf::KernelClass;

/// Fields per element record.
pub const ELEM_WIDTH: usize = 4;
/// Lower bound every field is clamped to.
pub const FLOOR: f64 = 0.05;
/// Upper bound every field is clamped to.
pub const CEIL: f64 = 1.95;

/// An element-loop kernel: a straight-line body applied per element,
/// lexically repeated `corners` times — the way the real LULESH kernels
/// unroll over hexahedron corners and faces (each unrolled copy is its
/// own set of static instructions).
pub struct ElemLoopKernel {
    /// Function name (matches the LULESH source symbol).
    pub name: &'static str,
    /// The per-corner body. Must be branch-free so every iteration
    /// executes the same lexical site sequence.
    pub body: fn(&mut SiteCtx, &mut [f64]),
    /// How many lexically-unrolled per-corner copies the function body
    /// contains (6 faces, 8 corners, … in the real source).
    pub corners: usize,
    /// Performance class.
    pub class: KernelClass,
}

impl ElemLoopKernel {
    fn probe_sites(&self) -> usize {
        let env = FpEnv::strict();
        let mut ctx = SiteCtx::counting(&env);
        let mut scratch = [0.41, 0.52, 0.63, 0.37];
        (self.body)(&mut ctx, &mut scratch);
        ctx.site_count() * self.corners.max(1)
    }
}

impl KernelImpl for ElemLoopKernel {
    fn name(&self) -> &str {
        self.name
    }

    fn eval(&self, state: &mut [f64], env: &FpEnv, inj: Option<Injection>) {
        let sites = self.probe_sites();
        let mut ctx = SiteCtx::new(env, inj);
        ctx.begin_body(sites);
        for chunk in state.chunks_exact_mut(ELEM_WIDTH) {
            ctx.next_iteration();
            // The unrolled corner copies run back-to-back; the cursor
            // advances through each copy's distinct site range.
            for _ in 0..self.corners.max(1) {
                (self.body)(&mut ctx, chunk);
            }
        }
        ctx.end_body();
    }

    fn fp_sites(&self) -> usize {
        self.probe_sites()
    }

    fn work(&self) -> f64 {
        // Each static site executes once per element; size to a 16-elem
        // default mesh for the cost model.
        (self.probe_sites() * 16) as f64
    }

    fn class(&self) -> KernelClass {
        self.class
    }
}

/// Branch-free clamp into the field invariant (2 sites).
fn clamp(ctx: &mut SiteCtx, v: f64) -> f64 {
    let lo = ctx.max(v, FLOOR);
    ctx.min(lo, CEIL)
}

// ---------------------------------------------------------------------
// Nodal phase (LagrangeNodal and its callees)
// ---------------------------------------------------------------------

/// Nodal driver body: mild smoothing of coordinates against velocity.
pub fn lagrange_nodal(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dt = 0.0107;
    let xn = ctx.mul_add(e[1], dt, e[0]);
    e[0] = clamp(ctx, xn);
}

/// Force accumulation driver: couples pressure-like energy into force.
pub fn calc_force_for_nodes(ctx: &mut SiteCtx, e: &mut [f64]) {
    let stress = ctx.mul_add(e[2], -0.731, e[3]);
    let f = ctx.mul(stress, 0.25);
    let vn = ctx.add(e[1], f);
    e[1] = clamp(ctx, vn);
}

/// Stress-term force: σ = −p − q integrated over faces.
pub fn calc_volume_force_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    let p = ctx.mul(e[2], 0.617);
    let sigma = ctx.sub(-0.0, p);
    let sigma = ctx.sub(sigma, e[3]);
    let area = ctx.mul(e[0], e[0]);
    let f = ctx.mul(sigma, area);
    let scaled = ctx.mul(f, 0.125);
    let vn = ctx.add(e[1], scaled);
    e[1] = clamp(ctx, vn);
}

/// a = F/m with a nodal mass derived from the coordinate field.
pub fn calc_acceleration_for_nodes(ctx: &mut SiteCtx, e: &mut [f64]) {
    let mass = ctx.add(e[0], 0.731);
    let accel = ctx.div(e[1], mass);
    let damped = ctx.mul(accel, 0.0625);
    let vn = ctx.add(e[1], damped);
    e[1] = clamp(ctx, vn);
}

/// v += a·dt with a velocity cutoff (u_cut in real LULESH).
pub fn calc_velocity_for_nodes(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dt = 0.0093;
    let dv = ctx.mul(e[1], dt);
    let vn = ctx.add(e[1], dv);
    let cut = ctx.max(vn, 0.07);
    e[1] = clamp(ctx, cut);
}

/// x += v·dt.
pub fn calc_position_for_nodes(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dt = 0.0093;
    let xn = ctx.mul_add(e[1], dt, e[0]);
    e[0] = clamp(ctx, xn);
}

// ---------------------------------------------------------------------
// Element phase (LagrangeElements and its callees)
// ---------------------------------------------------------------------

/// Element driver: relaxes energy toward the kinetic field.
pub fn lagrange_elements(ctx: &mut SiteCtx, e: &mut [f64]) {
    let ke = ctx.mul(e[1], e[1]);
    let blend = ctx.mul_add(ke, 0.125, e[2]);
    let en = ctx.mul(blend, 0.888);
    e[2] = clamp(ctx, en);
}

/// Kinematics: strain rates from the deformation field.
pub fn calc_kinematics_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dvol = ctx.sub(e[0], e[1]);
    let rate = ctx.mul(dvol, 0.43);
    let denom = ctx.add(e[0], 0.311);
    let vdov = ctx.div(rate, denom);
    let en = ctx.mul_add(vdov, -0.09, e[2]);
    e[2] = clamp(ctx, en);
    let xn = ctx.mul_add(rate, 0.017, e[0]);
    e[0] = clamp(ctx, xn);
}

/// Q gradients: monotonic gradient estimate for the viscosity.
pub fn calc_monotonic_q_gradients(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dv = ctx.sub(e[1], e[3]);
    let norm = ctx.add(e[0], 0.233);
    let grad = ctx.div(dv, norm);
    let g2 = ctx.mul(grad, grad);
    let qn = ctx.mul_add(g2, 0.31, e[3]);
    let damped = ctx.mul(qn, 0.82);
    e[3] = clamp(ctx, damped);
}

/// Q region: the qlin/qquad viscosity update.
pub fn calc_monotonic_q_region(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dvel = ctx.sub(e[1], 0.5);
    let qlin = ctx.mul(dvel, 0.17);
    let qquad = ctx.mul(dvel, dvel);
    let qq = ctx.mul(qquad, 0.29);
    let q = ctx.add(qlin, qq);
    let qpos = ctx.max(q, 0.0);
    let qn = ctx.mul_add(qpos, 0.5, e[3]);
    let relaxed = ctx.mul(qn, 0.77);
    e[3] = clamp(ctx, relaxed);
}

/// EOS pressure: a linear-in-compression pressure with a floor
/// (p_min in the real code).
pub fn calc_pressure_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    let relvol = ctx.add(e[0], 0.5);
    let invvol = ctx.div(1.0, relvol);
    let compression = ctx.sub(invvol, 0.667);
    let bvc = ctx.mul(compression, 0.391);
    let p = ctx.mul_add(e[2], 0.441, bvc);
    let floored = ctx.max(p, 0.111);
    let rest = ctx.mul(e[2], 0.75);
    let blend = ctx.mul_add(floored, 0.25, rest);
    e[2] = clamp(ctx, blend);
}

/// EOS energy: the iterative e_new refinement, unrolled (the real
/// CalcEnergyForElems performs several corrector passes).
pub fn calc_energy_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    // Pass 1.
    let work = ctx.mul(e[3], 0.043);
    let e1 = ctx.sub(e[2], work);
    let e1 = ctx.max(e1, 0.09);
    // Pass 2: pressure feedback.
    let phalf = ctx.mul(e1, 0.395);
    let dvol = ctx.sub(e[0], 0.5);
    let pdv = ctx.mul(phalf, dvol);
    let e2 = ctx.mul_add(pdv, -0.5, e1);
    let e2 = ctx.max(e2, 0.09);
    // Pass 3: q feedback.
    let qterm = ctx.mul(e[3], 0.21);
    let e3 = ctx.add(e2, qterm);
    let scaled = ctx.mul(e3, 0.93);
    // Final cut (e_cut).
    let cut = ctx.max(scaled, 0.10);
    e[2] = clamp(ctx, cut);
}

/// Sound speed: c = sqrt(γ·p/ρ)-shaped.
pub fn calc_sound_speed_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    let rho = ctx.add(e[0], 0.41);
    let p = ctx.mul(e[2], 0.63);
    let ratio = ctx.div(p, rho);
    let gam = ctx.mul(ratio, 1.4);
    let c = ctx.sqrt(gam);
    let vn = ctx.mul_add(c, 0.031, e[1]);
    e[1] = clamp(ctx, vn);
}

/// Apply material properties: EOS preamble with volume error bounds.
pub fn apply_material_properties(ctx: &mut SiteCtx, e: &mut [f64]) {
    let vol = ctx.max(e[0], 0.12);
    let vol = ctx.min(vol, 1.88);
    let rest = ctx.mul(e[0], 0.95);
    let relax = ctx.mul_add(vol, 0.05, rest);
    e[0] = clamp(ctx, relax);
}

/// EvalEOS driver body: mixes compression history.
pub fn eval_eos_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    let relvol = ctx.add(e[0], 0.52);
    let comp = ctx.div(1.0, relvol);
    let delta = ctx.sub(comp, 0.66);
    let en = ctx.mul_add(delta, 0.11, e[2]);
    e[2] = clamp(ctx, en);
}

/// v_new = v·(1 + dvov) with the volume cut.
pub fn update_volumes_for_elems(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dvov = ctx.mul(e[1], 0.021);
    let vn = ctx.mul_add(e[0], dvov, e[0]);
    let cut = ctx.max(vn, 0.11);
    e[0] = clamp(ctx, cut);
}

/// Courant constraint: dt ≤ ℓ/(c + |vdov|·ℓ)-shaped.
pub fn calc_courant_constraint(ctx: &mut SiteCtx, e: &mut [f64]) {
    let e_shift = ctx.add(e[2], 0.09);
    let c = ctx.sqrt(e_shift);
    let ell = ctx.add(e[0], 0.21);
    let denom = ctx.mul_add(e[1], 0.3, c);
    let dt = ctx.div(ell, denom);
    let qn = ctx.mul_add(dt, 0.013, e[3]);
    e[3] = clamp(ctx, qn);
}

/// Hydro constraint: dt ≤ dvovmax guard.
pub fn calc_hydro_constraint(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dvov = ctx.mul(e[1], 0.067);
    let mag = ctx.max(dvov, 0.011);
    let dt = ctx.div(0.31, mag);
    let capped = ctx.min(dt, 1.7);
    let qn = ctx.mul_add(capped, 0.009, e[3]);
    e[3] = clamp(ctx, qn);
}

/// Time-constraint driver body.
pub fn calc_time_constraints(ctx: &mut SiteCtx, e: &mut [f64]) {
    let eterm = ctx.mul(e[2], 0.02);
    let blend = ctx.mul_add(e[3], 0.06, eterm);
    let vn = ctx.add(e[1], blend);
    e[1] = clamp(ctx, vn);
}

// ---------------------------------------------------------------------
// Static (internal-linkage) helpers — the source of indirect finds.
// ---------------------------------------------------------------------

/// Shape-function derivatives: the 8-node hexahedron Jacobian, heavily
/// unrolled in the real code; `static inline` in lulesh.cc.
pub fn calc_elem_shape_function_derivatives(ctx: &mut SiteCtx, e: &mut [f64]) {
    // Jacobian columns from the element fields (a 3x3-ish reduction).
    let j0 = ctx.sub(e[0], e[1]);
    let j1 = ctx.sub(e[1], e[2]);
    let j2 = ctx.sub(e[2], e[3]);
    let c0 = ctx.mul(j1, j2);
    let c1 = ctx.mul(j2, j0);
    let c2 = ctx.mul(j0, j1);
    let det0 = ctx.mul(j0, c0);
    let det1 = ctx.mul_add(j1, c1, det0);
    let det = ctx.mul_add(j2, c2, det1);
    let safe = ctx.max(det, 0.013);
    let inv = ctx.div(0.125, safe);
    let xn = ctx.mul_add(inv, 0.021, e[0]);
    e[0] = clamp(ctx, xn);
    let vn = ctx.mul_add(c0, 0.017, e[1]);
    e[1] = clamp(ctx, vn);
}

/// Element volume: the triple-product volume formula (static).
pub fn calc_elem_volume(ctx: &mut SiteCtx, e: &mut [f64]) {
    let d1 = ctx.sub(e[1], e[0]);
    let d2 = ctx.sub(e[2], e[0]);
    let d3 = ctx.sub(e[3], e[0]);
    let t1 = ctx.mul(d1, d2);
    let t2 = ctx.mul(d2, d3);
    let t3 = ctx.mul(d3, d1);
    let s = ctx.add(t1, t2);
    let s = ctx.add(s, t3);
    let vol = ctx.mul(s, 0.166_666_666_666_666_66);
    let mag = ctx.max(vol, 0.021);
    let rest = ctx.mul(e[0], 0.945);
    let xn = ctx.mul_add(mag, 0.055, rest);
    e[0] = clamp(ctx, xn);
}

/// Face-normal accumulation (static SumElemFaceNormal).
pub fn sum_elem_face_normal(ctx: &mut SiteCtx, e: &mut [f64]) {
    let bisect_x = ctx.add(e[0], e[1]);
    let bisect_y = ctx.add(e[2], e[3]);
    let ax = ctx.mul(bisect_x, 0.25);
    let ay = ctx.mul(bisect_y, 0.25);
    let nx = ctx.mul(ax, ay);
    let vn = ctx.mul_add(nx, 0.043, e[1]);
    e[1] = clamp(ctx, vn);
}

/// Nodal force gather (static CalcElemNodalForce-alike).
pub fn calc_elem_nodal_force(ctx: &mut SiteCtx, e: &mut [f64]) {
    let fx = ctx.mul(e[2], 0.311);
    let fy = ctx.mul(e[3], 0.177);
    let f = ctx.sub(fx, fy);
    let vn = ctx.mul_add(f, 0.25, e[1]);
    e[1] = clamp(ctx, vn);
}

/// Velocity gradient (static CalcElemVelocityGradient).
pub fn calc_elem_velocity_gradient(ctx: &mut SiteCtx, e: &mut [f64]) {
    let dv = ctx.sub(e[1], e[3]);
    let detj = ctx.add(e[0], 0.37);
    let inv_det = ctx.div(1.0, detj);
    let dxx = ctx.mul(dv, inv_det);
    let dyy = ctx.mul(dxx, 0.5);
    let trace = ctx.add(dxx, dyy);
    let en = ctx.mul_add(trace, -0.031, e[2]);
    e[2] = clamp(ctx, en);
}

/// Face area (static AreaFace).
pub fn area_face(ctx: &mut SiteCtx, e: &mut [f64]) {
    let fx = ctx.sub(e[0], e[2]);
    let gx = ctx.sub(e[1], e[3]);
    let f2 = ctx.mul(fx, fx);
    let g2 = ctx.mul(gx, gx);
    let fg = ctx.mul(fx, gx);
    let cross = ctx.mul(fg, -0.5);
    let area = ctx.mul_add(f2, g2, cross);
    let pos = ctx.max(area, 0.008);
    let qn = ctx.mul_add(pos, 0.021, e[3]);
    e[3] = clamp(ctx, qn);
}

/// Characteristic length (static CalcElemCharacteristicLength).
pub fn calc_elem_characteristic_length(ctx: &mut SiteCtx, e: &mut [f64]) {
    let a = ctx.mul(e[0], e[0]);
    let vol = ctx.mul(e[0], a);
    let area = ctx.max(a, 0.019);
    let scaled_vol = ctx.mul(vol, 4.0);
    let char_len = ctx.div(scaled_vol, area);
    let capped = ctx.min(char_len, 1.3);
    let rest = ctx.mul(e[0], 0.967);
    let xn = ctx.mul_add(capped, 0.033, rest);
    e[0] = clamp(ctx, xn);
}

/// Volume derivative (static VoluDer).
pub fn volu_der(ctx: &mut SiteCtx, e: &mut [f64]) {
    let s1 = ctx.add(e[1], e[2]);
    let s2 = ctx.add(e[2], e[3]);
    let p = ctx.mul(s1, s2);
    let d = ctx.mul(p, 0.083_333_333_333_333_33);
    let xn = ctx.mul_add(d, 0.027, e[0]);
    e[0] = clamp(ctx, xn);
}

// ---------------------------------------------------------------------
// Dead code (never called by the benchmark driver): hourglass control
// (our mesh never needs it), init, comm, and viz paths.
// ---------------------------------------------------------------------

/// Hourglass force driver (dead: the proxy mesh stays regular).
pub fn calc_fb_hourglass_force(ctx: &mut SiteCtx, e: &mut [f64]) {
    let h0 = ctx.sub(e[0], e[1]);
    let h1 = ctx.sub(e[1], e[2]);
    let h2 = ctx.sub(e[2], e[3]);
    let h3 = ctx.sub(e[3], e[0]);
    let g0 = ctx.mul(h0, 0.7);
    let g1 = ctx.mul(h1, 0.7);
    let g2 = ctx.mul(h2, 0.7);
    let g3 = ctx.mul(h3, 0.7);
    let s0 = ctx.add(g0, g2);
    let s1 = ctx.add(g1, g3);
    let coef = ctx.mul(s0, s1);
    let vn = ctx.mul_add(coef, 0.05, e[1]);
    e[1] = clamp(ctx, vn);
}

/// Per-element hourglass force (static, reachable only from the dead
/// driver).
pub fn calc_elem_fb_hourglass_force(ctx: &mut SiteCtx, e: &mut [f64]) {
    let hgfx = ctx.mul(e[0], 0.11);
    let hgfy = ctx.mul(e[1], 0.13);
    let hgfz = ctx.mul(e[2], 0.17);
    let sum = ctx.add(hgfx, hgfy);
    let sum = ctx.add(sum, hgfz);
    let vn = ctx.mul_add(sum, 0.07, e[1]);
    e[1] = clamp(ctx, vn);
}

/// Initial stress terms (dead: only used at t = 0, before the driver's
/// measurement window).
pub fn init_stress_terms(ctx: &mut SiteCtx, e: &mut [f64]) {
    let p0 = ctx.mul(e[2], 0.5);
    let sig = ctx.sub(-0.0, p0);
    let en = ctx.mul_add(sig, -0.08, e[2]);
    e[2] = clamp(ctx, en);
}

/// Ghost-exchange packing arithmetic (dead: single-domain run).
pub fn comm_send_pos_vel(ctx: &mut SiteCtx, e: &mut [f64]) {
    let half_v = ctx.mul(e[1], 0.5);
    let packed = ctx.mul_add(e[0], 0.5, half_v);
    let vn = ctx.add(packed, 0.001);
    e[1] = clamp(ctx, vn);
}

/// Energy-sync reduction for ghost cells (dead).
pub fn comm_sync_energy(ctx: &mut SiteCtx, e: &mut [f64]) {
    let pair = ctx.add(e[2], e[3]);
    let avg = ctx.mul(pair, 0.5);
    let en = ctx.mul_add(avg, 0.02, e[2]);
    e[2] = clamp(ctx, en);
}

/// Visualization dump scaling (dead).
pub fn dump_to_visit(ctx: &mut SiteCtx, e: &mut [f64]) {
    let scaled = ctx.mul(e[2], 100.0);
    let shifted = ctx.add(scaled, 1.0);
    let back = ctx.div(shifted, 101.0);
    e[2] = clamp(ctx, back);
}

/// Unrolled polynomial series used to pad the program to LULESH's
/// exact static FP-instruction count (a long dead EOS table — see
/// `program::PAD_TERMS`). Each term is a distinct lexical operation,
/// like an unrolled loop in the source.
pub struct PaddedSeries {
    /// Symbol name.
    pub name: &'static str,
    /// Number of unrolled fused multiply-add terms.
    pub terms: usize,
}

impl KernelImpl for PaddedSeries {
    fn name(&self) -> &str {
        self.name
    }

    fn eval(&self, state: &mut [f64], env: &FpEnv, inj: Option<Injection>) {
        let mut ctx = SiteCtx::new(env, inj);
        let mut acc = 0.25f64;
        for k in 0..self.terms {
            // Lexically unrolled series: every term is its own site.
            let coef = [0.125, -0.25, 0.375, -0.5, 0.0625, -0.125, 0.3125, -0.375][k % 8];
            acc = ctx.mul_add(acc, 0.498, coef * 0.1 + 0.13);
        }
        if let Some(x) = state.first_mut() {
            let blended = 0.875 * *x + 0.125 * (acc.clamp(0.0, 1.0));
            *x = blended.clamp(FLOOR, CEIL);
        }
    }

    fn fp_sites(&self) -> usize {
        self.terms
    }

    fn work(&self) -> f64 {
        self.terms as f64
    }

    fn class(&self) -> KernelClass {
        KernelClass::DotHeavy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::sites::InjectOp;

    fn all_bodies() -> Vec<ElemLoopKernel> {
        macro_rules! k {
            ($name:literal, $f:ident, $class:expr) => {
                ElemLoopKernel {
                    name: $name,
                    body: $f,
                    corners: 3,
                    class: $class,
                }
            };
        }
        use KernelClass::*;
        vec![
            k!("LagrangeNodal", lagrange_nodal, Stencil),
            k!("CalcForceForNodes", calc_force_for_nodes, Stencil),
            k!(
                "CalcVolumeForceForElems",
                calc_volume_force_for_elems,
                Stencil
            ),
            k!(
                "CalcAccelerationForNodes",
                calc_acceleration_for_nodes,
                Stencil
            ),
            k!("CalcVelocityForNodes", calc_velocity_for_nodes, Stencil),
            k!("CalcPositionForNodes", calc_position_for_nodes, Stencil),
            k!("LagrangeElements", lagrange_elements, Stencil),
            k!(
                "CalcKinematicsForElems",
                calc_kinematics_for_elems,
                DotHeavy
            ),
            k!(
                "CalcMonotonicQGradients",
                calc_monotonic_q_gradients,
                Stencil
            ),
            k!("CalcMonotonicQRegion", calc_monotonic_q_region, Branchy),
            k!("CalcPressureForElems", calc_pressure_for_elems, DotHeavy),
            k!("CalcEnergyForElems", calc_energy_for_elems, DotHeavy),
            k!(
                "CalcSoundSpeedForElems",
                calc_sound_speed_for_elems,
                DivHeavy
            ),
            k!(
                "ApplyMaterialProperties",
                apply_material_properties,
                Branchy
            ),
            k!("EvalEOSForElems", eval_eos_for_elems, DotHeavy),
            k!("UpdateVolumesForElems", update_volumes_for_elems, Memory),
            k!("CalcCourantConstraint", calc_courant_constraint, DivHeavy),
            k!("CalcHydroConstraint", calc_hydro_constraint, DivHeavy),
            k!("CalcTimeConstraints", calc_time_constraints, Branchy),
            k!("ShapeDeriv", calc_elem_shape_function_derivatives, DotHeavy),
            k!("ElemVolume", calc_elem_volume, DotHeavy),
            k!("FaceNormal", sum_elem_face_normal, Stencil),
            k!("NodalForce", calc_elem_nodal_force, Stencil),
            k!("VelGradient", calc_elem_velocity_gradient, DotHeavy),
            k!("AreaFace", area_face, DotHeavy),
            k!("CharLength", calc_elem_characteristic_length, DivHeavy),
            k!("VoluDer", volu_der, Stencil),
            k!("FBHourglass", calc_fb_hourglass_force, Stencil),
            k!("ElemFBHourglass", calc_elem_fb_hourglass_force, Stencil),
            k!("InitStress", init_stress_terms, Memory),
            k!("CommSendPosVel", comm_send_pos_vel, Memory),
            k!("CommSyncEnergy", comm_sync_energy, Memory),
            k!("DumpToVisit", dump_to_visit, Memory),
        ]
    }

    #[test]
    fn every_body_has_sites_and_is_bounded() {
        let env = FpEnv::strict();
        for k in all_bodies() {
            assert!(k.fp_sites() > 0, "{} has no sites", k.name);
            // Boundedness: iterate the kernel many times.
            let mut state: Vec<f64> = (0..32)
                .map(|i| 0.2 + 0.5 * ((i as f64 * 0.37).sin() * 0.5 + 0.5))
                .collect();
            for _ in 0..50 {
                k.eval(&mut state, &env, None);
                for &x in &state {
                    assert!(
                        x.is_finite() && (FLOOR..=CEIL).contains(&x),
                        "{}: field escaped to {x}",
                        k.name
                    );
                }
            }
        }
    }

    #[test]
    fn site_counts_are_stable_and_branch_free() {
        // The probe must report the same count regardless of data: run
        // the body on several element values and compare site usage.
        let env = FpEnv::strict();
        for k in all_bodies() {
            // fp_sites includes the corner unrolling; the probe below
            // runs a single corner copy.
            let expected = k.fp_sites() / k.corners;
            for seed in 0..5 {
                let mut ctx = SiteCtx::counting(&env);
                let mut e = [
                    0.1 + 0.17 * seed as f64,
                    0.9 - 0.11 * seed as f64,
                    0.3 + 0.13 * seed as f64,
                    0.6 - 0.07 * seed as f64,
                ];
                (k.body)(&mut ctx, &mut e);
                assert_eq!(
                    ctx.site_count(),
                    expected,
                    "{}: data-dependent site count",
                    k.name
                );
            }
        }
    }

    #[test]
    fn injection_at_every_site_is_applied() {
        // For each kernel, injecting at each site perturbs the output
        // for at least one site (and never crashes for any).
        let env = FpEnv::strict();
        for k in all_bodies() {
            let clean: Vec<f64> = (0..16).map(|i| 0.3 + 0.02 * i as f64).collect();
            k.eval(&mut clean.clone(), &env, None);
            let mut any_effect = false;
            for site in 0..k.fp_sites() {
                let mut dirty: Vec<f64> = (0..16).map(|i| 0.3 + 0.02 * i as f64).collect();
                let mut base = dirty.clone();
                k.eval(
                    &mut dirty,
                    &env,
                    Some(Injection {
                        site,
                        op: InjectOp::Add,
                        eps: 0.9,
                    }),
                );
                k.eval(&mut base, &env, None);
                if dirty != base {
                    any_effect = true;
                }
            }
            assert!(any_effect, "{}: no site had any effect", k.name);
        }
    }

    #[test]
    fn padded_series_counts_its_terms() {
        let pad = PaddedSeries {
            name: "pad",
            terms: 57,
        };
        assert_eq!(pad.fp_sites(), 57);
        let env = FpEnv::strict();
        let mut s = vec![0.5; 4];
        pad.eval(&mut s, &env, None);
        assert!(s[0].is_finite() && (FLOOR..=CEIL).contains(&s[0]));
    }
}
