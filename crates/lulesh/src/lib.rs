//! # flit-lulesh
//!
//! A proxy for LULESH (Livermore Unstructured Lagrangian Explicit Shock
//! Hydrodynamics), the target of the paper's §3.5 injection study:
//! "This LULESH benchmark contains 5,459 source lines of code, in which
//! there are 1,094 floating point operations."
//!
//! Every kernel is written against the static-site evaluation context
//! ([`flit_program::sites::SiteCtx`]), so each lexical floating-point
//! operation is an injectable instruction — the analog of an LLVM IR
//! instruction for the injection pass. The program mirrors LULESH 2.0's
//! structure: the hot hydro kernels in `lulesh.cc` (many of them
//! `static inline`, which is what produces the paper's 984 *indirect*
//! finds), utility/EOS code, and init/comm/viz files that the benchmark
//! driver never exercises (the paper's 702 *not measurable*
//! injections).

pub mod kernels;
pub mod program;

pub use program::{lulesh_driver, lulesh_program, LULESH_FP_OPS, LULESH_SLOC};
