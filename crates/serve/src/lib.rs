//! `flit-serve`: the long-running multi-tenant workflow daemon behind
//! `flit serve`.
//!
//! The paper's workflow is a one-shot CLI run; the ROADMAP's north star
//! is a service where every team in an organization continuously
//! bisects its applications. This crate is that service layer:
//!
//! - **Protocol** ([`protocol`]): one CRC-framed JSON line per message
//!   over TCP — the same [`flit_persist::frame_record`] framing the
//!   checkpoint journal and the coordinator/worker wire use, with an
//!   explicit schema version on every request.
//! - **Scheduling** ([`sched`]): admission control (bounded queue) plus
//!   deterministic round-robin fairness across tenants, so one chatty
//!   tenant cannot starve the rest and the dispatch order is a pure
//!   function of the queue state.
//! - **Daemon** ([`daemon`]): a [`std::net::TcpListener`] accept loop,
//!   a fixed pool of runner threads over the shared
//!   [`flit_exec::ExecBackend`], a per-tenant checkpoint journal
//!   (namespaced under [`flit_persist::tenant_journal_path`]), and a
//!   fleet-wide [`flit_bisect::ledger::QueryLedger`] that deduplicates
//!   identical queries *across tenants* — `exec.queries.shared_hits`
//!   on the daemon's trace sink is exactly the fleet-wide dedup.
//!
//! The crate is deliberately ignorant of the workflow itself: callers
//! implement [`daemon::WorkflowRunner`] (the CLI does, reusing its
//! bundled apps and report renderer), which keeps the daemon reusable
//! and the dependency graph acyclic.

pub mod daemon;
pub mod protocol;
pub mod sched;
