//! The daemon: accept loop, runner pool, tenant journals, fleet
//! ledger.
//!
//! One [`std::net::TcpListener`] accept loop hands each connection to
//! its own thread; `Submit` requests pass admission control, enter the
//! deterministic [`FairQueue`], and are executed by a fixed pool of
//! runner threads. Each job gets a *tenant* [`QueryLedger`] — journaled
//! at [`flit_persist::tenant_journal_path`] so a killed daemon resumes
//! every tenant from disk — chained upstream to a *fleet* ledger per
//! application fingerprint, so identical queries submitted by
//! different tenants execute once fleet-wide and surface as
//! `exec.queries.shared_hits` on the daemon's trace sink.
//!
//! `Shutdown` is a graceful drain: new submissions are refused, queued
//! and in-flight jobs finish, the shared [`ExecBackend`] is drained,
//! the trace snapshot (if requested) is exported atomically, and only
//! then is the acknowledgement sent.

use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use flit_bisect::journal::JournalWriter;
use flit_bisect::ledger::QueryLedger;
use flit_exec::ExecBackend;
use flit_persist::tenant_journal_path;
use flit_report::stats::t_confidence_interval;
use flit_trace::names::{counter as counter_names, phase};
use flit_trace::registry::Counter;
use flit_trace::sink::TraceSink;

use crate::protocol::{
    read_frame, write_frame, FleetStats, LatencySummary, Request, Response, StatusReport,
    PROTOCOL_VERSION,
};
use crate::sched::FairQueue;

/// One workflow submission, as the runner sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The submitting tenant (raw id; the daemon sanitizes it before
    /// it touches the filesystem).
    pub tenant: String,
    /// The bundled application name.
    pub app: String,
    /// Cap on bisections (`None` = all).
    pub max_bisections: Option<usize>,
    /// Worker threads for the workflow's bisection stage.
    pub jobs: Option<usize>,
}

/// A completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The rendered report — byte-identical to the serial CLI run.
    pub body: String,
    /// The job's simulated seconds (the submit endpoint's latency
    /// unit).
    pub simulated_seconds: f64,
}

/// What the daemon knows how to execute. The CLI implements this with
/// its bundled applications and the shared report renderer; the crate
/// itself stays ignorant of the workflow (and the dependency graph
/// stays acyclic).
pub trait WorkflowRunner: Send + Sync {
    /// The structural fingerprint of `app`'s program — keys the
    /// per-tenant journal file and the fleet ledger. `Err` for an
    /// unknown application.
    fn fingerprint(&self, app: &str) -> Result<u64, String>;

    /// Run one workflow against the (journal-attached, fleet-chained)
    /// tenant ledger and render its report.
    fn run(&self, req: &JobRequest, ledger: Arc<QueryLedger>) -> Result<JobOutcome, String>;
}

/// Daemon configuration.
pub struct ServeConfig {
    /// Root of the daemon's persistent state; tenant journals live
    /// under `<state_dir>/tenants/...`.
    pub state_dir: PathBuf,
    /// Runner threads: how many submissions execute concurrently.
    pub max_inflight: usize,
    /// Admission cap: queued + running submissions beyond this are
    /// refused with a structured error (never queued unboundedly).
    pub max_pending: usize,
    /// The daemon's trace sink. Fleet ledgers record their
    /// `exec.queries.*` counters here, and the `serve.*` counters and
    /// per-job spans land here — this is what the Fleet table renders.
    pub trace: TraceSink,
    /// The shared execution backend to drain at shutdown, if the
    /// runner uses one (e.g. the process backend's worker pool).
    pub backend: Option<Arc<dyn ExecBackend>>,
    /// Where to export the trace snapshot (JSONL, written atomically)
    /// during the shutdown drain.
    pub trace_export: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            state_dir: PathBuf::from("flit-serve-state"),
            max_inflight: 2,
            max_pending: 64,
            trace: TraceSink::enabled(),
            backend: None,
            trace_export: None,
        }
    }
}

/// Lifetime totals, returned to the caller of [`serve`] after the
/// drain completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Submissions accepted.
    pub submissions: u64,
    /// Submissions that produced a response.
    pub completed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Distinct tenants seen.
    pub tenants: usize,
}

struct Job {
    req: JobRequest,
    reply: mpsc::Sender<Result<JobOutcome, String>>,
}

#[derive(Default)]
struct Sched {
    queue: FairQueue<Job>,
    running: usize,
    draining: bool,
    stop_workers: bool,
}

struct Inner {
    cfg: ServeConfig,
    local_addr: std::net::SocketAddr,
    runner: Arc<dyn WorkflowRunner>,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    idle: Condvar,
    /// Fleet ledger per application fingerprint. Created lazily on the
    /// daemon's trace sink, so its physical counters are the fleet
    /// counters.
    ledgers: Mutex<HashMap<u64, Arc<QueryLedger>>>,
    /// Tenant id → stable nonzero fleet origin. Distinct per tenant,
    /// so the fleet ledger's `shared_hits` counts exactly the
    /// cross-tenant deduplication.
    origins: Mutex<BTreeMap<String, u64>>,
    latencies: Mutex<Vec<f64>>,
    submissions: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    stop_accepting: AtomicBool,
    c_submissions: Counter,
    c_completed: Counter,
    c_rejected: Counter,
    c_tenants: Counter,
    c_status: Counter,
}

impl Inner {
    fn new(
        cfg: ServeConfig,
        local_addr: std::net::SocketAddr,
        runner: Arc<dyn WorkflowRunner>,
    ) -> Self {
        let trace = cfg.trace.clone();
        Inner {
            local_addr,
            runner,
            sched: Mutex::new(Sched::default()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            ledgers: Mutex::new(HashMap::new()),
            origins: Mutex::new(BTreeMap::new()),
            latencies: Mutex::new(Vec::new()),
            submissions: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            stop_accepting: AtomicBool::new(false),
            c_submissions: trace.counter(counter_names::SERVE_SUBMISSIONS),
            c_completed: trace.counter(counter_names::SERVE_COMPLETED),
            c_rejected: trace.counter(counter_names::SERVE_REJECTED),
            c_tenants: trace.counter(counter_names::SERVE_TENANTS),
            c_status: trace.counter(counter_names::SERVE_STATUS_REQUESTS),
            cfg,
        }
    }

    /// Poisoned-lock recovery mirrors the process backend's pool: all
    /// guarded state is requeue-idempotent, so a panicking holder must
    /// not cascade into every other tenant's thread.
    fn sched(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The stable fleet origin for `tenant`, assigning the next free
    /// one (1-based; 0 is the ledger's replay tag) on first sight.
    fn origin_for(&self, tenant: &str) -> u64 {
        let mut origins = self
            .origins
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(origin) = origins.get(tenant) {
            return *origin;
        }
        let origin = origins.len() as u64 + 1;
        origins.insert(tenant.to_string(), origin);
        self.c_tenants.incr(1);
        origin
    }

    fn fleet_ledger(&self, fingerprint: u64) -> Arc<QueryLedger> {
        let mut ledgers = self
            .ledgers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ledgers
            .entry(fingerprint)
            .or_insert_with(|| QueryLedger::new(fingerprint, &self.cfg.trace))
            .clone()
    }

    fn fleet_stats(&self) -> FleetStats {
        let ledgers = self
            .ledgers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut fleet = FleetStats::default();
        for ledger in ledgers.values() {
            let s = ledger.stats();
            fleet.executed += s.executed;
            fleet.memoized += s.memoized;
            fleet.shared_hits += s.shared_hits;
        }
        fleet
    }

    fn latency_summary(&self) -> Option<LatencySummary> {
        let xs = self
            .latencies
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let ci = t_confidence_interval(&xs, 0.95)?;
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let p95 = sorted[((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1];
        Some(LatencySummary {
            n: xs.len() as u64,
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            level: ci.level,
            p95,
        })
    }

    fn status(&self) -> StatusReport {
        StatusReport {
            version: PROTOCOL_VERSION,
            tenants: self
                .origins
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .keys()
                .cloned()
                .collect(),
            submissions: self.submissions.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            fleet: self.fleet_stats(),
            latency: self.latency_summary(),
        }
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            submissions: self.submissions.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            tenants: self
                .origins
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
        }
    }

    /// Execute one job: resolve the app, wire the tenant ledger
    /// (journal on disk, fleet upstream), and run.
    fn run_job(&self, req: &JobRequest) -> Result<JobOutcome, String> {
        let fingerprint = self.runner.fingerprint(&req.app)?;
        let fleet = self.fleet_ledger(fingerprint);
        let origin = self.origin_for(&req.tenant);
        let path = tenant_journal_path(&self.cfg.state_dir, &req.tenant, fingerprint);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create tenant state dir {}: {e}", dir.display()))?;
        }
        let ledger = QueryLedger::new(fingerprint, &TraceSink::disabled());
        if let Some(backend) = &self.cfg.backend {
            ledger.set_backend_label(backend.label());
        }
        if path.exists() {
            let (writer, records) = JournalWriter::resume(&path, fingerprint)
                .map_err(|e| format!("tenant journal is unusable: {e}"))?;
            ledger.preload(&records);
            ledger.attach_journal(writer);
        } else {
            let writer = JournalWriter::create(&path, fingerprint)
                .map_err(|e| format!("cannot create tenant journal {}: {e}", path.display()))?;
            ledger.attach_journal(writer);
        }
        ledger.set_upstream(fleet, origin);
        let outcome = self.runner.run(req, ledger.clone())?;
        if let Some(e) = ledger.journal_error() {
            return Err(format!("workflow succeeded but checkpointing failed: {e}"));
        }
        self.cfg.trace.span(
            phase::SERVE,
            format!("{}/{}", req.tenant, req.app),
            1,
            outcome.simulated_seconds,
        );
        self.latencies
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(outcome.simulated_seconds);
        Ok(outcome)
    }

    /// Runner-thread loop: pop under the fair rotation, execute,
    /// reply. Exits when told to stop *and* the queue is dry.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut sched = self.sched();
                loop {
                    if let Some((_tenant, job)) = sched.queue.pop() {
                        sched.running += 1;
                        break job;
                    }
                    if sched.stop_workers {
                        return;
                    }
                    sched = self
                        .work_ready
                        .wait(sched)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let result = self.run_job(&job.req);
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.c_completed.incr(1);
            // A receiver that hung up (client disconnected mid-job)
            // must not kill the worker; the work is journaled anyway.
            let _ = job.reply.send(result);
            let mut sched = self.sched();
            sched.running -= 1;
            drop(sched);
            self.idle.notify_all();
        }
    }

    fn handle_submit(&self, req: JobRequest) -> Result<JobOutcome, String> {
        let (tx, rx) = mpsc::channel();
        {
            let mut sched = self.sched();
            if sched.draining {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.c_rejected.incr(1);
                return Err("daemon is draining; submission refused".to_string());
            }
            if sched.queue.len() + sched.running >= self.cfg.max_pending {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.c_rejected.incr(1);
                return Err(format!(
                    "admission control: {} submissions pending (cap {})",
                    sched.queue.len() + sched.running,
                    self.cfg.max_pending
                ));
            }
            self.submissions.fetch_add(1, Ordering::Relaxed);
            self.c_submissions.incr(1);
            // Assign the tenant's fleet origin at admission so the
            // status endpoint counts tenants even while jobs queue.
            self.origin_for(&req.tenant);
            let tenant = req.tenant.clone();
            sched.queue.push(&tenant, Job { req, reply: tx });
        }
        self.work_ready.notify_all();
        match rx.recv() {
            Ok(result) => result,
            Err(_) => Err("daemon stopped before the job ran".to_string()),
        }
    }

    /// Drain: refuse new work, wait for the queue and the in-flight
    /// jobs, wind the backend down, export the trace.
    fn drain(&self) {
        let mut sched = self.sched();
        sched.draining = true;
        while !sched.queue.is_empty() || sched.running > 0 {
            sched = self
                .idle
                .wait(sched)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        sched.stop_workers = true;
        drop(sched);
        self.work_ready.notify_all();
        if let Some(backend) = &self.cfg.backend {
            backend.drain();
        }
        if let Some(path) = &self.cfg.trace_export {
            let jsonl = self.cfg.trace.snapshot().to_jsonl();
            if let Err(e) = flit_persist::write_atomic(path, jsonl.as_bytes()) {
                eprintln!("flit-serve: trace export to {} failed: {e}", path.display());
            }
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let Ok(writer_stream) = stream.try_clone() else {
            return;
        };
        let mut writer = writer_stream;
        let mut reader = BufReader::new(stream);
        let request: Request = match read_frame(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        message: format!("unreadable request: {e}"),
                    },
                );
                return;
            }
        };
        if request.version() != PROTOCOL_VERSION {
            let _ = write_frame(
                &mut writer,
                &Response::Error {
                    message: format!(
                        "protocol version mismatch: client speaks {}, daemon speaks {}",
                        request.version(),
                        PROTOCOL_VERSION
                    ),
                },
            );
            return;
        }
        let response = match request {
            Request::Submit {
                tenant,
                app,
                max_bisections,
                jobs,
                ..
            } => {
                let reply = self.handle_submit(JobRequest {
                    tenant: tenant.clone(),
                    app,
                    max_bisections,
                    jobs,
                });
                match reply {
                    Ok(outcome) => Response::Report {
                        tenant,
                        body: outcome.body,
                        simulated_seconds: outcome.simulated_seconds,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            Request::Status { .. } => {
                self.c_status.incr(1);
                Response::Status(self.status())
            }
            Request::Shutdown { .. } => {
                self.drain();
                self.stop_accepting.store(true, Ordering::SeqCst);
                let _ = write_frame(
                    &mut writer,
                    &Response::ShutdownAck {
                        completed: self.completed.load(Ordering::Relaxed),
                    },
                );
                // The acceptor only rechecks the stop flag when a
                // connection arrives; hand it one.
                wake_acceptor(self.local_addr);
                return;
            }
        };
        let _ = write_frame(&mut writer, &response);
    }
}

/// Run the daemon on `listener` until a `Shutdown` request drains it.
/// Blocks; returns the lifetime summary after the drain completes.
pub fn serve(
    listener: TcpListener,
    runner: Arc<dyn WorkflowRunner>,
    cfg: ServeConfig,
) -> std::io::Result<ServeSummary> {
    let local_addr = listener.local_addr()?;
    let max_inflight = cfg.max_inflight.max(1);
    let inner = Inner::new(cfg, local_addr, runner);
    std::thread::scope(|scope| {
        for _ in 0..max_inflight {
            scope.spawn(|| inner.worker_loop());
        }
        for stream in listener.incoming() {
            if inner.stop_accepting.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    scope.spawn(|| inner.handle_connection(stream));
                }
                Err(e) => {
                    eprintln!("flit-serve: accept failed: {e}");
                }
            }
        }
        // Reached only if the acceptor stopped without a drain (e.g. a
        // listener error): make sure the workers can exit.
        let mut sched = inner.sched();
        sched.stop_workers = true;
        drop(sched);
        inner.work_ready.notify_all();
    });
    Ok(inner.summary())
}

/// Wake an acceptor blocked in `accept` by handing it a throwaway
/// connection. The shutdown path calls this itself after setting the
/// stop flag; it is public for harnesses that stop a daemon by other
/// means.
pub fn wake_acceptor(addr: std::net::SocketAddr) {
    let _ = TcpStream::connect(addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A runner that "renders" by echoing the request — enough to
    /// exercise scheduling, journaling, dedup, and drain end-to-end
    /// without the workflow stack.
    struct EchoRunner;

    impl WorkflowRunner for EchoRunner {
        fn fingerprint(&self, app: &str) -> Result<u64, String> {
            match app {
                "echo" => Ok(0xfeed),
                other => Err(format!("unknown application `{other}`")),
            }
        }

        fn run(&self, req: &JobRequest, ledger: Arc<QueryLedger>) -> Result<JobOutcome, String> {
            use flit_bisect::ledger::LedgerHandle;
            // Two queries: one identical across all tenants (the dedup
            // probe), one tenant-specific.
            let handle = LedgerHandle::new(ledger, 1, format!("{}/echo", req.tenant));
            let (shared, _) = handle
                .eval_score("file/echo/shared", || Ok((42.0, 1.0)))
                .map_err(|e| e.to_string())?;
            let key = format!("file/echo/{}", req.tenant);
            let (own, _) = handle
                .eval_score(&key, || Ok((7.0, 0.5)))
                .map_err(|e| e.to_string())?;
            Ok(JobOutcome {
                body: format!("echo {} shared={shared} own={own}\n", req.tenant),
                simulated_seconds: 1.5,
            })
        }
    }

    fn start_daemon(
        state_dir: &std::path::Path,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<ServeSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = ServeConfig {
            state_dir: state_dir.to_path_buf(),
            max_inflight: 2,
            ..ServeConfig::default()
        };
        let handle =
            std::thread::spawn(move || serve(listener, Arc::new(EchoRunner), cfg).unwrap());
        (addr, handle)
    }

    fn shutdown_and_join(
        addr: std::net::SocketAddr,
        handle: std::thread::JoinHandle<ServeSummary>,
    ) -> ServeSummary {
        match crate::protocol::shutdown(addr).unwrap() {
            Response::ShutdownAck { .. } => {}
            other => panic!("expected ShutdownAck, got {other:?}"),
        }
        handle.join().unwrap()
    }

    #[test]
    fn submissions_dedupe_across_tenants_and_status_reports_it() {
        let dir = std::env::temp_dir().join(format!("flit-serve-dedup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (addr, handle) = start_daemon(&dir);

        let threads: Vec<_> = ["team-a", "team-b", "team-c"]
            .into_iter()
            .map(|tenant| {
                std::thread::spawn(move || {
                    crate::protocol::submit(addr, tenant, "echo", None, None).unwrap()
                })
            })
            .collect();
        for t in threads {
            match t.join().unwrap() {
                Response::Report { body, .. } => assert!(body.contains("shared=42"), "{body}"),
                other => panic!("expected Report, got {other:?}"),
            }
        }

        let status = match crate::protocol::status(addr).unwrap() {
            Response::Status(s) => s,
            other => panic!("expected Status, got {other:?}"),
        };
        assert_eq!(status.tenants, ["team-a", "team-b", "team-c"]);
        assert_eq!(status.submissions, 3);
        assert_eq!(status.completed, 3);
        // The shared query executed once; the other two tenants hit it
        // fleet-wide. Tenant-specific queries never count as shared.
        assert_eq!(status.fleet.executed, 1 + 3);
        assert_eq!(status.fleet.shared_hits, 2);
        let latency = status.latency.expect("3 completed jobs have latency");
        assert_eq!(latency.n, 3);
        assert!((latency.mean - 1.5).abs() < 1e-12);
        assert!((latency.p95 - 1.5).abs() < 1e-12);
        assert!(latency.ci_lo <= latency.mean && latency.mean <= latency.ci_hi);

        let summary = shutdown_and_join(addr, handle);
        assert_eq!(summary.submissions, 3);
        assert_eq!(summary.tenants, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_tenant_journals_without_touching_the_fleet() {
        let dir = std::env::temp_dir().join(format!("flit-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (addr, handle) = start_daemon(&dir);
        let first = match crate::protocol::submit(addr, "team-a", "echo", None, None).unwrap() {
            Response::Report { body, .. } => body,
            other => panic!("expected Report, got {other:?}"),
        };
        shutdown_and_join(addr, handle);

        // "Restart": a fresh daemon over the same state dir. The
        // tenant's journal replays, so the fleet ledger never executes.
        let (addr, handle) = start_daemon(&dir);
        let again = match crate::protocol::submit(addr, "team-a", "echo", None, None).unwrap() {
            Response::Report { body, .. } => body,
            other => panic!("expected Report, got {other:?}"),
        };
        assert_eq!(again, first, "resumed report must be byte-identical");
        let status = match crate::protocol::status(addr).unwrap() {
            Response::Status(s) => s,
            other => panic!("expected Status, got {other:?}"),
        };
        assert_eq!(
            status.fleet.executed, 0,
            "replayed answers must not re-execute fleet-wide"
        );
        shutdown_and_join(addr, handle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_unknown_app_and_draining_are_structured_errors() {
        let dir = std::env::temp_dir().join(format!("flit-serve-errors-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (addr, handle) = start_daemon(&dir);

        let bad = crate::protocol::roundtrip(
            addr,
            &Request::Status {
                version: PROTOCOL_VERSION + 1,
            },
        )
        .unwrap();
        match bad {
            Response::Error { message } => {
                assert!(message.contains("version mismatch"), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }

        match crate::protocol::submit(addr, "team-a", "no-such-app", None, None).unwrap() {
            Response::Error { message } => {
                assert!(message.contains("unknown application"), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }

        let summary = shutdown_and_join(addr, handle);
        assert_eq!(summary.rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
