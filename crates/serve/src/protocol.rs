//! The serve wire protocol: one CRC-framed JSON line per message.
//!
//! Requests and responses travel as single lines framed by
//! [`flit_persist::frame_record`] — the exact framing (and validator)
//! used by the checkpoint journal and the coordinator/worker wire, so
//! there is one frame format in the workspace and one place it is
//! checked.
//!
//! **Schema-version rule:** every request carries
//! [`PROTOCOL_VERSION`]. The daemon rejects a version it does not know
//! with a structured [`Response::Error`] naming both versions — the
//! same posture the checkpoint journal takes with its per-record
//! version field. Bump the constant whenever a request or response
//! variant changes shape; never reinterpret an old number.

use std::io::{BufRead, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde::{Deserialize, Serialize};

use flit_persist::{frame_record, unframe_record};

/// The protocol schema version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one workflow run for a tenant and block for its report.
    Submit {
        /// Protocol schema version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// Tenant id: namespaces the checkpoint journal and the
        /// fair-scheduling queue. Free-form; sanitized before touching
        /// the filesystem.
        tenant: String,
        /// The bundled application to run (as `flit workflow <app>`).
        app: String,
        /// Cap on bisections (`None` = all).
        max_bisections: Option<usize>,
        /// Worker threads for the workflow's bisection stage.
        jobs: Option<usize>,
    },
    /// Ask for the daemon's fleet status.
    Status {
        /// Protocol schema version ([`PROTOCOL_VERSION`]).
        version: u32,
    },
    /// Drain and stop the daemon: in-flight and queued jobs finish,
    /// new submissions are refused, the backend is drained, then the
    /// acknowledgement is sent.
    Shutdown {
        /// Protocol schema version ([`PROTOCOL_VERSION`]).
        version: u32,
    },
}

impl Request {
    /// The version the peer claimed to speak.
    pub fn version(&self) -> u32 {
        match self {
            Request::Submit { version, .. }
            | Request::Status { version }
            | Request::Shutdown { version } => *version,
        }
    }
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A completed workflow submission.
    Report {
        /// The tenant the report belongs to.
        tenant: String,
        /// The rendered workflow report — byte-identical to a serial
        /// `flit workflow` run of the same submission.
        body: String,
        /// The job's simulated seconds (the latency unit the status
        /// endpoint aggregates).
        simulated_seconds: f64,
    },
    /// Fleet status.
    Status(StatusReport),
    /// Shutdown acknowledged: everything drained.
    ShutdownAck {
        /// Submissions completed over the daemon's lifetime.
        completed: u64,
    },
    /// A structured refusal or failure (bad version, admission
    /// control, workflow error). Never a process abort.
    Error {
        /// What went wrong, for the human on the other end.
        message: String,
    },
}

/// Fleet-wide physical query counters, summed over every per-app
/// fleet ledger (the daemon-side view of `exec.queries.*`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetStats {
    /// Queries actually evaluated, fleet-wide.
    pub executed: u64,
    /// Same-origin repeat hits at the fleet table.
    pub memoized: u64,
    /// Cross-tenant deduplicated hits — the headline metric.
    pub shared_hits: u64,
}

/// Latency summary of the submit endpoint, in *simulated seconds*
/// (deterministic, so published targets are stable in CI), reported
/// the way Touati argues performance claims must be: with a Student-t
/// confidence interval, not a bare point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Completed submissions in the sample.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Student-t CI lower bound at `level`.
    pub ci_lo: f64,
    /// Student-t CI upper bound at `level`.
    pub ci_hi: f64,
    /// Confidence level of the interval (e.g. 0.95).
    pub level: f64,
    /// 95th-percentile latency.
    pub p95: f64,
}

/// The `flit serve --status` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Protocol schema version the daemon speaks.
    pub version: u32,
    /// Distinct tenants seen since start, lexicographically sorted.
    pub tenants: Vec<String>,
    /// Submissions accepted.
    pub submissions: u64,
    /// Submissions completed (response produced).
    pub completed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Fleet-wide query dedup counters.
    pub fleet: FleetStats,
    /// Submit-endpoint latency summary (`None` until a submission
    /// completes).
    pub latency: Option<LatencySummary>,
}

/// Write one framed message line.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> std::io::Result<()> {
    let payload = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(w, "{}", frame_record(&payload))?;
    w.flush()
}

/// Read one framed message line; `Ok(None)` on a clean EOF. A corrupt
/// frame or an unknown message shape is `InvalidData`, never a panic.
pub fn read_frame<T: serde::Deserialize>(r: &mut impl BufRead) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let payload = unframe_record(line.trim_end_matches(['\n', '\r'])).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad frame: {e}"))
    })?;
    let value = serde_json::from_str(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

/// One request/response exchange with a daemon at `addr`.
pub fn roundtrip(addr: impl ToSocketAddrs, request: &Request) -> std::io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    write_frame(&mut writer, request)?;
    let mut reader = std::io::BufReader::new(stream);
    read_frame(&mut reader)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without responding",
        )
    })
}

/// Submit one workflow and block for the tenant's report.
pub fn submit(
    addr: impl ToSocketAddrs,
    tenant: &str,
    app: &str,
    max_bisections: Option<usize>,
    jobs: Option<usize>,
) -> std::io::Result<Response> {
    roundtrip(
        addr,
        &Request::Submit {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
            app: app.to_string(),
            max_bisections,
            jobs,
        },
    )
}

/// Fetch the daemon's fleet status.
pub fn status(addr: impl ToSocketAddrs) -> std::io::Result<Response> {
    roundtrip(
        addr,
        &Request::Status {
            version: PROTOCOL_VERSION,
        },
    )
}

/// Drain and stop the daemon.
pub fn shutdown(addr: impl ToSocketAddrs) -> std::io::Result<Response> {
    roundtrip(
        addr,
        &Request::Shutdown {
            version: PROTOCOL_VERSION,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_responses_round_trip_framed() {
        let req = Request::Submit {
            version: PROTOCOL_VERSION,
            tenant: "team-a".into(),
            app: "mfem".into(),
            max_bisections: Some(3),
            jobs: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let line = String::from_utf8(buf.clone()).unwrap();
        assert!(line.starts_with("{\"crc\":\""), "framed: {line}");
        let back: Request = read_frame(&mut std::io::BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(back, req);
        assert_eq!(back.version(), PROTOCOL_VERSION);

        let resp = Response::Status(StatusReport {
            version: PROTOCOL_VERSION,
            tenants: vec!["a".into(), "b".into()],
            submissions: 4,
            completed: 4,
            rejected: 1,
            fleet: FleetStats {
                executed: 10,
                memoized: 2,
                shared_hits: 7,
            },
            latency: Some(LatencySummary {
                n: 4,
                mean: 1.5,
                ci_lo: 1.2,
                ci_hi: 1.8,
                level: 0.95,
                p95: 1.9,
            }),
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        let back: Response = read_frame(&mut std::io::BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn corrupt_frames_are_structured_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Status { version: 1 }).unwrap();
        // Flip one payload byte: CRC validation rejects the line.
        let corrupted = String::from_utf8(buf).unwrap().replace("Status", "STATUS");
        let err =
            read_frame::<Request>(&mut std::io::BufReader::new(corrupted.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Clean EOF is None, not an error.
        assert!(
            read_frame::<Request>(&mut std::io::BufReader::new(&b""[..]))
                .unwrap()
                .is_none()
        );
    }
}
