//! Deterministic fair scheduling across tenants.
//!
//! [`FairQueue`] keeps one FIFO per tenant and serves them round-robin
//! in lexicographic tenant order. The next item to dispatch is a pure
//! function of the queue contents and the last-served tenant — no
//! clocks, no randomness — so the daemon's dispatch order is
//! reproducible given the same arrival order, and a tenant that
//! enqueues a burst cannot starve the others: each full rotation
//! serves at most one item per tenant.

use std::collections::{BTreeMap, VecDeque};

/// A per-tenant round-robin queue.
#[derive(Debug)]
pub struct FairQueue<T> {
    queues: BTreeMap<String, VecDeque<T>>,
    /// The tenant served last; the next pop starts strictly after it
    /// (wrapping), which is what makes the rotation fair.
    last: Option<String>,
    len: usize,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FairQueue {
            queues: BTreeMap::new(),
            last: None,
            len: 0,
        }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue `item` at the back of `tenant`'s FIFO.
    pub fn push(&mut self, tenant: &str, item: T) {
        self.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(item);
        self.len += 1;
    }

    /// Dequeue the next item under the rotation: the first non-empty
    /// tenant strictly after the last-served one in lexicographic
    /// order, wrapping to the smallest. Within a tenant, FIFO.
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.len == 0 {
            return None;
        }
        let next = match &self.last {
            Some(last) => self
                .queues
                .range::<String, _>((
                    std::ops::Bound::Excluded(last.clone()),
                    std::ops::Bound::Unbounded,
                ))
                .next()
                .map(|(k, _)| k.clone()),
            None => None,
        };
        let tenant = next.unwrap_or_else(|| {
            self.queues
                .keys()
                .next()
                .expect("len > 0 implies a non-empty tenant map")
                .clone()
        });
        let queue = self.queues.get_mut(&tenant).expect("tenant key exists");
        let item = queue.pop_front().expect("tenant queues are never empty");
        if queue.is_empty() {
            self.queues.remove(&tenant);
        }
        self.len -= 1;
        self.last = Some(tenant.clone());
        Some((tenant, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_serves_tenants_round_robin_in_lex_order() {
        let mut q = FairQueue::new();
        // Tenant "a" floods; "b" and "c" each submit one.
        for i in 0..4 {
            q.push("a", format!("a{i}"));
        }
        q.push("c", "c0".to_string());
        q.push("b", "b0".to_string());
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|(_, it)| it).collect();
        assert_eq!(order, ["a0", "b0", "c0", "a1", "a2", "a3"]);
        assert!(q.is_empty());
    }

    #[test]
    fn rotation_wraps_and_stays_fifo_within_a_tenant() {
        let mut q = FairQueue::new();
        q.push("b", 1);
        q.push("a", 2);
        assert_eq!(q.pop(), Some(("a".to_string(), 2)));
        // New arrivals interleave deterministically with the rotation.
        q.push("a", 3);
        assert_eq!(q.pop(), Some(("b".to_string(), 1)));
        assert_eq!(q.pop(), Some(("a".to_string(), 3)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn dispatch_order_is_a_pure_function_of_arrivals() {
        let drive = || {
            let mut q = FairQueue::new();
            q.push("team-b", 10);
            q.push("team-a", 20);
            q.push("team-b", 30);
            q.push("team-c", 40);
            let mut order = vec![];
            while let Some((t, i)) = q.pop() {
                order.push((t, i));
            }
            order
        };
        assert_eq!(drive(), drive());
    }
}
