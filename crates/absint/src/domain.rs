//! The abstract domain: one [`AbsState`] summarizes the *pair* of
//! concrete state vectors (run A under the baseline environment
//! assignment, run B with the item under analysis flipped).

use flit_fpsim::interval::Interval;

/// Machine epsilon for f64 (`2^-52`).
pub const EPS: f64 = f64::EPSILON;

/// Abstract summary of the two concrete state vectors at one program
/// point.
#[derive(Debug, Clone, Copy)]
pub struct AbsState {
    /// Envelope of every element of *both* runs (uniform over indices;
    /// element-wise precision is deliberately traded for a domain the
    /// saturating kernels keep small).
    pub iv: Interval,
    /// Sound bound on `max_i |state_A[i] − state_B[i]|`. The load-
    /// bearing exactness: while no evaluation has diverging realizations
    /// and `delta == 0`, both runs are bit-identical and `delta` stays
    /// *exactly* `0.0` — not "small", zero.
    pub delta: f64,
    /// A NaN may be present in either run (UB poison). NaN positions
    /// remain symmetric while `delta == 0`; once `delta > 0` we can no
    /// longer prove that, and the certificate degrades to `Unknown`.
    pub nan: bool,
    /// Soundness lost entirely (e.g. a `Kernel::Custom` body).
    pub unknown: bool,
}

impl AbsState {
    /// Abstract initial state: `Driver::init_state` produces elements in
    /// `[0.15, 0.85]` (environment-independent harness arithmetic), and
    /// both runs start from the same bits.
    pub fn initial() -> AbsState {
        AbsState {
            iv: Interval::new(0.15, 0.85),
            delta: 0.0,
            nan: false,
            unknown: false,
        }
    }

    /// Merge two per-run abstract states (used when the two build trees
    /// carry *different bodies* for a function: run A evaluated one
    /// kernel, run B another). Elements of run A lie in `a.iv`, of run B
    /// in `b.iv`, so the element-wise difference is bounded by the
    /// diameter of the union envelope.
    pub fn merge_diverged(a: AbsState, b: AbsState) -> AbsState {
        let iv = a.iv.union(b.iv);
        AbsState {
            iv,
            delta: iv.width(),
            nan: a.nan || b.nan,
            unknown: a.unknown || b.unknown,
        }
    }

    /// Generic rounding-divergence slack for one kernel application: a
    /// handful of ulps at the current magnitude plus an FTZ quantum.
    /// Only added when the runs are already apart (`delta > 0`) or the
    /// evaluation's realization differs — identical code on identical
    /// bits needs none.
    pub fn slack(&self) -> f64 {
        let m = if self.iv.is_nan() { 1.0 } else { self.iv.mag() };
        32.0 * EPS * m.max(1.0) + 8.0 * f64::MIN_POSITIVE
    }

    /// Clamp a candidate `delta` expression against the saturation cap
    /// (both outputs provably lie in `out`), propagating non-finite
    /// values so the finalizer can demote to `Unknown`.
    pub fn capped_delta(out: Interval, candidate: f64) -> f64 {
        if out.is_nan() {
            return f64::INFINITY;
        }
        candidate.min(out.width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_exact() {
        let s = AbsState::initial();
        assert_eq!(s.delta, 0.0);
        assert!(!s.nan && !s.unknown);
        assert!(s.iv.contains(0.15) && s.iv.contains(0.85));
    }

    #[test]
    fn merged_diverged_states_saturate_to_union_width() {
        let a = AbsState {
            iv: Interval::new(0.0, 1.0),
            delta: 0.0,
            nan: false,
            unknown: false,
        };
        let b = AbsState {
            iv: Interval::new(2.0, 3.0),
            delta: 0.0,
            nan: true,
            unknown: false,
        };
        let m = AbsState::merge_diverged(a, b);
        assert!(m.delta >= 3.0);
        assert!(m.nan);
        assert!(m.iv.contains(0.0) && m.iv.contains(3.0));
    }
}
