//! Per-kernel abstract transformers.
//!
//! Each transformer maps the paired abstract state through one kernel
//! evaluation, given the environment each run evaluates it under
//! (`env_a` for the all-baseline run, `env_b` for the run with the item
//! under analysis flipped — equal for unflipped evaluations).
//!
//! The delta recurrence per kernel has three regimes:
//!
//! 1. `delta == 0` and the realization is identical → both runs execute
//!    the same instructions on the same bits → `delta` stays exactly 0.
//! 2. Realizations differ (this evaluation is a divergence *source*) →
//!    `delta' = L·delta + env_term + slack`, where `env_term` bounds the
//!    same-input cross-environment difference (reduction residuals
//!    saturate to their output range; mathlib/recip/FMA get tight
//!    epsilon-scale envelopes).
//! 3. `delta > 0` through identical code (divergence *propagation*) →
//!    `delta' = L·delta + slack` (rounding can magnify an existing
//!    difference but not create one from equal bits).
//!
//! Every candidate is clamped against the saturation cap: both outputs
//! provably lie in the new envelope, so `delta' ≤ width(envelope)`.

use flit_fpsim::env::FpEnv;
use flit_fpsim::interval::Interval;
use flit_program::kernel::zero_gate_fires;
use flit_program::Kernel;

use crate::domain::{AbsState, EPS};
use crate::realization::same_realization;

/// The `[0, 1]` interval (range of `triple_residual` and friends).
fn unit() -> Interval {
    Interval::new(0.0, 1.0)
}

/// Envelope of `c·iv + [0, s]` — the ubiquitous blend shape
/// `mul_add(s·w, t, c·x)` with `t ∈ [0, 1]`, `w ∈ (0, 1]`.
fn blend(iv: Interval, c: f64, s: f64) -> Interval {
    Interval::point(c).mul(iv).add(Interval::new(0.0, s))
}

/// Result of one abstract kernel application.
struct Step {
    /// Output envelope (both runs).
    out: Interval,
    /// Lipschitz factor on the incoming `delta`.
    lip: f64,
    /// Residual-difference term `d(t)`-style contributions plus
    /// cross-environment terms; `None` means "saturate to the cap".
    extra: Option<f64>,
    /// NaN may appear (beyond what the input already carried).
    poison: bool,
    /// Soundness lost (opaque body).
    opaque: bool,
}

impl Step {
    fn exact(out: Interval, lip: f64) -> Step {
        Step {
            out,
            lip,
            extra: Some(0.0),
            poison: false,
            opaque: false,
        }
    }

    fn saturating(out: Interval, lip: f64) -> Step {
        Step {
            out,
            lip,
            extra: None,
            poison: false,
            opaque: false,
        }
    }
}

/// Apply one kernel evaluation to the paired abstract state.
pub fn apply(kernel: &Kernel, st: &mut AbsState, env_a: &FpEnv, env_b: &FpEnv, state_len: usize) {
    if st.unknown {
        return;
    }
    let differs = !same_realization(kernel, env_a, env_b, state_len);
    let step = step_of(kernel, st.iv, env_a, env_b, differs, state_len);

    let slack = st.slack();
    let out = step
        .out
        .pad(slack)
        .maybe_flush(env_a.flush_to_zero || env_b.flush_to_zero);

    st.delta = if st.delta == 0.0 && !differs {
        // Regime 1: bit-identical runs stay bit-identical.
        0.0
    } else {
        let candidate = match step.extra {
            Some(extra) => step.lip * st.delta + extra + slack,
            // Residual extraction / chaotic amplification: any nonzero
            // input difference (or realization split) can land anywhere
            // in the output range.
            None => f64::INFINITY,
        };
        AbsState::capped_delta(out, candidate)
    };
    st.iv = out;
    st.nan |= step.poison || out.is_nan();
    st.unknown |= step.opaque;
}

/// Helper so `apply` can chain `.maybe_flush(..)` on intervals.
trait MaybeFlush {
    fn maybe_flush(self, ftz: bool) -> Interval;
}

impl MaybeFlush for Interval {
    fn maybe_flush(self, ftz: bool) -> Interval {
        if ftz {
            self.with_flush()
        } else {
            self
        }
    }
}

fn step_of(
    kernel: &Kernel,
    iv: Interval,
    env_a: &FpEnv,
    env_b: &FpEnv,
    differs: bool,
    _state_len: usize,
) -> Step {
    match kernel {
        Kernel::Benign { flavor } => {
            let out = match flavor % 8 {
                4 => {
                    if iv.is_nan() {
                        iv
                    } else {
                        Interval::new(iv.lo.clamp(-8.0, 8.0), iv.hi.clamp(-8.0, 8.0))
                    }
                }
                7 => iv.sub(Interval::point(0.468_75)),
                _ => iv,
            };
            Step::exact(out, 1.0)
        }
        Kernel::AmplifyExact { .. } | Kernel::ChaoticAmplify { .. } => {
            // Logistic amplification ends in `clamp(0, 1.35) / 1.35`:
            // outputs in [0, 1], and any incoming difference can be
            // stretched across the whole basin — saturate honestly.
            Step::saturating(unit(), 1.0)
        }
        Kernel::DotMix { .. } | Kernel::DotMixReproducible { .. } | Kernel::NormScale => {
            // x' = 0.25·w·t + 0.75·x with t ∈ [0, 1]. The residual t is
            // a frac extraction of a reduction: a realization split or
            // any nonzero input difference can move it anywhere in
            // [0, 1], so d(t) ≤ 1 in every active regime.
            Step {
                out: blend(iv, 0.75, 0.25),
                lip: 0.75,
                extra: Some(0.25),
                poison: false,
                opaque: false,
            }
        }
        Kernel::MatVecMix { .. } => {
            // Two blend stages; between them only indices < n are
            // touched, so the envelope is the union with the input.
            let mid = blend(iv, 0.75, 0.25).union(iv);
            let out = blend(mid, 0.875, 0.125);
            // d1 ≤ max(d, 0.75·d + 0.25), then 0.875·d1 + 0.125.
            Step {
                out,
                lip: 0.875,
                extra: Some(0.875 * 0.25 + 0.125),
                poison: false,
                opaque: false,
            }
        }
        Kernel::Rank1Mix { .. } | Kernel::PolyHorner { .. } => {
            // Written-back elements are `frac_residual(·) + 0.5`-shaped
            // (Rank1Mix: [0, 1]; PolyHorner: [0.25, 0.75] ⊂ [0, 1]);
            // untouched elements keep the input envelope.
            let written = if matches!(kernel, Kernel::PolyHorner { .. }) {
                Interval::new(0.25, 0.75)
            } else {
                unit()
            };
            let out = if matches!(kernel, Kernel::PolyHorner { .. }) {
                written // every element is rewritten
            } else {
                written.union(iv)
            };
            Step::saturating(out, 1.0)
        }
        Kernel::CgSolve { .. } => {
            // s' = 0.25·t + 0.75·s with t = x/(1+|x|) ∈ (−1, 1); only
            // indices < n touched.
            let out = Interval::point(0.75)
                .mul(iv)
                .add(Interval::point(0.25).mul(Interval::new(-1.0, 1.0)))
                .union(iv);
            Step {
                out,
                lip: 0.75,
                extra: Some(0.5),
                poison: false,
                opaque: false,
            }
        }
        Kernel::HeatSmooth { steps, r } => {
            // Interior update is the affine stencil
            // (1 − 2r)·u_i + r·u_{i−1} + r·u_{i+1}; boundaries copy.
            // Iterate the envelope and the Lipschitz factor per step.
            let l_step = (1.0 - 2.0 * r).abs() + 2.0 * r.abs();
            let mut out = iv;
            let mut lip = 1.0;
            let mut extra = 0.0;
            // FMA contraction error per element per step: a few ulps at
            // the running magnitude.
            for _ in 0..(*steps).min(4096) {
                let stepped = Interval::point(1.0 - 2.0 * r)
                    .mul(out)
                    .add(Interval::point(2.0 * r).mul(out));
                out = stepped.union(out); // boundary elements copy through
                lip *= l_step.max(1.0);
                let m = if out.is_nan() {
                    1.0
                } else {
                    out.mag().max(1.0)
                };
                let env_term = if differs { 16.0 * EPS * m } else { 0.0 };
                extra = extra * l_step.max(1.0) + env_term + 8.0 * EPS * m;
            }
            Step {
                out,
                lip,
                extra: Some(extra),
                poison: false,
                opaque: false,
            }
        }
        Kernel::TranscMap { freq } => {
            // x' = 0.45 + 0.35·sin(x·freq) + 0.15·exp(−(|x|+0.1)).
            let out = Interval::point(0.45)
                .add(Interval::point(0.35).mul(Interval::new(-1.0, 1.0)))
                .add(Interval::point(0.15).mul(Interval::new(0.0, 0.905)));
            let m = if iv.is_nan() { f64::INFINITY } else { iv.mag() };
            // Cross-library envelopes, pinned by fpsim's mathlib tests:
            // |sin_vendor − sin_ref| < 1e-12 on |x| ≤ 30, |exp| ≤ 64
            // ulps of a result ≤ e^−0.1 on arguments in [−20, −0.1].
            let env_term = if differs {
                let sin_env = if m * freq.abs() <= 30.0 { 1e-12 } else { 2.0 };
                let exp_env = if m + 0.1 <= 20.0 { 64.0 * EPS } else { 0.91 };
                0.35 * sin_env + 0.15 * exp_env
            } else {
                0.0
            };
            // d/dx: 0.35·freq·cos + 0.15·e^(−·) ≤ 0.35·|freq| + 0.15.
            Step {
                out,
                lip: 0.35 * freq.abs() + 0.15,
                extra: Some(env_term),
                poison: false,
                opaque: false,
            }
        }
        Kernel::DivScan => {
            // x' = (x + 0.25) / (1 + |state[0]| + 0.618034).
            let denom = Interval::point(1.618_034).add(iv.abs());
            let out = iv.add(Interval::point(0.25)).div(denom);
            let m = if iv.is_nan() { f64::INFINITY } else { iv.mag() };
            let om = if out.is_nan() {
                f64::INFINITY
            } else {
                out.mag()
            };
            // |a/b − a·(1/b)|: two roundings instead of one, ≤ ~2 ulps
            // of the quotient (plus FTZ, folded into the caller slack).
            let env_term = if differs {
                4.0 * EPS * om.max(1.0)
            } else {
                0.0
            };
            // ∂(u/v)/∂u ≤ 1/1.618; ∂/∂v ≤ (m+0.25)/1.618².
            let lip = 1.0 / 1.618 + (m + 0.25) / (1.618 * 1.618);
            Step {
                out,
                lip,
                extra: Some(env_term),
                poison: false,
                opaque: false,
            }
        }
        Kernel::ZeroGate { boost } => {
            let fires_a = zero_gate_fires(env_a);
            let fires_b = zero_gate_fires(env_b);
            let fired = zero_gate_out(iv, *boost);
            match (fires_a, fires_b) {
                (false, false) => Step::exact(iv, 1.0),
                (true, true) => Step {
                    out: fired,
                    lip: boost.abs().max(1.0),
                    extra: Some(0.0),
                    poison: false,
                    opaque: false,
                },
                // The runs take different branches: saturate to the
                // union envelope (the coarse-but-sound "viscosity boost
                // happened on one side only" bound).
                _ => Step::saturating(fired.union(iv), 1.0),
            }
        }
        Kernel::UbSwap => {
            match (env_a.exploit_ub, env_b.exploit_ub) {
                // Plain swap on both sides: a permutation, applied
                // identically to both runs.
                (false, false) => Step::exact(iv, 1.0),
                // Both runs poison the same two slots. NaN positions
                // stay symmetric only while delta == 0; the finalizer
                // demotes `nan && delta > 0` to Unknown.
                (true, true) => Step {
                    out: iv,
                    lip: 1.0,
                    extra: Some(0.0),
                    poison: true,
                    opaque: false,
                },
                // One run poisons, the other doesn't: l2_diff is
                // infinite whenever the NaN survives — nothing bounded
                // to say.
                _ => Step {
                    out: Interval::nan(),
                    lip: 1.0,
                    extra: None,
                    poison: true,
                    opaque: false,
                },
            }
        }
        Kernel::Custom(_) => Step {
            out: Interval::nan(),
            lip: 1.0,
            extra: None,
            poison: false,
            opaque: true,
        },
    }
}

/// Output envelope of ZeroGate's fired branch: `y = x·boost` capped at
/// 4.0 from above (NaN-propagating), and `state[0]` additionally loses
/// 1.0 — fold the shift into the envelope union.
fn zero_gate_out(iv: Interval, boost: f64) -> Interval {
    let y = iv.mul(Interval::point(boost));
    let capped = if y.is_nan() {
        y
    } else {
        Interval::new(y.lo.min(4.0), y.hi.min(4.0))
    };
    capped.union(capped.sub(Interval::point(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> AbsState {
        AbsState::initial()
    }

    #[test]
    fn unflipped_exact_kernels_keep_delta_zero() {
        let env = FpEnv::fast();
        let mut st = start();
        for k in [
            Kernel::Benign { flavor: 4 },
            Kernel::DotMix { stride: 3 },
            Kernel::HeatSmooth { steps: 5, r: 0.2 },
            Kernel::TranscMap { freq: 3.0 },
            Kernel::DivScan,
        ] {
            apply(&k, &mut st, &env, &env, 64);
            assert_eq!(st.delta, 0.0, "{k:?} broke bit-identity");
            assert!(!st.nan && !st.unknown);
        }
    }

    #[test]
    fn flipped_reduction_saturates_but_stays_finite() {
        let strict = FpEnv::strict();
        let fast = FpEnv::fast();
        let mut st = start();
        apply(&Kernel::DotMix { stride: 3 }, &mut st, &strict, &fast, 64);
        assert!(st.delta > 0.0 && st.delta.is_finite());
        // 0.75·0 + 0.25·1 + slack, clamped by the envelope width.
        assert!(st.delta <= st.iv.width());
    }

    #[test]
    fn flipped_transcendental_is_tight() {
        let mut a = FpEnv::strict();
        let mut b = FpEnv::strict();
        a.mathlib = flit_fpsim::env::MathLib::Reference;
        b.mathlib = flit_fpsim::env::MathLib::Vendor;
        let mut st = start();
        apply(&Kernel::TranscMap { freq: 3.0 }, &mut st, &a, &b, 64);
        // 0.35·1e-12 + 0.15·64ε + slack ≈ 4e-13: far below saturation.
        assert!(st.delta > 0.0 && st.delta < 1e-11, "delta = {}", st.delta);
    }

    #[test]
    fn ub_mismatch_poisons_everything() {
        let a = FpEnv::strict();
        let mut b = FpEnv::strict();
        b.exploit_ub = true;
        let mut st = start();
        apply(&Kernel::UbSwap, &mut st, &a, &b, 64);
        assert!(st.nan);
        assert!(!st.delta.is_finite() || st.iv.is_nan());
    }

    #[test]
    fn custom_kernel_is_opaque() {
        let a = FpEnv::strict();
        let mut st = start();
        // Realization already refuses Custom; the transformer marks the
        // walk unknown even for an unflipped evaluation.
        struct Nop;
        impl flit_program::kernel::KernelImpl for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn eval(&self, _: &mut [f64], _: &FpEnv, _: Option<flit_program::Injection>) {}
            fn fp_sites(&self) -> usize {
                0
            }
            fn work(&self) -> f64 {
                1.0
            }
            fn class(&self) -> flit_toolchain::KernelClass {
                flit_toolchain::KernelClass::Memory
            }
        }
        apply(
            &Kernel::Custom(std::sync::Arc::new(Nop)),
            &mut st,
            &a,
            &a,
            64,
        );
        assert!(st.unknown);
    }
}
