//! # flit-absint — certified per-pair divergence bounds
//!
//! A *sound* abstract interpreter over the fpsim kernel semantics. For a
//! (program, driver, FpEnv pair) it propagates an interval-plus-error
//! abstract value through the program's dataflow under **both**
//! environments simultaneously and emits, per bisect item (file, symbol,
//! or the whole pair), a [`Certificate`]:
//!
//! - [`Certificate::Invariant`] — divergence is **provably zero**: every
//!   evaluation the item controls realizes identical machine arithmetic
//!   under both environments (same FMA contraction, same reassociation
//!   width on every reduction length it performs, same extended /
//!   reciprocal / FTZ / UB / mathlib behaviour), the bodies are
//!   byte-identical across the two build trees, and no mixed-ABI crash
//!   is possible. Two bit-identical executions have `l2_diff == 0`.
//! - [`Certificate::Bounded`]`(ε)` — a guaranteed upper bound on the
//!   compare-metric (`l2_diff`) divergence, from a Lipschitz-plus-
//!   saturation walk over the kernel transformers ([`transfer`]).
//! - [`Certificate::Unknown`] — the analysis cannot say anything sound
//!   (mixed-ABI crash hazard, UB poison reaching a nonzero delta,
//!   [`flit_program::Kernel::Custom`] bodies, or a bound that blew up to
//!   non-finite). `Unknown` is *vacuous on purpose*: it never licenses
//!   pruning.
//!
//! ## Soundness argument (sketch)
//!
//! The two concrete executions start from the same `Driver::init_state`
//! bits. The abstract state [`domain::AbsState`] carries (a) an
//! [`Interval`](flit_fpsim::interval::Interval) enveloping every element
//! of both runs — maintained with outward-rounded interval arithmetic —
//! and (b) `delta`, a bound on the element-wise `|A − B|` difference.
//! The key exact rule: if `delta == 0` and an evaluation's realization
//! is identical under both environments, the two runs execute the same
//! instructions on the same bits, so `delta` stays *exactly* zero.
//! Every divergent evaluation adds an explicit environment term (FMA
//! contraction, reduction-order, mathlib envelopes) plus a rounding
//! slack, and every saturating kernel caps `delta` at its output
//! diameter. The final ℓ2 bound is `sqrt(n) · delta`, rounded outward.

pub mod certify;
pub mod domain;
pub mod realization;
pub mod transfer;

pub use certify::{certify_pair, PairCertificates};

/// What the abstract interpreter can promise about one bisect item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Certificate {
    /// Divergence is provably zero: flipping this item cannot change a
    /// single output bit in any mixed binary of this pair.
    Invariant,
    /// Guaranteed upper bound on the `l2_diff` compare metric.
    Bounded(f64),
    /// No sound statement possible; treat as "anything may happen".
    Unknown,
}

impl Certificate {
    /// True when Bisect may drop the item from the search space without
    /// a dynamic probe.
    pub fn prunable(&self) -> bool {
        matches!(self, Certificate::Invariant)
    }

    /// A ranking score for lint seeding: how much divergence this item
    /// can contribute. `Invariant` items score zero, bounded items score
    /// their bound, `Unknown` items rank above every finite bound.
    pub fn score(&self) -> f64 {
        match self {
            Certificate::Invariant => 0.0,
            Certificate::Bounded(e) => *e,
            Certificate::Unknown => f64::INFINITY,
        }
    }

    /// Does an observed divergence contradict this certificate? Used by
    /// the fuzz campaign's soundness oracle: any `true` is a bug in the
    /// abstract interpreter, not in the subject.
    pub fn contradicted_by(&self, observed: f64) -> bool {
        match self {
            Certificate::Invariant => observed != 0.0,
            // A NaN observation must contradict a finite bound.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            Certificate::Bounded(e) => !(observed <= *e),
            Certificate::Unknown => false,
        }
    }

    /// Short stable label for reports and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Certificate::Invariant => "invariant",
            Certificate::Bounded(_) => "bounded",
            Certificate::Unknown => "unknown",
        }
    }
}

impl serde::Serialize for Certificate {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        match self {
            Certificate::Invariant => Value::String("Invariant".into()),
            Certificate::Unknown => Value::String("Unknown".into()),
            Certificate::Bounded(e) => {
                Value::Object(vec![("Bounded".to_string(), Value::Float(*e))])
            }
        }
    }
}

impl serde::Deserialize for Certificate {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{DeError, Value};
        match v {
            Value::String(s) => match s.as_str() {
                "Invariant" => Ok(Certificate::Invariant),
                "Unknown" => Ok(Certificate::Unknown),
                other => Err(DeError(format!("unknown variant `{other}` of Certificate"))),
            },
            Value::Object(pairs) if pairs.len() == 1 && pairs[0].0 == "Bounded" => {
                let e = f64::from_value(&pairs[0].1)?;
                Ok(Certificate::Bounded(e))
            }
            _ => Err(DeError("expected Certificate".to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_semantics() {
        assert!(Certificate::Invariant.prunable());
        assert!(!Certificate::Bounded(0.0).prunable());
        assert!(!Certificate::Unknown.prunable());

        assert!(Certificate::Invariant.contradicted_by(1e-300));
        assert!(!Certificate::Invariant.contradicted_by(0.0));
        assert!(Certificate::Bounded(1e-6).contradicted_by(2e-6));
        assert!(!Certificate::Bounded(1e-6).contradicted_by(1e-6));
        // A NaN / infinite observation contradicts any finite bound...
        assert!(Certificate::Bounded(1e-6).contradicted_by(f64::NAN));
        assert!(Certificate::Bounded(1e-6).contradicted_by(f64::INFINITY));
        // ...but nothing contradicts Unknown (vacuous on purpose).
        assert!(!Certificate::Unknown.contradicted_by(f64::INFINITY));

        assert_eq!(Certificate::Invariant.score(), 0.0);
        assert_eq!(Certificate::Bounded(0.5).score(), 0.5);
        assert_eq!(Certificate::Unknown.score(), f64::INFINITY);
    }

    #[test]
    fn certificate_serde_round_trip() {
        for c in [
            Certificate::Invariant,
            Certificate::Unknown,
            Certificate::Bounded(3.25e-9),
        ] {
            let v = serde::Serialize::to_value(&c);
            let back = <Certificate as serde::Deserialize>::from_value(&v).unwrap();
            assert_eq!(c, back);
        }
    }
}
