//! Realization identity: does a kernel compile to the *same machine
//! arithmetic* under two environments?
//!
//! Each kernel touches a specific, known subset of [`FpEnv`]: the
//! transformers in `ops`/`reduce`/`mathlib` consult exactly the fields
//! listed here (see the kernel table in `flit_program::kernel`). Two
//! environments that agree on a kernel's dependency set produce
//! bit-identical results on identical inputs — that is the entire
//! foundation of the `Invariant` certificate, so every set below is
//! deliberately *over*-approximate (extra fields can only lose
//! precision, never soundness).

use flit_fpsim::env::FpEnv;
use flit_program::kernel::zero_gate_fires;
use flit_program::Kernel;

/// How `reduce::sum`/`reduce::dot` traverse a vector of length `len`
/// under `env`: either the scalar fallback or `w` strided lanes. Two
/// environments with different `simd_width` still realize the *same*
/// reduction when both fall back to scalar for every length the kernel
/// reduces over (`w == 1 || len < 2·w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducePath {
    /// In-order scalar accumulation.
    Scalar,
    /// `w` strided lane accumulators merged in order.
    Vector(usize),
}

/// The traversal `reduce::sum`/`dot` pick for `len` under `env`.
pub fn reduce_path(env: &FpEnv, len: usize) -> ReducePath {
    let w = env.simd_width.lanes();
    if w == 1 || len < 2 * w {
        ReducePath::Scalar
    } else {
        ReducePath::Vector(w)
    }
}

/// Do `a` and `b` realize identical reductions for every length in
/// `lens`?
fn same_reduce_paths(a: &FpEnv, b: &FpEnv, lens: &[usize]) -> bool {
    lens.iter().all(|&l| reduce_path(a, l) == reduce_path(b, l))
}

/// Shared-scalar-op agreement: FMA contraction, extended intermediates,
/// and FTZ. Every kernel that goes through `ops::`/`reduce::` depends on
/// these.
fn same_scalar_ops(a: &FpEnv, b: &FpEnv) -> bool {
    a.fma == b.fma
        && a.extended_precision == b.extended_precision
        && a.flush_to_zero == b.flush_to_zero
}

/// The reduction lengths a kernel actually performs on a state vector of
/// `state_len` elements (the refinement that lets a narrow kernel stay
/// `Invariant` across a SIMD-width change its short rows never see).
fn reduce_lens(kernel: &Kernel, state_len: usize) -> Vec<usize> {
    match kernel {
        Kernel::DotMix { .. } | Kernel::NormScale => vec![state_len],
        Kernel::MatVecMix { n } => vec![(*n).min(state_len), state_len],
        Kernel::Rank1Mix { n, .. } => {
            let n = (*n).min((state_len as f64).sqrt() as usize).max(2);
            vec![n]
        }
        Kernel::CgSolve { n, .. } => vec![(*n).min(state_len).max(2)],
        Kernel::ZeroGate { .. } => vec![48, 53, 61],
        _ => vec![],
    }
}

/// Does `kernel` realize identical machine arithmetic under `a` and `b`
/// on a state vector of `state_len` elements?
///
/// `true` means: on identical input bits the two environments produce
/// identical output bits. `false` is always a safe answer.
pub fn same_realization(kernel: &Kernel, a: &FpEnv, b: &FpEnv, state_len: usize) -> bool {
    match kernel {
        // Plain (strict) arithmetic only — no `ops::`, no env reads.
        Kernel::Benign { .. } | Kernel::AmplifyExact { .. } | Kernel::DotMixReproducible { .. } => {
            true
        }
        // The UB rewrite is the only env read.
        Kernel::UbSwap => a.exploit_ub == b.exploit_ub,
        // The gate residual is state-independent, so the branch decision
        // can be computed *concretely* per environment; equal decisions
        // plus plain branch bodies mean equal realizations.
        Kernel::ZeroGate { .. } => zero_gate_fires(a) == zero_gate_fires(b),
        // Library calls only; the surrounding arithmetic is plain.
        Kernel::TranscMap { .. } => a.mathlib == b.mathlib,
        // Characteristic division plus FTZ canonicalization.
        Kernel::DivScan => {
            a.reciprocal_math == b.reciprocal_math && a.flush_to_zero == b.flush_to_zero
        }
        // Scalar stencil / relaxation: `ops::` but no reductions.
        Kernel::HeatSmooth { .. } | Kernel::ChaoticAmplify { .. } => {
            a.fma == b.fma && a.flush_to_zero == b.flush_to_zero
        }
        // Horner goes through the accumulator (extended-sensitive) but
        // performs no strided reduction.
        Kernel::PolyHorner { .. } => same_scalar_ops(a, b),
        // Reduction kernels: scalar-op agreement plus identical
        // traversal on every length they reduce.
        Kernel::DotMix { .. }
        | Kernel::MatVecMix { .. }
        | Kernel::Rank1Mix { .. }
        | Kernel::NormScale => {
            same_scalar_ops(a, b) && same_reduce_paths(a, b, &reduce_lens(kernel, state_len))
        }
        // CG additionally divides (alpha/beta steps).
        Kernel::CgSolve { .. } => {
            same_scalar_ops(a, b)
                && a.reciprocal_math == b.reciprocal_math
                && same_reduce_paths(a, b, &reduce_lens(kernel, state_len))
        }
        // Opaque body: never assume anything.
        Kernel::Custom(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_fpsim::env::SimdWidth;

    #[test]
    fn strict_envs_always_share_realizations() {
        let a = FpEnv::strict();
        let b = FpEnv::strict();
        for k in [
            Kernel::DotMix { stride: 3 },
            Kernel::DivScan,
            Kernel::TranscMap { freq: 3.0 },
            Kernel::UbSwap,
            Kernel::ZeroGate { boost: 50.0 },
        ] {
            assert!(same_realization(&k, &a, &b, 64), "{k:?}");
        }
    }

    #[test]
    fn width_change_below_threshold_is_invisible() {
        let a = FpEnv::strict();
        let mut b = FpEnv::strict();
        b.simd_width = SimdWidth::W4;
        // A 6-element state never vectorizes at W4 (6 < 2·4): the dot
        // kernel realizes the same scalar reduction.
        assert!(same_realization(&Kernel::DotMix { stride: 3 }, &a, &b, 6));
        // At 64 elements the W4 side splits into lanes.
        assert!(!same_realization(&Kernel::DotMix { stride: 3 }, &a, &b, 64));
        // The benign kernel never reduces at all.
        assert!(same_realization(&Kernel::Benign { flavor: 2 }, &a, &b, 64));
    }

    #[test]
    fn fma_splits_stencils_but_not_transcendentals() {
        let a = FpEnv::strict();
        let mut b = FpEnv::strict();
        b.fma = true;
        assert!(!same_realization(
            &Kernel::HeatSmooth { steps: 3, r: 0.2 },
            &a,
            &b,
            64
        ));
        assert!(same_realization(
            &Kernel::TranscMap { freq: 3.0 },
            &a,
            &b,
            64
        ));
        assert!(same_realization(&Kernel::DivScan, &a, &b, 64));
    }

    #[test]
    fn zero_gate_uses_the_concrete_branch_decision() {
        let strict = FpEnv::strict();
        let fast = FpEnv::fast();
        // The gate residual is exactly zero under strict evaluation and
        // nonzero under reassociated/extended evaluation, so the two
        // must disagree (this mirrors the kernel's own pinned test).
        assert!(zero_gate_fires(&fast));
        assert!(!zero_gate_fires(&strict));
        assert!(!same_realization(
            &Kernel::ZeroGate { boost: 50.0 },
            &strict,
            &fast,
            64
        ));
        assert!(same_realization(
            &Kernel::ZeroGate { boost: 50.0 },
            &fast,
            &fast,
            64
        ));
    }
}
