//! Certificate construction: replay the engine's exact call walk
//! abstractly, once per bisect item.
//!
//! The walk mirrors `flit_program::engine` bit for bit:
//!
//! - structure (symbol table, call lists) comes from the baseline tree;
//! - at **file** granularity every function evaluates under its
//!   defining file's environment (static calls bind into the caller's
//!   object only within the same file, and exported intra-file inlining
//!   never crosses an object boundary), so flipping file `f` changes
//!   exactly the evaluations of functions defined in `f`;
//! - at **symbol** granularity every object is PIC (extended precision
//!   washed, exported calls always interposed through the definer), so
//!   flipping symbol `s` changes the evaluations of `s` plus the
//!   same-file `static` functions it (transitively) pulls into its
//!   object — reached *through `s`*; the same static called from an
//!   unflipped exported function still runs baseline;
//! - the **whole-pair** walk flips every evaluation (all-baseline
//!   binary vs all-candidate binary, each linked by its own driver).
//!
//! Because a file/symbol item's environment does not depend on which
//! *other* items are flipped, an `Invariant` verdict is set-invariant:
//! swapping the item's compilation changes no computation in *any*
//! mixed binary of the pair, which is exactly the property sound
//! frontier pruning needs.

use std::collections::BTreeMap;

use flit_fpsim::env::FpEnv;
use flit_program::model::Visibility;
use flit_program::{Driver, Function, SimProgram};
use flit_toolchain::{mixed_abi_hazard, Compilation, CompilerKind};

use crate::domain::AbsState;
use crate::realization::same_realization;
use crate::transfer;
use crate::Certificate;

/// Everything the analysis can certify about one (program, driver,
/// compilation pair).
#[derive(Debug, Clone)]
pub struct PairCertificates {
    /// Baseline compilation label.
    pub base_label: String,
    /// Candidate compilation label.
    pub cand_label: String,
    /// Per-file certificates, indexed by `file_id`.
    pub files: Vec<Certificate>,
    /// Per-exported-symbol certificates.
    pub symbols: BTreeMap<String, Certificate>,
    /// The whole-pair certificate: bound on `l2_diff` between the
    /// all-baseline and all-candidate binaries.
    pub whole: Certificate,
}

impl PairCertificates {
    /// Certificate for a file item (Unknown when out of range).
    pub fn file(&self, file_id: usize) -> Certificate {
        self.files
            .get(file_id)
            .copied()
            .unwrap_or(Certificate::Unknown)
    }

    /// Certificate for a symbol item (Unknown when unknown symbol).
    pub fn symbol(&self, name: &str) -> Certificate {
        self.symbols
            .get(name)
            .copied()
            .unwrap_or(Certificate::Unknown)
    }

    /// Counts by kind over all item certificates (files + symbols),
    /// for `absint.*` trace counters.
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut inv = 0;
        let mut bnd = 0;
        let mut unk = 0;
        for c in self.files.iter().chain(self.symbols.values()) {
            match c {
                Certificate::Invariant => inv += 1,
                Certificate::Bounded(_) => bnd += 1,
                Certificate::Unknown => unk += 1,
            }
        }
        (inv, bnd, unk)
    }
}

/// Which bisect item is flipped to the candidate compilation.
#[derive(Debug, Clone, Copy)]
enum Flip<'a> {
    File(usize),
    Symbol(&'a str),
    Whole,
}

/// Certify every bisect item of `(base, cand)` on `program` under
/// `driver`.
///
/// `cand_prog` carries the candidate build tree's bodies (pass the same
/// reference as `base_prog` when both trees share sources, the normal
/// bisect case). `link_driver` is the driver that links *mixed*
/// binaries (FLiT links with the baseline's driver); the whole-pair
/// comparison links each pure binary with its own driver.
pub fn certify_pair(
    base_prog: &SimProgram,
    cand_prog: &SimProgram,
    driver: &Driver,
    base: &Compilation,
    cand: &Compilation,
    link_driver: CompilerKind,
) -> PairCertificates {
    let files = (0..base_prog.files.len())
        .map(|fid| {
            certify_item(
                base_prog,
                cand_prog,
                driver,
                base,
                cand,
                link_driver,
                Flip::File(fid),
            )
        })
        .collect();
    let mut symbols = BTreeMap::new();
    for file in &base_prog.files {
        for f in &file.functions {
            if matches!(f.visibility, Visibility::Exported) {
                let cert = certify_item(
                    base_prog,
                    cand_prog,
                    driver,
                    base,
                    cand,
                    link_driver,
                    Flip::Symbol(&f.name),
                );
                symbols.insert(f.name.clone(), cert);
            }
        }
    }
    let whole = certify_item(
        base_prog,
        cand_prog,
        driver,
        base,
        cand,
        link_driver,
        Flip::Whole,
    );
    PairCertificates {
        base_label: base.label(),
        cand_label: cand.label(),
        files,
        symbols,
        whole,
    }
}

/// Abstract walk state threaded through the call tree.
struct Walk<'a> {
    base_prog: &'a SimProgram,
    cand_prog: &'a SimProgram,
    env_base: FpEnv,
    env_cand: FpEnv,
    state_len: usize,
    abs: AbsState,
    /// Some flipped evaluation had a diverging realization or body.
    invariant_broken: bool,
}

fn certify_item(
    base_prog: &SimProgram,
    cand_prog: &SimProgram,
    driver: &Driver,
    base: &Compilation,
    cand: &Compilation,
    link_driver: CompilerKind,
    flip: Flip,
) -> Certificate {
    // Gate 1: mixed-ABI crash hazard. A crash on either side of the
    // comparison is a discrete result change no arithmetic bound covers.
    let hazard = match flip {
        Flip::Whole => {
            mixed_abi_hazard(&[base.compiler], base.compiler)
                || mixed_abi_hazard(&[cand.compiler], cand.compiler)
        }
        _ => {
            mixed_abi_hazard(&[base.compiler], link_driver)
                || mixed_abi_hazard(&[base.compiler, cand.compiler], link_driver)
        }
    };
    if hazard {
        return Certificate::Unknown;
    }

    // Environment each run assigns to baseline / flipped evaluations.
    let (env_base, env_cand) = match flip {
        Flip::Whole => (
            base.fp_env_linked(base.compiler),
            cand.fp_env_linked(cand.compiler),
        ),
        Flip::File(_) => (
            base.fp_env_linked(link_driver),
            cand.fp_env_linked(link_driver),
        ),
        Flip::Symbol(_) => {
            // Symbol Bisect recompiles everything PIC; the engine washes
            // extended precision out of PIC objects.
            let mut eb = base.fp_env_linked(link_driver);
            let mut ec = cand.fp_env_linked(link_driver);
            eb.extended_precision = false;
            ec.extended_precision = false;
            (eb, ec)
        }
    };

    let state_len = driver.state_size + (driver.decomposition.max(1) - 1) * 2;
    let mut walk = Walk {
        base_prog,
        cand_prog,
        env_base,
        env_cand,
        state_len,
        abs: AbsState::initial(),
        invariant_broken: false,
    };

    for _round in 0..driver.rounds {
        for entry in &driver.entries {
            let entry_flipped = match flip {
                Flip::Whole => true,
                Flip::File(_) => false, // decided per function below
                Flip::Symbol(s) => entry == s,
            };
            visit(&mut walk, entry, flip, entry_flipped, 0);
        }
    }

    finalize(&walk)
}

/// One function evaluation plus its callees, mirroring `Engine::exec`.
fn visit(walk: &mut Walk, symbol: &str, flip: Flip, in_flipped_object: bool, depth: usize) {
    if depth >= 64 {
        walk.abs.unknown = true;
        return;
    }
    let Some((fi, _gi)) = lookup(walk.base_prog, symbol) else {
        walk.abs.unknown = true;
        return;
    };
    let fn_a = walk.base_prog.function(symbol).expect("validated symbol");

    // Does THIS evaluation run under the candidate environment in run B?
    let flipped_eval = match flip {
        Flip::Whole => true,
        Flip::File(fid) => fi == fid,
        Flip::Symbol(_) => in_flipped_object,
    };

    let env_a = walk.env_base;
    let env_b = if flipped_eval {
        walk.env_cand
    } else {
        walk.env_base
    };

    // Gate 2: body identity across the two build trees. A differing
    // body (injection, edited kernel) evaluates two different dataflows;
    // envelope both and saturate the difference.
    let fn_b = if flipped_eval {
        walk.cand_prog.function(symbol)
    } else {
        Some(fn_a)
    };
    let bodies_differ = match fn_b {
        Some(b) => flipped_eval && !same_body(fn_a, b),
        None => true,
    };

    if flipped_eval
        && (bodies_differ || !same_realization(&fn_a.kernel, &env_a, &env_b, walk.state_len))
    {
        walk.invariant_broken = true;
    }

    if bodies_differ {
        let kb = fn_b.map_or(&fn_a.kernel, |f| &f.kernel);
        let mut run_a = walk.abs;
        let mut run_b = walk.abs;
        transfer::apply(&fn_a.kernel, &mut run_a, &env_a, &env_a, walk.state_len);
        transfer::apply(kb, &mut run_b, &env_b, &env_b, walk.state_len);
        walk.abs = AbsState::merge_diverged(run_a, run_b);
    } else {
        transfer::apply(&fn_a.kernel, &mut walk.abs, &env_a, &env_b, walk.state_len);
    }

    // Callees execute in order after the body (structure from the
    // baseline tree, like the engine's programs[0] lookup).
    let calls = fn_a.calls.clone();
    for callee in &calls {
        let callee_flipped = callee_context(walk.base_prog, fn_a, callee, flip, in_flipped_object);
        visit(walk, callee, flip, callee_flipped, depth + 1);
    }
}

/// Which object (baseline or flipped) a callee evaluation binds into —
/// the engine's static/exported binding rules.
fn callee_context(
    prog: &SimProgram,
    caller: &Function,
    callee: &str,
    flip: Flip,
    caller_flipped: bool,
) -> bool {
    match flip {
        Flip::Whole => true,
        // File granularity: binding never crosses a file boundary into a
        // different environment — handled per function inside `visit`.
        Flip::File(_) => false,
        Flip::Symbol(s) => {
            let Some(f) = prog.function(callee) else {
                return false;
            };
            match f.visibility {
                // Static callees live in the caller's object (program
                // validation guarantees same file).
                Visibility::Static => caller_flipped,
                // PIC objects always interpose exported calls through
                // the definer: flipped iff the callee IS the flipped
                // symbol. (`caller`/inlining is irrelevant under PIC.)
                Visibility::Exported => {
                    let _ = caller;
                    callee == s
                }
            }
        }
    }
}

fn lookup(prog: &SimProgram, symbol: &str) -> Option<(usize, usize)> {
    prog.lookup(symbol)
}

/// Compare the two trees' versions of a function (kernel + injection —
/// structure is already validated equal).
fn same_body(a: &Function, b: &Function) -> bool {
    serde::Serialize::to_value(a) == serde::Serialize::to_value(b)
}

fn finalize(walk: &Walk) -> Certificate {
    if !walk.invariant_broken && !walk.abs.unknown {
        // Every evaluation realized identical arithmetic on both sides:
        // the two executions are bit-identical (NaNs included), so
        // l2_diff is exactly zero.
        return Certificate::Invariant;
    }
    let abs = &walk.abs;
    if abs.unknown || !abs.delta.is_finite() || (abs.nan && abs.delta > 0.0) {
        return Certificate::Unknown;
    }
    // Element-wise bound to ℓ2: ‖A − B‖₂ ≤ √n · max_i |A_i − B_i|,
    // rounded outward.
    let n = walk.state_len.max(1) as f64;
    let eps = flit_fpsim::interval::next_up(n.sqrt() * abs.delta);
    Certificate::Bounded(eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::{Kernel, SourceFile};
    use flit_toolchain::{OptLevel, Switch};

    fn two_file_program() -> SimProgram {
        SimProgram::new(
            "app",
            vec![
                SourceFile::new(
                    "sensitive.cpp",
                    vec![Function::exported("hot_dot", Kernel::DotMix { stride: 3 })
                        .with_calls(vec!["helper".into()])],
                ),
                SourceFile::new(
                    "benign.cpp",
                    vec![
                        Function::exported("helper", Kernel::Benign { flavor: 2 }),
                        Function::exported("transc", Kernel::TranscMap { freq: 3.0 }),
                    ],
                ),
            ],
        )
    }

    fn driver() -> Driver {
        Driver::new("t", vec!["hot_dot".into(), "transc".into()], 3, 64)
    }

    fn unsafe_gcc() -> Compilation {
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe])
    }

    #[test]
    fn benign_file_is_invariant_and_sensitive_file_is_not() {
        let prog = two_file_program();
        let base = Compilation::baseline();
        let cand = unsafe_gcc();
        let certs = certify_pair(&prog, &prog, &driver(), &base, &cand, CompilerKind::Gcc);
        // File 1 holds only exact-arithmetic and mathlib-only kernels;
        // the gcc pair never changes the mathlib (link driver decides).
        assert_eq!(certs.file(1), Certificate::Invariant);
        // File 0 holds the reduction kernel: realization differs.
        assert!(matches!(certs.file(0), Certificate::Bounded(_)));
        assert_eq!(certs.symbol("helper"), Certificate::Invariant);
        assert_eq!(certs.symbol("transc"), Certificate::Invariant);
        assert!(matches!(certs.symbol("hot_dot"), Certificate::Bounded(_)));
        assert!(matches!(certs.whole, Certificate::Bounded(_)));
    }

    #[test]
    fn identical_pair_is_invariant_everywhere() {
        let prog = two_file_program();
        let base = Compilation::baseline();
        let certs = certify_pair(&prog, &prog, &driver(), &base, &base, CompilerKind::Gcc);
        assert!(certs.files.iter().all(|c| *c == Certificate::Invariant));
        assert!(certs.symbols.values().all(|c| *c == Certificate::Invariant));
        assert_eq!(certs.whole, Certificate::Invariant);
    }

    #[test]
    fn intel_pair_hits_the_abi_gate() {
        let prog = two_file_program();
        let base = Compilation::baseline();
        let cand = Compilation::new(CompilerKind::Icpc, OptLevel::O2, vec![]);
        let certs = certify_pair(&prog, &prog, &driver(), &base, &cand, CompilerKind::Gcc);
        // Mixed gcc/icpc objects under a gcc link: every mixed binary
        // can crash, so no item certificate is sound.
        assert!(certs.files.iter().all(|c| *c == Certificate::Unknown));
        assert!(certs.symbols.values().all(|c| *c == Certificate::Unknown));
        // The pure-vs-pure whole comparison never mixes ABIs, and the
        // icpc side links the vendor mathlib: transc diverges bounded.
        assert!(matches!(certs.whole, Certificate::Bounded(_)));
    }

    #[test]
    fn differing_bodies_break_invariance() {
        let prog = two_file_program();
        let mut edited = two_file_program();
        edited.function_mut("helper").unwrap().kernel = Kernel::Benign { flavor: 5 };
        let base = Compilation::baseline();
        let certs = certify_pair(&prog, &edited, &driver(), &base, &base, CompilerKind::Gcc);
        assert_ne!(certs.symbol("helper"), Certificate::Invariant);
        assert_ne!(certs.file(1), Certificate::Invariant);
        // The other file's evaluations are untouched by the edit.
        assert_eq!(certs.file(0), Certificate::Invariant);
    }

    #[test]
    fn static_closure_rides_with_the_flipped_symbol() {
        let prog = SimProgram::new(
            "app",
            vec![SourceFile::new(
                "one.cpp",
                vec![
                    Function::exported("outer", Kernel::Benign { flavor: 1 })
                        .with_calls(vec!["inner".into()]),
                    Function::local("inner", Kernel::HeatSmooth { steps: 2, r: 0.2 }),
                    Function::exported("other", Kernel::Benign { flavor: 2 })
                        .with_calls(vec!["inner".into()]),
                ],
            )],
        );
        let drv = Driver::new("t", vec!["outer".into(), "other".into()], 1, 32);
        let base = Compilation::baseline();
        // gcc -O2 -mavx2 -mfma: FMA contraction on, nothing else.
        let cand = Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::Avx2Fma]);
        let certs = certify_pair(&prog, &prog, &drv, &base, &cand, CompilerKind::Gcc);
        // Flipping `outer` drags the static FMA-sensitive `inner` into
        // the candidate object: not invariant.
        assert_ne!(certs.symbol("outer"), Certificate::Invariant);
        // Flipping `other` does the same through its own call.
        assert_ne!(certs.symbol("other"), Certificate::Invariant);
    }

    #[test]
    fn bound_is_small_for_mathlib_only_divergence() {
        let prog = SimProgram::new(
            "app",
            vec![SourceFile::new(
                "t.cpp",
                vec![Function::exported(
                    "transc",
                    Kernel::TranscMap { freq: 3.0 },
                )],
            )],
        );
        let drv = Driver::new("t", vec!["transc".into()], 1, 64);
        let base = Compilation::baseline();
        let cand = Compilation::new(CompilerKind::Icpc, OptLevel::O1, vec![]);
        let certs = certify_pair(&prog, &prog, &drv, &base, &cand, CompilerKind::Gcc);
        match certs.whole {
            Certificate::Bounded(e) => {
                assert!(e > 0.0 && e < 1e-10, "mathlib bound should be tight: {e}");
            }
            other => panic!("expected a bounded whole certificate, got {other:?}"),
        }
    }
}
