//! The ground-truth check: certificates must never be contradicted by
//! the real engine.
//!
//! For a zoo of programs covering every kernel family and a set of
//! value-changing compilation pairs, build the actual executables the
//! bisect workflow builds (pure, file-mixed singleton, symbol-mixed
//! singleton), run them, and assert the observed `l2_diff` divergence
//! respects every emitted certificate: `Invariant` ⇒ exactly zero,
//! `Bounded(ε)` ⇒ `observed ≤ ε`. One violation here is a soundness bug
//! in the abstract interpreter.

use std::collections::BTreeSet;

use flit_absint::certify_pair;
use flit_fpsim::ulp::l2_diff;
use flit_program::model::Visibility;
use flit_program::{
    build::{file_mixed_executable, symbol_mixed_executable},
    Build, Driver, Engine, Function, Kernel, SimProgram, SourceFile,
};
use flit_toolchain::{Compilation, CompilerKind, OptLevel, Switch};

const INPUT: &[f64] = &[0.3, 0.7];

fn apps() -> Vec<(SimProgram, Driver)> {
    let reductions = SimProgram::new(
        "reductions",
        vec![
            SourceFile::new(
                "hot.cpp",
                vec![
                    Function::exported("dot", Kernel::DotMix { stride: 3 })
                        .with_calls(vec!["norm".into(), "amp".into()]),
                    Function::local("norm", Kernel::NormScale),
                ],
            ),
            SourceFile::new(
                "cold.cpp",
                vec![
                    Function::exported(
                        "amp",
                        Kernel::AmplifyExact {
                            lambda: 2.9,
                            steps: 4,
                        },
                    ),
                    Function::exported("repro", Kernel::DotMixReproducible { stride: 5 }),
                ],
            ),
        ],
    );
    let mixed = SimProgram::new(
        "mixed",
        vec![
            SourceFile::new(
                "solve.cpp",
                vec![
                    Function::exported(
                        "cg",
                        Kernel::CgSolve {
                            n: 12,
                            tol: 1e-10,
                            cond: 1e8,
                        },
                    ),
                    Function::exported("mv", Kernel::MatVecMix { n: 8 }),
                ],
            ),
            SourceFile::new(
                "phys.cpp",
                vec![
                    Function::exported("heat", Kernel::HeatSmooth { steps: 4, r: 0.2 })
                        .with_calls(vec!["gate".into()]),
                    Function::exported("gate", Kernel::ZeroGate { boost: 50.0 }),
                    Function::exported("rank1", Kernel::Rank1Mix { n: 6, alpha: 0.5 }),
                ],
            ),
            SourceFile::new(
                "lib.cpp",
                vec![
                    Function::exported("transc", Kernel::TranscMap { freq: 3.0 }),
                    Function::exported("div", Kernel::DivScan),
                    Function::exported("poly", Kernel::PolyHorner { degree: 9 }),
                    Function::exported("calm", Kernel::Benign { flavor: 4 }),
                ],
            ),
        ],
    );
    let ub = SimProgram::new(
        "ub",
        vec![SourceFile::new(
            "swap.cpp",
            vec![
                Function::exported("xsw", Kernel::UbSwap).with_calls(vec!["chaos".into()]),
                Function::exported(
                    "chaos",
                    Kernel::ChaoticAmplify {
                        lambda: 2.9,
                        steps: 3,
                    },
                ),
            ],
        )],
    );
    vec![
        (
            reductions,
            Driver::new("t", vec!["dot".into(), "repro".into()], 3, 48),
        ),
        (
            mixed,
            Driver::new(
                "t",
                vec!["cg".into(), "heat".into(), "transc".into(), "div".into()],
                2,
                40,
            )
            .with_decomposition(2),
        ),
        (ub, Driver::new("t", vec!["xsw".into()], 2, 24)),
    ]
}

fn pairs() -> Vec<(Compilation, Compilation)> {
    vec![
        (
            Compilation::baseline(),
            Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe]),
        ),
        (
            Compilation::baseline(),
            Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::Avx2Fma]),
        ),
        (
            Compilation::baseline(),
            Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![]),
        ),
        (
            Compilation::baseline(),
            Compilation::new(CompilerKind::Xlc, OptLevel::O3, vec![]),
        ),
        (
            Compilation::baseline(),
            Compilation::new(CompilerKind::Icpc, OptLevel::O2, vec![Switch::FpModelFast2]),
        ),
        (
            Compilation::new(CompilerKind::Clang, OptLevel::O2, vec![]),
            Compilation::new(CompilerKind::Clang, OptLevel::O3, vec![Switch::FastMath]),
        ),
    ]
}

fn run(prog: &SimProgram, exe: &flit_toolchain::Executable, driver: &Driver) -> Option<Vec<f64>> {
    Engine::new(prog, exe)
        .run(driver, INPUT)
        .ok()
        .map(|o| o.output)
}

fn observed(a: Option<Vec<f64>>, b: Option<Vec<f64>>) -> f64 {
    match (a, b) {
        (Some(a), Some(b)) => l2_diff(&a, &b),
        _ => f64::INFINITY,
    }
}

#[test]
fn certificates_hold_against_the_engine() {
    let mut invariants = 0u32;
    let mut bounded = 0u32;
    for (prog, driver) in apps() {
        for (base, cand) in pairs() {
            let link = base.compiler;
            let certs = certify_pair(&prog, &prog, &driver, &base, &cand, link);
            let base_build = Build::new(&prog, base.clone());
            let cand_build = Build::new(&prog, cand.clone());

            // Whole pair: each pure binary linked by its own driver.
            let base_out = run(&prog, &base_build.executable().unwrap(), &driver);
            let cand_out = run(&prog, &cand_build.executable().unwrap(), &driver);
            let whole_obs = observed(base_out.clone(), cand_out);
            assert!(
                !certs.whole.contradicted_by(whole_obs),
                "{}: whole {:?} contradicted by {whole_obs:e} ({} vs {})",
                prog.name,
                certs.whole,
                base.label(),
                cand.label()
            );

            // File items: singleton flip vs the pure baseline, linked by
            // the baseline driver (the bisect comparison).
            let base_ref = run(
                &prog,
                &Build::new(&prog, base.clone()).executable().unwrap(),
                &driver,
            );
            for fid in 0..prog.files.len() {
                let flip: BTreeSet<usize> = [fid].into();
                let exe = file_mixed_executable(&base_build, &cand_build, &flip, link).unwrap();
                let obs = observed(base_ref.clone(), run(&prog, &exe, &driver));
                let cert = certs.file(fid);
                assert!(
                    !cert.contradicted_by(obs),
                    "{}: file {fid} {cert:?} contradicted by {obs:e} ({} vs {})",
                    prog.name,
                    base.label(),
                    cand.label()
                );
                match cert {
                    flit_absint::Certificate::Invariant => invariants += 1,
                    flit_absint::Certificate::Bounded(_) => bounded += 1,
                    flit_absint::Certificate::Unknown => {}
                }
            }

            // Symbol items: Test({s}) vs Test(∅) within the defining
            // file — the exact executables Symbol Bisect compares.
            for (fid, file) in prog.files.iter().enumerate() {
                for f in &file.functions {
                    if !matches!(f.visibility, Visibility::Exported) {
                        continue;
                    }
                    let none: BTreeSet<String> = BTreeSet::new();
                    let one: BTreeSet<String> = [f.name.clone()].into();
                    let exe0 = symbol_mixed_executable(&base_build, &cand_build, fid, &none, link)
                        .unwrap();
                    let exe1 =
                        symbol_mixed_executable(&base_build, &cand_build, fid, &one, link).unwrap();
                    let obs = observed(run(&prog, &exe0, &driver), run(&prog, &exe1, &driver));
                    let cert = certs.symbol(&f.name);
                    assert!(
                        !cert.contradicted_by(obs),
                        "{}: symbol {} {cert:?} contradicted by {obs:e} ({} vs {})",
                        prog.name,
                        f.name,
                        base.label(),
                        cand.label()
                    );
                }
            }
        }
    }
    // The suite must actually exercise both meaningful verdicts, or the
    // soundness claim is vacuous.
    assert!(invariants > 0, "no Invariant certificate was ever tested");
    assert!(bounded > 0, "no Bounded certificate was ever tested");
}

/// Injected (edited-body) trees: certificates must stay sound when the
/// two build trees differ, the fuzz campaign's planted-divergence shape.
#[test]
fn certificates_hold_for_differing_trees() {
    let (prog, driver) = &apps()[0];
    let mut edited = prog.clone();
    edited.function_mut("repro").unwrap().kernel = Kernel::DotMix { stride: 5 };
    let base = Compilation::baseline();
    let certs = certify_pair(prog, &edited, driver, &base, &base, base.compiler);

    let base_build = Build::new(prog, base.clone());
    let cand_build = Build::tagged(&edited, base.clone(), 1);

    let base_ref = run(prog, &base_build.executable().unwrap(), driver);
    for fid in 0..prog.files.len() {
        let flip: BTreeSet<usize> = [fid].into();
        let exe = file_mixed_executable(&base_build, &cand_build, &flip, base.compiler).unwrap();
        let out = Engine::with_variant(prog, &edited, &exe)
            .run(driver, INPUT)
            .ok()
            .map(|o| o.output);
        let obs = observed(base_ref.clone(), out);
        assert!(
            !certs.file(fid).contradicted_by(obs),
            "file {fid} {:?} contradicted by {obs:e}",
            certs.file(fid)
        );
    }
    // The edited function's file cannot be invariant; the other can.
    assert_ne!(certs.file(1), flit_absint::Certificate::Invariant);
    assert_eq!(certs.file(0), flit_absint::Certificate::Invariant);
}
