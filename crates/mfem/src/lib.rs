//! # flit-mfem
//!
//! A miniature finite-element library standing in for MFEM in the
//! paper's §3.1–§3.3 study: 19 end-to-end examples used as FLiT tests,
//! handwritten numerical files whose kernels span the paper's
//! sensitivity classes, and filler code bringing the program to MFEM's
//! published statistics (Table 3: 97 source files, ~31 functions per
//! file, 2,998 exported functions, 103,205 SLOC).
//!
//! The examples are *engineered* to reproduce the study's structure:
//!
//! * examples 12 and 18 are fully invariant (benign kernels only);
//! * examples 4, 5, 9, 10 and 15 call transcendental kernels, so every
//!   Intel compilation varies them through the link-step math library;
//! * example 8 is an iterative CG solve on an ill-conditioned system
//!   with a 1e-12 stopping criterion, blaming nine matrix/vector
//!   functions (Finding 1);
//! * example 13 funnels a single rank-1-update (`M += a·A·Aᵀ`)
//!   perturbation through an environment-independent chaotic amplifier,
//!   producing a ~190 % relative error with exactly one blamed function
//!   (Finding 2).

pub mod codebase;
pub mod examples;
pub mod files;

pub use codebase::{mfem_program, CodebaseStats, TABLE3};
pub use examples::{example_names, mfem_examples, mpi_wrappable};
