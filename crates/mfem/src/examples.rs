//! The 19 end-to-end MFEM examples, as FLiT tests.
//!
//! Each driver is a `main()` that calls a sequence of library functions
//! over a mesh-sized state, repeated for a few "time steps". Examples
//! are padded with mesh/IO routines (memory-bound, exact) so that — as
//! in the paper — the *fastest* compilation is usually a value-safe one
//! and only a couple of examples are dominated by vectorizable
//! floating-point work (Figure 4b's example 9).

use flit_core::test::DriverTest;
use flit_program::model::Driver;

/// Mesh size used by every example.
pub const STATE_SIZE: usize = 64;

/// The 19 example names, `ex01` … `ex19`.
pub fn example_names() -> Vec<String> {
    (1..=19).map(|i| format!("ex{i:02}")).collect()
}

/// Which examples can be wrapped for the MPI study (§3.6: "only 17 of
/// the 19 tests were able to be easily wrapped so that the FLiT
/// framework could call MPI_Init and MPI_Finalize — tests 17 and 18
/// could not be accommodated").
pub fn mpi_wrappable(example: usize) -> bool {
    example != 17 && example != 18
}

/// The padding routines every driver interleaves (memory-bound, exact):
/// mesh handling and I/O dominate FEM runtimes.
fn padding() -> Vec<String> {
    vec![
        "Mesh_Refine".into(),
        "GridFunction_Update".into(),
        "Vector_Copy".into(),
        "GridFunction_Save".into(),
    ]
}

/// The entry sequence of one example.
pub fn example_entries(example: usize) -> Vec<String> {
    let own: Vec<&str> = match example {
        // Diffusion with CG: classic dot-product-sensitive pipeline.
        1 => vec!["MassIntegrator_Assemble", "CGSolver_Mult", "Vector_Norml2"],
        // Elasticity-ish assembly.
        2 => vec!["DiffusionIntegrator_Assemble", "Integrator_Setup"],
        // High-order basis evaluation (polynomial kernels).
        3 => vec!["ShapeFunction_Eval", "QuadratureRule_Get"],
        // Transcendental source term + assembly (Intel link-step group).
        4 => vec!["SineCoefficient_Eval", "MassIntegrator_Assemble"],
        // Smoothing + transcendental boundary data (Figure 4a). The
        // transcendental evaluation comes *after* the smoother so the
        // vendor-library ulps are not diffused away.
        5 => vec!["Smoother_Apply", "ExpCoefficient_Eval"],
        // Geometry determinants.
        6 => vec!["Mesh_GetDeterminants", "Mesh_ReorderElements"],
        // Normalization-heavy postprocessing (reciprocal-math group).
        7 => vec!["Geometry_Normalize", "Mesh_ReorderElements"],
        // Finding 1: iterative solve, 1e-12 criterion, nine
        // matrix/vector functions.
        8 => vec![
            "Vector_Dot",
            "Vector_Norml2",
            "DenseMatrix_Mult",
            "CGSolver_Mult",
            "Solver_ResidualNorm",
            "MassIntegrator_Assemble",
            "DiffusionIntegrator_Assemble",
            "Geometry_Volume",
            "Quadrature_Integrate",
            // The nonlinear relaxation magnifies the solver-path
            // difference to the observed ~1e-6 scale; it is exact
            // arithmetic, so it is never blamed itself.
            "NonlinearForm_MildRelax",
        ],
        // Figure 4b: dominated by vectorizable FP work + vendor math —
        // the one example where variable compilations win big.
        9 => vec![
            "SineCoefficient_Eval",
            "Quadrature_Integrate",
            "DenseMatrix_Mult",
            "Quadrature_Integrate",
            "DenseMatrix_Mult",
            "Quadrature_Integrate",
        ],
        // Projection + transcendental data (library call last so the
        // ulps survive the projection smoothing).
        10 => vec!["GridFunction_ProjectCoefficient", "ExpCoefficient_Eval"],
        // Pure smoothing (FMA-only sensitivity).
        11 => vec!["Smoother_Apply", "Smoother_Setup"],
        // Fully invariant (Figure 5/6: "no compilations that produced
        // variability").
        12 => vec!["Mesh_Refine", "Mesh_ReorderElements", "Vector_Copy"],
        // Finding 2: the rank-1 update amplified by a nonlinear solve —
        // one blamed function, ~190 % relative error.
        13 => vec![
            "DenseMatrix_AddMultAAt",
            "NonlinearForm_Relax",
            "GridFunction_ZeroMean",
        ],
        // Quadrature sweep.
        14 => vec!["Quadrature_Integrate", "Quadrature_Weights"],
        // Transcendental-only (Intel link-step group).
        15 => vec!["SineCoefficient_Eval", "ExpCoefficient_Eval"],
        // Determinant + basis polynomials.
        16 => vec!["ShapeFunction_Eval", "Mesh_GetDeterminants"],
        // Solver benchmark (not MPI-wrappable).
        17 => vec!["CGSolver_Mult", "Solver_Monitor"],
        // Mesh-only utility (invariant; not MPI-wrappable).
        18 => vec!["Mesh_ReorderElements", "GridFunction_Save", "Vector_Neg"],
        // Normalization + norms (reciprocal + reduction).
        19 => vec!["Geometry_Normalize", "Vector_Norml2"],
        _ => panic!("MFEM has 19 examples; got {example}"),
    };
    let mut entries: Vec<String> = Vec::new();
    for (i, name) in own.iter().enumerate() {
        entries.push(name.to_string());
        // Interleave padding after every other FP routine. Example 9 is
        // the exception: it stays compute-dominated (Figure 4b).
        if example != 9 && i % 2 == 1 {
            entries.extend(padding());
        }
    }
    if example != 9 {
        entries.extend(padding());
    }
    entries
}

/// The driver for one example (1-based), at the given decomposition.
pub fn example_driver(example: usize, decomposition: usize) -> Driver {
    Driver::new(
        format!("ex{example:02}"),
        example_entries(example),
        2,
        STATE_SIZE,
    )
    .with_decomposition(decomposition)
}

/// All 19 examples as FLiT tests (sequential decomposition).
pub fn mfem_examples() -> Vec<DriverTest> {
    (1..=19)
        .map(|i| DriverTest::new(example_driver(i, 1), 2, vec![0.35, 0.62]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebase::mfem_program;

    #[test]
    fn nineteen_examples_with_unique_names() {
        let tests = mfem_examples();
        assert_eq!(tests.len(), 19);
        let names: std::collections::HashSet<&str> =
            tests.iter().map(flit_core::FlitTest::name).collect();
        assert_eq!(names.len(), 19);
        assert_eq!(example_names()[0], "ex01");
        assert_eq!(example_names()[18], "ex19");
    }

    #[test]
    fn every_entry_resolves_in_the_program() {
        let p = mfem_program();
        for i in 1..=19 {
            for entry in example_entries(i) {
                assert!(
                    p.function(&entry).is_some(),
                    "ex{i:02} calls missing `{entry}`"
                );
            }
        }
    }

    #[test]
    fn example_8_touches_nine_sensitive_functions() {
        let own: Vec<String> = example_entries(8);
        let sensitive = crate::files::sensitive_functions();
        let count = own
            .iter()
            .filter(|e| sensitive.contains(&e.as_str()))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert_eq!(count, 9, "Finding 1: nine functions cause variability");
    }

    #[test]
    fn invariant_examples_call_only_exact_kernels() {
        let p = mfem_program();
        let sensitive = crate::files::sensitive_functions();
        for ex in [12usize, 18] {
            for entry in example_entries(ex) {
                assert!(
                    !sensitive.contains(&entry.as_str()),
                    "ex{ex:02} must stay invariant but calls {entry}"
                );
                assert!(p.function(&entry).is_some());
            }
        }
    }

    #[test]
    fn mpi_wrappability_matches_the_paper() {
        let wrappable: Vec<usize> = (1..=19).filter(|&i| mpi_wrappable(i)).collect();
        assert_eq!(wrappable.len(), 17);
        assert!(!mpi_wrappable(17));
        assert!(!mpi_wrappable(18));
    }

    #[test]
    #[should_panic(expected = "19 examples")]
    fn example_zero_is_rejected() {
        example_entries(0);
    }
}
