//! The handwritten numerical files of the mini-FEM library.
//!
//! Each function's kernel determines its compiler-sensitivity class
//! (see `flit_program::kernel`), which in turn determines which
//! compilations vary which examples. Function and file names follow
//! MFEM's layout (linalg/, fem/, mesh/, general/).

use flit_program::kernel::Kernel;
use flit_program::model::{Function, SourceFile};

/// The handwritten source files (the rest of the codebase is generated
/// filler — see [`crate::codebase`]).
pub fn interesting_files() -> Vec<SourceFile> {
    vec![
        SourceFile::new(
            "linalg/vector.cpp",
            vec![
                Function::exported("Vector_Dot", Kernel::DotMix { stride: 7 }).with_sloc(42),
                Function::exported("Vector_Norml2", Kernel::NormScale).with_sloc(35),
                Function::exported("Vector_Add", Kernel::Benign { flavor: 0 }).with_sloc(24),
                Function::exported("Vector_Copy", Kernel::Benign { flavor: 6 }).with_sloc(12),
                Function::exported("Vector_Neg", Kernel::Benign { flavor: 1 })
                    .inlinable()
                    .with_sloc(9),
            ],
        ),
        SourceFile::new(
            "linalg/densemat.cpp",
            vec![
                Function::exported("DenseMatrix_Mult", Kernel::MatVecMix { n: 12 }).with_sloc(66),
                Function::exported(
                    "DenseMatrix_AddMultAAt",
                    Kernel::Rank1Mix { n: 8, alpha: 0.73 },
                )
                .with_sloc(58),
                Function::exported("DenseMatrix_Transpose", Kernel::Benign { flavor: 2 })
                    .with_sloc(28),
                Function::exported("DenseMatrix_Trace", Kernel::Benign { flavor: 4 })
                    .inlinable()
                    .with_sloc(14),
            ],
        ),
        SourceFile::new(
            "linalg/solvers.cpp",
            vec![
                Function::exported(
                    "CGSolver_Mult",
                    Kernel::CgSolve {
                        n: 24,
                        tol: 1e-12,
                        // High enough to converge to *different* iterates
                        // under different semantics, low enough that CG
                        // does not stagnate above the 1e-12 criterion.
                        cond: 1e3,
                    },
                )
                .with_sloc(112),
                Function::exported("Solver_ResidualNorm", Kernel::NormScale).with_sloc(31),
                Function::exported("Solver_Monitor", Kernel::Benign { flavor: 5 }).with_sloc(22),
            ],
        ),
        SourceFile::new(
            "fem/bilininteg.cpp",
            vec![
                Function::exported("MassIntegrator_Assemble", Kernel::DotMix { stride: 3 })
                    .with_sloc(88),
                Function::exported("DiffusionIntegrator_Assemble", Kernel::MatVecMix { n: 10 })
                    .with_sloc(94),
                Function::exported("Integrator_Setup", Kernel::Benign { flavor: 3 }).with_sloc(26),
            ],
        ),
        SourceFile::new(
            "fem/fe_basis.cpp",
            vec![
                Function::exported("ShapeFunction_Eval", Kernel::PolyHorner { degree: 9 })
                    .with_sloc(47),
                Function::exported("QuadratureRule_Get", Kernel::Benign { flavor: 2 })
                    .with_sloc(33),
                Function::local("basis_scratch_init", Kernel::Benign { flavor: 6 }).with_sloc(11),
            ],
        ),
        SourceFile::new(
            "fem/coefficient.cpp",
            vec![
                Function::exported("SineCoefficient_Eval", Kernel::TranscMap { freq: 3.1 })
                    .with_sloc(29),
                Function::exported("ExpCoefficient_Eval", Kernel::TranscMap { freq: 1.7 })
                    .with_sloc(27),
                Function::exported("ConstCoefficient_Eval", Kernel::Benign { flavor: 4 })
                    .inlinable()
                    .with_sloc(8),
            ],
        ),
        SourceFile::new(
            "mesh/mesh.cpp",
            vec![
                Function::exported("Mesh_Refine", Kernel::Benign { flavor: 3 }).with_sloc(105),
                Function::exported("Mesh_ReorderElements", Kernel::Benign { flavor: 2 })
                    .with_sloc(41),
                Function::exported("Mesh_GetDeterminants", Kernel::PolyHorner { degree: 5 })
                    .with_sloc(38),
            ],
        ),
        SourceFile::new(
            "mesh/geom.cpp",
            vec![
                Function::exported("Geometry_Volume", Kernel::DotMix { stride: 11 }).with_sloc(36),
                Function::exported("Geometry_Normalize", Kernel::DivScan).with_sloc(25),
            ],
        ),
        SourceFile::new(
            "fem/gridfunc.cpp",
            vec![
                Function::exported(
                    "GridFunction_ProjectCoefficient",
                    Kernel::HeatSmooth { steps: 9, r: 0.24 },
                )
                .with_sloc(54),
                Function::exported("GridFunction_Save", Kernel::Benign { flavor: 6 }).with_sloc(30),
                Function::exported("GridFunction_Update", Kernel::Benign { flavor: 0 })
                    .with_sloc(27),
                Function::exported("GridFunction_ZeroMean", Kernel::Benign { flavor: 7 })
                    .with_sloc(16),
            ],
        ),
        SourceFile::new(
            "fem/nonlinearform.cpp",
            vec![
                Function::exported(
                    "NonlinearForm_Relax",
                    Kernel::AmplifyExact {
                        lambda: 2.9,
                        steps: 80,
                    },
                )
                .with_sloc(49),
                Function::exported(
                    "NonlinearForm_MildRelax",
                    Kernel::AmplifyExact {
                        lambda: 2.62,
                        steps: 16,
                    },
                )
                .with_sloc(37),
            ],
        ),
        SourceFile::new(
            "general/quadrature.cpp",
            vec![
                Function::exported("Quadrature_Integrate", Kernel::DotMix { stride: 5 })
                    .with_sloc(44),
                Function::exported("Quadrature_Weights", Kernel::Benign { flavor: 4 })
                    .with_sloc(19),
            ],
        ),
        SourceFile::new(
            "general/smoother.cpp",
            vec![
                Function::exported(
                    "Smoother_Apply",
                    Kernel::HeatSmooth {
                        steps: 12,
                        r: 0.249,
                    },
                )
                .with_sloc(40),
                Function::exported("Smoother_Setup", Kernel::Benign { flavor: 1 }).with_sloc(18),
            ],
        ),
    ]
}

/// Names of all *sensitive* (non-benign, non-exact) functions — the
/// candidates any Bisect run may blame.
pub fn sensitive_functions() -> Vec<&'static str> {
    vec![
        "Vector_Dot",
        "Vector_Norml2",
        "DenseMatrix_Mult",
        "DenseMatrix_AddMultAAt",
        "CGSolver_Mult",
        "Solver_ResidualNorm",
        "MassIntegrator_Assemble",
        "DiffusionIntegrator_Assemble",
        "ShapeFunction_Eval",
        "SineCoefficient_Eval",
        "ExpCoefficient_Eval",
        "Mesh_GetDeterminants",
        "Geometry_Volume",
        "Geometry_Normalize",
        "GridFunction_ProjectCoefficient",
        "Quadrature_Integrate",
        "Smoother_Apply",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::model::SimProgram;

    #[test]
    fn interesting_files_form_a_valid_program() {
        let p = SimProgram::new("mfem-core", interesting_files());
        assert_eq!(p.files.len(), 12);
        assert!(p.total_functions() >= 30);
        // Every sensitive function exists and is exported.
        for name in sensitive_functions() {
            let f = p.function(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(
                f.visibility,
                flit_program::model::Visibility::Exported,
                "{name}"
            );
        }
    }

    #[test]
    fn finding2_kernel_is_the_rank1_update() {
        let p = SimProgram::new("mfem-core", interesting_files());
        let f = p.function("DenseMatrix_AddMultAAt").unwrap();
        assert!(matches!(f.kernel, Kernel::Rank1Mix { .. }));
    }
}
