//! Codebase assembly: the handwritten numerical files plus generated
//! filler, calibrated to MFEM's published statistics.
//!
//! Table 3: 97 source files, ~31 functions per file, 2,998 exported
//! functions, 103,205 source lines of code. The filler functions are
//! exact-arithmetic (benign), so they enlarge the Bisect search space
//! exactly the way MFEM's thousands of uninvolved functions do.

use flit_program::generate::{filler_files, FillerSpec};
use flit_program::kernel::Kernel;
use flit_program::model::{Function, SimProgram, SourceFile, Visibility};

use crate::files::interesting_files;

/// The published MFEM statistics (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodebaseStats {
    /// Number of source files.
    pub files: usize,
    /// Exported functions ("functions which are exported symbols").
    pub exported_functions: usize,
    /// Average exported functions per file (rounded).
    pub avg_functions_per_file: usize,
    /// Source lines of code.
    pub sloc: u32,
}

/// Table 3's target numbers.
pub const TABLE3: CodebaseStats = CodebaseStats {
    files: 97,
    exported_functions: 2998,
    avg_functions_per_file: 31,
    sloc: 103_205,
};

/// Compute the statistics of a program.
pub fn stats_of(p: &SimProgram) -> CodebaseStats {
    CodebaseStats {
        files: p.files.len(),
        exported_functions: p.exported_functions(),
        avg_functions_per_file: (p.exported_functions() as f64 / p.files.len() as f64).round()
            as usize,
        sloc: p.total_sloc(),
    }
}

/// The full MFEM stand-in program, calibrated to [`TABLE3`] exactly.
pub fn mfem_program() -> SimProgram {
    let mut files = interesting_files();
    // Heavy mesh/IO routines dominate runtime (memory-bound): scale the
    // padding functions' work so the performance profile matches a real
    // FEM code (mostly not vectorizable FP).
    for file in &mut files {
        for f in &mut file.functions {
            if matches!(f.kernel, Kernel::Benign { .. }) {
                f.work_scale = 300.0;
            }
        }
    }

    // 84 generated filler files + one hand-sized top-up file = 97 total.
    let spec = FillerSpec {
        files: 84,
        funcs_per_file: 34,
        static_per_mille: 120,
        sloc_per_func: 26,
        seed: 0x4D46_454D, // "MFEM"
        prefix: "mfem_gen".to_string(),
    };
    files.extend(filler_files(&spec));

    // Top up the exported-function count exactly.
    let exported_so_far: usize = files
        .iter()
        .flat_map(|f| &f.functions)
        .filter(|f| f.visibility == Visibility::Exported)
        .count();
    assert!(
        exported_so_far < TABLE3.exported_functions,
        "filler overshot the function budget: {exported_so_far}"
    );
    let missing = TABLE3.exported_functions - exported_so_far;
    let topup: Vec<Function> = (0..missing)
        .map(|i| {
            Function::exported(
                format!("mfem_topup_{i:03}"),
                Kernel::Benign {
                    flavor: (i % 7) as u8,
                },
            )
            .with_sloc(24)
        })
        .collect();
    files.push(SourceFile::new("general/topup_util.cpp", topup));
    assert_eq!(files.len(), TABLE3.files);

    // Calibrate SLOC exactly by padding the top-up file's last function.
    let sloc_so_far: u32 = files.iter().map(SourceFile::sloc).sum();
    assert!(
        sloc_so_far <= TABLE3.sloc,
        "SLOC budget overshot: {sloc_so_far}"
    );
    let deficit = TABLE3.sloc - sloc_so_far;
    let last_file = files.last_mut().unwrap();
    let last_fn = last_file.functions.last_mut().unwrap();
    last_fn.sloc += deficit;

    SimProgram::new("mfem", files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_table_3_exactly() {
        let p = mfem_program();
        let s = stats_of(&p);
        assert_eq!(s, TABLE3);
    }

    #[test]
    fn program_is_structurally_valid_and_deterministic() {
        let a = mfem_program();
        let b = mfem_program();
        assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.functions.len(), fb.functions.len());
        }
    }

    #[test]
    fn search_space_is_nontrivial() {
        // "While this size of 3,000 functions is daunting for a linear
        // search, the Bisect approach used an average of 30 executions."
        let p = mfem_program();
        assert!(p.total_functions() > 3000); // exported + statics
        assert!(p.files.len() == 97);
        // Every handwritten sensitive function survives assembly.
        for name in crate::files::sensitive_functions() {
            assert!(p.function(name).is_some(), "{name}");
        }
    }
}
