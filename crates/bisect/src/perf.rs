//! Performance bisect: root-cause *which file/symbol makes a
//! compilation slower*, with statistical regression gates.
//!
//! The variability hierarchy (§2.3) asks "which file changes the
//! *answer*"; this module asks "which file changes the *runtime*" — the
//! paper's §4 performance/reproducibility tradeoff turned into a
//! search. The Test function times a mixed binary under the seeded
//! noise model ([`flit_toolchain::perf`]) and compares it against the
//! baseline timing with Welch's t-test: the planner only blames a set
//! once the slowdown is statistically significant at the configured α.
//! Every speedup claim the result carries is a full
//! [`SpeedupReport`] — point estimate, confidence interval, verdict —
//! never a bare ratio.
//!
//! Timing runs draw `samples` seeded repetitions per binary
//! ([`TimingProfile::samples`]); the noise draws are common-mode across
//! compilations (machine-wide jitter), so two binaries that differ only
//! in untouched files produce bitwise-identical sample vectors and the
//! planner's exact `Test(all) == Test(found)` verification holds. When
//! the two compilations disagree on noise *width* (different opt
//! levels), an apparent unique-error violation is re-verified with a
//! second Welch test between the two mixed binaries and dropped when
//! they are statistically indistinguishable — the found set explains
//! the regression.

use std::sync::Arc;

use flit_program::build::Build;
use flit_program::model::{Driver, SimProgram, Visibility};
use flit_report::speedup::SpeedupReport;
use flit_report::stats::{welch_test, Verdict};
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;
use flit_toolchain::perf::speed_factor;
use flit_trace::names::{counter as counter_names, phase};
use flit_trace::sink::TraceSink;

use flit_exec::{ExecBackend, ExecError};

use crate::algo::AssumptionViolation;
use crate::ledger::{LedgerHandle, SearchKeys};
use crate::parallel::{drive_plans, emit_query_spans, SharedOracle};
use crate::planner::{BisectPlan, PlanFailure, PlanOutcome, SearchMode};
use crate::test_fn::TestError;
use crate::wire::{ExeRecipe, LocalPlane, QueryPlane, RemotePlane};

/// Configuration of a performance bisect.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// The compiler driving the mixed links (same convention as the
    /// variability hierarchy).
    pub link_driver: CompilerKind,
    /// Timing repetitions per binary. More samples narrow the
    /// confidence intervals and sharpen the verdicts.
    pub samples: u32,
    /// Significance level of every Welch test and the complement of
    /// every confidence level (α = 0.05 ⇒ 95% CIs).
    pub alpha: f64,
    /// Noise seed: all timing samples are byte-deterministic given it.
    pub seed: u64,
    /// Build context the search compiles and links through.
    pub ctx: BuildCtx,
    /// Trace sink for `perf.*` spans and counters.
    pub trace: TraceSink,
    /// Optional workflow-wide query ledger (see the variability
    /// hierarchy); perf queries live under distinct `perf*/` keys.
    pub ledger: Option<LedgerHandle>,
    /// Optional execution backend deciding *where* timing queries
    /// evaluate (see `HierarchicalConfig::backend`): `None` or a local
    /// backend times in-process; a remote backend ships each query to a
    /// worker subprocess. Sample vectors are seeded and byte-exact on
    /// the wire, so reports and verdicts are identical either way.
    pub backend: Option<Arc<dyn ExecBackend>>,
}

impl PerfConfig {
    /// Default protocol: 8 samples, α = 0.05, seed 42, GNU-driven link.
    pub fn new() -> Self {
        PerfConfig {
            link_driver: CompilerKind::Gcc,
            samples: 8,
            alpha: 0.05,
            seed: 42,
            ctx: BuildCtx::uncached(),
            trace: TraceSink::disabled(),
            ledger: None,
            backend: None,
        }
    }

    /// Set the timing repetitions per binary.
    pub fn with_samples(mut self, samples: u32) -> Self {
        self.samples = samples;
        self
    }

    /// Set the significance level.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run this search through the given build context.
    pub fn with_ctx(mut self, ctx: BuildCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// Record this search's spans and counters into `trace`.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Answer this search's timing queries through a shared ledger.
    pub fn with_ledger(mut self, ledger: LedgerHandle) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Evaluate this search's timing queries through an execution
    /// backend (see [`PerfConfig::backend`]).
    pub fn with_backend(mut self, backend: Arc<dyn ExecBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The query plane this configuration times through.
    fn plane<'a>(
        &'a self,
        baseline: &'a Build<'a>,
        candidate: &'a Build<'a>,
        driver: &'a Driver,
        input: &'a [f64],
    ) -> Box<dyn QueryPlane + 'a> {
        match &self.backend {
            Some(b) if b.is_remote() => Box::new(RemotePlane::new(
                b.clone(),
                baseline,
                candidate,
                driver,
                input,
                self.link_driver,
            )),
            _ => Box::new(LocalPlane {
                baseline,
                variable: candidate,
                driver,
                input,
                link_driver: self.link_driver,
                ctx: &self.ctx,
            }),
        }
    }
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig::new()
    }
}

/// A file blamed for the slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfFileFinding {
    /// Index in the program's file list.
    pub file_id: usize,
    /// File name.
    pub file_name: String,
    /// The planner's blamed effect: how much slower the binary with
    /// only this file from the candidate runs, as
    /// `mean(mixed)/mean(base) − 1` (0 when not significant).
    pub effect: f64,
    /// Full statistical claim of the singleton comparison.
    pub report: SpeedupReport,
}

/// A symbol blamed for the slowdown within a found file.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSymbolFinding {
    /// The function's symbol name.
    pub symbol: String,
    /// The file defining it.
    pub file_id: usize,
    /// The planner's blamed effect at symbol granularity.
    pub effect: f64,
    /// Full statistical claim of the singleton comparison against the
    /// `-fPIC`-overhead reference (the empty-set symbol-mixed binary),
    /// so the pic speed penalty cancels instead of being misblamed.
    pub report: SpeedupReport,
}

/// How the performance bisect ended.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfOutcome {
    /// The candidate is statistically slower and both levels completed.
    Completed,
    /// The overall Welch test did not conclude "slower": either the
    /// candidate is faster or the pair is statistically
    /// indistinguishable at α. Nothing to bisect.
    NoRegression,
    /// The candidate is slower but the mixed link reproduces none of
    /// it: the regression lives in the link step itself.
    LinkStepOnly,
    /// A build or run failed.
    Crashed(String),
    /// A dynamic-verification assertion failed *and* survived the Welch
    /// re-verification; results may be incomplete.
    AssumptionViolated,
}

/// Result of [`perf_bisect`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBisectResult {
    /// How the search ended.
    pub outcome: PerfOutcome,
    /// The headline claim: the candidate's own binary vs the baseline's
    /// (absent only when a reference build/run failed).
    pub overall: Option<SpeedupReport>,
    /// Slowdown-inducing files.
    pub files: Vec<PerfFileFinding>,
    /// Slowdown-inducing symbols across all searched files.
    pub symbols: Vec<PerfSymbolFinding>,
    /// Files whose slowdown exported-symbol interposition cannot
    /// reproduce (file-level blame only).
    pub file_level_only: Vec<usize>,
    /// Total timed program executions (each drawing `samples` samples).
    pub executions: usize,
    /// Violations that survived the Welch re-verification.
    pub violations: Vec<String>,
}

impl PerfBisectResult {
    /// Did the search complete with full dynamic verification?
    pub fn verified_complete(&self) -> bool {
        self.outcome == PerfOutcome::Completed && self.violations.is_empty()
    }
}

/// Files the deterministic speed model predicts slower under `cand`
/// than under `base`: ground truth for validating [`perf_bisect`]
/// (assumes the driver exercises every function, as the study drivers
/// do).
pub fn predicted_slow_files(
    program: &SimProgram,
    base: &Compilation,
    cand: &Compilation,
) -> Vec<usize> {
    (0..program.files.len())
        .filter(|&fid| {
            program.files[fid]
                .functions
                .iter()
                .any(|f| speed_factor(cand, f.class()) < speed_factor(base, f.class()))
        })
        .collect()
}

/// Exported symbols of `file_id` the speed model predicts slower under
/// `cand`: symbol-level ground truth.
pub fn predicted_slow_symbols(
    program: &SimProgram,
    base: &Compilation,
    cand: &Compilation,
    file_id: usize,
) -> Vec<String> {
    program.files[file_id]
        .functions
        .iter()
        .filter(|f| f.visibility == Visibility::Exported)
        .filter(|f| speed_factor(cand, f.class()) < speed_factor(base, f.class()))
        .map(|f| f.name.clone())
        .collect()
}

fn test_error_message(e: TestError) -> String {
    match e {
        TestError::Crash(s) => s,
        TestError::Link(s) => format!("link: {s}"),
    }
}

fn violation_string<I>(v: &AssumptionViolation<I>, name: impl Fn(&I) -> String) -> String {
    match v {
        AssumptionViolation::SingletonBlame { element } => format!(
            "singleton-blame assumption violated at `{}` (possible false negatives)",
            name(element)
        ),
        AssumptionViolation::UniqueError {
            items_value,
            found_value,
        } => format!(
            "unique-error assumption violated: Test(items)={items_value} != Test(found)={found_value}"
        ),
    }
}

/// Run the performance bisect: confirm the candidate is statistically
/// slower than the baseline, then search files — and symbols within
/// found files — for where the slowdown lives. Independent Test queries
/// fan out on `backend`; the entire result (findings, reports,
/// execution counts, `perf.*` counters and spans) is byte-identical at
/// any worker count because answers fold in the serial planner order —
/// and identical again under a remote backend, because the seeded
/// sample vectors cross the wire bit-exactly.
pub fn perf_bisect(
    baseline: &Build,
    candidate: &Build,
    driver: &Driver,
    input: &[f64],
    cfg: &PerfConfig,
    backend: &dyn ExecBackend,
) -> PerfBisectResult {
    let mut executions = 0usize;
    let mut violations: Vec<String> = Vec::new();

    let search = format!("{}/{}", driver.name, candidate.compilation.label());
    let candidate_label = candidate.compilation.label();
    let keys = cfg.ledger.as_ref().map(|_| {
        SearchKeys::new(
            baseline.program.fingerprint(),
            candidate.program.fingerprint(),
            &driver.name,
            input,
            &baseline.compilation.label(),
            &format!("{:?}", cfg.link_driver),
        )
    });
    let reference_runs = cfg.trace.counter(counter_names::PERF_REFERENCE_RUNS);
    let samples_drawn = cfg.trace.counter(counter_names::PERF_SAMPLES_DRAWN);
    let count_verdict = |v: Verdict| {
        let name = match v {
            Verdict::Faster => counter_names::PERF_VERDICTS_FASTER,
            Verdict::Slower => counter_names::PERF_VERDICTS_SLOWER,
            Verdict::Inconclusive => counter_names::PERF_VERDICTS_INCONCLUSIVE,
        };
        cfg.trace.counter(name).incr(1);
    };

    let crashed = |message: String,
                   overall: Option<SpeedupReport>,
                   files: Vec<PerfFileFinding>,
                   symbols: Vec<PerfSymbolFinding>,
                   file_level_only: Vec<usize>,
                   executions: usize,
                   violations: Vec<String>| PerfBisectResult {
        outcome: PerfOutcome::Crashed(message),
        overall,
        files,
        symbols,
        file_level_only,
        executions,
        violations,
    };

    let plane = cfg.plane(baseline, candidate, driver, input);

    // ---- Timing references: the two real binaries ----
    // Baseline samples go through the ledger (variable-independent, so
    // every candidate compared against this baseline shares them).
    let base_reference = {
        let compute = || -> Result<(Vec<f64>, f64), TestError> {
            let s = plane.time_recipe(&ExeRecipe::Baseline, cfg.seed, cfg.samples)?;
            let total = s.iter().sum();
            Ok((s, total))
        };
        match (&cfg.ledger, &keys) {
            (Some(ledger), Some(keys)) => ledger.eval_output(
                &keys.perf_reference(cfg.samples, cfg.alpha, cfg.seed),
                compute,
            ),
            _ => compute(),
        }
    };
    let base_samples = match base_reference {
        Ok((s, _)) => {
            executions += 1;
            reference_runs.incr(1);
            samples_drawn.incr(cfg.samples as u64);
            s
        }
        Err(TestError::Link(e)) => {
            return crashed(
                format!("baseline link failed: {e}"),
                None,
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Err(TestError::Crash(e)) => {
            executions += 1;
            reference_runs.incr(1);
            samples_drawn.incr(cfg.samples as u64);
            return crashed(
                format!("baseline run failed: {e}"),
                None,
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            );
        }
    };

    let cand_samples = {
        let compute = || -> Result<Vec<f64>, TestError> {
            plane.time_recipe(&ExeRecipe::Candidate, cfg.seed, cfg.samples)
        };
        match compute() {
            Ok(s) => {
                executions += 1;
                reference_runs.incr(1);
                samples_drawn.incr(cfg.samples as u64);
                s
            }
            Err(e) => {
                if matches!(e, TestError::Crash(_)) {
                    executions += 1;
                    reference_runs.incr(1);
                    samples_drawn.incr(cfg.samples as u64);
                }
                return crashed(
                    format!("candidate reference failed: {}", test_error_message(e)),
                    None,
                    vec![],
                    vec![],
                    vec![],
                    executions,
                    violations,
                );
            }
        }
    };

    // ---- The overall gate: is the candidate slower at all? ----
    let Some(overall) = SpeedupReport::compare(&cand_samples, &base_samples, cfg.alpha) else {
        return crashed(
            "degenerate timing samples (need samples >= 1 and positive runtimes)".into(),
            None,
            vec![],
            vec![],
            vec![],
            executions,
            violations,
        );
    };
    count_verdict(overall.verdict());
    if overall.verdict() != Verdict::Slower {
        return PerfBisectResult {
            outcome: PerfOutcome::NoRegression,
            overall: Some(overall),
            files: vec![],
            symbols: vec![],
            file_level_only: vec![],
            executions,
            violations,
        };
    }

    // ---- File-level search ----
    // Raw sample vectors of a file-mixed binary (shared by the oracle,
    // the finding reports, and the violation re-verification).
    let file_samples = |items: &[usize]| -> Result<Vec<f64>, TestError> {
        let recipe = ExeRecipe::FileMixed {
            items: items.to_vec(),
        };
        plane.time_recipe(&recipe, cfg.seed, cfg.samples)
    };
    let file_raw = |items: &[usize]| -> Result<(f64, f64), TestError> {
        let s = file_samples(items)?;
        let rep = SpeedupReport::compare(&s, &base_samples, cfg.alpha)
            .ok_or_else(|| TestError::Crash("degenerate timing samples".into()))?;
        Ok((rep.slowdown_effect(), s.iter().sum()))
    };
    let file_oracle = match (&cfg.ledger, &keys) {
        (Some(ledger), Some(keys)) => {
            let k = keys.clone();
            let label = candidate_label.clone();
            let (n, a, seed) = (cfg.samples, cfg.alpha, cfg.seed);
            SharedOracle::with_ledger(file_raw, &cfg.trace, ledger.clone(), move |items| {
                k.perf_file_query(&label, items, n, a, seed)
            })
        }
        _ => SharedOracle::new(file_raw, &cfg.trace),
    };
    let file_ids: Vec<usize> = (0..baseline.program.files.len()).collect();
    let file_label = format!("{search}/perf-file");
    let mut file_plans = [BisectPlan::new(&file_ids, SearchMode::All)];
    let file_result = match drive_plans(
        &mut file_plans,
        &[&file_oracle],
        backend,
        &cfg.trace,
        &file_label,
    ) {
        Err(ExecError::WorkerPanicked { message, .. }) => {
            return crashed(
                format!("perf bisect worker panicked: {message}"),
                Some(overall),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Err(ExecError::Backend { message }) => {
            return crashed(
                format!("perf bisect backend failed: {message}"),
                Some(overall),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Ok(mut results) => results.pop().expect("one file-level plan"),
    };
    let (mut file_execs, file_secs) = match &file_result {
        Ok(p) => (p.outcome.executions, p.seconds),
        Err(f) => (f.executions, f.seconds),
    };
    let file_outcome: PlanOutcome<usize> = match file_result {
        Ok(p) => p,
        Err(PlanFailure { error, .. }) => {
            executions += file_execs;
            cfg.trace
                .counter(counter_names::PERF_FILE_RUNS)
                .incr(file_execs as u64);
            samples_drawn.incr(file_execs as u64 * cfg.samples as u64);
            cfg.trace.span(
                phase::PERF_FILE,
                search.clone(),
                file_execs as u64,
                file_secs,
            );
            return crashed(
                test_error_message(error),
                Some(overall),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            );
        }
    };

    // Welch re-verification of unique-error violations: when the two
    // compilations disagree on noise width (different opt levels) the
    // exact-equality check can trip on noise alone; the violation is
    // real only if the all-candidate and found-only mixed binaries are
    // statistically distinguishable.
    let mut found_ids: Vec<usize> = file_outcome.outcome.found.iter().map(|(i, _)| *i).collect();
    found_ids.sort_unstable();
    let mut reverified: Option<bool> = None; // Some(true) = explained, drop.
    for v in &file_outcome.outcome.violations {
        let explained = match v {
            AssumptionViolation::UniqueError { .. } => {
                if reverified.is_none() {
                    file_execs += 2;
                    let drop = match (file_samples(&file_ids), file_samples(&found_ids)) {
                        (Ok(all_s), Ok(found_s)) => {
                            matches!(welch_test(&all_s, &found_s, cfg.alpha),
                                     Some(w) if w.verdict == Verdict::Inconclusive)
                        }
                        _ => false,
                    };
                    reverified = Some(drop);
                }
                reverified == Some(true)
            }
            AssumptionViolation::SingletonBlame { .. } => false,
        };
        if !explained {
            violations.push(violation_string(v, |id| {
                baseline.program.files[*id].name.clone()
            }));
        }
    }
    executions += file_execs;
    cfg.trace
        .counter(counter_names::PERF_FILE_RUNS)
        .incr(file_execs as u64);
    samples_drawn.incr(file_execs as u64 * cfg.samples as u64);
    cfg.trace.span(
        phase::PERF_FILE,
        search.clone(),
        file_execs as u64,
        file_secs,
    );
    emit_query_spans(&cfg.trace, &file_label, &file_outcome);

    // Attach the full statistical claim to every found file. These are
    // re-derivations of singleton queries the planner already executed,
    // so they add no executions.
    let mut files: Vec<PerfFileFinding> = Vec::new();
    for (id, effect) in &file_outcome.outcome.found {
        let Some(report) = file_samples(&[*id])
            .ok()
            .and_then(|s| SpeedupReport::compare(&s, &base_samples, cfg.alpha))
        else {
            return crashed(
                format!(
                    "singleton timing of `{}` failed",
                    baseline.program.files[*id].name
                ),
                Some(overall),
                files,
                vec![],
                vec![],
                executions,
                violations,
            );
        };
        count_verdict(report.verdict());
        files.push(PerfFileFinding {
            file_id: *id,
            file_name: baseline.program.files[*id].name.clone(),
            effect: *effect,
            report,
        });
    }

    if files.is_empty() {
        let outcome = if violations.is_empty() {
            PerfOutcome::LinkStepOnly
        } else {
            PerfOutcome::AssumptionViolated
        };
        return PerfBisectResult {
            outcome,
            overall: Some(overall),
            files,
            symbols: vec![],
            file_level_only: vec![],
            executions,
            violations,
        };
    }

    // ---- Symbol-level search per found file ----
    // Each candidate file first gets a pic-overhead reference: the
    // empty-set symbol-mixed binary (target file compiled `-fPIC` under
    // the *baseline* build). Comparing symbol sets against it cancels
    // the pic speed penalty instead of blaming it on the symbols.
    struct Candidate {
        fid: usize,
        syms: Vec<String>,
        symref: Vec<f64>,
    }
    let sym_samples = |fid: usize, items: &[String]| -> Result<Vec<f64>, TestError> {
        let recipe = ExeRecipe::SymbolMixed {
            file: fid,
            items: items.to_vec(),
        };
        plane.time_recipe(&recipe, cfg.seed, cfg.samples)
    };
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut file_level_only: Vec<usize> = Vec::new();
    for finding in &files {
        let fid = finding.file_id;
        let syms = baseline.program.exported_symbols_of_file(fid);
        if syms.is_empty() {
            file_level_only.push(fid);
            continue;
        }
        let symref = match sym_samples(fid, &[]) {
            Ok(s) => {
                executions += 1;
                reference_runs.incr(1);
                samples_drawn.incr(cfg.samples as u64);
                s
            }
            Err(e) => {
                if matches!(e, TestError::Crash(_)) {
                    executions += 1;
                    reference_runs.incr(1);
                    samples_drawn.incr(cfg.samples as u64);
                }
                return crashed(
                    format!("pic reference failed: {}", test_error_message(e)),
                    Some(overall),
                    files,
                    vec![],
                    file_level_only,
                    executions,
                    violations,
                );
            }
        };
        candidates.push(Candidate { fid, syms, symref });
    }

    let sym_oracles: Vec<SharedOracle<'_, String>> = candidates
        .iter()
        .map(|c| {
            let fid = c.fid;
            let symref = &c.symref;
            let raw = move |items: &[String]| -> Result<(f64, f64), TestError> {
                let s = sym_samples(fid, items)?;
                let rep = SpeedupReport::compare(&s, symref, cfg.alpha)
                    .ok_or_else(|| TestError::Crash("degenerate timing samples".into()))?;
                Ok((rep.slowdown_effect(), s.iter().sum()))
            };
            match (&cfg.ledger, &keys) {
                (Some(ledger), Some(keys)) => {
                    let k = keys.clone();
                    let label = candidate_label.clone();
                    let (n, a, seed) = (cfg.samples, cfg.alpha, cfg.seed);
                    SharedOracle::with_ledger(raw, &cfg.trace, ledger.clone(), move |items| {
                        k.perf_symbol_query(&label, fid, items, n, a, seed)
                    })
                }
                _ => SharedOracle::new(raw, &cfg.trace),
            }
        })
        .collect();
    let mut sym_plans: Vec<BisectPlan<String>> = candidates
        .iter()
        .map(|c| BisectPlan::new(&c.syms, SearchMode::All))
        .collect();
    let oracle_refs: Vec<&SharedOracle<'_, String>> = sym_oracles.iter().collect();
    let sym_driven = drive_plans(
        &mut sym_plans,
        &oracle_refs,
        backend,
        &cfg.trace,
        &format!("{search}/perf-symbol"),
    );
    let sym_results = match sym_driven {
        Ok(r) => r,
        Err(ExecError::WorkerPanicked { message, .. }) => {
            return crashed(
                format!("perf bisect worker panicked: {message}"),
                Some(overall),
                files,
                vec![],
                file_level_only,
                executions,
                violations,
            )
        }
        Err(ExecError::Backend { message }) => {
            return crashed(
                format!("perf bisect backend failed: {message}"),
                Some(overall),
                files,
                vec![],
                file_level_only,
                executions,
                violations,
            )
        }
    };

    // Fold per candidate file, in file order.
    let mut symbols: Vec<PerfSymbolFinding> = Vec::new();
    for (c, sym_result) in candidates.iter().zip(sym_results) {
        let fid = c.fid;
        let (mut sym_execs, sym_secs) = match &sym_result {
            Ok(p) => (p.outcome.executions, p.seconds),
            Err(f) => (f.executions, f.seconds),
        };
        let sym_label = format!("{search}/{}", baseline.program.files[fid].name);
        let outcome = match sym_result {
            Ok(p) => p,
            Err(PlanFailure { error, .. }) => {
                executions += sym_execs;
                cfg.trace
                    .counter(counter_names::PERF_SYMBOL_RUNS)
                    .incr(sym_execs as u64);
                samples_drawn.incr(sym_execs as u64 * cfg.samples as u64);
                cfg.trace
                    .span(phase::PERF_SYMBOL, sym_label, sym_execs as u64, sym_secs);
                return crashed(
                    test_error_message(error),
                    Some(overall),
                    files,
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                );
            }
        };
        // Symbol-level Welch re-verification, mirroring the file level.
        let mut found_syms: Vec<String> = outcome
            .outcome
            .found
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        found_syms.sort();
        let mut reverified: Option<bool> = None;
        for v in &outcome.outcome.violations {
            let explained = match v {
                AssumptionViolation::UniqueError { .. } => {
                    if reverified.is_none() {
                        sym_execs += 2;
                        let drop = match (sym_samples(fid, &c.syms), sym_samples(fid, &found_syms))
                        {
                            (Ok(all_s), Ok(found_s)) => {
                                matches!(welch_test(&all_s, &found_s, cfg.alpha),
                                         Some(w) if w.verdict == Verdict::Inconclusive)
                            }
                            _ => false,
                        };
                        reverified = Some(drop);
                    }
                    reverified == Some(true)
                }
                AssumptionViolation::SingletonBlame { .. } => false,
            };
            if !explained {
                violations.push(violation_string(v, Clone::clone));
            }
        }
        executions += sym_execs;
        cfg.trace
            .counter(counter_names::PERF_SYMBOL_RUNS)
            .incr(sym_execs as u64);
        samples_drawn.incr(sym_execs as u64 * cfg.samples as u64);
        cfg.trace.span(
            phase::PERF_SYMBOL,
            sym_label.clone(),
            sym_execs as u64,
            sym_secs,
        );
        emit_query_spans(&cfg.trace, &sym_label, &outcome);
        if outcome.outcome.found.is_empty() {
            file_level_only.push(fid);
        }
        for (symbol, effect) in outcome.outcome.found {
            let Some(report) = sym_samples(fid, std::slice::from_ref(&symbol))
                .ok()
                .and_then(|s| SpeedupReport::compare(&s, &c.symref, cfg.alpha))
            else {
                return crashed(
                    format!("singleton timing of `{symbol}` failed"),
                    Some(overall),
                    files,
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                );
            };
            count_verdict(report.verdict());
            symbols.push(PerfSymbolFinding {
                symbol,
                file_id: fid,
                effect,
                report,
            });
        }
    }

    let outcome = if violations.is_empty() {
        PerfOutcome::Completed
    } else {
        PerfOutcome::AssumptionViolated
    };
    PerfBisectResult {
        outcome,
        overall: Some(overall),
        files,
        symbols,
        file_level_only,
        executions,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::QueryLedger;
    use flit_program::kernel::Kernel;
    use flit_program::model::{Function, SourceFile};
    use flit_toolchain::compiler::OptLevel;
    use flit_toolchain::flags::Switch;

    /// Table-2-shaped workload with a planted slow spot: `-prec-div`
    /// slows DivHeavy code only, and only `math/divide.cpp:div_scan`
    /// is DivHeavy.
    fn program() -> SimProgram {
        SimProgram::new(
            "perf-test",
            vec![
                SourceFile::new(
                    "util/io.cpp",
                    vec![
                        Function::exported("io_read", Kernel::Benign { flavor: 0 }),
                        Function::exported("io_write", Kernel::Benign { flavor: 1 }),
                    ],
                ),
                SourceFile::new(
                    "math/divide.cpp",
                    vec![
                        Function::exported("div_scan", Kernel::DivScan),
                        Function::exported("div_aux", Kernel::Benign { flavor: 2 }),
                    ],
                ),
                SourceFile::new(
                    "linalg/dot.cpp",
                    vec![Function::exported("dot_mix", Kernel::DotMix { stride: 3 })],
                ),
            ],
        )
    }

    fn driver() -> Driver {
        Driver::new(
            "perf",
            vec![
                "io_read".into(),
                "div_scan".into(),
                "div_aux".into(),
                "dot_mix".into(),
                "io_write".into(),
            ],
            2,
            64,
        )
    }

    fn base_comp() -> Compilation {
        Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![])
    }

    fn slow_comp() -> Compilation {
        Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::PrecDiv])
    }

    #[test]
    fn finds_the_planted_slow_file_and_symbol_exactly() {
        let p = program();
        let base = Build::new(&p, base_comp());
        let cand = Build::tagged(&p, slow_comp(), 1);
        let res = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5, 0.25],
            &PerfConfig::new(),
            &flit_exec::ThreadsBackend::new(1),
        );
        assert_eq!(res.outcome, PerfOutcome::Completed, "{:?}", res.violations);
        assert!(res.verified_complete());

        // Ground truth from the deterministic speed model.
        let truth = predicted_slow_files(&p, &base_comp(), &slow_comp());
        let found: Vec<usize> = res.files.iter().map(|f| f.file_id).collect();
        assert_eq!(found, truth, "blamed files must match the speed model");
        assert_eq!(res.files[0].file_name, "math/divide.cpp");

        let sym_truth = predicted_slow_symbols(&p, &base_comp(), &slow_comp(), truth[0]);
        let found_syms: Vec<&str> = res.symbols.iter().map(|s| s.symbol.as_str()).collect();
        assert_eq!(found_syms, sym_truth);
        assert_eq!(found_syms, vec!["div_scan"]);

        // Every claim is statistical: overall + each finding carries a
        // CI at the configured level and a Slower verdict.
        let overall = res.overall.expect("overall claim");
        assert_eq!(overall.verdict(), Verdict::Slower);
        assert!(overall.ratio < 1.0);
        for f in &res.files {
            assert_eq!(f.report.verdict(), Verdict::Slower);
            assert!((f.report.ci.level - 0.95).abs() < 1e-12);
            assert!(f.effect > 0.0);
        }
        for s in &res.symbols {
            assert_eq!(s.report.verdict(), Verdict::Slower);
            assert!(s.report.ci.hi < 1.0, "whole CI below 1: {:?}", s.report.ci);
        }
    }

    #[test]
    fn statistically_identical_pair_is_no_regression() {
        let p = program();
        let base = Build::new(&p, base_comp());
        let cand = Build::tagged(&p, base_comp(), 1);
        let res = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5],
            &PerfConfig::new(),
            &flit_exec::ThreadsBackend::new(1),
        );
        assert_eq!(res.outcome, PerfOutcome::NoRegression);
        assert!(res.files.is_empty());
        let overall = res.overall.expect("overall claim");
        assert_eq!(overall.verdict(), Verdict::Inconclusive);
        // Only the two reference timings ran.
        assert_eq!(res.executions, 2);
    }

    #[test]
    fn faster_candidate_is_no_regression_with_faster_verdict() {
        let p = program();
        let base = Build::new(&p, base_comp());
        let cand = Build::tagged(
            &p,
            Compilation::new(CompilerKind::Gcc, OptLevel::O2, vec![Switch::NoPrecDiv]),
            1,
        );
        let res = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5],
            &PerfConfig::new(),
            &flit_exec::ThreadsBackend::new(1),
        );
        assert_eq!(res.outcome, PerfOutcome::NoRegression);
        assert_eq!(res.overall.unwrap().verdict(), Verdict::Faster);
    }

    #[test]
    fn result_is_byte_identical_at_any_job_count() {
        let p = program();
        let base = Build::new(&p, base_comp());
        let cand = Build::tagged(&p, slow_comp(), 1);
        let perf_counters = |trace: &TraceSink| -> Vec<(String, u64)> {
            trace
                .registry()
                .expect("enabled")
                .snapshot()
                .into_iter()
                .filter(|(name, _)| name.starts_with("perf."))
                .collect()
        };
        let t1 = TraceSink::enabled();
        let serial = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5, 0.25],
            &PerfConfig::new().with_trace(t1.clone()),
            &flit_exec::ThreadsBackend::new(1),
        );
        for jobs in [2, 8] {
            let tn = TraceSink::enabled();
            let par = perf_bisect(
                &base,
                &cand,
                &driver(),
                &[0.5, 0.25],
                &PerfConfig::new().with_trace(tn.clone()),
                &flit_exec::ThreadsBackend::new(jobs),
            );
            assert_eq!(par, serial, "jobs={jobs}");
            assert_eq!(perf_counters(&tn), perf_counters(&t1), "jobs={jobs}");
        }
    }

    #[test]
    fn sample_count_and_seed_are_part_of_the_protocol() {
        let p = program();
        let base = Build::new(&p, base_comp());
        let cand = Build::tagged(&p, slow_comp(), 1);
        let exec = flit_exec::ThreadsBackend::new(1);
        let a = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5],
            &PerfConfig::new().with_samples(16).with_seed(7),
            &exec,
        );
        let b = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5],
            &PerfConfig::new().with_samples(16).with_seed(7),
            &exec,
        );
        // Same protocol: bitwise-identical result.
        assert_eq!(a, b);
        // Different seed: same findings (the effect is real), different
        // sample statistics.
        let c = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5],
            &PerfConfig::new().with_samples(16).with_seed(8),
            &exec,
        );
        let ids = |r: &PerfBisectResult| r.files.iter().map(|f| f.file_id).collect::<Vec<_>>();
        assert_eq!(ids(&c), ids(&a));
        assert_ne!(
            c.overall.as_ref().unwrap().ratio,
            a.overall.as_ref().unwrap().ratio
        );
    }

    #[test]
    fn ledger_replays_preserve_findings_and_skip_recomputation() {
        let p = program();
        let base = Build::new(&p, base_comp());
        let cand = Build::tagged(&p, slow_comp(), 1);
        let exec = flit_exec::ThreadsBackend::new(2);
        let plain = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5, 0.25],
            &PerfConfig::new(),
            &exec,
        );
        let trace = TraceSink::enabled();
        let ledger = QueryLedger::new(p.fingerprint(), &trace);
        let handle = LedgerHandle::new(ledger.clone(), 1, "perf/pair");
        let first = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5, 0.25],
            &PerfConfig::new().with_ledger(handle.clone()),
            &exec,
        );
        assert_eq!(first, plain, "ledger must not change observables");
        let executed_once = ledger.stats().executed;
        let again = perf_bisect(
            &base,
            &cand,
            &driver(),
            &[0.5, 0.25],
            &PerfConfig::new().with_ledger(handle),
            &exec,
        );
        assert_eq!(again, plain);
        // The rerun answers its plan queries from the ledger.
        assert_eq!(ledger.stats().executed, executed_once);
    }
}
