//! Algorithm 1: `BisectOne` and `BisectAll`, with the dynamic
//! verification assertions.
//!
//! The recursion in `BisectOne` returns a *pair*: the set `G` of
//! elements that can safely be pruned from future searches (halves that
//! tested zero plus the found element itself) and the found element.
//! `BisectAll` removes `G` from the search space after each round — the
//! pruning optimization §2.2 highlights as "one significant deviation
//! from Delta debugging".
//!
//! Two run-time assertions implement the paper's dynamic verification
//! (§2.4):
//!
//! 1. `BisectOne` line 3: when the search narrows to a singleton, that
//!    singleton must itself test positive — otherwise two or more
//!    elements were needed *jointly* (Assumption 2, Singleton Blame
//!    Site, violated).
//! 2. `BisectAll` line 8: `Test(items) = Test(found)` — otherwise some
//!    benign-looking element mattered (Assumption 1, Unique Error,
//!    violated) and there may be false negatives.
//!
//! Violations are reported to the caller as data (the paper: "the user
//! is notified that there may be false negative results"), never as
//! panics.

use crate::planner::{drive_serial, BisectPlan, SearchMode};
use crate::test_fn::{MemoTest, TestError, TestFn};

/// A recorded Test invocation, for traces like the paper's Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow<I> {
    /// The items fed to Test in this step.
    pub tested: Vec<I>,
    /// The search space at the time of this step (dots in Figure 2).
    pub space: Vec<I>,
    /// The metric value (✘ when positive, ✔ when zero).
    pub value: f64,
}

/// An assumption-violation diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum AssumptionViolation<I> {
    /// Assumption 2 (Singleton Blame Site) failed: this singleton was
    /// reached through positive-testing supersets yet tests zero itself.
    SingletonBlame {
        /// The element that tested zero in isolation.
        element: I,
    },
    /// Assumption 1 (Unique Error) failed: `Test(found)` differs from
    /// `Test(items)`, so the found set does not fully explain the
    /// observed variability (possible false negatives).
    UniqueError {
        /// Metric over the original item set.
        items_value: f64,
        /// Metric over the found set.
        found_value: f64,
    },
}

/// Outcome of a `BisectAll` search.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectOutcome<I> {
    /// The variability-inducing elements, in discovery order, each with
    /// its singleton Test value (used by `BisectBiggest`-style ranking
    /// and by the magnitude reports).
    pub found: Vec<(I, f64)>,
    /// Real Test executions performed (program runs).
    pub executions: usize,
    /// Assumption violations detected by the dynamic verification.
    pub violations: Vec<AssumptionViolation<I>>,
    /// Every Test invocation, for Figure-2 style rendering.
    pub trace: Vec<TraceRow<I>>,
}

impl<I> BisectOutcome<I> {
    /// True when the dynamic verification passed: no false negatives
    /// (and false positives are impossible by construction — §2.4).
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What one `BisectOne` round found: the prunable set `G`, plus the
/// blamed element and its singleton Test value (`None` when the
/// singleton assertion failed).
pub type BisectOneFound<I> = (Vec<I>, Option<(I, f64)>);

/// `BisectOne` (Algorithm 1): find one variability-inducing element
/// inside `items` (which must test positive). Returns `(G, found,
/// found_value)` where `G` is the prunable set *including* `found`.
pub fn bisect_one<I, F>(
    test: &mut MemoTest<I, F>,
    items: &[I],
    space: &[I],
    trace: &mut Vec<TraceRow<I>>,
    violations: &mut Vec<AssumptionViolation<I>>,
) -> Result<BisectOneFound<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    if items.len() == 1 {
        // Base case — line 2-4, with the line-3 assertion as dynamic
        // verification rather than a panic.
        let v = test.test(items)?;
        trace.push(TraceRow {
            tested: items.to_vec(),
            space: space.to_vec(),
            value: v,
        });
        if v > 0.0 {
            return Ok((items.to_vec(), Some((items[0].clone(), v))));
        }
        violations.push(AssumptionViolation::SingletonBlame {
            element: items[0].clone(),
        });
        // The singleton is still prunable (it does not matter alone);
        // report no find for this round.
        return Ok((items.to_vec(), None));
    }
    let mid = items.len() / 2;
    let (d1, d2) = items.split_at(mid);
    let v1 = test.test(d1)?;
    trace.push(TraceRow {
        tested: d1.to_vec(),
        space: space.to_vec(),
        value: v1,
    });
    if v1 > 0.0 {
        bisect_one(test, d1, space, trace, violations)
    } else {
        let (g, next) = bisect_one(test, d2, space, trace, violations)?;
        // Line 10: Δ1 tested zero, so it is prunable alongside G.
        let mut g2 = g;
        g2.extend_from_slice(d1);
        Ok((g2, next))
    }
}

/// `BisectAll` (Algorithm 1): find *all* variability-inducing elements.
///
/// Since the planner refactor this is a thin driver over
/// [`BisectPlan`]: the plan replays the loop above one frontier query
/// at a time, and `test_fn` answers each query in the serial call
/// order. The observable behavior — call sequence, memoization, found
/// set, trace, execution count, violations — is unchanged (see
/// `planner::tests::replay_matches_reference_recursion_exactly`).
pub fn bisect_all<I, F>(test_fn: F, items: &[I]) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    drive_serial(BisectPlan::new(items, SearchMode::All), test_fn)
}

/// `BisectAll` **without** the found-set pruning (ablation).
///
/// §2.2 highlights the pruning of `G` (zero-testing halves) from future
/// rounds as "one significant deviation from Delta debugging … merely an
/// optimization that allows us to prune the search space". This variant
/// removes only the found element after each round, so every later
/// round re-bisects through halves already known to be clean — the cost
/// difference is the value of the optimization (see the
/// `bisect_ablation` bench and `pruning_reduces_executions` test).
pub fn bisect_all_unpruned<I, F>(test_fn: F, items: &[I]) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    drive_serial(BisectPlan::new(items, SearchMode::AllUnpruned), test_fn)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's idealized Test: the magnitude contributed by each
    /// variable element is unique, and contributions combine so that any
    /// set containing a variable element tests positive.
    fn magnitude_test(weights: Vec<(u32, f64)>) -> impl FnMut(&[u32]) -> Result<f64, TestError> {
        move |items: &[u32]| {
            Ok(items
                .iter()
                .map(|i| {
                    weights
                        .iter()
                        .find(|(w, _)| w == i)
                        .map_or(0.0, |(_, v)| *v)
                })
                .sum())
        }
    }

    #[test]
    fn figure_2_example_finds_2_8_9() {
        // Elements 1..=10; variable elements {2, 8, 9} as in Figure 2.
        let items: Vec<u32> = (1..=10).collect();
        let out = bisect_all(
            magnitude_test(vec![(2, 0.25), (8, 1.5), (9, 0.125)]),
            &items,
        )
        .unwrap();
        let mut found: Vec<u32> = out.found.iter().map(|(i, _)| *i).collect();
        found.sort();
        assert_eq!(found, vec![2, 8, 9]);
        assert!(out.verified());
        // Figure 2 shows 13 Test rows for this instance; memoization can
        // only reduce that. Confirm the same order of magnitude.
        assert!(
            out.executions >= 10 && out.executions <= 16,
            "executions = {}",
            out.executions
        );
    }

    #[test]
    fn no_variability_terminates_after_one_test() {
        let items: Vec<u32> = (1..=100).collect();
        let out = bisect_all(magnitude_test(vec![]), &items).unwrap();
        assert!(out.found.is_empty());
        assert!(out.verified());
        assert_eq!(out.executions, 2); // full set + empty found set
    }

    #[test]
    fn single_element_among_many() {
        let items: Vec<u32> = (0..1024).collect();
        let out = bisect_all(magnitude_test(vec![(777, 3.0)]), &items).unwrap();
        assert_eq!(out.found.len(), 1);
        assert_eq!(out.found[0].0, 777);
        assert_eq!(out.found[0].1, 3.0);
        // O(log N): about 2·log2(1024) + verification.
        assert!(out.executions <= 26, "executions = {}", out.executions);
        assert!(out.verified());
    }

    #[test]
    fn complexity_is_k_log_n() {
        // k = 8 variable elements in N = 512: executions should be
        // O(k log N) ≈ well under k * 2 * log2(N) + overhead.
        let weights: Vec<(u32, f64)> = (0..8).map(|j| (j * 64 + 13, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..512).collect();
        let out = bisect_all(magnitude_test(weights), &items).unwrap();
        assert_eq!(out.found.len(), 8);
        assert!(
            out.executions <= 8 * 2 * 9 + 12,
            "executions = {}",
            out.executions
        );
        assert!(out.verified());
    }

    #[test]
    fn found_values_are_singleton_magnitudes() {
        let items: Vec<u32> = (0..64).collect();
        let out = bisect_all(magnitude_test(vec![(5, 0.5), (40, 2.0)]), &items).unwrap();
        for (elem, value) in &out.found {
            match elem {
                5 => assert_eq!(*value, 0.5),
                40 => assert_eq!(*value, 2.0),
                other => panic!("false positive: {other}"),
            }
        }
    }

    #[test]
    fn coupled_elements_trigger_singleton_blame_violation() {
        // Two elements that only matter together: Assumption 2 fails and
        // the dynamic verification must notice instead of looping.
        let items: Vec<u32> = (0..16).collect();
        let coupled = |items: &[u32]| -> Result<f64, TestError> {
            Ok(if items.contains(&3) && items.contains(&12) {
                1.0
            } else {
                0.0
            })
        };
        let out = bisect_all(coupled, &items).unwrap();
        assert!(!out.verified());
        assert!(out
            .violations
            .iter()
            .any(|v| matches!(v, AssumptionViolation::SingletonBlame { .. })));
        // No false positives even under violation.
        assert!(out.found.is_empty());
    }

    #[test]
    fn masked_element_triggers_unique_error_violation() {
        // Element 9 contributes only when 2 is absent: the found set {2}
        // does not reproduce Test(items) — Assumption 1 catches it.
        let items: Vec<u32> = (0..16).collect();
        let masking = |items: &[u32]| -> Result<f64, TestError> {
            if items.contains(&2) {
                Ok(5.0)
            } else if items.contains(&9) {
                Ok(1.0)
            } else {
                Ok(0.0)
            }
        };
        let out = bisect_all(masking, &items).unwrap();
        // 2 is found (Test({2}) = 5 = Test(items)); after pruning, the
        // remaining space still tests 5.0 through... actually with 2
        // removed the space tests 1.0 via 9, so 9 is found too and the
        // verification passes or flags — either way, no silent lies:
        let found: Vec<u32> = out.found.iter().map(|(i, _)| *i).collect();
        if !out.verified() {
            assert!(out
                .violations
                .iter()
                .any(|v| matches!(v, AssumptionViolation::UniqueError { .. })));
        } else {
            assert!(found.contains(&2));
        }
    }

    #[test]
    fn crash_aborts_the_search() {
        let items: Vec<u32> = (0..32).collect();
        let crashy = |items: &[u32]| -> Result<f64, TestError> {
            if items.len() == 8 {
                Err(TestError::Crash("segv in mixed binary".into()))
            } else {
                Ok(if items.contains(&7) { 1.0 } else { 0.0 })
            }
        };
        let err = bisect_all(crashy, &items).unwrap_err();
        assert!(matches!(err, TestError::Crash(_)));
    }

    #[test]
    fn trace_records_every_invocation() {
        let items: Vec<u32> = (1..=10).collect();
        let out = bisect_all(
            magnitude_test(vec![(2, 0.25), (8, 1.5), (9, 0.125)]),
            &items,
        )
        .unwrap();
        assert!(!out.trace.is_empty());
        // The first row tests the full set.
        assert_eq!(out.trace[0].tested, items);
        assert!(out.trace[0].value > 0.0);
        // Every traced subset is within the space recorded for it.
        for row in &out.trace {
            for t in &row.tested {
                assert!(row.space.contains(t));
            }
        }
    }

    #[test]
    fn pruning_reduces_executions() {
        // §2.2's ablation: with several variable elements clustered at
        // the tail, the pruned search discards zero-testing halves and
        // beats the unpruned variant; both find the same set.
        let weights: Vec<(u32, f64)> = (0..12).map(|j| (900 + j * 8, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..1024).collect();
        let pruned = bisect_all(magnitude_test(weights.clone()), &items).unwrap();
        let unpruned = bisect_all_unpruned(magnitude_test(weights), &items).unwrap();
        let norm = |o: &BisectOutcome<u32>| {
            let mut v: Vec<u32> = o.found.iter().map(|(i, _)| *i).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&pruned), norm(&unpruned));
        assert!(
            pruned.executions < unpruned.executions,
            "pruned {} vs unpruned {}",
            pruned.executions,
            unpruned.executions
        );
        assert!(pruned.verified() && unpruned.verified());
    }

    #[test]
    fn infinite_metric_values_work() {
        // NaN-poisoned outputs compare as infinity; bisect must still
        // locate the element (the Laghos xsw case).
        let items: Vec<u32> = (0..64).collect();
        let out = bisect_all(
            |items: &[u32]| {
                Ok(if items.contains(&21) {
                    f64::INFINITY
                } else {
                    0.0
                })
            },
            &items,
        )
        .unwrap();
        assert_eq!(out.found.len(), 1);
        assert_eq!(out.found[0].0, 21);
        assert!(out.verified());
    }
}
