//! The workflow-wide query ledger: one sharded single-flight memo
//! table shared by every search a workflow spawns, optionally backed by
//! the on-disk checkpoint [`journal`](crate::journal).
//!
//! Keys are canonical digests of the *mixed link recipe* (which program
//! pair, which driver and input, which per-file compilation labels), so
//! identical file-level queries issued by different searches — e.g. the
//! reference run shared by every variable compilation of one test, or
//! the all-baseline `Test(∅)` link of every link-step-only pair —
//! execute once and are served to everyone else as shared hits.
//!
//! Accounting is split in two layers and that split is load-bearing:
//! *logical* observables (per-search execution counts, `bisect.*`
//! counters, level seconds, spans) are incremented by the searches on
//! first touch exactly as before, whether the answer came from a live
//! run, a shared hit, or a journal replay — so every existing result is
//! byte-identical with the ledger attached. Only the *physical*
//! `exec.queries.*` counters move: `executed` counts true evaluations,
//! `shared_hits` counts answers served across searches, and the
//! `journal.*` counters count replayed/appended records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use flit_exec::SingleFlight;
use flit_persist::Fnv128;
use flit_trace::names::counter as counter_names;
use flit_trace::registry::Counter;
use flit_trace::sink::TraceSink;

use crate::journal::{JournalAnswer, JournalRecord, JournalWriter};
use crate::test_fn::TestError;

/// The origin tag of answers preloaded from a checkpoint journal.
const REPLAY_ORIGIN: u64 = 0;

/// A completed, cacheable Test answer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredAnswer {
    /// A scored query: `(metric value, simulated seconds)`.
    Score {
        /// The Test metric value.
        value: f64,
        /// The run's simulated seconds.
        seconds: f64,
    },
    /// A reference run: `(full output vector, simulated seconds)`.
    Output {
        /// The run's output vector.
        output: Vec<f64>,
        /// The run's simulated seconds.
        seconds: f64,
    },
    /// The mixed executable crashed.
    Crash(String),
    /// The mixed link failed.
    Link(String),
}

impl StoredAnswer {
    fn to_journal(&self) -> JournalAnswer {
        match self {
            StoredAnswer::Score { value, seconds } => JournalAnswer::Score {
                score_bits: value.to_bits(),
                seconds_bits: seconds.to_bits(),
            },
            StoredAnswer::Output { output, seconds } => JournalAnswer::Output {
                output_bits: output.iter().map(|x| x.to_bits()).collect(),
                seconds_bits: seconds.to_bits(),
            },
            StoredAnswer::Crash(message) => JournalAnswer::Crash {
                message: message.clone(),
            },
            StoredAnswer::Link(message) => JournalAnswer::Link {
                message: message.clone(),
            },
        }
    }

    fn from_journal(answer: &JournalAnswer) -> Self {
        match answer {
            JournalAnswer::Score {
                score_bits,
                seconds_bits,
            } => StoredAnswer::Score {
                value: f64::from_bits(*score_bits),
                seconds: f64::from_bits(*seconds_bits),
            },
            JournalAnswer::Output {
                output_bits,
                seconds_bits,
            } => StoredAnswer::Output {
                output: output_bits.iter().map(|b| f64::from_bits(*b)).collect(),
                seconds: f64::from_bits(*seconds_bits),
            },
            JournalAnswer::Crash { message } => StoredAnswer::Crash(message.clone()),
            JournalAnswer::Link { message } => StoredAnswer::Link(message.clone()),
        }
    }
}

/// A point-in-time snapshot of a ledger's physical counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerStats {
    /// Queries actually evaluated (single-flight compute).
    pub executed: u64,
    /// Hits served back to the search that first executed the query.
    pub memoized: u64,
    /// Hits served across searches (a *different* search executed it).
    pub shared_hits: u64,
    /// Journal records preloaded on resume.
    pub replayed: u64,
    /// Hits served from preloaded journal answers.
    pub replay_served: u64,
    /// Records appended to the journal during this run.
    pub appended: u64,
}

/// The workflow-wide sharded single-flight answer table.
///
/// Create one per workflow ([`QueryLedger::new`]), hand each search a
/// [`LedgerHandle`] with a distinct nonzero origin, and optionally
/// attach a [`JournalWriter`] / preload journal records for durability.
pub struct QueryLedger {
    fingerprint: u64,
    memo: SingleFlight<String, (StoredAnswer, u64)>,
    stats_executed: AtomicU64,
    stats_memoized: AtomicU64,
    stats_shared: AtomicU64,
    stats_replayed: AtomicU64,
    stats_replay_served: AtomicU64,
    stats_appended: AtomicU64,
    executed: Counter,
    memoized: Counter,
    shared: Counter,
    replayed: Counter,
    appended: Counter,
    journal: Mutex<Option<JournalWriter>>,
    journal_error: Mutex<Option<String>>,
    backend_label: Mutex<String>,
    upstream: Mutex<Option<(Arc<QueryLedger>, u64)>>,
}

impl std::fmt::Debug for QueryLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryLedger")
            .field("fingerprint", &self.fingerprint)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryLedger {
    /// A fresh ledger for a program with the given structural
    /// fingerprint. Physical hit/miss counters land on `trace`.
    pub fn new(fingerprint: u64, trace: &TraceSink) -> Arc<Self> {
        Arc::new(QueryLedger {
            fingerprint,
            memo: SingleFlight::new(),
            stats_executed: AtomicU64::new(0),
            stats_memoized: AtomicU64::new(0),
            stats_shared: AtomicU64::new(0),
            stats_replayed: AtomicU64::new(0),
            stats_replay_served: AtomicU64::new(0),
            stats_appended: AtomicU64::new(0),
            executed: trace.counter(counter_names::EXEC_QUERIES_EXECUTED),
            memoized: trace.counter(counter_names::EXEC_QUERIES_MEMOIZED),
            shared: trace.counter(counter_names::EXEC_QUERIES_SHARED_HITS),
            replayed: trace.counter(counter_names::JOURNAL_REPLAYED),
            appended: trace.counter(counter_names::JOURNAL_APPENDED),
            journal: Mutex::new(None),
            journal_error: Mutex::new(None),
            backend_label: Mutex::new(crate::journal::BACKEND_LOCAL.to_string()),
            upstream: Mutex::new(None),
        })
    }

    /// Chain this ledger to a fleet-wide `parent`: on a local memo
    /// miss, the answer is computed *through* `parent.eval` (tagged
    /// with this ledger's `origin` in the parent) instead of directly.
    ///
    /// This is the `flit-serve` tenant-scoping layer. Each tenant's
    /// workflow gets its own child ledger — so its journal still
    /// records every answer the tenant needed and its resume state
    /// stays self-contained — while actual query evaluation
    /// single-flights in the shared parent. Give every tenant a
    /// distinct nonzero parent origin and the parent's `shared_hits`
    /// counts *exactly* the cross-tenant deduplication (intra-tenant
    /// repeats are absorbed by the child memo or counted as parent
    /// memo hits). `parent` must not itself chain back to this ledger.
    pub fn set_upstream(&self, parent: Arc<QueryLedger>, origin: u64) {
        assert_ne!(origin, REPLAY_ORIGIN, "origin 0 is reserved for replay");
        *self.upstream.lock() = Some((parent, origin));
    }

    /// Record which execution plane computes this ledger's answers
    /// (journal provenance; defaults to
    /// [`crate::journal::BACKEND_LOCAL`]). Replay matches on key and
    /// never reads this.
    pub fn set_backend_label(&self, label: &str) {
        *self.backend_label.lock() = label.to_string();
    }

    /// The program fingerprint this ledger (and its journal) is keyed
    /// to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Attach a checkpoint journal: every freshly computed answer is
    /// appended (atomically) from now on.
    pub fn attach_journal(&self, writer: JournalWriter) {
        *self.journal.lock() = Some(writer);
    }

    /// Preload journal records as already-answered queries. Records are
    /// installed in journal order before any live query consults the
    /// table; a key that is somehow already resolved keeps its first
    /// answer.
    pub fn preload(&self, records: &[JournalRecord]) {
        for rec in records {
            if self.memo.insert(
                rec.key.clone(),
                (StoredAnswer::from_journal(&rec.answer), REPLAY_ORIGIN),
            ) {
                self.stats_replayed.fetch_add(1, Ordering::Relaxed);
                self.replayed.incr(1);
            }
        }
    }

    /// Snapshot the physical counters.
    pub fn stats(&self) -> LedgerStats {
        LedgerStats {
            executed: self.stats_executed.load(Ordering::Relaxed),
            memoized: self.stats_memoized.load(Ordering::Relaxed),
            shared_hits: self.stats_shared.load(Ordering::Relaxed),
            replayed: self.stats_replayed.load(Ordering::Relaxed),
            replay_served: self.stats_replay_served.load(Ordering::Relaxed),
            appended: self.stats_appended.load(Ordering::Relaxed),
        }
    }

    /// The first journal-append failure, if any (a failing journal
    /// never aborts a search; the caller surfaces this at the end).
    pub fn journal_error(&self) -> Option<String> {
        self.journal_error.lock().clone()
    }

    fn append_to_journal(&self, pair: &str, key: &str, answer: &StoredAnswer) {
        let mut journal = self.journal.lock();
        if let Some(writer) = journal.as_mut() {
            let backend = self.backend_label.lock().clone();
            match writer.append(pair, key, &backend, answer.to_journal()) {
                Ok(()) => {
                    self.stats_appended.fetch_add(1, Ordering::Relaxed);
                    self.appended.incr(1);
                }
                Err(e) => {
                    let mut slot = self.journal_error.lock();
                    if slot.is_none() {
                        *slot = Some(format!(
                            "journal append failed at {}: {e}",
                            writer.path().display()
                        ));
                    }
                }
            }
        }
    }

    fn eval(
        &self,
        origin: u64,
        pair: &str,
        key: &str,
        compute: impl FnOnce() -> StoredAnswer,
    ) -> StoredAnswer {
        let (entry, computed) = self.memo.get_or_compute(key.to_string(), || {
            // With an upstream parent attached (tenant scoping), the
            // computation single-flights fleet-wide in the parent; this
            // ledger still journals the answer below, so the tenant's
            // resume state is complete even for answers another tenant
            // computed.
            let upstream = self.upstream.lock().clone();
            let answer = match upstream {
                Some((parent, parent_origin)) => parent.eval(parent_origin, pair, key, compute),
                None => compute(),
            };
            // Journal before the answer is released to any waiter: a
            // crash after this point leaves the answer on disk.
            self.append_to_journal(pair, key, &answer);
            (answer, origin)
        });
        let (answer, answered_by) = entry;
        if computed {
            self.stats_executed.fetch_add(1, Ordering::Relaxed);
            self.executed.incr(1);
        } else if answered_by == origin {
            self.stats_memoized.fetch_add(1, Ordering::Relaxed);
            self.memoized.incr(1);
        } else if answered_by == REPLAY_ORIGIN {
            self.stats_replay_served.fetch_add(1, Ordering::Relaxed);
            self.memoized.incr(1);
        } else {
            self.stats_shared.fetch_add(1, Ordering::Relaxed);
            self.shared.incr(1);
        }
        answer
    }
}

/// One search's view of a shared [`QueryLedger`]: carries the search's
/// origin tag (to tell memo hits from cross-search shared hits) and its
/// human-readable compilation-pair label (journal self-description).
#[derive(Debug, Clone)]
pub struct LedgerHandle {
    ledger: Arc<QueryLedger>,
    origin: u64,
    pair: String,
}

impl LedgerHandle {
    /// A handle for the search tagged `origin` (must be nonzero — zero
    /// is reserved for journal-replayed answers).
    pub fn new(ledger: Arc<QueryLedger>, origin: u64, pair: impl Into<String>) -> Self {
        assert_ne!(origin, REPLAY_ORIGIN, "origin 0 is reserved for replay");
        LedgerHandle {
            ledger,
            origin,
            pair: pair.into(),
        }
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &Arc<QueryLedger> {
        &self.ledger
    }

    /// Evaluate a scored query through the ledger.
    pub fn eval_score(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<(f64, f64), TestError>,
    ) -> Result<(f64, f64), TestError> {
        let answer = self
            .ledger
            .eval(self.origin, &self.pair, key, || match compute() {
                Ok((value, seconds)) => StoredAnswer::Score { value, seconds },
                Err(TestError::Crash(m)) => StoredAnswer::Crash(m),
                Err(TestError::Link(m)) => StoredAnswer::Link(m),
            });
        match answer {
            StoredAnswer::Score { value, seconds } => Ok((value, seconds)),
            StoredAnswer::Crash(m) => Err(TestError::Crash(m)),
            StoredAnswer::Link(m) => Err(TestError::Link(m)),
            StoredAnswer::Output { .. } => Err(TestError::Crash(format!(
                "ledger answer type mismatch for key `{key}`"
            ))),
        }
    }

    /// Evaluate a reference (full-output) query through the ledger.
    pub fn eval_output(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<(Vec<f64>, f64), TestError>,
    ) -> Result<(Vec<f64>, f64), TestError> {
        let answer = self
            .ledger
            .eval(self.origin, &self.pair, key, || match compute() {
                Ok((output, seconds)) => StoredAnswer::Output { output, seconds },
                Err(TestError::Crash(m)) => StoredAnswer::Crash(m),
                Err(TestError::Link(m)) => StoredAnswer::Link(m),
            });
        match answer {
            StoredAnswer::Output { output, seconds } => Ok((output, seconds)),
            StoredAnswer::Crash(m) => Err(TestError::Crash(m)),
            StoredAnswer::Link(m) => Err(TestError::Link(m)),
            StoredAnswer::Score { .. } => Err(TestError::Crash(format!(
                "ledger answer type mismatch for key `{key}`"
            ))),
        }
    }
}

/// Canonical ledger keys for one hierarchical search task.
///
/// The task digest covers everything a query's answer depends on
/// *except* the per-query link recipe: both program fingerprints, the
/// driver and input vector, the baseline compilation, and the link
/// driver. The variable compilation's label enters only through the
/// per-query recipe digests — which is exactly what lets the reference
/// run (an all-baseline link) and the `Test(∅)` query (ditto) be shared
/// across every variable compilation of the same test.
#[derive(Debug, Clone)]
pub struct SearchKeys {
    task: String,
}

impl SearchKeys {
    /// Digest the task-level identity of a hierarchical search.
    pub fn new(
        baseline_fingerprint: u64,
        variable_fingerprint: u64,
        driver_name: &str,
        input: &[f64],
        baseline_label: &str,
        link_driver: &str,
    ) -> Self {
        let mut h = Fnv128::new();
        h.update_u64(baseline_fingerprint);
        h.update_u64(variable_fingerprint);
        h.update_str(driver_name);
        h.update_u64(input.len() as u64);
        for x in input {
            h.update_u64(x.to_bits());
        }
        h.update_str(baseline_label);
        h.update_str(link_driver);
        SearchKeys { task: h.hex() }
    }

    /// Key of the trusted reference run (variable-independent).
    pub fn reference(&self) -> String {
        format!("ref/{}", self.task)
    }

    /// Key of a file-level Test query. The recipe digest covers the
    /// canonical item set plus — only when the set is nonempty — the
    /// variable compilation's label: an empty set links pure baseline
    /// objects, so its answer is shared across variable compilations.
    pub fn file_query(&self, variable_label: &str, items: &[usize]) -> String {
        let mut sorted: Vec<usize> = items.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut h = Fnv128::new();
        h.update_u64(sorted.len() as u64);
        for i in &sorted {
            h.update_u64(*i as u64);
        }
        if !sorted.is_empty() {
            h.update_str(variable_label);
        }
        format!("file/{}/{}", self.task, h.hex())
    }

    /// Key of a `-fPIC` probe of one found file.
    pub fn probe(&self, variable_label: &str, file_id: usize) -> String {
        let mut h = Fnv128::new();
        h.update_str(variable_label);
        h.update_u64(file_id as u64);
        format!("probe/{}/{}", self.task, h.hex())
    }

    /// Key of a symbol-level Test query within one found file.
    pub fn symbol_query(&self, variable_label: &str, file_id: usize, items: &[String]) -> String {
        let mut sorted: Vec<&String> = items.iter().collect();
        sorted.sort();
        sorted.dedup();
        let mut h = Fnv128::new();
        h.update_str(variable_label);
        h.update_u64(file_id as u64);
        h.update_u64(sorted.len() as u64);
        for s in &sorted {
            h.update_str(s);
        }
        format!("sym/{}/{}", self.task, h.hex())
    }

    /// Key of the performance baseline timing run. Perf keys live under
    /// distinct `perf*/` prefixes (a perf answer is a Welch effect, not
    /// a variability metric, so it must never alias a `ref/`, `file/`,
    /// or `sym/` answer for the same task) and digest the full noise
    /// protocol — sample count, significance level, and noise seed —
    /// because changing any of them changes the answer.
    pub fn perf_reference(&self, samples: u32, alpha: f64, seed: u64) -> String {
        let h = Self::perf_params(samples, alpha, seed);
        format!("perfref/{}/{}", self.task, h.hex())
    }

    /// Key of a file-level perf Test query (timing of the file-mixed
    /// binary vs the baseline samples). The empty set links pure
    /// baseline objects, so — like [`SearchKeys::file_query`] — it is
    /// shared across variable compilations.
    pub fn perf_file_query(
        &self,
        variable_label: &str,
        items: &[usize],
        samples: u32,
        alpha: f64,
        seed: u64,
    ) -> String {
        let mut sorted: Vec<usize> = items.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut h = Self::perf_params(samples, alpha, seed);
        h.update_u64(sorted.len() as u64);
        for i in &sorted {
            h.update_u64(*i as u64);
        }
        if !sorted.is_empty() {
            h.update_str(variable_label);
        }
        format!("perffile/{}/{}", self.task, h.hex())
    }

    /// Key of a symbol-level perf Test query within one found file. The
    /// empty set is the `-fPIC`-overhead reference (target file pic'd
    /// under the baseline build), so symbol-level comparisons cancel
    /// the pic speed factor instead of misattributing it.
    pub fn perf_symbol_query(
        &self,
        variable_label: &str,
        file_id: usize,
        items: &[String],
        samples: u32,
        alpha: f64,
        seed: u64,
    ) -> String {
        let mut sorted: Vec<&String> = items.iter().collect();
        sorted.sort();
        sorted.dedup();
        let mut h = Self::perf_params(samples, alpha, seed);
        h.update_str(variable_label);
        h.update_u64(file_id as u64);
        h.update_u64(sorted.len() as u64);
        for s in &sorted {
            h.update_str(s);
        }
        format!("perfsym/{}/{}", self.task, h.hex())
    }

    fn perf_params(samples: u32, alpha: f64, seed: u64) -> Fnv128 {
        let mut h = Fnv128::new();
        h.update_u64(samples as u64);
        h.update_u64(alpha.to_bits());
        h.update_u64(seed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SearchKeys {
        SearchKeys::new(1, 2, "ex1", &[0.5, 1.5], "g++ -O0", "Gcc")
    }

    #[test]
    fn keys_are_canonical_over_item_order() {
        let k = keys();
        assert_eq!(
            k.file_query("icpc -O3", &[3, 1, 2]),
            k.file_query("icpc -O3", &[1, 2, 3, 2])
        );
        assert_ne!(
            k.file_query("icpc -O3", &[1]),
            k.file_query("icpc -O3", &[2])
        );
        // The empty set is variable-independent; nonempty sets are not.
        assert_eq!(k.file_query("icpc -O3", &[]), k.file_query("g++ -O3", &[]));
        assert_ne!(
            k.file_query("icpc -O3", &[1]),
            k.file_query("g++ -O3", &[1])
        );
        let a = vec!["b".to_string(), "a".to_string()];
        let b = vec!["a".to_string(), "b".to_string()];
        assert_eq!(
            k.symbol_query("icpc -O3", 1, &a),
            k.symbol_query("icpc -O3", 1, &b)
        );
        assert_ne!(
            k.symbol_query("icpc -O3", 1, &a),
            k.symbol_query("icpc -O3", 2, &a)
        );
    }

    #[test]
    fn perf_keys_never_alias_variability_keys_and_bind_noise_params() {
        let k = keys();
        // Distinct namespaces for the same logical query.
        assert_ne!(k.perf_reference(8, 0.05, 42), k.reference());
        assert_ne!(
            k.perf_file_query("icpc -O3", &[1, 2], 8, 0.05, 42),
            k.file_query("icpc -O3", &[1, 2])
        );
        assert!(k.perf_reference(8, 0.05, 42).starts_with("perfref/"));
        assert!(k
            .perf_file_query("icpc -O3", &[1], 8, 0.05, 42)
            .starts_with("perffile/"));
        assert!(k
            .perf_symbol_query("icpc -O3", 1, &[], 8, 0.05, 42)
            .starts_with("perfsym/"));
        // Canonical over item order, like the variability keys.
        assert_eq!(
            k.perf_file_query("icpc -O3", &[3, 1, 2], 8, 0.05, 42),
            k.perf_file_query("icpc -O3", &[1, 2, 3, 2], 8, 0.05, 42)
        );
        // Empty file set is variable-independent.
        assert_eq!(
            k.perf_file_query("icpc -O3", &[], 8, 0.05, 42),
            k.perf_file_query("g++ -O3", &[], 8, 0.05, 42)
        );
        // Every noise-protocol parameter changes the key.
        let base = k.perf_file_query("icpc -O3", &[1], 8, 0.05, 42);
        assert_ne!(base, k.perf_file_query("icpc -O3", &[1], 16, 0.05, 42));
        assert_ne!(base, k.perf_file_query("icpc -O3", &[1], 8, 0.01, 42));
        assert_ne!(base, k.perf_file_query("icpc -O3", &[1], 8, 0.05, 43));
    }

    #[test]
    fn shared_hits_are_distinguished_from_memo_hits() {
        let trace = TraceSink::enabled();
        let ledger = QueryLedger::new(11, &trace);
        let one = LedgerHandle::new(ledger.clone(), 1, "t/one");
        let two = LedgerHandle::new(ledger.clone(), 2, "t/two");
        let k = keys().file_query("icpc -O3", &[1, 2]);
        assert_eq!(one.eval_score(&k, || Ok((2.5, 0.5))).unwrap(), (2.5, 0.5));
        // Same origin again: a memo hit.
        assert_eq!(
            one.eval_score(&k, || panic!("must not recompute")).unwrap(),
            (2.5, 0.5)
        );
        // Different origin: a shared hit.
        assert_eq!(
            two.eval_score(&k, || panic!("must not recompute")).unwrap(),
            (2.5, 0.5)
        );
        let stats = ledger.stats();
        assert_eq!(
            (stats.executed, stats.memoized, stats.shared_hits),
            (1, 1, 1)
        );
        let snap = trace.snapshot();
        assert_eq!(snap.counter(counter_names::EXEC_QUERIES_EXECUTED), 1);
        assert_eq!(snap.counter(counter_names::EXEC_QUERIES_SHARED_HITS), 1);
    }

    #[test]
    fn upstream_chaining_counts_cross_tenant_dedup_at_the_fleet_ledger() {
        let fleet_trace = TraceSink::enabled();
        let fleet = QueryLedger::new(11, &fleet_trace);
        let tenant = |origin: u64| {
            let child = QueryLedger::new(11, &TraceSink::disabled());
            child.set_upstream(fleet.clone(), origin);
            LedgerHandle::new(child, 1, "t/pair")
        };
        let (alpha, beta) = (tenant(1), tenant(2));
        let k = keys().file_query("icpc -O3", &[1, 2]);

        // Tenant alpha computes; tenant beta's identical query is a
        // fleet shared hit and never recomputes.
        assert_eq!(alpha.eval_score(&k, || Ok((2.5, 0.5))).unwrap(), (2.5, 0.5));
        assert_eq!(
            beta.eval_score(&k, || panic!("deduped fleet-wide"))
                .unwrap(),
            (2.5, 0.5)
        );
        // Intra-tenant repeat: absorbed by the child memo, invisible to
        // the fleet.
        assert_eq!(
            alpha.eval_score(&k, || panic!("child memo hit")).unwrap(),
            (2.5, 0.5)
        );
        let stats = fleet.stats();
        assert_eq!(
            (stats.executed, stats.memoized, stats.shared_hits),
            (1, 0, 1),
            "fleet shared_hits must count exactly the cross-tenant dedup"
        );
        assert_eq!(
            fleet_trace
                .snapshot()
                .counter(counter_names::EXEC_QUERIES_SHARED_HITS),
            1
        );
    }

    #[test]
    fn tenant_journal_is_complete_even_for_fleet_served_answers() {
        let dir = std::env::temp_dir().join(format!(
            "flit-ledger-upstream-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = TraceSink::disabled();
        let fleet = QueryLedger::new(11, &trace);
        let k = keys().file_query("icpc -O3", &[1]);

        // Another tenant computed the answer first.
        LedgerHandle::new(
            {
                let first = QueryLedger::new(11, &trace);
                first.set_upstream(fleet.clone(), 1);
                first
            },
            1,
            "t/first",
        )
        .eval_score(&k, || Ok((4.0, 0.25)))
        .unwrap();

        // This tenant journals the answer it was *served*, so a
        // restart replays it without touching the fleet.
        let path = dir.join("tenant.jsonl");
        let child = QueryLedger::new(11, &trace);
        child.set_upstream(fleet.clone(), 2);
        child.attach_journal(JournalWriter::create(&path, 11).unwrap());
        LedgerHandle::new(child.clone(), 1, "t/second")
            .eval_score(&k, || panic!("fleet-served"))
            .unwrap();
        assert_eq!(child.stats().appended, 1);

        let fleet_before = fleet.stats();
        let resumed = QueryLedger::new(11, &trace);
        resumed.set_upstream(fleet.clone(), 2);
        let (_, records) = JournalWriter::resume(&path, 11).unwrap();
        resumed.preload(&records);
        assert_eq!(
            LedgerHandle::new(resumed, 1, "t/second")
                .eval_score(&k, || panic!("must replay"))
                .unwrap(),
            (4.0, 0.25)
        );
        assert_eq!(
            fleet.stats(),
            fleet_before,
            "journal replay must not re-query the fleet"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let trace = TraceSink::disabled();
        let ledger = QueryLedger::new(11, &trace);
        let h = LedgerHandle::new(ledger, 1, "t");
        let k = "file/x/err".to_string();
        let err = h
            .eval_score(&k, || Err(TestError::Link("no such symbol".into())))
            .unwrap_err();
        assert_eq!(err, TestError::Link("no such symbol".into()));
        let again = h.eval_score(&k, || panic!("cached")).unwrap_err();
        assert_eq!(again, err);
    }

    #[test]
    fn preloaded_answers_serve_without_computing() {
        let trace = TraceSink::enabled();
        let ledger = QueryLedger::new(11, &trace);
        let rec = JournalRecord {
            seq: 0,
            version: crate::journal::JOURNAL_VERSION,
            fingerprint: 11,
            pair: "t/one".into(),
            key: "ref/task0".into(),
            backend: crate::journal::BACKEND_LOCAL.into(),
            answer: JournalAnswer::Output {
                output_bits: vec![1.5f64.to_bits()],
                seconds_bits: 0.25f64.to_bits(),
            },
        };
        ledger.preload(&[rec]);
        let h = LedgerHandle::new(ledger.clone(), 1, "t/one");
        let (out, secs) = h
            .eval_output("ref/task0", || panic!("must replay, not run"))
            .unwrap();
        assert_eq!(out, vec![1.5]);
        assert_eq!(secs, 0.25);
        let stats = ledger.stats();
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.replayed, 1);
        assert_eq!(stats.replay_served, 1);
        assert_eq!(trace.snapshot().counter(counter_names::JOURNAL_REPLAYED), 1);
    }

    #[test]
    fn computed_answers_are_journaled() {
        let dir = std::env::temp_dir().join(format!(
            "flit-ledger-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let trace = TraceSink::disabled();
        let ledger = QueryLedger::new(11, &trace);
        ledger.attach_journal(JournalWriter::create(&path, 11).unwrap());
        let h = LedgerHandle::new(ledger.clone(), 1, "t/one");
        h.eval_score("file/x/a", || Ok((1.0, 2.0))).unwrap();
        h.eval_score("file/x/a", || panic!("cached")).unwrap(); // hit: not re-journaled
        h.eval_score("file/x/b", || Err(TestError::Crash("segv".into())))
            .unwrap_err();
        assert_eq!(ledger.stats().appended, 2);
        assert!(ledger.journal_error().is_none());

        // A fresh ledger resumed from that journal replays both answers
        // and computes nothing.
        let resumed = QueryLedger::new(11, &trace);
        let (writer, records) = JournalWriter::resume(&path, 11).unwrap();
        resumed.preload(&records);
        resumed.attach_journal(writer);
        let h2 = LedgerHandle::new(resumed.clone(), 1, "t/one");
        assert_eq!(h2.eval_score("file/x/a", || panic!()).unwrap(), (1.0, 2.0));
        assert_eq!(
            h2.eval_score("file/x/b", || panic!()).unwrap_err(),
            TestError::Crash("segv".into())
        );
        assert_eq!(resumed.stats().executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
