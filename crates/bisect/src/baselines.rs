//! Baseline search algorithms for the complexity comparisons of §2.2
//! and §2.4: Zeller–Hildebrandt delta debugging (`ddmin`) and a plain
//! linear scan.
//!
//! Bisect is O(k·log N); delta debugging is O(k²·log N); linear search
//! is always O(N). "If k is proportional to N (which for this problem we
//! have not seen to be the case), then a linear search may outperform
//! both" — the Criterion benches reproduce exactly this crossover.

use crate::algo::BisectOutcome;
use crate::test_fn::{MemoTest, TestError, TestFn};

/// `ddmin` (Zeller & Hildebrandt 2002), adapted to the paper's setting
/// via `Test′(Y) ≜ [Test(Y) = Test(U)]` (§2.4, Theorem 1): finds the
/// unique minimal subset reproducing the full-set metric.
pub fn ddmin<I, F>(test_fn: F, items: &[I]) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    let mut test = MemoTest::new(test_fn);
    let target = test.test(items)?;
    if target.is_nan() || target <= 0.0 {
        return Ok(BisectOutcome {
            found: vec![],
            executions: test.executions(),
            violations: vec![],
            trace: vec![],
        });
    }

    let mut current: Vec<I> = items.to_vec();
    let mut n = 2usize;

    'outer: while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let subsets: Vec<Vec<I>> = current.chunks(chunk).map(<[I]>::to_vec).collect();

        // Reduce to subset.
        for s in &subsets {
            if test.test(s)? == target {
                current = s.clone();
                n = 2;
                continue 'outer;
            }
        }
        // Reduce to complement.
        if subsets.len() > 2 {
            for (i, _) in subsets.iter().enumerate() {
                let complement: Vec<I> = subsets
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, s)| s.clone())
                    .collect();
                if test.test(&complement)? == target {
                    current = complement;
                    n = (n - 1).max(2);
                    continue 'outer;
                }
            }
        }
        // Increase granularity.
        if n >= current.len() {
            break;
        }
        n = (2 * n).min(current.len());
    }

    let found = current
        .iter()
        .map(|i| {
            let v = test.test(std::slice::from_ref(i))?;
            Ok((i.clone(), v))
        })
        .collect::<Result<Vec<_>, TestError>>()?;

    Ok(BisectOutcome {
        found,
        executions: test.executions(),
        violations: vec![],
        trace: vec![],
    })
}

/// Linear scan: test every singleton. O(N) executions, trivially finds
/// all individually variable elements (under Assumption 2).
pub fn linear_search<I, F>(test_fn: F, items: &[I]) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    let mut test = MemoTest::new(test_fn);
    let mut found = Vec::new();
    for i in items {
        let v = test.test(std::slice::from_ref(i))?;
        if v > 0.0 {
            found.push((i.clone(), v));
        }
    }
    Ok(BisectOutcome {
        found,
        executions: test.executions(),
        violations: vec![],
        trace: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bisect_all;

    fn weighted(weights: Vec<(u32, f64)>) -> impl FnMut(&[u32]) -> Result<f64, TestError> {
        move |items: &[u32]| {
            Ok(items
                .iter()
                .map(|i| {
                    weights
                        .iter()
                        .find(|(w, _)| w == i)
                        .map_or(0.0, |(_, v)| *v)
                })
                .sum())
        }
    }

    #[test]
    fn ddmin_finds_the_minimal_set() {
        let items: Vec<u32> = (0..64).collect();
        let out = ddmin(weighted(vec![(7, 1.0), (42, 2.5)]), &items).unwrap();
        let mut found: Vec<u32> = out.found.iter().map(|(i, _)| *i).collect();
        found.sort();
        assert_eq!(found, vec![7, 42]);
    }

    #[test]
    fn ddmin_on_clean_input_finds_nothing() {
        let items: Vec<u32> = (0..32).collect();
        let out = ddmin(weighted(vec![]), &items).unwrap();
        assert!(out.found.is_empty());
        assert_eq!(out.executions, 1);
    }

    #[test]
    fn linear_finds_everything_in_exactly_n() {
        let items: Vec<u32> = (0..100).collect();
        let out = linear_search(weighted(vec![(3, 1.0), (77, 0.5)]), &items).unwrap();
        assert_eq!(out.found.len(), 2);
        assert_eq!(out.executions, 100);
    }

    #[test]
    fn bisect_beats_ddmin_beats_linear_for_small_k() {
        let weights: Vec<(u32, f64)> = vec![(100, 1.0), (900, 2.0)];
        let items: Vec<u32> = (0..1024).collect();
        let b = bisect_all(weighted(weights.clone()), &items).unwrap();
        let d = ddmin(weighted(weights.clone()), &items).unwrap();
        let l = linear_search(weighted(weights), &items).unwrap();
        // All three agree on the answer…
        let norm = |o: &BisectOutcome<u32>| {
            let mut v: Vec<u32> = o.found.iter().map(|(i, _)| *i).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&b), vec![100, 900]);
        assert_eq!(norm(&d), vec![100, 900]);
        assert_eq!(norm(&l), vec![100, 900]);
        // …and the cost ordering matches the complexity analysis.
        assert!(
            b.executions < d.executions,
            "{} vs {}",
            b.executions,
            d.executions
        );
        assert!(
            d.executions < l.executions,
            "{} vs {}",
            d.executions,
            l.executions
        );
    }

    #[test]
    fn linear_wins_when_k_is_proportional_to_n() {
        // §2.4's caveat: with half the elements variable, O(N) linear
        // search beats O(k log N) = O(N log N) bisect.
        let weights: Vec<(u32, f64)> = (0..64).map(|j| (j * 2, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..128).collect();
        let b = bisect_all(weighted(weights.clone()), &items).unwrap();
        let l = linear_search(weighted(weights), &items).unwrap();
        assert_eq!(b.found.len(), 64);
        assert_eq!(l.found.len(), 64);
        assert!(
            l.executions < b.executions,
            "{} vs {}",
            l.executions,
            b.executions
        );
    }
}
