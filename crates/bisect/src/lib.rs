//! # flit-bisect
//!
//! The paper's central algorithmic contribution: a suite of bisection
//! algorithms that root-cause compiler-induced result variability down
//! to source files and functions.
//!
//! * [`algo`] — Algorithm 1 (`BisectOne` / `BisectAll`) exactly as
//!   printed, including the two dynamic-verification assertions that
//!   check the **Unique Error** and **Singleton Blame Site** assumptions
//!   at run time (§2.2, §2.4).
//! * [`biggest`] — `BisectBiggest` (§2.5): uniform-cost search for the
//!   `k` largest contributors with early exit.
//! * [`hierarchy`] — the dual-level File→Symbol search (§2.3), built on
//!   the linker/objcopy machinery: File Bisect mixes object files,
//!   Symbol Bisect re-compiles the found file with `-fPIC` and links two
//!   complementarily-weakened copies.
//! * [`baselines`] — Zeller–Hildebrandt `ddmin` (delta debugging) and a
//!   linear scan, implemented for the complexity comparisons
//!   (O(k·log N) vs O(k²·log N) vs O(N)).
//! * [`planner`] — the frontier-based search planner: the serial
//!   algorithms as a pure replayable state machine whose outcomes are
//!   byte-identical at any worker count.
//! * [`parallel`] — wave drivers on the `flit-exec` executor with a
//!   shared single-flight Test oracle.
//! * [`ledger`] — the workflow-wide query ledger: one sharded
//!   single-flight answer table shared by every search a workflow
//!   spawns, keyed on canonical link-recipe digests.
//! * [`journal`] — the on-disk checkpoint journal backing the ledger:
//!   CRC-checked JSONL records written atomically, replayed on
//!   `--resume` for byte-identical continuation of killed searches.
//! * [`test_fn`] — the memoizing `Test` wrapper with execution counting
//!   (the paper reports searches in *program executions*; memoization is
//!   why the verification assertions cost only `1 + k` extra runs).
//! * [`perf`] — the performance bisect: the same hierarchy driven by a
//!   statistical Test function (seeded timing samples + Welch's t-test)
//!   that root-causes which file/symbol makes a compilation *slower*,
//!   with a confidence interval and verdict on every speedup claim.

pub mod algo;
pub mod baselines;
pub mod biggest;
pub mod hierarchy;
pub mod journal;
pub mod ledger;
pub mod parallel;
pub mod perf;
pub mod planner;
pub mod test_fn;
pub mod wire;

pub use algo::{
    bisect_all, bisect_all_unpruned, bisect_one, AssumptionViolation, BisectOutcome, TraceRow,
};
pub use biggest::bisect_biggest;
pub use hierarchy::{
    bisect_hierarchical, bisect_hierarchical_parallel, HierarchicalConfig, HierarchicalResult,
    SearchOutcome,
};
pub use journal::{
    load_journal, JournalAnswer, JournalError, JournalRecord, JournalWriter, JOURNAL_VERSION,
};
pub use ledger::{LedgerHandle, LedgerStats, QueryLedger, SearchKeys, StoredAnswer};
pub use parallel::{
    bisect_all_parallel, bisect_biggest_parallel, drive_plans, ParallelTestFn, SharedOracle,
};
pub use perf::{
    perf_bisect, predicted_slow_files, predicted_slow_symbols, PerfBisectResult, PerfConfig,
    PerfFileFinding, PerfOutcome, PerfSymbolFinding,
};
pub use planner::{BisectPlan, PlanFailure, PlanOutcome, PlanStep, Query, SearchMode};
pub use test_fn::{MemoTest, TestError, TestFn};
pub use wire::{evaluate, ExeRecipe, LocalPlane, QueryPlane, RemotePlane, WireRequest, WireTask};
