//! The on-disk checkpoint journal: every completed Test answer of a
//! workflow, one self-describing JSONL record per line.
//!
//! Each line carries a CRC over its record payload, and every append
//! rewrites the whole file through an atomic tmp-file+rename (see
//! [`flit_persist::write_atomic`]), so the on-disk journal is *always* a
//! complete, valid prefix of the answer history. A mid-record EOF or a
//! CRC mismatch therefore unambiguously means corruption — never an
//! innocent crash artifact — and the loader reports it as a structured
//! [`JournalError`] naming the offending record.
//!
//! Schema compatibility rule: every record embeds `version`; a loader
//! only accepts records whose version it knows ([`JOURNAL_VERSION`]).
//! Readers must reject — not skip — unknown versions, so a journal
//! written by a newer tool can never be silently half-replayed.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use flit_persist::{frame_record, unframe_record, write_atomic, FrameError};

/// The journal schema version this crate reads and writes.
///
/// Version history:
/// - 1: seq/version/fingerprint/pair/key/answer.
/// - 2: adds `backend` — which execution plane produced the answer —
///   when the record schema became the coordinator/worker wire format.
pub const JOURNAL_VERSION: u32 = 2;

/// The `backend` value for answers computed in the coordinator
/// process (the serial and `threads` planes).
pub const BACKEND_LOCAL: &str = "local";

/// A completed Test answer, with every float stored as its IEEE-754 bit
/// pattern (`u64`) so the round trip is exact even for values the JSON
/// float syntax cannot represent (NaN, infinities).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalAnswer {
    /// A scored query: the Test metric value plus simulated seconds.
    Score {
        /// `f64::to_bits` of the metric value.
        score_bits: u64,
        /// `f64::to_bits` of the run's simulated seconds.
        seconds_bits: u64,
    },
    /// A reference run: the full output vector plus simulated seconds
    /// (journaled so resuming a completed search re-runs nothing).
    Output {
        /// `f64::to_bits` of each output element.
        output_bits: Vec<u64>,
        /// `f64::to_bits` of the run's simulated seconds.
        seconds_bits: u64,
    },
    /// The mixed executable crashed.
    Crash {
        /// The crash message, exactly as the live run rendered it.
        message: String,
    },
    /// The mixed link failed.
    Link {
        /// The link error message, exactly as the live run rendered it.
        message: String,
    },
}

/// One journal record: a self-describing, versioned Test answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Position in the journal (0-based); detects dropped lines.
    pub seq: u64,
    /// Schema version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Structural fingerprint of the program under search — a journal
    /// never replays into a search over a different program.
    pub fingerprint: u64,
    /// The compilation pair that first executed this query
    /// (self-description; replay matches on `key`, not `pair`).
    pub pair: String,
    /// The canonical ledger key: search-task digest plus the canonical
    /// item-set digest of the mixed link recipe.
    pub key: String,
    /// Which execution plane produced the answer: [`BACKEND_LOCAL`]
    /// for in-process evaluation, a backend label (e.g. `"process"`)
    /// for answers that crossed the wire. Provenance only — replay
    /// matches on `key` and ignores this field.
    pub backend: String,
    /// The answer.
    pub answer: JournalAnswer,
}

/// A structured journal failure, naming the offending record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The journal file could not be read or written.
    Io {
        /// Journal path.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// A line is not a well-formed journal record.
    Malformed {
        /// Journal path.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A record's CRC does not match its payload.
    Checksum {
        /// Journal path.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// CRC stored in the record.
        expected: String,
        /// CRC of the payload as found.
        actual: String,
    },
    /// A record was written by an unknown schema version.
    UnsupportedVersion {
        /// Journal path.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// The version found.
        version: u32,
    },
    /// The journal belongs to a different program.
    FingerprintMismatch {
        /// Journal path.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// Fingerprint found in the record.
        found: u64,
        /// Fingerprint of the program being searched.
        expected: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal {path}: {message}")
            }
            JournalError::Malformed {
                path,
                line,
                message,
            } => write!(f, "journal {path}, record at line {line}: {message}"),
            JournalError::Checksum {
                path,
                line,
                expected,
                actual,
            } => write!(
                f,
                "journal {path}, record at line {line}: CRC mismatch \
                 (stored {expected}, payload hashes to {actual})"
            ),
            JournalError::UnsupportedVersion {
                path,
                line,
                version,
            } => write!(
                f,
                "journal {path}, record at line {line}: unsupported schema \
                 version {version} (this tool reads version {JOURNAL_VERSION})"
            ),
            JournalError::FingerprintMismatch {
                path,
                line,
                found,
                expected,
            } => write!(
                f,
                "journal {path}, record at line {line}: program fingerprint \
                 {found:#018x} does not match the program under search \
                 ({expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

fn render_line(rec: &JournalRecord) -> String {
    let payload = serde_json::to_string(rec).expect("journal record serializes");
    frame_record(&payload)
}

/// Version probe: reads *only* the `version` field, so a record from
/// any schema generation — older or newer, with fields this build has
/// never heard of — still identifies itself before the full parse.
#[derive(Deserialize)]
struct VersionProbe {
    version: u32,
}

fn parse_line(path: &str, lineno: usize, line: &str) -> Result<JournalRecord, JournalError> {
    let malformed = |message: String| JournalError::Malformed {
        path: path.to_string(),
        line: lineno,
        message,
    };
    // Framing and CRC validation are shared with the wire protocol
    // (the journal record schema *is* the wire format).
    let payload = match unframe_record(line) {
        Ok(payload) => payload,
        Err(FrameError::Malformed(message)) => return Err(malformed(message)),
        Err(FrameError::Checksum { expected, actual }) => {
            return Err(JournalError::Checksum {
                path: path.to_string(),
                line: lineno,
                expected,
                actual,
            })
        }
    };
    // Check the schema version before demanding this version's fields,
    // so a valid record of another generation reports
    // UnsupportedVersion rather than a confusing parse failure.
    let probe = serde_json::from_str::<VersionProbe>(payload)
        .map_err(|e| malformed(format!("unparseable record payload: {e}")))?;
    if probe.version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion {
            path: path.to_string(),
            line: lineno,
            version: probe.version,
        });
    }
    serde_json::from_str::<JournalRecord>(payload)
        .map_err(|e| malformed(format!("unparseable record payload: {e}")))
}

/// Load and fully validate a journal: framing, CRC, sequence order,
/// schema version, and the program fingerprint of every record.
pub fn load_journal(
    path: impl AsRef<Path>,
    expected_fingerprint: u64,
) -> Result<Vec<JournalRecord>, JournalError> {
    let path = path.as_ref();
    let shown = path.display().to_string();
    let content = std::fs::read_to_string(path).map_err(|e| JournalError::Io {
        path: shown.clone(),
        message: e.to_string(),
    })?;
    let mut records = Vec::new();
    for (i, line) in content.split('\n').enumerate() {
        if line.is_empty() {
            // The trailing newline of a complete file, or a blank line
            // mid-file (which the framing check below would reject) —
            // only the former is legal.
            if i + 1 == content.split('\n').count() {
                continue;
            }
            return Err(JournalError::Malformed {
                path: shown,
                line: i + 1,
                message: "blank line inside the journal".to_string(),
            });
        }
        let rec = parse_line(&shown, i + 1, line)?;
        if rec.version != JOURNAL_VERSION {
            return Err(JournalError::UnsupportedVersion {
                path: shown,
                line: i + 1,
                version: rec.version,
            });
        }
        if rec.fingerprint != expected_fingerprint {
            return Err(JournalError::FingerprintMismatch {
                path: shown,
                line: i + 1,
                found: rec.fingerprint,
                expected: expected_fingerprint,
            });
        }
        if rec.seq != records.len() as u64 {
            return Err(JournalError::Malformed {
                path: shown,
                line: i + 1,
                message: format!(
                    "out-of-order record: seq {} at journal position {}",
                    rec.seq,
                    records.len()
                ),
            });
        }
        records.push(rec);
    }
    Ok(records)
}

/// The checkpoint-journal writer.
///
/// Holds every record of the journal in memory; each append rewrites
/// the whole file atomically (the workloads here journal at most a few
/// thousand sub-kilobyte records, so rewriting is cheap and buys the
/// always-a-valid-prefix invariant the loader relies on).
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    lines: Vec<String>,
    fingerprint: u64,
}

impl JournalWriter {
    /// Start a fresh journal at `path` (truncating any existing file —
    /// an empty journal is written immediately so a run killed before
    /// its first answer still leaves a resumable file).
    pub fn create(path: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        let path = path.into();
        write_atomic(&path, b"")?;
        Ok(JournalWriter {
            path,
            lines: Vec::new(),
            fingerprint,
        })
    }

    /// Reopen an existing journal for continued appending: load and
    /// validate it, and return the writer alongside the records to
    /// replay.
    pub fn resume(
        path: impl Into<PathBuf>,
        fingerprint: u64,
    ) -> Result<(Self, Vec<JournalRecord>), JournalError> {
        let path = path.into();
        let records = load_journal(&path, fingerprint)?;
        let lines = records.iter().map(render_line).collect();
        Ok((
            JournalWriter {
                path,
                lines,
                fingerprint,
            },
            records,
        ))
    }

    /// Append one completed answer and persist the journal atomically.
    /// `backend` records which execution plane produced the answer
    /// (see [`JournalRecord::backend`]).
    pub fn append(
        &mut self,
        pair: &str,
        key: &str,
        backend: &str,
        answer: JournalAnswer,
    ) -> io::Result<()> {
        let rec = JournalRecord {
            seq: self.lines.len() as u64,
            version: JOURNAL_VERSION,
            fingerprint: self.fingerprint,
            pair: pair.to_string(),
            key: key.to_string(),
            backend: backend.to_string(),
            answer,
        };
        self.lines.push(render_line(&rec));
        let mut buf = self.lines.join("\n");
        buf.push('\n');
        write_atomic(&self.path, buf.as_bytes())
    }

    /// Number of records in the journal.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Is the journal empty?
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "flit-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("journal.jsonl")
    }

    fn sample_answers() -> Vec<(String, String, JournalAnswer)> {
        vec![
            (
                "ex1/g++ -O3".to_string(),
                "ref/abc123".to_string(),
                JournalAnswer::Output {
                    output_bits: vec![1.5f64.to_bits(), f64::NAN.to_bits(), 0.0f64.to_bits()],
                    seconds_bits: 0.25f64.to_bits(),
                },
            ),
            (
                "ex1/g++ -O3".to_string(),
                "file/abc123/d0".to_string(),
                JournalAnswer::Score {
                    score_bits: 0.0f64.to_bits(),
                    seconds_bits: 0.125f64.to_bits(),
                },
            ),
            (
                "ex1/icpc -O2".to_string(),
                "file/abc123/d1".to_string(),
                JournalAnswer::Crash {
                    message: "segv in mixed \"exe\"".to_string(),
                },
            ),
            (
                "ex1/icpc -O2".to_string(),
                "sym/abc123/i/3/d2".to_string(),
                JournalAnswer::Link {
                    message: "undefined symbol `solver_norm`".to_string(),
                },
            ),
        ]
    }

    fn write_sample(path: &Path, fingerprint: u64) -> Vec<JournalRecord> {
        let mut w = JournalWriter::create(path, fingerprint).unwrap();
        for (pair, key, ans) in sample_answers() {
            w.append(&pair, &key, BACKEND_LOCAL, ans).unwrap();
        }
        load_journal(path, fingerprint).unwrap()
    }

    #[test]
    fn round_trips_records_exactly() {
        let p = tmp("roundtrip");
        let recs = write_sample(&p, 0xdead_beef);
        assert_eq!(recs.len(), 4);
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.version, JOURNAL_VERSION);
            assert_eq!(rec.fingerprint, 0xdead_beef);
            assert_eq!(rec.backend, BACKEND_LOCAL);
        }
        // Bit-exact floats, including the NaN element.
        match &recs[0].answer {
            JournalAnswer::Output { output_bits, .. } => {
                assert_eq!(output_bits[1], f64::NAN.to_bits());
            }
            other => panic!("expected Output, got {other:?}"),
        }
        assert_eq!(
            recs.iter()
                .map(|r| (r.pair.clone(), r.key.clone(), r.answer.clone()))
                .collect::<Vec<_>>(),
            sample_answers()
        );
    }

    #[test]
    fn resume_continues_the_sequence() {
        let p = tmp("resume");
        write_sample(&p, 7);
        let (mut w, recs) = JournalWriter::resume(&p, 7).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(w.len(), 4);
        w.append(
            "ex1/clang++ -O3",
            "probe/abc123/c/1",
            BACKEND_LOCAL,
            JournalAnswer::Score {
                score_bits: 2.0f64.to_bits(),
                seconds_bits: 1.0f64.to_bits(),
            },
        )
        .unwrap();
        let recs = load_journal(&p, 7).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4].seq, 4);
    }

    #[test]
    fn fingerprint_mismatch_is_structured() {
        let p = tmp("fpr");
        write_sample(&p, 1);
        let err = load_journal(&p, 2).unwrap_err();
        match &err {
            JournalError::FingerprintMismatch {
                line,
                found,
                expected,
                ..
            } => {
                assert_eq!((*line, *found, *expected), (1, 1, 2));
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn old_version_1_journal_is_rejected_structurally() {
        // A pre-wire-format journal: version 1, no `backend` field.
        // The loader must identify the generation and reject it as
        // UnsupportedVersion — not trip over the missing field, and
        // never panic.
        let p = tmp("ver-old");
        let v1_payload = "{\"seq\":0,\"version\":1,\"fingerprint\":3,\
                          \"pair\":\"p\",\"key\":\"k\",\"answer\":\
                          {\"Score\":{\"score_bits\":0,\"seconds_bits\":0}}}";
        std::fs::write(&p, format!("{}\n", frame_record(v1_payload))).unwrap();
        match load_journal(&p, 3).unwrap_err() {
            JournalError::UnsupportedVersion { line, version, .. } => {
                assert_eq!((line, version), (1, 1));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected_structurally() {
        let p = tmp("ver-future");
        let mut w = JournalWriter::create(&p, 3).unwrap();
        w.append(
            "p",
            "k",
            BACKEND_LOCAL,
            JournalAnswer::Score {
                score_bits: 0,
                seconds_bits: 0,
            },
        )
        .unwrap();
        // A record from a future generation, carrying a field this
        // build has never heard of: still identified by its version.
        let v3_payload = "{\"seq\":1,\"version\":3,\"fingerprint\":3,\
                          \"pair\":\"p\",\"key\":\"k2\",\"backend\":\"local\",\
                          \"shard\":7,\"answer\":\
                          {\"Score\":{\"score_bits\":0,\"seconds_bits\":0}}}";
        let mut content = std::fs::read_to_string(&p).unwrap();
        content.push_str(&frame_record(v3_payload));
        content.push('\n');
        std::fs::write(&p, content).unwrap();
        match load_journal(&p, 3).unwrap_err() {
            JournalError::UnsupportedVersion { line, version, .. } => {
                assert_eq!((line, version), (2, 3));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_the_crc() {
        let p = tmp("crc");
        write_sample(&p, 9);
        let content = std::fs::read_to_string(&p).unwrap();
        // Flip a digit inside the *first* record's payload.
        let corrupted = content.replacen("\"seq\":0", "\"seq\":9", 1);
        assert_ne!(corrupted, content);
        std::fs::write(&p, corrupted).unwrap();
        match load_journal(&p, 9).unwrap_err() {
            JournalError::Checksum { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Checksum, got {other:?}"),
        }
    }

    #[test]
    fn reordered_records_are_rejected() {
        let p = tmp("seq");
        write_sample(&p, 9);
        let content = std::fs::read_to_string(&p).unwrap();
        let mut lines: Vec<&str> = content.trim_end().split('\n').collect();
        lines.swap(1, 2);
        std::fs::write(&p, format!("{}\n", lines.join("\n"))).unwrap();
        match load_journal(&p, 9).unwrap_err() {
            JournalError::Malformed { line, message, .. } => {
                assert_eq!(line, 2);
                assert!(message.contains("out-of-order"), "{message}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    /// The satellite-3 exhaustive truncation sweep: truncating the
    /// journal at *every* byte offset must yield either a clean,
    /// complete prefix of the records (truncation at a record boundary
    /// — the legitimate crash-between-appends state) or a structured
    /// error — never a panic and never a silently short table that
    /// misrepresents a *damaged* record as absent.
    #[test]
    fn truncation_at_every_byte_offset_is_structured() {
        let p = tmp("trunc");
        let full = write_sample(&p, 42);
        let content = std::fs::read(&p).unwrap();
        // Byte offsets that end exactly after a record (with or without
        // its trailing newline) are complete prefixes.
        let mut boundary_prefix = std::collections::HashMap::new();
        boundary_prefix.insert(0usize, 0usize);
        let mut count = 0usize;
        for (i, b) in content.iter().enumerate() {
            if *b == b'\n' {
                count += 1;
                boundary_prefix.insert(i, count); // newline itself cut off
                boundary_prefix.insert(i + 1, count); // cut after newline
            }
        }
        for offset in 0..=content.len() {
            std::fs::write(&p, &content[..offset]).unwrap();
            match load_journal(&p, 42) {
                Ok(recs) => {
                    let expect = boundary_prefix.get(&offset).unwrap_or_else(|| {
                        panic!("offset {offset}: accepted a mid-record truncation")
                    });
                    assert_eq!(recs.len(), *expect, "offset {offset}");
                    assert_eq!(recs.as_slice(), &full[..*expect], "offset {offset}");
                }
                Err(JournalError::Malformed { .. } | JournalError::Checksum { .. }) => {
                    assert!(
                        !boundary_prefix.contains_key(&offset),
                        "offset {offset}: rejected a clean prefix"
                    );
                }
                Err(other) => panic!("offset {offset}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn exactly_25_byte_line_is_malformed() {
        // Framing is 24 bytes plus the closing brace: a 25-byte line
        // has an empty payload, the shortest input that reaches the
        // `24..len-1` payload slice. It must be refused structurally.
        let line = "{\"crc\":\"00000000\",\"rec\":}";
        assert_eq!(line.len(), 25);
        match parse_line("j", 1, line) {
            Err(JournalError::Malformed { message, .. }) => {
                assert!(message.contains("truncated mid-payload"), "{message}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // One byte shorter still (framing only, no closing brace) makes
        // the payload range backwards — also structured, not a panic.
        match parse_line("j", 1, &line[..24]) {
            Err(JournalError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn multibyte_truncation_mid_character_is_malformed() {
        // A truncated line can end with a complete multi-byte char, so
        // `line.len() - 1` is *not* a char boundary: the payload slice
        // `24..len-1` must bail out structurally (a direct `&line[..]`
        // index here would panic). 'é' is 2 bytes in UTF-8.
        let rec = JournalRecord {
            seq: 0,
            version: JOURNAL_VERSION,
            fingerprint: 5,
            pair: "p".to_string(),
            key: "k".to_string(),
            backend: BACKEND_LOCAL.to_string(),
            answer: JournalAnswer::Score {
                score_bits: 0,
                seconds_bits: 0,
            },
        };
        let full = render_line(&rec);
        for cut in 24..full.len() - 1 {
            let line = format!("{}é", &full[..cut]);
            assert!(!line.is_char_boundary(line.len() - 1));
            match parse_line("j", 1, &line) {
                Err(JournalError::Malformed { message, .. }) => {
                    assert!(message.contains("truncated mid-payload"), "cut {cut}");
                }
                other => panic!("cut {cut}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn file_truncated_mid_utf8_char_is_structured() {
        // Kill a writer mid-append inside a multi-byte character: the
        // file is no longer valid UTF-8 and the load must surface a
        // structured error (Io from the decode), never a panic.
        let p = tmp("utf8");
        let mut w = JournalWriter::create(&p, 11).unwrap();
        w.append(
            "ex1/g++ –O3", // en-dash: 3 bytes
            "file/abc/0/1",
            BACKEND_LOCAL,
            JournalAnswer::Score {
                score_bits: 0,
                seconds_bits: 0,
            },
        )
        .unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let dash_at = bytes
            .windows(3)
            .position(|w| w == "–".as_bytes())
            .expect("en-dash present in the payload");
        std::fs::write(&p, &bytes[..dash_at + 1]).unwrap();
        match load_journal(&p, 11).unwrap_err() {
            JournalError::Io { .. } | JournalError::Malformed { .. } => {}
            other => panic!("expected Io/Malformed, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let p = tmp("missing");
        match load_journal(p.with_extension("nope"), 0).unwrap_err() {
            JournalError::Io { .. } => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
