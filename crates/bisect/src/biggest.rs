//! `BisectBiggest` (§2.5): uniform-cost search for the `k` biggest
//! contributors.
//!
//! "This variant is based on Uniform Cost Search and can exit early.
//! … When a file or symbol is found to have a smaller Test value than
//! the kth found symbol's Test value, it exits early. It is not able to
//! dynamically verify assumptions, but can significantly improve
//! performance if only the top few most contributing functions are
//! desired."

use std::cmp::Ordering;

use crate::algo::BisectOutcome;
use crate::planner::{drive_serial, BisectPlan, SearchMode};
use crate::test_fn::{TestError, TestFn};

/// A frontier node: a subset with its Test value, ordered by value.
/// Shared with the planner's replay engine so the parallel search pops
/// nodes in exactly this order.
pub(crate) struct Node<I> {
    pub(crate) value: f64,
    pub(crate) items: Vec<I>,
}

impl<I> PartialEq for Node<I> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value && self.items.len() == other.items.len()
    }
}
impl<I> Eq for Node<I> {}
impl<I> PartialOrd for Node<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<I> Ord for Node<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on value; ties prefer smaller subsets (closer to a
        // singleton find).
        self.value
            .partial_cmp(&other.value)
            .unwrap_or(Ordering::Equal)
            .then(other.items.len().cmp(&self.items.len()))
    }
}

/// Find up to `k` elements with the largest singleton Test values.
///
/// Uniform-cost search: repeatedly expand the frontier subset with the
/// largest metric; a singleton popped from the frontier is a find. Exits
/// early once the best frontier value no longer beats the k-th find.
///
/// Since the planner refactor this is a thin driver over
/// [`BisectPlan`]: the UCS loop above lives in the planner's replay
/// engine (sharing this module's [`Node`] ordering), and `test_fn`
/// answers one frontier query at a time in the serial call order (see
/// `planner::tests::biggest_replay_matches_reference_ucs`).
pub fn bisect_biggest<I, F>(
    test_fn: F,
    items: &[I],
    k: usize,
) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    drive_serial(BisectPlan::new(items, SearchMode::Biggest(k)), test_fn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(weights: Vec<(u32, f64)>) -> impl FnMut(&[u32]) -> Result<f64, TestError> {
        move |items: &[u32]| {
            Ok(items
                .iter()
                .map(|i| {
                    weights
                        .iter()
                        .find(|(w, _)| w == i)
                        .map_or(0.0, |(_, v)| *v)
                })
                .sum())
        }
    }

    #[test]
    fn finds_the_single_biggest() {
        let items: Vec<u32> = (0..256).collect();
        let out =
            bisect_biggest(weighted(vec![(10, 0.5), (99, 4.0), (200, 1.5)]), &items, 1).unwrap();
        assert_eq!(out.found.len(), 1);
        assert_eq!(out.found[0], (99, 4.0));
    }

    #[test]
    fn finds_top_k_in_order() {
        let items: Vec<u32> = (0..128).collect();
        let out = bisect_biggest(
            weighted(vec![(3, 1.0), (60, 8.0), (100, 2.0), (17, 0.25)]),
            &items,
            3,
        )
        .unwrap();
        let found: Vec<(u32, f64)> = out.found.clone();
        assert_eq!(found, vec![(60, 8.0), (100, 2.0), (3, 1.0)]);
    }

    #[test]
    fn k_larger_than_contributors_finds_all() {
        let items: Vec<u32> = (0..64).collect();
        let out = bisect_biggest(weighted(vec![(5, 1.0), (50, 2.0)]), &items, 10).unwrap();
        assert_eq!(out.found.len(), 2);
    }

    #[test]
    fn early_exit_beats_full_bisect_for_small_k() {
        // Many contributors, but we only want the top one: UCS should
        // spend fewer executions than finding all of them.
        let weights: Vec<(u32, f64)> = (0..16).map(|j| (j * 61 + 7, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..1024).collect();
        let top1 = bisect_biggest(weighted(weights.clone()), &items, 1).unwrap();
        assert_eq!(top1.found.len(), 1);
        assert_eq!(top1.found[0].1, 16.0);
        let all = crate::algo::bisect_all(weighted(weights), &items).unwrap();
        assert_eq!(all.found.len(), 16);
        assert!(
            top1.executions < all.executions,
            "UCS top-1 ({}) should beat full bisect ({})",
            top1.executions,
            all.executions
        );
    }

    #[test]
    fn zero_variability_or_zero_k_is_cheap() {
        let items: Vec<u32> = (0..512).collect();
        let out = bisect_biggest(weighted(vec![]), &items, 3).unwrap();
        assert!(out.found.is_empty());
        assert_eq!(out.executions, 1);
        let out = bisect_biggest(weighted(vec![(1, 1.0)]), &items, 0).unwrap();
        assert!(out.found.is_empty());
    }

    #[test]
    fn crash_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let err = bisect_biggest(
            |_: &[u32]| Err::<f64, _>(TestError::Crash("boom".into())),
            &items,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, TestError::Crash(_)));
    }
}
