//! `BisectBiggest` (§2.5): uniform-cost search for the `k` biggest
//! contributors.
//!
//! "This variant is based on Uniform Cost Search and can exit early.
//! … When a file or symbol is found to have a smaller Test value than
//! the kth found symbol's Test value, it exits early. It is not able to
//! dynamically verify assumptions, but can significantly improve
//! performance if only the top few most contributing functions are
//! desired."

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::algo::BisectOutcome;
use crate::test_fn::{MemoTest, TestError, TestFn};

/// A frontier node: a subset with its Test value, ordered by value.
struct Node<I> {
    value: f64,
    items: Vec<I>,
}

impl<I> PartialEq for Node<I> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value && self.items.len() == other.items.len()
    }
}
impl<I> Eq for Node<I> {}
impl<I> PartialOrd for Node<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<I> Ord for Node<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on value; ties prefer smaller subsets (closer to a
        // singleton find).
        self.value
            .partial_cmp(&other.value)
            .unwrap_or(Ordering::Equal)
            .then(other.items.len().cmp(&self.items.len()))
    }
}

/// Find up to `k` elements with the largest singleton Test values.
///
/// Uniform-cost search: repeatedly expand the frontier subset with the
/// largest metric; a singleton popped from the frontier is a find. Exits
/// early once the best frontier value no longer beats the k-th find.
pub fn bisect_biggest<I, F>(
    test_fn: F,
    items: &[I],
    k: usize,
) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    let mut test = MemoTest::new(test_fn);
    let mut found: Vec<(I, f64)> = Vec::new();
    let mut heap: BinaryHeap<Node<I>> = BinaryHeap::new();

    let v0 = test.test(items)?;
    if v0 > 0.0 && k > 0 {
        heap.push(Node {
            value: v0,
            items: items.to_vec(),
        });
    }

    while let Some(Node { value, items: cur }) = heap.pop() {
        // Early exit: nothing on the frontier can beat the k-th find.
        if found.len() >= k && value <= found.last().map(|(_, v)| *v).unwrap_or(f64::INFINITY) {
            break;
        }
        if cur.len() == 1 {
            found.push((cur[0].clone(), value));
            found.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
            found.truncate(k);
            continue;
        }
        let mid = cur.len() / 2;
        for half in [&cur[..mid], &cur[mid..]] {
            if half.is_empty() {
                continue;
            }
            let v = test.test(half)?;
            if v > 0.0 {
                heap.push(Node {
                    value: v,
                    items: half.to_vec(),
                });
            }
        }
    }

    Ok(BisectOutcome {
        found,
        executions: test.executions(),
        violations: vec![], // BisectBiggest cannot verify assumptions
        trace: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(weights: Vec<(u32, f64)>) -> impl FnMut(&[u32]) -> Result<f64, TestError> {
        move |items: &[u32]| {
            Ok(items
                .iter()
                .map(|i| {
                    weights
                        .iter()
                        .find(|(w, _)| w == i)
                        .map(|(_, v)| *v)
                        .unwrap_or(0.0)
                })
                .sum())
        }
    }

    #[test]
    fn finds_the_single_biggest() {
        let items: Vec<u32> = (0..256).collect();
        let out =
            bisect_biggest(weighted(vec![(10, 0.5), (99, 4.0), (200, 1.5)]), &items, 1).unwrap();
        assert_eq!(out.found.len(), 1);
        assert_eq!(out.found[0], (99, 4.0));
    }

    #[test]
    fn finds_top_k_in_order() {
        let items: Vec<u32> = (0..128).collect();
        let out = bisect_biggest(
            weighted(vec![(3, 1.0), (60, 8.0), (100, 2.0), (17, 0.25)]),
            &items,
            3,
        )
        .unwrap();
        let found: Vec<(u32, f64)> = out.found.clone();
        assert_eq!(found, vec![(60, 8.0), (100, 2.0), (3, 1.0)]);
    }

    #[test]
    fn k_larger_than_contributors_finds_all() {
        let items: Vec<u32> = (0..64).collect();
        let out = bisect_biggest(weighted(vec![(5, 1.0), (50, 2.0)]), &items, 10).unwrap();
        assert_eq!(out.found.len(), 2);
    }

    #[test]
    fn early_exit_beats_full_bisect_for_small_k() {
        // Many contributors, but we only want the top one: UCS should
        // spend fewer executions than finding all of them.
        let weights: Vec<(u32, f64)> = (0..16).map(|j| (j * 61 + 7, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..1024).collect();
        let top1 = bisect_biggest(weighted(weights.clone()), &items, 1).unwrap();
        assert_eq!(top1.found.len(), 1);
        assert_eq!(top1.found[0].1, 16.0);
        let all = crate::algo::bisect_all(weighted(weights), &items).unwrap();
        assert_eq!(all.found.len(), 16);
        assert!(
            top1.executions < all.executions,
            "UCS top-1 ({}) should beat full bisect ({})",
            top1.executions,
            all.executions
        );
    }

    #[test]
    fn zero_variability_or_zero_k_is_cheap() {
        let items: Vec<u32> = (0..512).collect();
        let out = bisect_biggest(weighted(vec![]), &items, 3).unwrap();
        assert!(out.found.is_empty());
        assert_eq!(out.executions, 1);
        let out = bisect_biggest(weighted(vec![(1, 1.0)]), &items, 0).unwrap();
        assert!(out.found.is_empty());
    }

    #[test]
    fn crash_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let err = bisect_biggest(
            |_: &[u32]| Err::<f64, _>(TestError::Crash("boom".into())),
            &items,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, TestError::Crash(_)));
    }
}
