//! The coordinator/worker wire format and the [`QueryPlane`]
//! abstraction over *where* a search's Test queries evaluate.
//!
//! A hierarchical (or perf) search issues exactly five kinds of
//! executable recipes ([`ExeRecipe`]); every compute closure in
//! `hierarchy.rs` and `perf.rs` is one recipe plus a coordinator-side
//! reduction (the comparison metric, Welch statistics, counters). The
//! [`QueryPlane`] trait captures precisely the part that can move to
//! another process: *build the recipe's executable and run (or time)
//! it*, returning raw vectors. Everything downstream of the raw
//! vectors — `compare`, speedup reports, ledger accounting — stays in
//! the coordinator, which is what makes the process backend
//! byte-identical to the serial search.
//!
//! Two implementations:
//! - [`LocalPlane`]: evaluates in-process against borrowed [`Build`]s,
//!   with the exact per-recipe error mappings the serial closures have
//!   always used.
//! - [`RemotePlane`]: serializes the search task once ([`WireTask`]),
//!   ships each query as a [`WireRequest`] through an
//!   [`ExecBackend::dispatch`], and decodes the answer from the
//!   checkpoint-journal answer schema ([`JournalAnswer`] doubles as
//!   the wire answer format).
//!
//! The worker half is [`evaluate`]: given a task digest, a serialized
//! task body, and a serialized request, produce a serialized answer.
//! `flit worker` plugs this into `flit_exec::serve_worker`.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use flit_exec::{ExecBackend, ExecError, QueryEnvelope};
use flit_program::build::{
    file_mixed_executable_in, pic_probe_executable_in, symbol_mixed_executable_in, Build,
};
use flit_program::{Driver, Engine, RunError, SimProgram};
use flit_toolchain::cache::{BuildCtx, RecipeHasher};
use flit_toolchain::compilation::Compilation;
use flit_toolchain::compiler::CompilerKind;

use crate::journal::JournalAnswer;
use crate::test_fn::TestError;

/// Which mixed executable a query builds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExeRecipe {
    /// The all-baseline executable (the trusted reference).
    Baseline,
    /// The all-variable (candidate) executable.
    Candidate,
    /// File-mixed: the given file ids come from the variable build,
    /// everything else from the baseline.
    FileMixed {
        /// Variable file ids (canonically sorted).
        items: Vec<usize>,
    },
    /// The `-fPIC` interposition probe for one file.
    PicProbe {
        /// The probed file id.
        file: usize,
    },
    /// Symbol-mixed within one file: the given symbols come from the
    /// variable build.
    SymbolMixed {
        /// The file under symbol search.
        file: usize,
        /// Variable symbol names (canonically sorted).
        items: Vec<String>,
    },
}

/// One query as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Build the recipe's executable and run it once, returning the
    /// output vector and simulated seconds.
    Run {
        /// The executable to build.
        recipe: ExeRecipe,
    },
    /// Build the recipe's executable and draw timing samples from its
    /// profile under the seeded noise model.
    Time {
        /// The executable to build.
        recipe: ExeRecipe,
        /// Noise-model seed.
        seed: u64,
        /// Number of samples to draw.
        samples: u32,
    },
}

/// Everything a worker needs to evaluate queries for one search:
/// both program structures, both compilations (with build tags), the
/// driver, the input (bit-exact), and the link driver. Registered once
/// per (worker, task digest); queries reference the digest only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireTask {
    /// The baseline program structure.
    pub baseline_program: SimProgram,
    /// The variable program structure (differs from the baseline in
    /// the injection studies; usually identical).
    pub variable_program: SimProgram,
    /// The baseline compilation.
    pub baseline_compilation: Compilation,
    /// The variable compilation.
    pub variable_compilation: Compilation,
    /// Build tag of the baseline build.
    pub baseline_tag: u32,
    /// Build tag of the variable build.
    pub variable_tag: u32,
    /// The test driver.
    pub driver: Driver,
    /// `f64::to_bits` of each input element (bit-exact round trip).
    pub input_bits: Vec<u64>,
    /// The linking compiler (the Intel link-step effect).
    pub link_driver: CompilerKind,
}

impl WireTask {
    /// Capture a search task from its in-process pieces.
    pub fn capture(
        baseline: &Build,
        variable: &Build,
        driver: &Driver,
        input: &[f64],
        link_driver: CompilerKind,
    ) -> Self {
        WireTask {
            baseline_program: baseline.program.clone(),
            variable_program: variable.program.clone(),
            baseline_compilation: baseline.compilation.clone(),
            variable_compilation: variable.compilation.clone(),
            baseline_tag: baseline.tag,
            variable_tag: variable.tag,
            driver: driver.clone(),
            input_bits: input.iter().map(|x| x.to_bits()).collect(),
            link_driver,
        }
    }

    /// Serialize to the wire (the task body of a [`QueryEnvelope`]).
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("wire task serializes")
    }

    /// Stable digest of a serialized task body.
    pub fn digest_of(body: &str) -> String {
        let mut h = RecipeHasher::new();
        h.write_str(body);
        format!("{:016x}", h.finish())
    }
}

/// Where a search's Test queries evaluate. Both methods take the
/// recipe only; the plane owns (or transports) the task context.
pub trait QueryPlane: Sync {
    /// Build and run once: `(output vector, simulated seconds)`.
    fn run_recipe(&self, recipe: &ExeRecipe) -> Result<(Vec<f64>, f64), TestError>;

    /// Build and time: the drawn sample vector.
    fn time_recipe(
        &self,
        recipe: &ExeRecipe,
        seed: u64,
        samples: u32,
    ) -> Result<Vec<f64>, TestError>;
}

fn run_to_test_error(e: RunError) -> TestError {
    match e {
        RunError::Crash(s) => TestError::Crash(s),
        RunError::MissingSymbol(s) => TestError::Link(format!("undefined symbol `{s}`")),
        e @ RunError::CorruptBuildTag { .. } => TestError::Link(e.to_string()),
    }
}

/// In-process evaluation against borrowed builds — the historical
/// serial semantics, error mappings included:
///
/// - reference executables (`Baseline`/`Candidate`) map *every* run
///   failure to `Crash` (a reference that cannot run aborts the
///   search);
/// - mixed executables map run failures through the mixed-run rules
///   (`MissingSymbol`/`CorruptBuildTag` are link-shaped);
/// - the `-fPIC` probe keeps real crash messages verbatim and treats
///   everything else as a crash.
pub struct LocalPlane<'a> {
    /// The trusted baseline build.
    pub baseline: &'a Build<'a>,
    /// The variable (candidate) build.
    pub variable: &'a Build<'a>,
    /// The test driver.
    pub driver: &'a Driver,
    /// The test input.
    pub input: &'a [f64],
    /// The linking compiler.
    pub link_driver: CompilerKind,
    /// The build cache.
    pub ctx: &'a BuildCtx,
}

impl<'a> LocalPlane<'a> {
    fn executable(
        &self,
        recipe: &ExeRecipe,
    ) -> Result<Arc<flit_toolchain::linker::Executable>, TestError> {
        match recipe {
            ExeRecipe::Baseline => self
                .baseline
                .executable_in(self.ctx)
                .map_err(|e| TestError::Link(e.to_string())),
            ExeRecipe::Candidate => self
                .variable
                .executable_in(self.ctx)
                .map_err(|e| TestError::Link(e.to_string())),
            ExeRecipe::FileMixed { items } => {
                let set: BTreeSet<usize> = items.iter().copied().collect();
                file_mixed_executable_in(
                    self.baseline,
                    self.variable,
                    &set,
                    self.link_driver,
                    self.ctx,
                )
                .map_err(|e| TestError::Link(e.to_string()))
            }
            ExeRecipe::PicProbe { file } => pic_probe_executable_in(
                self.baseline,
                self.variable,
                *file,
                self.link_driver,
                self.ctx,
            )
            .map_err(|e| TestError::Link(e.to_string())),
            ExeRecipe::SymbolMixed { file, items } => {
                let set: BTreeSet<String> = items.iter().cloned().collect();
                symbol_mixed_executable_in(
                    self.baseline,
                    self.variable,
                    *file,
                    &set,
                    self.link_driver,
                    self.ctx,
                )
                .map_err(|e| TestError::Link(e.to_string()))
            }
        }
    }

    fn map_run_error(recipe: &ExeRecipe, e: RunError) -> TestError {
        match recipe {
            // A reference executable that cannot run is always a crash.
            ExeRecipe::Baseline | ExeRecipe::Candidate => TestError::Crash(e.to_string()),
            // The probe keeps real crash messages verbatim; anything
            // else (a symbol the probe link dropped) is still a crash
            // at probe level.
            ExeRecipe::PicProbe { .. } => match e {
                RunError::Crash(s) => TestError::Crash(s),
                e => TestError::Crash(e.to_string()),
            },
            ExeRecipe::FileMixed { .. } | ExeRecipe::SymbolMixed { .. } => run_to_test_error(e),
        }
    }
}

impl QueryPlane for LocalPlane<'_> {
    fn run_recipe(&self, recipe: &ExeRecipe) -> Result<(Vec<f64>, f64), TestError> {
        let exe = self.executable(recipe)?;
        let out = Engine::with_variant(self.baseline.program, self.variable.program, &exe)
            .run(self.driver, self.input)
            .map_err(|e| Self::map_run_error(recipe, e))?;
        Ok((out.output, out.seconds))
    }

    fn time_recipe(
        &self,
        recipe: &ExeRecipe,
        seed: u64,
        samples: u32,
    ) -> Result<Vec<f64>, TestError> {
        let exe = self.executable(recipe)?;
        let (_, prof) = Engine::with_variant(self.baseline.program, self.variable.program, &exe)
            .run_with_profile(self.driver, self.input)
            .map_err(|e| Self::map_run_error(recipe, e))?;
        Ok(prof.samples(seed, samples))
    }
}

/// Encode a plane result as the wire answer payload (the journal
/// answer schema, bit-exact floats).
fn encode_answer(result: Result<(Vec<f64>, f64), TestError>) -> JournalAnswer {
    match result {
        Ok((output, seconds)) => JournalAnswer::Output {
            output_bits: output.iter().map(|x| x.to_bits()).collect(),
            seconds_bits: seconds.to_bits(),
        },
        Err(TestError::Crash(message)) => JournalAnswer::Crash { message },
        Err(TestError::Link(message)) => JournalAnswer::Link { message },
    }
}

fn decode_answer(answer: JournalAnswer) -> Result<(Vec<f64>, f64), TestError> {
    match answer {
        JournalAnswer::Output {
            output_bits,
            seconds_bits,
        } => Ok((
            output_bits.into_iter().map(f64::from_bits).collect(),
            f64::from_bits(seconds_bits),
        )),
        JournalAnswer::Score {
            score_bits,
            seconds_bits,
        } => Ok((
            vec![f64::from_bits(score_bits)],
            f64::from_bits(seconds_bits),
        )),
        JournalAnswer::Crash { message } => Err(TestError::Crash(message)),
        JournalAnswer::Link { message } => Err(TestError::Link(message)),
    }
}

/// Evaluation through a remote [`ExecBackend`]: the task is serialized
/// once, each query ships as an envelope, and answers decode from the
/// journal answer schema. Backend transport failures (a query that
/// exhausted its retry budget) surface as `TestError::Crash` with the
/// structured backend message, which aborts the search the same way a
/// crashed mixed executable does.
pub struct RemotePlane {
    backend: Arc<dyn ExecBackend>,
    digest: String,
    task: String,
}

impl RemotePlane {
    /// Capture and serialize the search task for `backend`.
    pub fn new(
        backend: Arc<dyn ExecBackend>,
        baseline: &Build,
        variable: &Build,
        driver: &Driver,
        input: &[f64],
        link_driver: CompilerKind,
    ) -> Self {
        let task = WireTask::capture(baseline, variable, driver, input, link_driver).to_wire();
        let digest = WireTask::digest_of(&task);
        RemotePlane {
            backend,
            digest,
            task,
        }
    }

    fn dispatch(&self, request: &WireRequest) -> Result<(Vec<f64>, f64), TestError> {
        let spec = serde_json::to_string(request).expect("wire request serializes");
        let envelope = QueryEnvelope {
            task_digest: self.digest.clone(),
            task: self.task.clone(),
            spec,
        };
        let answer = self.backend.dispatch(&envelope).map_err(|e| match e {
            ExecError::Backend { message } => TestError::Crash(message),
            other => TestError::Crash(other.to_string()),
        })?;
        let decoded: JournalAnswer = serde_json::from_str(&answer.payload)
            .map_err(|e| TestError::Crash(format!("unparseable wire answer: {e}")))?;
        decode_answer(decoded)
    }
}

impl QueryPlane for RemotePlane {
    fn run_recipe(&self, recipe: &ExeRecipe) -> Result<(Vec<f64>, f64), TestError> {
        self.dispatch(&WireRequest::Run {
            recipe: recipe.clone(),
        })
    }

    fn time_recipe(
        &self,
        recipe: &ExeRecipe,
        seed: u64,
        samples: u32,
    ) -> Result<Vec<f64>, TestError> {
        self.dispatch(&WireRequest::Time {
            recipe: recipe.clone(),
            seed,
            samples,
        })
        .map(|(samples, _)| samples)
    }
}

/// Worker-side task cache: deserialized tasks keyed by digest, plus
/// one process-wide build cache so a worker amortizes object files and
/// links across queries exactly like the coordinator would.
struct WorkerTask {
    task: WireTask,
    input: Vec<f64>,
}

fn worker_tasks() -> &'static Mutex<HashMap<String, Arc<WorkerTask>>> {
    static TASKS: OnceLock<Mutex<HashMap<String, Arc<WorkerTask>>>> = OnceLock::new();
    TASKS.get_or_init(Default::default)
}

fn worker_ctx() -> &'static BuildCtx {
    static CTX: OnceLock<BuildCtx> = OnceLock::new();
    CTX.get_or_init(BuildCtx::cached)
}

/// The worker half: evaluate one serialized request against a
/// serialized task, returning the serialized answer payload. Errors
/// (malformed task or request) are encoded as `Crash` answers rather
/// than killing the worker — a malformed frame is a protocol bug the
/// coordinator should see as a structured search abort, not a hang.
pub fn evaluate(digest: &str, task_body: &str, spec: &str) -> String {
    let answer = evaluate_inner(digest, task_body, spec);
    serde_json::to_string(&answer).expect("wire answer serializes")
}

fn evaluate_inner(digest: &str, task_body: &str, spec: &str) -> JournalAnswer {
    let cached = {
        let mut tasks = worker_tasks().lock().expect("worker task cache poisoned");
        match tasks.get(digest) {
            Some(t) => Arc::clone(t),
            None => {
                let task: WireTask = match serde_json::from_str(task_body) {
                    Ok(t) => t,
                    Err(e) => {
                        return JournalAnswer::Crash {
                            message: format!("worker cannot parse task {digest}: {e}"),
                        }
                    }
                };
                let input = task
                    .input_bits
                    .iter()
                    .copied()
                    .map(f64::from_bits)
                    .collect();
                let t = Arc::new(WorkerTask { task, input });
                tasks.insert(digest.to_string(), Arc::clone(&t));
                t
            }
        }
    };
    let request: WireRequest = match serde_json::from_str(spec) {
        Ok(r) => r,
        Err(e) => {
            return JournalAnswer::Crash {
                message: format!("worker cannot parse request: {e}"),
            }
        }
    };
    let t = &cached.task;
    let baseline = Build::tagged(
        &t.baseline_program,
        t.baseline_compilation.clone(),
        t.baseline_tag,
    );
    let variable = Build::tagged(
        &t.variable_program,
        t.variable_compilation.clone(),
        t.variable_tag,
    );
    let plane = LocalPlane {
        baseline: &baseline,
        variable: &variable,
        driver: &t.driver,
        input: &cached.input,
        link_driver: t.link_driver,
        ctx: worker_ctx(),
    };
    match request {
        WireRequest::Run { recipe } => encode_answer(plane.run_recipe(&recipe)),
        WireRequest::Time {
            recipe,
            seed,
            samples,
        } => encode_answer(
            plane
                .time_recipe(&recipe, seed, samples)
                .map(|s| (s, 0.0f64)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_program::{Function, Kernel, SourceFile};

    fn unsafe_gcc() -> Compilation {
        use flit_toolchain::compiler::OptLevel;
        use flit_toolchain::flags::Switch;
        Compilation::new(CompilerKind::Gcc, OptLevel::O3, vec![Switch::Avx2FmaUnsafe])
    }

    fn tiny_program() -> SimProgram {
        SimProgram::new(
            "wire-test",
            vec![
                SourceFile::new(
                    "a.cpp",
                    vec![Function::exported("A_dot", Kernel::DotMix { stride: 3 })],
                ),
                SourceFile::new(
                    "b.cpp",
                    vec![Function::exported("B_norm", Kernel::NormScale)],
                ),
            ],
        )
    }

    fn driver() -> Driver {
        Driver::new("t", vec!["A_dot".into(), "B_norm".into()], 2, 24)
    }

    #[test]
    fn wire_task_round_trips_bit_exactly() {
        let prog = tiny_program();
        let baseline = Build::new(&prog, Compilation::baseline());
        let variable = Build::tagged(&prog, unsafe_gcc(), 1);
        let input = [0.3, f64::MIN_POSITIVE, -0.0];
        let task = WireTask::capture(&baseline, &variable, &driver(), &input, CompilerKind::Gcc);
        let wire = task.to_wire();
        let back: WireTask = serde_json::from_str(&wire).unwrap();
        assert_eq!(back.input_bits, task.input_bits);
        assert_eq!(back.baseline_program.fingerprint(), prog.fingerprint());
        assert_eq!(back.variable_compilation, task.variable_compilation);
        assert_eq!(back.variable_tag, 1);
        // Digest is a pure function of the body.
        assert_eq!(WireTask::digest_of(&wire), WireTask::digest_of(&wire));
    }

    #[test]
    fn local_and_worker_evaluation_agree_bit_for_bit() {
        let prog = tiny_program();
        let baseline = Build::new(&prog, Compilation::baseline());
        let variable = Build::tagged(&prog, unsafe_gcc(), 1);
        let d = driver();
        let input = [0.3, 0.7];
        let ctx = BuildCtx::cached();
        let plane = LocalPlane {
            baseline: &baseline,
            variable: &variable,
            driver: &d,
            input: &input,
            link_driver: CompilerKind::Gcc,
            ctx: &ctx,
        };
        let task = WireTask::capture(&baseline, &variable, &d, &input, CompilerKind::Gcc);
        let body = task.to_wire();
        let digest = WireTask::digest_of(&body);
        for recipe in [
            ExeRecipe::Baseline,
            ExeRecipe::Candidate,
            ExeRecipe::FileMixed { items: vec![0] },
            ExeRecipe::PicProbe { file: 0 },
            ExeRecipe::SymbolMixed {
                file: 0,
                items: vec!["A_dot".into()],
            },
        ] {
            let local = plane.run_recipe(&recipe);
            let spec = serde_json::to_string(&WireRequest::Run {
                recipe: recipe.clone(),
            })
            .unwrap();
            let remote: JournalAnswer =
                serde_json::from_str(&evaluate(&digest, &body, &spec)).unwrap();
            assert_eq!(
                encode_answer(local),
                remote,
                "recipe {recipe:?} diverged between local and worker evaluation"
            );
            let timed = plane.time_recipe(&recipe, 42, 4);
            let spec = serde_json::to_string(&WireRequest::Time {
                recipe: recipe.clone(),
                seed: 42,
                samples: 4,
            })
            .unwrap();
            let remote: JournalAnswer =
                serde_json::from_str(&evaluate(&digest, &body, &spec)).unwrap();
            assert_eq!(
                encode_answer(timed.map(|s| (s, 0.0))),
                remote,
                "timed recipe {recipe:?} diverged"
            );
        }
    }

    #[test]
    fn malformed_wire_input_becomes_a_structured_crash_answer() {
        let ans: JournalAnswer = serde_json::from_str(&evaluate("d0", "not json", "{}")).unwrap();
        assert!(
            matches!(&ans, JournalAnswer::Crash { message } if message.contains("cannot parse task")),
            "{ans:?}"
        );
        let prog = tiny_program();
        let baseline = Build::new(&prog, Compilation::baseline());
        let variable = Build::tagged(&prog, unsafe_gcc(), 1);
        let task = WireTask::capture(&baseline, &variable, &driver(), &[0.1], CompilerKind::Gcc);
        let body = task.to_wire();
        let ans: JournalAnswer =
            serde_json::from_str(&evaluate(&WireTask::digest_of(&body), &body, "garbage")).unwrap();
        assert!(
            matches!(&ans, JournalAnswer::Crash { message } if message.contains("cannot parse request")),
            "{ans:?}"
        );
    }
}
