//! Parallel drivers for [`BisectPlan`]: a shared single-flight Test
//! oracle plus a wave scheduler on the `flit-exec` executor.
//!
//! The division of labor: the *planner* decides which queries matter
//! and in what canonical order their answers are consumed; the *oracle*
//! memoizes evaluations (single-flight, shareable across concurrent
//! searches); the *driver* below batches frontier queries into waves
//! and fans them out on an [`ExecBackend`]. Answers only ever enter a plan
//! through its answer table, so speculative or wasted evaluations can
//! never change an outcome — `--jobs 8` is byte-identical to
//! `--jobs 1`.

use std::hash::Hash;

#[cfg(test)]
use flit_exec::ThreadsBackend;
use flit_exec::{run_on, ExecBackend, ExecError, SingleFlight};
use flit_trace::names::{counter, phase};
use flit_trace::sink::TraceSink;

use crate::algo::BisectOutcome;
use crate::ledger::LedgerHandle;
use crate::planner::{BisectPlan, PlanFailure, PlanOutcome, PlanStep};
use crate::test_fn::TestError;

/// A thread-safe Test function: the parallel analogue of
/// [`TestFn`](crate::test_fn::TestFn). Items arrive canonicalized
/// (sorted, deduplicated) and the function returns the metric value
/// plus the run's simulated seconds.
pub trait ParallelTestFn<I>: Sync {
    /// Evaluate the metric on a canonical item set.
    fn test(&self, items: &[I]) -> Result<(f64, f64), TestError>;
}

impl<I, F> ParallelTestFn<I> for F
where
    F: Fn(&[I]) -> Result<(f64, f64), TestError> + Sync,
{
    fn test(&self, items: &[I]) -> Result<(f64, f64), TestError> {
        self(items)
    }
}

/// A ledger routing: the search's handle plus the function that digests
/// an item set into the workflow-wide canonical key.
type LedgerRoute<'f, I> = (LedgerHandle, Box<dyn Fn(&[I]) -> String + Sync + 'f>);

/// A memoized, single-flight Test oracle shareable across workers and
/// across concurrent searches (the concurrent analogue of
/// [`MemoTest`](crate::test_fn::MemoTest)).
pub struct SharedOracle<'f, I> {
    memo: SingleFlight<Vec<I>, Result<(f64, f64), TestError>>,
    raw: Box<dyn ParallelTestFn<I> + 'f>,
    executed: flit_trace::registry::Counter,
    memoized: flit_trace::registry::Counter,
    ledger: Option<LedgerRoute<'f, I>>,
}

impl<'f, I> SharedOracle<'f, I>
where
    I: Clone + Ord + Hash + Send + Sync,
{
    /// Wrap a raw parallel test function. Memo hits and misses are
    /// recorded as `exec.queries.*` counters on `trace`.
    pub fn new(raw: impl ParallelTestFn<I> + 'f, trace: &TraceSink) -> Self {
        SharedOracle {
            memo: SingleFlight::new(),
            raw: Box::new(raw),
            executed: trace.counter(counter::EXEC_QUERIES_EXECUTED),
            memoized: trace.counter(counter::EXEC_QUERIES_MEMOIZED),
            ledger: None,
        }
    }

    /// Wrap a raw parallel test function, routing every evaluation
    /// through a workflow-wide [`QueryLedger`](crate::ledger::QueryLedger)
    /// under keys produced by `key_fn`. The ledger's sharded
    /// single-flight table replaces the oracle's local memo (and its
    /// counters), so hits are classified as memoized / shared / replayed
    /// workflow-wide.
    pub fn with_ledger(
        raw: impl ParallelTestFn<I> + 'f,
        trace: &TraceSink,
        handle: LedgerHandle,
        key_fn: impl Fn(&[I]) -> String + Sync + 'f,
    ) -> Self {
        SharedOracle {
            ledger: Some((handle, Box::new(key_fn))),
            ..Self::new(raw, trace)
        }
    }

    /// Evaluate (memoized, single-flight). `items` must be canonical —
    /// frontier queries already are.
    pub fn eval(&self, items: &[I]) -> Result<(f64, f64), TestError> {
        if let Some((handle, key_fn)) = &self.ledger {
            return handle.eval_score(&key_fn(items), || self.raw.test(items));
        }
        let (answer, computed) = self
            .memo
            .get_or_compute(items.to_vec(), || self.raw.test(items));
        if computed {
            self.executed.incr(1);
        } else {
            self.memoized.incr(1);
        }
        answer
    }
}

/// A speculative-query priority for seeded drives: scores a frontier
/// query's (canonical) item set. Queries scoring `> 0.0` are kept,
/// highest score first; zero-scoring queries are dropped from the
/// speculative fill — evaluating them would only warm the memo for
/// item sets a prescreen predicts invariant.
pub type SpeculationScore<'a, I> = &'a (dyn Fn(&[I]) -> f64 + Sync);

/// Drive several plans to completion jointly on one execution backend.
///
/// Each wave gathers every active plan's frontier: all *required*
/// queries (the replay cannot advance without them), then speculative
/// queries up to the executor width. The wave fans out on `exec`, the
/// answers are fed back, and the plans step again — so independent
/// searches and both branches of each split evaluate concurrently while
/// every plan's observables stay byte-identical to its serial run.
/// (Remote backends fan the wave out locally too — their oracles route
/// each evaluation through [`ExecBackend::dispatch`] internally.)
///
/// Returns one result per plan, in order. `Err(ExecError)` only on a
/// panicking oracle (a Test *error* is a per-plan `PlanFailure`).
pub fn drive_plans<I>(
    plans: &mut [BisectPlan<I>],
    oracles: &[&SharedOracle<'_, I>],
    backend: &dyn ExecBackend,
    trace: &TraceSink,
    label: &str,
) -> Result<Vec<Result<PlanOutcome<I>, PlanFailure>>, ExecError>
where
    I: Clone + Ord + Hash + Send + Sync,
{
    drive_plans_seeded(plans, oracles, backend, trace, label, None)
}

/// [`drive_plans`] with an optional speculation priority (`seed`).
///
/// Seeding only filters and reorders the *speculative* portion of each
/// wave: required queries are dispatched unconditionally and in frontier
/// order, and answers enter a plan only through its answer table, whose
/// replay consumes them in the serial algorithm's order. Every
/// observable of the outcome — found sets, execution counts, traces,
/// violations — is therefore byte-identical to the unseeded (and the
/// serial) run at any worker count; seeding changes only which
/// speculative evaluations are spent, i.e. the `exec.queries.executed`
/// counter and wall-clock. Dropped zero-score queries are tallied under
/// `lint.speculation.skipped`.
pub fn drive_plans_seeded<I>(
    plans: &mut [BisectPlan<I>],
    oracles: &[&SharedOracle<'_, I>],
    backend: &dyn ExecBackend,
    trace: &TraceSink,
    label: &str,
    seed: Option<SpeculationScore<'_, I>>,
) -> Result<Vec<Result<PlanOutcome<I>, PlanFailure>>, ExecError>
where
    I: Clone + Ord + Hash + Send + Sync,
{
    assert_eq!(plans.len(), oracles.len(), "one oracle per plan");
    let waves = trace.counter(counter::EXEC_WAVES);
    let skipped = seed.map(|_| trace.counter(counter::LINT_SPECULATION_SKIPPED));
    let mut results: Vec<Option<Result<PlanOutcome<I>, PlanFailure>>> =
        plans.iter().map(|_| None).collect();
    let mut wave = 0usize;
    loop {
        let mut required: Vec<(usize, Vec<I>)> = Vec::new();
        let mut speculative: Vec<(usize, Vec<I>)> = Vec::new();
        for (pi, plan) in plans.iter().enumerate() {
            if results[pi].is_some() {
                continue;
            }
            match plan.step() {
                PlanStep::Done(result) => results[pi] = Some(*result),
                PlanStep::Frontier(queries) => {
                    for q in queries {
                        if q.required {
                            required.push((pi, q.items));
                        } else {
                            speculative.push((pi, q.items));
                        }
                    }
                }
            }
        }
        if required.is_empty() {
            // Every active plan emits at least one required query, so
            // an empty required set means every plan is done.
            break;
        }
        // Fill idle workers with speculation, never shrinking below the
        // required set. A seed priority drops predicted-invariant
        // queries and spends the fill on the likeliest culprits first.
        if let Some(score) = seed {
            let before = speculative.len();
            let mut scored: Vec<(f64, (usize, Vec<I>))> = speculative
                .into_iter()
                .map(|q| (score(&q.1), q))
                .filter(|(s, _)| *s > 0.0)
                .collect();
            if let Some(skipped) = &skipped {
                skipped.incr((before - scored.len()) as u64);
            }
            // Stable sort: equal scores keep frontier order.
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            speculative = scored.into_iter().map(|(_, q)| q).collect();
        }
        let budget = backend.workers().max(required.len());
        let mut batch = required;
        let fill = budget - batch.len();
        batch.extend(speculative.into_iter().take(fill));

        waves.incr(1);
        if trace.is_enabled() {
            trace.span(
                phase::EXEC_WAVE,
                format!("{label}/wave-{wave:04}"),
                batch.len() as u64,
                0.0,
            );
        }
        let answers = run_on(backend, batch.len(), |j| {
            let (pi, items) = &batch[j];
            oracles[*pi].eval(items)
        })?;
        for ((pi, items), answer) in batch.into_iter().zip(answers) {
            plans[pi].answer(&items, answer);
        }
        wave += 1;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every plan ran to completion"))
        .collect())
}

/// Emit the canonical `exec.query` spans for a completed search: one
/// span per execution, in serial consumption order, with the item-set
/// size as cost and the run's simulated seconds as duration. Identical
/// at any worker count.
pub fn emit_query_spans<I>(trace: &TraceSink, label: &str, outcome: &PlanOutcome<I>) {
    if !trace.is_enabled() {
        return;
    }
    for (i, (size, secs)) in outcome.consumed.iter().enumerate() {
        trace.span(
            phase::EXEC_QUERY,
            format!("{label}/q{i:04}(n={size})"),
            *size as u64,
            *secs,
        );
    }
}

fn exec_error_to_test_error(e: ExecError) -> TestError {
    TestError::Crash(e.to_string())
}

/// Parallel [`bisect_all`](crate::algo::bisect_all): same outcome,
/// byte-for-byte, with frontier queries fanned out on `exec`. A
/// panicking test function surfaces as [`TestError::Crash`] (the serial
/// path would propagate the panic).
pub fn bisect_all_parallel<I, F>(
    test_fn: F,
    items: &[I],
    backend: &dyn ExecBackend,
) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + Hash + Send + Sync,
    F: Fn(&[I]) -> Result<f64, TestError> + Sync,
{
    run_single(
        BisectPlan::new(items, crate::planner::SearchMode::All),
        test_fn,
        backend,
    )
}

/// Parallel [`bisect_biggest`](crate::biggest::bisect_biggest): same
/// outcome, byte-for-byte, with both halves of every expansion (and the
/// speculative frontier) evaluated concurrently.
pub fn bisect_biggest_parallel<I, F>(
    test_fn: F,
    items: &[I],
    k: usize,
    backend: &dyn ExecBackend,
) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + Hash + Send + Sync,
    F: Fn(&[I]) -> Result<f64, TestError> + Sync,
{
    run_single(
        BisectPlan::new(items, crate::planner::SearchMode::Biggest(k)),
        test_fn,
        backend,
    )
}

fn run_single<I, F>(
    plan: BisectPlan<I>,
    test_fn: F,
    backend: &dyn ExecBackend,
) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + Hash + Send + Sync,
    F: Fn(&[I]) -> Result<f64, TestError> + Sync,
{
    let trace = TraceSink::disabled();
    let oracle = SharedOracle::new(move |items: &[I]| test_fn(items).map(|v| (v, 0.0)), &trace);
    let mut plans = [plan];
    let mut results = drive_plans(&mut plans, &[&oracle], backend, &trace, "bisect")
        .map_err(exec_error_to_test_error)?;
    match results.pop().expect("one plan in, one result out") {
        Ok(p) => Ok(p.outcome),
        Err(f) => Err(f.error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bisect_all, bisect_all_unpruned};
    use crate::biggest::bisect_biggest;
    use crate::planner::SearchMode;

    fn magnitude(weights: Vec<(u32, f64)>) -> impl Fn(&[u32]) -> Result<f64, TestError> + Sync {
        move |items: &[u32]| {
            Ok(items
                .iter()
                .map(|i| {
                    weights
                        .iter()
                        .find(|(w, _)| w == i)
                        .map_or(0.0, |(_, v)| *v)
                })
                .sum())
        }
    }

    #[test]
    fn parallel_matches_serial_at_every_width() {
        let weights = vec![(2, 0.25), (8, 1.5), (9, 0.125), (30, 3.0)];
        let items: Vec<u32> = (1..=40).collect();
        let serial = bisect_all(magnitude(weights.clone()), &items).unwrap();
        for jobs in [1, 2, 8] {
            let exec = ThreadsBackend::new(jobs);
            let par = bisect_all_parallel(magnitude(weights.clone()), &items, &exec).unwrap();
            assert_eq!(par.found, serial.found, "jobs={jobs}");
            assert_eq!(par.executions, serial.executions, "jobs={jobs}");
            assert_eq!(par.trace, serial.trace, "jobs={jobs}");
            assert_eq!(par.violations, serial.violations, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_biggest_matches_serial() {
        let weights: Vec<(u32, f64)> = (0..9).map(|j| (j * 13 + 4, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..128).collect();
        for k in [1, 4] {
            let serial = bisect_biggest(magnitude(weights.clone()), &items, k).unwrap();
            let exec = ThreadsBackend::new(8);
            let par =
                bisect_biggest_parallel(magnitude(weights.clone()), &items, k, &exec).unwrap();
            assert_eq!(par.found, serial.found, "k={k}");
            assert_eq!(par.executions, serial.executions, "k={k}");
        }
    }

    #[test]
    fn joint_plans_share_the_oracle() {
        // Two searches over the same space share one oracle: the
        // second's queries are largely memo hits, and outcomes match
        // their serial runs exactly.
        let weights = vec![(5, 1.0), (20, 2.0)];
        let items: Vec<u32> = (0..32).collect();
        let sink = TraceSink::enabled();
        let oracle = SharedOracle::new(
            {
                let f = magnitude(weights.clone());
                move |items: &[u32]| f(items).map(|v| (v, 0.0))
            },
            &sink,
        );
        let mut plans = [
            BisectPlan::new(&items, SearchMode::All),
            BisectPlan::new(&items, SearchMode::AllUnpruned),
        ];
        let exec = ThreadsBackend::new(4);
        let results = drive_plans(&mut plans, &[&oracle, &oracle], &exec, &sink, "joint").unwrap();
        let [a, b] = <[_; 2]>::try_from(results).ok().unwrap();
        let serial_a = bisect_all(magnitude(weights.clone()), &items).unwrap();
        let serial_b = bisect_all_unpruned(magnitude(weights.clone()), &items).unwrap();
        assert_eq!(a.unwrap().outcome, serial_a);
        assert_eq!(b.unwrap().outcome, serial_b);
        let trace = sink.snapshot();
        assert!(
            trace.counter(counter::EXEC_QUERIES_MEMOIZED) > 0,
            "shared memo"
        );
        assert!(trace.counter(counter::EXEC_WAVES) > 0);
    }

    #[test]
    fn panicking_test_fn_becomes_a_crash_error() {
        let items: Vec<u32> = (0..16).collect();
        let exec = ThreadsBackend::new(2);
        let err = bisect_all_parallel(
            |_items: &[u32]| -> Result<f64, TestError> { panic!("oracle exploded") },
            &items,
            &exec,
        )
        .unwrap_err();
        match err {
            TestError::Crash(s) => assert!(s.contains("exploded"), "{s}"),
            other => panic!("expected Crash, got {other:?}"),
        }
    }
}
