//! The dual-level File → Symbol search (§2.3).
//!
//! "We perform this Bisect algorithm on a dual-level hierarchy, first by
//! searching for the files where the compiler caused variability, and
//! then searching the functions within each found file."
//!
//! File Bisect's Test function links objects from the two compilations
//! per Figure 3 (left); Symbol Bisect recompiles the found file with
//! `-fPIC` — verifying variability survives the recompile — and links
//! two complementarily-weakened copies per Figure 3 (right). If `-fPIC`
//! removes the variability, "the search cannot go deeper; we must be
//! content with reporting the file containing the variability."

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

use flit_program::build::Build;
use flit_program::model::Driver;
use flit_toolchain::cache::BuildCtx;
use flit_toolchain::compiler::CompilerKind;
use flit_trace::names::{counter as counter_names, phase};
use flit_trace::sink::TraceSink;

use flit_exec::{run_on, ExecBackend, ExecError};

use crate::algo::{bisect_all, AssumptionViolation, BisectOutcome};
use crate::biggest::bisect_biggest;
use crate::ledger::{LedgerHandle, SearchKeys};
use crate::parallel::{drive_plans_seeded, emit_query_spans, SharedOracle, SpeculationScore};
use crate::planner::{BisectPlan, PlanFailure, PlanOutcome, SearchMode};
use crate::test_fn::{TestError, TestFn};
use crate::wire::{ExeRecipe, LocalPlane, QueryPlane, RemotePlane};

/// A static prescreen of the hierarchical search space (produced by
/// `flit-lint`, consumed here): predicted-sensitivity scores per file
/// and per exported symbol.
///
/// Scores `> 0.0` mean "predicted variable"; missing entries mean
/// "predicted invariant". The scores seed the parallel drivers'
/// speculative frontiers in predicted-sensitivity order — answers only
/// enter a plan through its answer table, so seeding never changes
/// found sets, traces, violations, or execution counts. When [`prune`]
/// is set the predicted-invariant items are additionally removed from
/// the search space itself; because that *is* observable if the static
/// analysis was wrong, the search then re-runs Test over the unpruned
/// space and over the found set (an Algorithm-1-style dynamic
/// verification) and reports a violation when they disagree.
///
/// [`prune`]: Prescreen::prune
#[derive(Debug, Clone, Default)]
pub struct Prescreen {
    /// `file_id` → predicted-sensitivity score.
    pub file_priority: BTreeMap<usize, f64>,
    /// Exported symbol → predicted-sensitivity score.
    pub symbol_priority: BTreeMap<String, f64>,
    /// Prune predicted-invariant items from the search space (opt-in:
    /// `flit bisect --lint-prune`).
    pub prune: bool,
    /// Certified divergence bounds from `flit-absint` backing a
    /// `--prune certified` run. When present together with [`prune`],
    /// the search space drops `Invariant`-certified items instead of
    /// score-zero items, the 2-execution dynamic probe is replaced by a
    /// single residual audit per pruned level (`Test(all)` against the
    /// search's own found-set verification value), and every file-level
    /// finding is cross-checked against its certificate — a dishonest
    /// certificate surfaces as a structured assumption violation, never
    /// as a silently dropped item. Certificates must have been computed
    /// for the same `(baseline, variable, link_driver)` the search
    /// uses; the CLI guarantees this.
    ///
    /// [`prune`]: Prescreen::prune
    pub certificates: Option<flit_absint::PairCertificates>,
}

impl Prescreen {
    /// Score for a file (`0.0` = predicted invariant).
    pub fn file_score(&self, file_id: usize) -> f64 {
        self.file_priority.get(&file_id).copied().unwrap_or(0.0)
    }

    /// Score for a symbol (`0.0` = predicted invariant).
    pub fn symbol_score(&self, symbol: &str) -> f64 {
        self.symbol_priority.get(symbol).copied().unwrap_or(0.0)
    }

    /// Keep this file in a pruned search space? Certified mode drops
    /// exactly the `Invariant`-certified files; lint mode drops
    /// score-zero files.
    fn keep_file(&self, file_id: usize) -> bool {
        match &self.certificates {
            Some(c) => !c.file(file_id).prunable(),
            None => self.file_score(file_id) > 0.0,
        }
    }

    /// Keep this symbol in a pruned search space? (See [`keep_file`].)
    ///
    /// [`keep_file`]: Prescreen::keep_file
    fn keep_symbol(&self, symbol: &str) -> bool {
        match &self.certificates {
            Some(c) => !c.symbol(symbol).prunable(),
            None => self.symbol_score(symbol) > 0.0,
        }
    }
}

fn prune_guard_violation(level: &str, full: f64, found: f64) -> String {
    format!(
        "lint-prune verification failed at {level} level: Test(all)={full} != \
         Test(found)={found} (the static prescreen pruned a variability-inducing element)"
    )
}

fn certified_audit_violation(level: &str, full: f64, found: f64) -> String {
    format!(
        "certified-prune audit failed at {level} level: Test(all)={full} != \
         Test(found)={found} (a certificate wrongly claimed Invariant for a \
         variability-inducing element)"
    )
}

fn certified_bound_violation(file: &str, cert: &flit_absint::Certificate, value: f64) -> String {
    format!(
        "certified bound violated for file {file}: certificate {cert:?} \
         contradicted by Test = {value:e} (unsound certificate)"
    )
}

/// Zero-execution certificate cross-check: every file-level finding's
/// singleton Test value must respect its certified bound. (The symbol
/// level compares against a non-`-fPIC` reference, which is outside the
/// symbol certificates' model — symbol dishonesty is caught by the
/// residual audit instead.)
fn check_certified_bounds(
    cfg: &HierarchicalConfig,
    files: &[FileFinding],
    violations: &mut Vec<String>,
) {
    let Some(certs) = cfg.prescreen.as_ref().and_then(|p| p.certificates.as_ref()) else {
        return;
    };
    for f in files {
        let cert = certs.file(f.file_id);
        if cert.contradicted_by(f.value) {
            violations.push(certified_bound_violation(&f.file_name, &cert, f.value));
        }
    }
}

/// The Test value the search itself established for its found set (the
/// Assumption-1 verification query), mined from the trace so the
/// certified audit does not re-execute it. `None` when the search mode
/// skipped that verification.
fn found_verification_value<I: Clone + Ord>(outcome: &BisectOutcome<I>) -> Option<f64> {
    let mut found: Vec<I> = outcome.found.iter().map(|(i, _)| i.clone()).collect();
    found.sort();
    outcome.trace.iter().rev().find_map(|row| {
        let mut tested = row.tested.clone();
        tested.sort();
        (tested == found).then_some(row.value)
    })
}

/// Configuration for a hierarchical search.
#[derive(Debug, Clone)]
pub struct HierarchicalConfig {
    /// The compiler driving the mixed links (FLiT uses a consistent
    /// driver and a common C++ standard library — §2.3).
    pub link_driver: CompilerKind,
    /// `Some(k)` runs `BisectBiggest` at both levels; `None` runs the
    /// verifying `BisectAll`.
    pub k: Option<usize>,
    /// Build context the search compiles and links through. The default
    /// ([`BuildCtx::uncached`]) rebuilds everything; pass a
    /// [`BuildCtx::cached`] handle to share objects and memoized links
    /// within — and across — searches.
    pub ctx: BuildCtx,
    /// Trace sink for per-level spans and execution counters (the
    /// paper's Tables 2/4 "number of runs"). Disabled by default.
    pub trace: TraceSink,
    /// Optional static prescreen from `flit-lint`: seeds speculative
    /// frontiers in predicted-sensitivity order and, when its `prune`
    /// flag is set, removes predicted-invariant items from the search
    /// space under dynamic verification.
    pub prescreen: Option<Prescreen>,
    /// Optional handle on a workflow-wide [`QueryLedger`]: every Test
    /// query (reference run, file level, probes, symbol level) is
    /// answered through the shared single-flight table — and journaled,
    /// when the ledger carries a checkpoint journal. All per-search
    /// observables (found sets, execution counts, seconds, `bisect.*`
    /// counters and spans) are byte-identical with or without a ledger;
    /// only the physical `exec.queries.*` counters change. Sharing is
    /// sound only when every search handed the same ledger uses the
    /// same pure `compare` metric.
    ///
    /// [`QueryLedger`]: crate::ledger::QueryLedger
    pub ledger: Option<LedgerHandle>,
    /// Optional execution backend deciding *where* Test queries
    /// evaluate. `None` (and any backend whose
    /// [`ExecBackend::is_remote`] is false) evaluates in-process via a
    /// [`LocalPlane`]; a remote backend (the `process` coordinator)
    /// ships every query through [`ExecBackend::dispatch`] via a
    /// [`RemotePlane`]. Found sets, execution counts, `bisect.*`
    /// counters/spans, and ledger accounting are byte-identical either
    /// way; only the `build.*` counters move into the workers.
    pub backend: Option<Arc<dyn ExecBackend>>,
}

impl HierarchicalConfig {
    /// BisectAll through a GNU-driven link.
    pub fn all() -> Self {
        HierarchicalConfig {
            link_driver: CompilerKind::Gcc,
            k: None,
            ctx: BuildCtx::uncached(),
            trace: TraceSink::disabled(),
            prescreen: None,
            ledger: None,
            backend: None,
        }
    }

    /// BisectBiggest(k) through a GNU-driven link.
    pub fn biggest(k: usize) -> Self {
        HierarchicalConfig {
            k: Some(k),
            ..HierarchicalConfig::all()
        }
    }

    /// Run this search through the given build context.
    pub fn with_ctx(mut self, ctx: BuildCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// Record this search's spans and execution counters into `trace`.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Attach a static prescreen (see [`Prescreen`]).
    pub fn with_prescreen(mut self, prescreen: Prescreen) -> Self {
        self.prescreen = Some(prescreen);
        self
    }

    /// Answer this search's Test queries through a shared query ledger
    /// (see [`HierarchicalConfig::ledger`]).
    pub fn with_ledger(mut self, ledger: LedgerHandle) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Evaluate this search's Test queries through an execution
    /// backend (see [`HierarchicalConfig::backend`]).
    pub fn with_backend(mut self, backend: Arc<dyn ExecBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The query plane this configuration evaluates through.
    fn plane<'a>(
        &'a self,
        baseline: &'a Build<'a>,
        variable: &'a Build<'a>,
        driver: &'a Driver,
        input: &'a [f64],
    ) -> Box<dyn QueryPlane + 'a> {
        match &self.backend {
            Some(b) if b.is_remote() => Box::new(RemotePlane::new(
                b.clone(),
                baseline,
                variable,
                driver,
                input,
                self.link_driver,
            )),
            _ => Box::new(LocalPlane {
                baseline,
                variable,
                driver,
                input,
                link_driver: self.link_driver,
                ctx: &self.ctx,
            }),
        }
    }
}

/// The canonical ledger keys of one search task (see [`SearchKeys`]).
fn search_keys(
    baseline: &Build,
    variable: &Build,
    driver: &Driver,
    input: &[f64],
    cfg: &HierarchicalConfig,
) -> SearchKeys {
    SearchKeys::new(
        baseline.program.fingerprint(),
        variable.program.fingerprint(),
        &driver.name,
        input,
        &baseline.compilation.label(),
        &format!("{:?}", cfg.link_driver),
    )
}

/// A file-level finding.
#[derive(Debug, Clone, PartialEq)]
pub struct FileFinding {
    /// Index in the program's file list.
    pub file_id: usize,
    /// File name.
    pub file_name: String,
    /// Singleton Test value of this file.
    pub value: f64,
}

/// A symbol-level finding.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolFinding {
    /// The function's symbol name.
    pub symbol: String,
    /// The file defining it.
    pub file_id: usize,
    /// Singleton Test value of this symbol.
    pub value: f64,
}

/// How the search ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// Both levels completed.
    Completed,
    /// The whole variable file set tested clean through the bisection
    /// link: the original variability came from the *link step* itself
    /// (the Intel vendor-math substitution on MFEM examples 4, 5, 9, 10
    /// and 15).
    LinkStepOnly,
    /// A mixed executable crashed (Table 2's File Bisect failures).
    Crashed(String),
    /// A dynamic-verification assertion failed; results may be
    /// incomplete (the user is notified, §2.4).
    AssumptionViolated,
}

/// Result of [`bisect_hierarchical`].
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalResult {
    /// How the search ended.
    pub outcome: SearchOutcome,
    /// Variability-inducing files.
    pub files: Vec<FileFinding>,
    /// Variability-inducing symbols across all searched files.
    pub symbols: Vec<SymbolFinding>,
    /// Files whose variability disappeared under the `-fPIC` probe
    /// (file-level blame only).
    pub file_level_only: Vec<usize>,
    /// Total program executions (file level + probes + symbol level,
    /// including the baseline reference run).
    pub executions: usize,
    /// Assumption violations from the verifying searches.
    pub violations: Vec<String>,
}

impl HierarchicalResult {
    /// Did the search complete with full dynamic verification?
    pub fn verified_complete(&self) -> bool {
        self.outcome == SearchOutcome::Completed && self.violations.is_empty()
    }

    /// Library-level blame (the coarsest level of Figure 1's "Library,
    /// Source, and Function Blame"): found files grouped by their
    /// top-level directory, each with the summed Test magnitude.
    pub fn library_blame(&self) -> Vec<(String, f64)> {
        let mut groups: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
        for f in &self.files {
            let lib = f
                .file_name
                .split('/')
                .next()
                .unwrap_or(&f.file_name)
                .to_string();
            *groups.entry(lib).or_default() += f.value;
        }
        let mut v: Vec<(String, f64)> = groups.into_iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

/// Run the full hierarchical search.
///
/// * `baseline` / `variable` — the two builds (identical program
///   structure; different compilations and/or different bodies, as in
///   the injection study).
/// * `driver` — the test driver (entry points and input scheme).
/// * `input` — the FLiT test input vector.
/// * `compare` — the user's comparison metric
///   (`||baseline − actual||₂` in the MFEM study). `Sync` so the same
///   metric can drive [`bisect_hierarchical_parallel`].
pub fn bisect_hierarchical(
    baseline: &Build,
    variable: &Build,
    driver: &Driver,
    input: &[f64],
    compare: &(dyn Fn(&[f64], &[f64]) -> f64 + Sync),
    cfg: &HierarchicalConfig,
) -> HierarchicalResult {
    let mut executions = 0usize;
    let mut violations: Vec<String> = Vec::new();

    // One search = one file-level span plus one symbol-level span per
    // searched file, labelled by the (driver, variable compilation)
    // pair that identifies the search.
    let search = format!("{}/{}", driver.name, variable.compilation.label());
    let variable_label = variable.compilation.label();
    let keys = cfg
        .ledger
        .as_ref()
        .map(|_| search_keys(baseline, variable, driver, input, cfg));
    let reference_runs = cfg.trace.counter(counter_names::BISECT_REFERENCE_RUNS);
    let probe_runs = cfg.trace.counter(counter_names::BISECT_PROBE_RUNS);
    let plane = cfg.plane(baseline, variable, driver, input);

    // Reference run under the trusted baseline build. Through a ledger
    // the answer (the full output vector) may be served by another
    // search or a journal replay; the accounting below is identical
    // either way.
    let reference = {
        let compute = || plane.run_recipe(&ExeRecipe::Baseline);
        match (&cfg.ledger, &keys) {
            (Some(ledger), Some(keys)) => ledger.eval_output(&keys.reference(), compute),
            _ => compute(),
        }
    };
    let base_out = match reference {
        Ok((out, _)) => {
            executions += 1;
            reference_runs.incr(1);
            out
        }
        Err(TestError::Link(e)) => {
            return HierarchicalResult {
                outcome: SearchOutcome::Crashed(format!("baseline link failed: {e}")),
                files: vec![],
                symbols: vec![],
                file_level_only: vec![],
                executions,
                violations,
            }
        }
        Err(TestError::Crash(e)) => {
            executions += 1;
            reference_runs.incr(1);
            return HierarchicalResult {
                outcome: SearchOutcome::Crashed(format!("baseline run failed: {e}")),
                files: vec![],
                symbols: vec![],
                file_level_only: vec![],
                executions,
                violations,
            };
        }
    };

    // ---- File Bisect ----
    let prune = cfg.prescreen.as_ref().filter(|p| p.prune);
    let all_file_ids: Vec<usize> = (0..baseline.program.files.len()).collect();
    let file_ids: Vec<usize> = match prune {
        Some(p) => {
            let kept: Vec<usize> = all_file_ids
                .iter()
                .copied()
                .filter(|id| p.keep_file(*id))
                .collect();
            let pruned_counter = if p.certificates.is_some() {
                counter_names::ABSINT_PRUNED_FILES
            } else {
                counter_names::LINT_PRUNED_FILES
            };
            cfg.trace
                .counter(pruned_counter)
                .incr((all_file_ids.len() - kept.len()) as u64);
            kept
        }
        None => all_file_ids.clone(),
    };
    let mut file_execs = 0usize;
    let file_secs = Cell::new(0.0f64);
    let file_raw = |items: &[usize]| -> Result<(f64, f64), TestError> {
        let recipe = ExeRecipe::FileMixed {
            items: items.to_vec(),
        };
        let (out, seconds) = plane.run_recipe(&recipe)?;
        Ok((compare(&base_out, &out), seconds))
    };
    let file_test = |items: &[usize]| -> Result<f64, TestError> {
        let (value, seconds) = match (&cfg.ledger, &keys) {
            (Some(ledger), Some(keys)) => {
                ledger.eval_score(&keys.file_query(&variable_label, items), || file_raw(items))
            }
            _ => file_raw(items),
        }?;
        file_secs.set(file_secs.get() + seconds);
        Ok(value)
    };
    let counted_file_test = CountingTest {
        inner: &file_test,
        count: &mut file_execs,
    };

    let mut file_outcome = match cfg.k {
        None => bisect_all(counted_file_test, &file_ids),
        Some(k) => bisect_biggest(counted_file_test, &file_ids, k),
    };
    // Algorithm-1-style dynamic verification guarding the prune: the
    // found set must reproduce the *unpruned* space's Test value, or
    // the static prescreen hid a real culprit. In certified mode the
    // certificate replaces one leg of the probe: `Test(found)` is mined
    // from the search's own Assumption-1 verification query, so only
    // the residual `Test(all)` audit executes.
    let mut guard_violations: Vec<String> = Vec::new();
    if let Some(p) = prune.filter(|_| file_ids.len() < all_file_ids.len()) {
        if let Ok(r) = &file_outcome {
            let certified = p.certificates.is_some();
            let mut found_ids: Vec<usize> = r.found.iter().map(|(i, _)| *i).collect();
            found_ids.sort_unstable();
            let (full, found_v) = if certified {
                cfg.trace
                    .counter(counter_names::ABSINT_PRUNE_AUDITS)
                    .incr(1);
                file_execs += 1;
                let full = file_test(&all_file_ids);
                let found_v = match found_verification_value(r) {
                    Some(v) => Ok(v),
                    None => {
                        // BisectBiggest skips the Assumption-1
                        // verification query; fall back to an explicit
                        // one.
                        file_execs += 1;
                        file_test(&found_ids)
                    }
                };
                (full, found_v)
            } else {
                file_execs += 2;
                cfg.trace
                    .counter(counter_names::LINT_PRUNE_VERIFICATIONS)
                    .incr(2);
                (file_test(&all_file_ids), file_test(&found_ids))
            };
            match (full, found_v) {
                (Ok(full), Ok(found_v)) => {
                    if full != found_v {
                        guard_violations.push(if certified {
                            certified_audit_violation("file", full, found_v)
                        } else {
                            prune_guard_violation("file", full, found_v)
                        });
                    }
                }
                (Err(e), _) | (_, Err(e)) => file_outcome = Err(e),
            }
        }
    }
    executions += file_execs;
    cfg.trace
        .counter(counter_names::BISECT_FILE_RUNS)
        .incr(file_execs as u64);
    cfg.trace.span(
        phase::BISECT_FILE,
        search.clone(),
        file_execs as u64,
        file_secs.get(),
    );

    let file_result = match file_outcome {
        Ok(r) => r,
        Err(TestError::Crash(s)) => {
            return HierarchicalResult {
                outcome: SearchOutcome::Crashed(s),
                files: vec![],
                symbols: vec![],
                file_level_only: vec![],
                executions,
                violations,
            }
        }
        Err(TestError::Link(s)) => {
            return HierarchicalResult {
                outcome: SearchOutcome::Crashed(format!("link: {s}")),
                files: vec![],
                symbols: vec![],
                file_level_only: vec![],
                executions,
                violations,
            }
        }
    };
    for v in &file_result.violations {
        violations.push(violation_string(v, |id| {
            baseline.program.files[*id].name.clone()
        }));
    }
    violations.append(&mut guard_violations);

    let files: Vec<FileFinding> = file_result
        .found
        .iter()
        .map(|(id, value)| FileFinding {
            file_id: *id,
            file_name: baseline.program.files[*id].name.clone(),
            value: *value,
        })
        .collect();
    check_certified_bounds(cfg, &files, &mut violations);

    if files.is_empty() {
        let outcome = if violations.is_empty() {
            // Nothing found and nothing flagged: the mixed link cannot
            // reproduce the variability — link-step blame.
            SearchOutcome::LinkStepOnly
        } else {
            SearchOutcome::AssumptionViolated
        };
        return HierarchicalResult {
            outcome,
            files,
            symbols: vec![],
            file_level_only: vec![],
            executions,
            violations,
        };
    }

    // ---- Symbol Bisect per found file ----
    let mut symbols: Vec<SymbolFinding> = Vec::new();
    let mut file_level_only: Vec<usize> = Vec::new();

    for finding in &files {
        let fid = finding.file_id;
        // -fPIC probe: does the variability survive the recompile?
        let probe_answer = {
            let compute = || -> Result<(f64, f64), TestError> {
                let (out, seconds) = plane.run_recipe(&ExeRecipe::PicProbe { file: fid })?;
                Ok((compare(&base_out, &out), seconds))
            };
            match (&cfg.ledger, &keys) {
                (Some(ledger), Some(keys)) => {
                    ledger.eval_score(&keys.probe(&variable_label, fid), compute)
                }
                _ => compute(),
            }
        };
        let probe_value = match probe_answer {
            Ok((v, _)) => {
                executions += 1;
                probe_runs.incr(1);
                v
            }
            // A failed probe *link* is not an execution (the serial
            // walk returns before counting).
            Err(TestError::Link(e)) => {
                return HierarchicalResult {
                    outcome: SearchOutcome::Crashed(format!("pic probe link: {e}")),
                    files,
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                }
            }
            Err(TestError::Crash(s)) => {
                executions += 1;
                probe_runs.incr(1);
                return HierarchicalResult {
                    outcome: SearchOutcome::Crashed(s),
                    files,
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                };
            }
        };
        if probe_value == 0.0 {
            file_level_only.push(fid);
            continue;
        }

        let all_syms = baseline.program.exported_symbols_of_file(fid);
        if all_syms.is_empty() {
            file_level_only.push(fid);
            continue;
        }
        let syms: Vec<String> = match prune {
            Some(p) => {
                let kept: Vec<String> = all_syms
                    .iter()
                    .filter(|s| p.keep_symbol(s))
                    .cloned()
                    .collect();
                let pruned_counter = if p.certificates.is_some() {
                    counter_names::ABSINT_PRUNED_SYMBOLS
                } else {
                    counter_names::LINT_PRUNED_SYMBOLS
                };
                cfg.trace
                    .counter(pruned_counter)
                    .incr((all_syms.len() - kept.len()) as u64);
                kept
            }
            None => all_syms.clone(),
        };
        let mut sym_execs = 0usize;
        let sym_secs = Cell::new(0.0f64);
        let sym_raw = |items: &[String]| -> Result<(f64, f64), TestError> {
            let recipe = ExeRecipe::SymbolMixed {
                file: fid,
                items: items.to_vec(),
            };
            let (out, seconds) = plane.run_recipe(&recipe)?;
            Ok((compare(&base_out, &out), seconds))
        };
        let sym_test = |items: &[String]| -> Result<f64, TestError> {
            let (value, seconds) = match (&cfg.ledger, &keys) {
                (Some(ledger), Some(keys)) => ledger
                    .eval_score(&keys.symbol_query(&variable_label, fid, items), || {
                        sym_raw(items)
                    }),
                _ => sym_raw(items),
            }?;
            sym_secs.set(sym_secs.get() + seconds);
            Ok(value)
        };
        let counted_sym_test = CountingTest {
            inner: &sym_test,
            count: &mut sym_execs,
        };
        let mut sym_outcome = match cfg.k {
            None => bisect_all(counted_sym_test, &syms),
            Some(k) => bisect_biggest(counted_sym_test, &syms, k),
        };
        // Dynamic verification guarding a symbol-level prune (see the
        // file-level guard above).
        let mut guard_violations: Vec<String> = Vec::new();
        if let Some(p) = prune.filter(|_| syms.len() < all_syms.len()) {
            if let Ok(r) = &sym_outcome {
                let certified = p.certificates.is_some();
                let mut full = all_syms.clone();
                full.sort();
                let mut found_syms: Vec<String> = r.found.iter().map(|(s, _)| s.clone()).collect();
                found_syms.sort();
                let (a, b) = if certified {
                    cfg.trace
                        .counter(counter_names::ABSINT_PRUNE_AUDITS)
                        .incr(1);
                    sym_execs += 1;
                    let a = sym_test(&full);
                    let b = match found_verification_value(r) {
                        Some(v) => Ok(v),
                        None => {
                            sym_execs += 1;
                            sym_test(&found_syms)
                        }
                    };
                    (a, b)
                } else {
                    sym_execs += 2;
                    cfg.trace
                        .counter(counter_names::LINT_PRUNE_VERIFICATIONS)
                        .incr(2);
                    (sym_test(&full), sym_test(&found_syms))
                };
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        if a != b {
                            guard_violations.push(if certified {
                                certified_audit_violation("symbol", a, b)
                            } else {
                                prune_guard_violation("symbol", a, b)
                            });
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => sym_outcome = Err(e),
                }
            }
        }
        executions += sym_execs;
        cfg.trace
            .counter(counter_names::BISECT_SYMBOL_RUNS)
            .incr(sym_execs as u64);
        cfg.trace.span(
            phase::BISECT_SYMBOL,
            format!("{search}/{}", baseline.program.files[fid].name),
            sym_execs as u64,
            sym_secs.get(),
        );
        match sym_outcome {
            Ok(r) => {
                for v in &r.violations {
                    violations.push(violation_string(v, Clone::clone));
                }
                violations.append(&mut guard_violations);
                if r.found.is_empty() {
                    // Exported-symbol interposition cannot reproduce it
                    // (e.g. variability lives in statics/inlined code).
                    file_level_only.push(fid);
                }
                for (symbol, value) in r.found {
                    symbols.push(SymbolFinding {
                        symbol,
                        file_id: fid,
                        value,
                    });
                }
            }
            Err(TestError::Crash(s)) => {
                return HierarchicalResult {
                    outcome: SearchOutcome::Crashed(s),
                    files,
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                }
            }
            Err(TestError::Link(s)) => {
                return HierarchicalResult {
                    outcome: SearchOutcome::Crashed(format!("link: {s}")),
                    files,
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                }
            }
        }
    }

    let outcome = if violations.is_empty() {
        SearchOutcome::Completed
    } else {
        SearchOutcome::AssumptionViolated
    };
    HierarchicalResult {
        outcome,
        files,
        symbols,
        file_level_only,
        executions,
        violations,
    }
}

/// What one `-fPIC` probe produced, evaluated off-thread and folded in
/// file order so the serial path's early-return and counting semantics
/// are reproduced exactly.
enum ProbeOutcome {
    /// The probe link failed (serial: not counted as an execution).
    LinkFail(String),
    /// The probe run failed (serial: counted, then the search crashes).
    RunFail(String),
    /// The probe's comparison value.
    Value(f64),
}

/// [`bisect_hierarchical`] with every independent Test query fanned out
/// on a shared execution backend.
///
/// Three parallel stages, each *decided* by the planner and *folded* in
/// the serial order: the file-level search runs as a frontier-driven
/// plan (both halves of every split, plus speculation, evaluated
/// concurrently through a single-flight [`SharedOracle`]); the `-fPIC`
/// probes of all found files run as one wave; the per-file symbol
/// searches run as *joint* plans sharing the backend. The result —
/// outcome, findings, execution counts, violations, and the `bisect.*`
/// spans/counters — is byte-identical to [`bisect_hierarchical`] at any
/// worker count; only the additional `exec.wave` scheduling spans
/// depend on the backend width. With a remote backend
/// ([`ExecBackend::is_remote`], e.g. the `process` coordinator), the
/// same fan-out applies but each query evaluates in a worker
/// subprocess via [`RemotePlane`].
///
/// A panicking Test (which would abort the serial process) surfaces as
/// [`SearchOutcome::Crashed`], as does a backend whose retry budget is
/// exhausted.
pub fn bisect_hierarchical_parallel(
    baseline: &Build,
    variable: &Build,
    driver: &Driver,
    input: &[f64],
    compare: &(dyn Fn(&[f64], &[f64]) -> f64 + Sync),
    cfg: &HierarchicalConfig,
    backend: &dyn ExecBackend,
) -> HierarchicalResult {
    let mut executions = 0usize;
    let mut violations: Vec<String> = Vec::new();

    let search = format!("{}/{}", driver.name, variable.compilation.label());
    let reference_runs = cfg.trace.counter(counter_names::BISECT_REFERENCE_RUNS);
    let probe_runs = cfg.trace.counter(counter_names::BISECT_PROBE_RUNS);

    let crashed = |message: String,
                   files: Vec<FileFinding>,
                   symbols: Vec<SymbolFinding>,
                   file_level_only: Vec<usize>,
                   executions: usize,
                   violations: Vec<String>| HierarchicalResult {
        outcome: SearchOutcome::Crashed(message),
        files,
        symbols,
        file_level_only,
        executions,
        violations,
    };

    let variable_label = variable.compilation.label();
    let keys = cfg
        .ledger
        .as_ref()
        .map(|_| search_keys(baseline, variable, driver, input, cfg));
    let plane = cfg.plane(baseline, variable, driver, input);

    // Reference run under the trusted baseline build (serial: it is one
    // run and everything downstream compares against it).
    let reference = {
        let compute = || plane.run_recipe(&ExeRecipe::Baseline);
        match (&cfg.ledger, &keys) {
            (Some(ledger), Some(keys)) => ledger.eval_output(&keys.reference(), compute),
            _ => compute(),
        }
    };
    let base_out = match reference {
        Ok((out, _)) => {
            executions += 1;
            reference_runs.incr(1);
            out
        }
        // A failed baseline *link* is not an execution.
        Err(TestError::Link(e)) => {
            return crashed(
                format!("baseline link failed: {e}"),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Err(TestError::Crash(e)) => {
            executions += 1;
            reference_runs.incr(1);
            return crashed(
                format!("baseline run failed: {e}"),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            );
        }
    };

    let mode = match cfg.k {
        None => SearchMode::All,
        Some(k) => SearchMode::Biggest(k),
    };

    // ---- File Bisect (planner-driven) ----
    let prune = cfg.prescreen.as_ref().filter(|p| p.prune);
    let all_file_ids: Vec<usize> = (0..baseline.program.files.len()).collect();
    let file_ids: Vec<usize> = match prune {
        Some(p) => {
            let kept: Vec<usize> = all_file_ids
                .iter()
                .copied()
                .filter(|id| p.keep_file(*id))
                .collect();
            let pruned_counter = if p.certificates.is_some() {
                counter_names::ABSINT_PRUNED_FILES
            } else {
                counter_names::LINT_PRUNED_FILES
            };
            cfg.trace
                .counter(pruned_counter)
                .incr((all_file_ids.len() - kept.len()) as u64);
            kept
        }
        None => all_file_ids.clone(),
    };
    let file_score = |items: &[usize]| -> f64 {
        let p = cfg.prescreen.as_ref().expect("seed implies a prescreen");
        items.iter().map(|i| p.file_score(*i)).fold(0.0, f64::max)
    };
    let file_seed: Option<SpeculationScore<'_, usize>> = cfg
        .prescreen
        .as_ref()
        .map(|_| &file_score as SpeculationScore<'_, usize>);
    let file_raw = |items: &[usize]| -> Result<(f64, f64), TestError> {
        let recipe = ExeRecipe::FileMixed {
            items: items.to_vec(),
        };
        let (out, seconds) = plane.run_recipe(&recipe)?;
        Ok((compare(&base_out, &out), seconds))
    };
    let file_oracle = match (&cfg.ledger, &keys) {
        (Some(ledger), Some(keys)) => {
            let k = keys.clone();
            let vl = variable_label.clone();
            SharedOracle::with_ledger(file_raw, &cfg.trace, ledger.clone(), move |items| {
                k.file_query(&vl, items)
            })
        }
        _ => SharedOracle::new(file_raw, &cfg.trace),
    };
    let file_label = format!("{search}/file");
    let mut file_plans = [BisectPlan::new(&file_ids, mode)];
    let file_driven = drive_plans_seeded(
        &mut file_plans,
        &[&file_oracle],
        backend,
        &cfg.trace,
        &file_label,
        file_seed,
    );
    let file_result = match file_driven {
        Err(ExecError::WorkerPanicked { message, .. }) => {
            return crashed(
                format!("bisect worker panicked: {message}"),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Err(ExecError::Backend { message }) => {
            return crashed(
                format!("bisect backend failed: {message}"),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Ok(mut results) => results.pop().expect("one file-level plan"),
    };
    // Counters and the level span cover the executions the *serial*
    // algorithm performs — on failures too — never the speculation.
    let (mut file_execs, mut file_secs) = match &file_result {
        Ok(p) => (p.outcome.executions, p.seconds),
        Err(f) => (f.executions, f.seconds),
    };
    // Prune guard, byte-identical to the serial path (the oracle may
    // serve these from the memo; the accounting is unconditional).
    let mut guard_violations: Vec<String> = Vec::new();
    let mut guard_error: Option<TestError> = None;
    if let Some(pre) = prune.filter(|_| file_ids.len() < all_file_ids.len()) {
        if let Ok(p) = &file_result {
            let certified = pre.certificates.is_some();
            let mut found_ids: Vec<usize> = p.outcome.found.iter().map(|(i, _)| *i).collect();
            found_ids.sort_unstable();
            let (full, found_v) = if certified {
                cfg.trace
                    .counter(counter_names::ABSINT_PRUNE_AUDITS)
                    .incr(1);
                file_execs += 1;
                let full = file_oracle.eval(&all_file_ids);
                if let Ok((_, s)) = &full {
                    file_secs += *s;
                }
                let found_v = match found_verification_value(&p.outcome) {
                    Some(v) => Ok((v, 0.0)),
                    None => {
                        file_execs += 1;
                        let r = file_oracle.eval(&found_ids);
                        if let Ok((_, s)) = &r {
                            file_secs += *s;
                        }
                        r
                    }
                };
                (full, found_v)
            } else {
                file_execs += 2;
                cfg.trace
                    .counter(counter_names::LINT_PRUNE_VERIFICATIONS)
                    .incr(2);
                let full = file_oracle.eval(&all_file_ids);
                if let Ok((_, s)) = &full {
                    file_secs += *s;
                }
                let found_v = file_oracle.eval(&found_ids);
                if let Ok((_, s)) = &found_v {
                    file_secs += *s;
                }
                (full, found_v)
            };
            match (full, found_v) {
                (Ok((a, _)), Ok((b, _))) => {
                    if a != b {
                        guard_violations.push(if certified {
                            certified_audit_violation("file", a, b)
                        } else {
                            prune_guard_violation("file", a, b)
                        });
                    }
                }
                (Err(e), _) | (_, Err(e)) => guard_error = Some(e),
            }
        }
    }
    executions += file_execs;
    cfg.trace
        .counter(counter_names::BISECT_FILE_RUNS)
        .incr(file_execs as u64);
    cfg.trace.span(
        phase::BISECT_FILE,
        search.clone(),
        file_execs as u64,
        file_secs,
    );
    match guard_error {
        Some(TestError::Crash(s)) => {
            return crashed(s, vec![], vec![], vec![], executions, violations)
        }
        Some(TestError::Link(s)) => {
            return crashed(
                format!("link: {s}"),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        None => {}
    }
    let file_outcome: PlanOutcome<usize> = match file_result {
        Ok(p) => p,
        Err(PlanFailure {
            error: TestError::Crash(s),
            ..
        }) => return crashed(s, vec![], vec![], vec![], executions, violations),
        Err(PlanFailure {
            error: TestError::Link(s),
            ..
        }) => {
            return crashed(
                format!("link: {s}"),
                vec![],
                vec![],
                vec![],
                executions,
                violations,
            )
        }
    };
    emit_query_spans(&cfg.trace, &file_label, &file_outcome);
    for v in &file_outcome.outcome.violations {
        violations.push(violation_string(v, |id| {
            baseline.program.files[*id].name.clone()
        }));
    }
    violations.append(&mut guard_violations);

    let files: Vec<FileFinding> = file_outcome
        .outcome
        .found
        .iter()
        .map(|(id, value)| FileFinding {
            file_id: *id,
            file_name: baseline.program.files[*id].name.clone(),
            value: *value,
        })
        .collect();
    check_certified_bounds(cfg, &files, &mut violations);

    if files.is_empty() {
        let outcome = if violations.is_empty() {
            SearchOutcome::LinkStepOnly
        } else {
            SearchOutcome::AssumptionViolated
        };
        return HierarchicalResult {
            outcome,
            files,
            symbols: vec![],
            file_level_only: vec![],
            executions,
            violations,
        };
    }

    // ---- -fPIC probes: one wave over all found files ----
    let probe_wave = run_on(backend, files.len(), |i| {
        let fid = files[i].file_id;
        let compute = || -> Result<(f64, f64), TestError> {
            let (out, seconds) = plane.run_recipe(&ExeRecipe::PicProbe { file: fid })?;
            Ok((compare(&base_out, &out), seconds))
        };
        let answer = match (&cfg.ledger, &keys) {
            (Some(ledger), Some(keys)) => {
                ledger.eval_score(&keys.probe(&variable_label, fid), compute)
            }
            _ => compute(),
        };
        match answer {
            Ok((v, _)) => ProbeOutcome::Value(v),
            Err(TestError::Link(e)) => ProbeOutcome::LinkFail(format!("pic probe link: {e}")),
            Err(TestError::Crash(s)) => ProbeOutcome::RunFail(s),
        }
    });
    let probes = match probe_wave {
        Ok(p) => p,
        Err(ExecError::WorkerPanicked { message, .. }) => {
            return crashed(
                format!("bisect worker panicked: {message}"),
                files,
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Err(ExecError::Backend { message }) => {
            return crashed(
                format!("bisect backend failed: {message}"),
                files,
                vec![],
                vec![],
                executions,
                violations,
            )
        }
    };

    // ---- Symbol Bisect: joint plans for every candidate file ----
    // Candidates are chosen optimistically (probe positive, exported
    // symbols present); whether a candidate's result is *consumed* is
    // decided by the fold below, which replicates the serial walk.
    struct Candidate {
        fid: usize,
        syms: Vec<String>,
    }
    let candidates: Vec<Candidate> = files
        .iter()
        .enumerate()
        .filter_map(|(i, finding)| match probes[i] {
            ProbeOutcome::Value(v) if v != 0.0 => {
                let syms = baseline.program.exported_symbols_of_file(finding.file_id);
                if syms.is_empty() {
                    return None;
                }
                // Under pruning the plan searches only the kept symbols
                // (the fold accounts for what was dropped, in serial
                // order). A fully-pruned file still gets a plan so the
                // fold has a result to consume.
                let syms = match prune {
                    Some(p) => syms.into_iter().filter(|s| p.keep_symbol(s)).collect(),
                    None => syms,
                };
                Some(Candidate {
                    fid: finding.file_id,
                    syms,
                })
            }
            _ => None,
        })
        .collect();
    let sym_oracles: Vec<SharedOracle<'_, String>> = candidates
        .iter()
        .map(|c| {
            let fid = c.fid;
            let base_out = &base_out;
            let plane = &plane;
            let raw = move |items: &[String]| -> Result<(f64, f64), TestError> {
                let recipe = ExeRecipe::SymbolMixed {
                    file: fid,
                    items: items.to_vec(),
                };
                let (out, seconds) = plane.run_recipe(&recipe)?;
                Ok((compare(base_out, &out), seconds))
            };
            match (&cfg.ledger, &keys) {
                (Some(ledger), Some(keys)) => {
                    let k = keys.clone();
                    let vl = variable_label.clone();
                    SharedOracle::with_ledger(raw, &cfg.trace, ledger.clone(), move |items| {
                        k.symbol_query(&vl, fid, items)
                    })
                }
                _ => SharedOracle::new(raw, &cfg.trace),
            }
        })
        .collect();
    let mut sym_plans: Vec<BisectPlan<String>> = candidates
        .iter()
        .map(|c| BisectPlan::new(&c.syms, mode))
        .collect();
    let oracle_refs: Vec<&SharedOracle<'_, String>> = sym_oracles.iter().collect();
    let sym_score = |items: &[String]| -> f64 {
        let p = cfg.prescreen.as_ref().expect("seed implies a prescreen");
        items.iter().map(|s| p.symbol_score(s)).fold(0.0, f64::max)
    };
    let sym_seed: Option<SpeculationScore<'_, String>> = cfg
        .prescreen
        .as_ref()
        .map(|_| &sym_score as SpeculationScore<'_, String>);
    let oracle_idx_by_fid: std::collections::HashMap<usize, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.fid, i))
        .collect();
    let sym_driven = drive_plans_seeded(
        &mut sym_plans,
        &oracle_refs,
        backend,
        &cfg.trace,
        &format!("{search}/symbol"),
        sym_seed,
    );
    let sym_results = match sym_driven {
        Ok(r) => r,
        Err(ExecError::WorkerPanicked { message, .. }) => {
            return crashed(
                format!("bisect worker panicked: {message}"),
                files,
                vec![],
                vec![],
                executions,
                violations,
            )
        }
        Err(ExecError::Backend { message }) => {
            return crashed(
                format!("bisect backend failed: {message}"),
                files,
                vec![],
                vec![],
                executions,
                violations,
            )
        }
    };
    let mut sym_by_fid: std::collections::HashMap<usize, Result<PlanOutcome<String>, PlanFailure>> =
        candidates.iter().map(|c| c.fid).zip(sym_results).collect();

    // ---- Fold in file order: replicate the serial walk byte-for-byte,
    // discarding any speculative results the serial path never reaches.
    let mut symbols: Vec<SymbolFinding> = Vec::new();
    let mut file_level_only: Vec<usize> = Vec::new();
    for (i, finding) in files.iter().enumerate() {
        let fid = finding.file_id;
        match &probes[i] {
            ProbeOutcome::LinkFail(msg) => {
                return crashed(
                    msg.clone(),
                    files.clone(),
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                )
            }
            ProbeOutcome::RunFail(msg) => {
                executions += 1;
                probe_runs.incr(1);
                return crashed(
                    msg.clone(),
                    files.clone(),
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                );
            }
            ProbeOutcome::Value(v) => {
                executions += 1;
                probe_runs.incr(1);
                if *v == 0.0 {
                    file_level_only.push(fid);
                    continue;
                }
            }
        }
        let all_syms = baseline.program.exported_symbols_of_file(fid);
        if all_syms.is_empty() {
            file_level_only.push(fid);
            continue;
        }
        let kept_syms = match prune {
            Some(p) => {
                let kept = all_syms.iter().filter(|s| p.keep_symbol(s)).count();
                let pruned_counter = if p.certificates.is_some() {
                    counter_names::ABSINT_PRUNED_SYMBOLS
                } else {
                    counter_names::LINT_PRUNED_SYMBOLS
                };
                cfg.trace
                    .counter(pruned_counter)
                    .incr((all_syms.len() - kept) as u64);
                kept
            }
            None => all_syms.len(),
        };
        let sym_result = sym_by_fid
            .remove(&fid)
            .expect("candidate plan for every searched file");
        let (mut sym_execs, mut sym_secs) = match &sym_result {
            Ok(p) => (p.outcome.executions, p.seconds),
            Err(f) => (f.executions, f.seconds),
        };
        // Symbol-level prune guard, mirroring the serial path.
        let mut guard_violations: Vec<String> = Vec::new();
        let mut guard_error: Option<TestError> = None;
        if let Some(pre) = prune.filter(|_| kept_syms < all_syms.len()) {
            if let Ok(p) = &sym_result {
                let certified = pre.certificates.is_some();
                let oracle = sym_oracles
                    .get(oracle_idx_by_fid[&fid])
                    .expect("oracle for every candidate");
                let mut full = all_syms.clone();
                full.sort();
                let mut found_syms: Vec<String> =
                    p.outcome.found.iter().map(|(s, _)| s.clone()).collect();
                found_syms.sort();
                let (a, b) = if certified {
                    cfg.trace
                        .counter(counter_names::ABSINT_PRUNE_AUDITS)
                        .incr(1);
                    sym_execs += 1;
                    let a = oracle.eval(&full);
                    if let Ok((_, s)) = &a {
                        sym_secs += *s;
                    }
                    let b = match found_verification_value(&p.outcome) {
                        Some(v) => Ok((v, 0.0)),
                        None => {
                            sym_execs += 1;
                            let r = oracle.eval(&found_syms);
                            if let Ok((_, s)) = &r {
                                sym_secs += *s;
                            }
                            r
                        }
                    };
                    (a, b)
                } else {
                    sym_execs += 2;
                    cfg.trace
                        .counter(counter_names::LINT_PRUNE_VERIFICATIONS)
                        .incr(2);
                    let a = oracle.eval(&full);
                    if let Ok((_, s)) = &a {
                        sym_secs += *s;
                    }
                    let b = oracle.eval(&found_syms);
                    if let Ok((_, s)) = &b {
                        sym_secs += *s;
                    }
                    (a, b)
                };
                match (a, b) {
                    (Ok((av, _)), Ok((bv, _))) => {
                        if av != bv {
                            guard_violations.push(if certified {
                                certified_audit_violation("symbol", av, bv)
                            } else {
                                prune_guard_violation("symbol", av, bv)
                            });
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => guard_error = Some(e),
                }
            }
        }
        executions += sym_execs;
        cfg.trace
            .counter(counter_names::BISECT_SYMBOL_RUNS)
            .incr(sym_execs as u64);
        let sym_label = format!("{search}/{}", baseline.program.files[fid].name);
        cfg.trace.span(
            phase::BISECT_SYMBOL,
            sym_label.clone(),
            sym_execs as u64,
            sym_secs,
        );
        match guard_error {
            Some(TestError::Crash(s)) => {
                return crashed(
                    s,
                    files.clone(),
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                )
            }
            Some(TestError::Link(s)) => {
                return crashed(
                    format!("link: {s}"),
                    files.clone(),
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                )
            }
            None => {}
        }
        match sym_result {
            Ok(p) => {
                emit_query_spans(&cfg.trace, &sym_label, &p);
                for v in &p.outcome.violations {
                    violations.push(violation_string(v, Clone::clone));
                }
                violations.append(&mut guard_violations);
                if p.outcome.found.is_empty() {
                    file_level_only.push(fid);
                }
                for (symbol, value) in p.outcome.found {
                    symbols.push(SymbolFinding {
                        symbol,
                        file_id: fid,
                        value,
                    });
                }
            }
            Err(PlanFailure {
                error: TestError::Crash(s),
                ..
            }) => {
                return crashed(
                    s,
                    files.clone(),
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                )
            }
            Err(PlanFailure {
                error: TestError::Link(s),
                ..
            }) => {
                return crashed(
                    format!("link: {s}"),
                    files.clone(),
                    symbols,
                    file_level_only,
                    executions,
                    violations,
                )
            }
        }
    }

    let outcome = if violations.is_empty() {
        SearchOutcome::Completed
    } else {
        SearchOutcome::AssumptionViolated
    };
    HierarchicalResult {
        outcome,
        files,
        symbols,
        file_level_only,
        executions,
        violations,
    }
}

fn violation_string<I>(v: &AssumptionViolation<I>, name: impl Fn(&I) -> String) -> String {
    match v {
        AssumptionViolation::SingletonBlame { element } => format!(
            "singleton-blame assumption violated at `{}` (possible false negatives)",
            name(element)
        ),
        AssumptionViolation::UniqueError {
            items_value,
            found_value,
        } => format!(
            "unique-error assumption violated: Test(items)={items_value} != Test(found)={found_value}"
        ),
    }
}

/// Adapter: counts real executions through an external counter so the
/// hierarchical result can report a single total.
struct CountingTest<'c, F> {
    inner: F,
    count: &'c mut usize,
}

impl<I, F> TestFn<I> for CountingTest<'_, F>
where
    F: FnMut(&[I]) -> Result<f64, TestError>,
{
    fn test(&mut self, items: &[I]) -> Result<f64, TestError> {
        *self.count += 1;
        (self.inner)(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_fpsim::ulp::l2_diff;
    use flit_program::kernel::Kernel;
    use flit_program::model::{Function, SimProgram, SourceFile};
    use flit_toolchain::compilation::Compilation;
    use flit_toolchain::compiler::OptLevel;
    use flit_toolchain::flags::Switch;

    /// A program with known blame structure: files 1 and 3 contain
    /// env-sensitive functions, the rest are benign.
    fn program() -> SimProgram {
        SimProgram::new(
            "hier-test",
            vec![
                SourceFile::new(
                    "io.cpp",
                    vec![
                        Function::exported("io_read", Kernel::Benign { flavor: 0 }),
                        Function::exported("io_write", Kernel::Benign { flavor: 1 }),
                    ],
                ),
                SourceFile::new(
                    "assemble.cpp",
                    vec![
                        Function::exported("assemble_mass", Kernel::DotMix { stride: 3 }),
                        Function::exported("assemble_aux", Kernel::Benign { flavor: 2 }),
                    ],
                ),
                SourceFile::new(
                    "mesh.cpp",
                    vec![Function::exported(
                        "mesh_permute",
                        Kernel::Benign { flavor: 3 },
                    )],
                ),
                SourceFile::new(
                    "solver.cpp",
                    vec![
                        Function::exported("solver_norm", Kernel::NormScale),
                        Function::exported("solver_post", Kernel::Benign { flavor: 4 }),
                    ],
                ),
            ],
        )
    }

    fn driver() -> Driver {
        Driver::new(
            "hier",
            vec![
                "io_read".into(),
                "assemble_mass".into(),
                "assemble_aux".into(),
                "mesh_permute".into(),
                "solver_norm".into(),
                "solver_post".into(),
                "io_write".into(),
            ],
            2,
            64,
        )
    }

    fn l2_compare(a: &[f64], b: &[f64]) -> f64 {
        l2_diff(a, b)
    }

    #[test]
    fn finds_both_files_and_their_symbols() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        let res = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert_eq!(
            res.outcome,
            SearchOutcome::Completed,
            "{:?}",
            res.violations
        );
        let mut file_ids: Vec<usize> = res.files.iter().map(|f| f.file_id).collect();
        file_ids.sort();
        assert_eq!(file_ids, vec![1, 3], "blamed files");
        let mut syms: Vec<&str> = res.symbols.iter().map(|s| s.symbol.as_str()).collect();
        syms.sort();
        assert_eq!(syms, vec!["assemble_mass", "solver_norm"]);
        assert!(res.verified_complete());
        // O(k log N) scale: a handful of file tests + per-file symbol
        // searches; far below exhaustive.
        assert!(res.executions < 40, "executions = {}", res.executions);
    }

    #[test]
    fn biggest_k1_finds_the_dominant_file_only() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        let res = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::biggest(1),
        );
        assert_eq!(res.outcome, SearchOutcome::Completed);
        assert_eq!(res.files.len(), 1);
        assert!(res.symbols.len() <= 1);
    }

    #[test]
    fn clean_compilation_is_link_step_only_shape() {
        // Baseline vs plain -O3 (value-safe): nothing to find; the
        // search reports that the mixed link shows no variability.
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![],
            ),
            1,
        );
        let res = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert_eq!(res.outcome, SearchOutcome::LinkStepOnly);
        assert!(res.files.is_empty());
    }

    #[test]
    fn extended_precision_blame_stops_at_file_level() {
        // x87 extended-precision variability washes out under the -fPIC
        // probe: the file is reported, no symbols.
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O2,
                vec![Switch::FpMath387],
            ),
            1,
        );
        let res = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert_eq!(res.outcome, SearchOutcome::Completed);
        assert!(!res.files.is_empty());
        assert!(res.symbols.is_empty(), "symbols: {:?}", res.symbols);
        assert_eq!(
            res.file_level_only.len(),
            res.files.len(),
            "every found file should be file-level-only under x87 blame"
        );
    }

    #[test]
    fn cached_search_matches_uncached_and_reuses_builds() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        let plain = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        let ctx = BuildCtx::cached();
        let cached = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all().with_ctx(ctx.clone()),
        );
        assert_eq!(cached.outcome, plain.outcome);
        assert_eq!(cached.files, plain.files);
        assert_eq!(cached.symbols, plain.symbols);
        assert_eq!(cached.executions, plain.executions);
        let first = ctx.stats();
        assert!(first.object_cache_hits > 0, "{first:?}");

        // A repeated search through the same context is served almost
        // entirely from the link memo.
        let again = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all().with_ctx(ctx.clone()),
        );
        assert_eq!(again.files, plain.files);
        let second = ctx.stats();
        assert_eq!(
            second.links, first.links,
            "rerun must not perform any new link"
        );
        assert!(second.link_memo_hits > first.link_memo_hits);
    }

    #[test]
    fn executions_are_counted_and_deterministic() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        let r1 = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        let r2 = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert_eq!(r1.executions, r2.executions);
        assert_eq!(r1.files, r2.files);
        assert_eq!(r1.symbols, r2.symbols);
    }

    /// The parallel search must be indistinguishable from the serial one
    /// in its entire result struct, at any worker count.
    #[test]
    fn parallel_hierarchy_matches_serial_at_every_width() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        for cfg in [HierarchicalConfig::all(), HierarchicalConfig::biggest(1)] {
            let serial =
                bisect_hierarchical(&base, &var, &driver(), &[0.5, 0.25], &l2_compare, &cfg);
            for jobs in [1, 2, 8] {
                let par = bisect_hierarchical_parallel(
                    &base,
                    &var,
                    &driver(),
                    &[0.5, 0.25],
                    &l2_compare,
                    &cfg,
                    &flit_exec::ThreadsBackend::new(jobs),
                );
                assert_eq!(par, serial, "jobs={jobs} k={:?}", cfg.k);
            }
        }
    }

    #[test]
    fn parallel_hierarchy_matches_serial_on_degenerate_shapes() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let exec = flit_exec::ThreadsBackend::new(8);
        // Clean compilation: LinkStepOnly, no files.
        let clean = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![],
            ),
            1,
        );
        let serial = bisect_hierarchical(
            &base,
            &clean,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert_eq!(serial.outcome, SearchOutcome::LinkStepOnly);
        let par = bisect_hierarchical_parallel(
            &base,
            &clean,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
            &exec,
        );
        assert_eq!(par, serial);

        // x87 blame: found files wash out under the -fPIC probe, so the
        // probe/file-level-only fold must agree too.
        let x87 = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O2,
                vec![Switch::FpMath387],
            ),
            1,
        );
        let serial = bisect_hierarchical(
            &base,
            &x87,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert!(!serial.files.is_empty());
        let par = bisect_hierarchical_parallel(
            &base,
            &x87,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
            &exec,
        );
        assert_eq!(par, serial);
    }

    /// The `bisect.*` counters and level spans — the accounting the
    /// paper reports — must also match the serial trace exactly; only
    /// `exec.*` scheduling telemetry may differ.
    #[test]
    fn parallel_hierarchy_emits_identical_bisect_counters() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(
            &p,
            Compilation::new(
                flit_toolchain::compiler::CompilerKind::Gcc,
                OptLevel::O3,
                vec![Switch::Avx2FmaUnsafe],
            ),
            1,
        );
        let counters = |trace: &flit_trace::TraceSink| -> Vec<(String, u64)> {
            trace
                .registry()
                .expect("enabled")
                .snapshot()
                .into_iter()
                .filter(|(name, _)| name.starts_with("bisect."))
                .collect()
        };
        let serial_trace = flit_trace::TraceSink::enabled();
        let serial = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all().with_trace(serial_trace.clone()),
        );
        let par_trace = flit_trace::TraceSink::enabled();
        let par = bisect_hierarchical_parallel(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all().with_trace(par_trace.clone()),
            &flit_exec::ThreadsBackend::new(4),
        );
        assert_eq!(par, serial);
        assert_eq!(counters(&par_trace), counters(&serial_trace));
        // The parallel run additionally reports scheduling telemetry.
        let waves = par_trace
            .registry()
            .unwrap()
            .snapshot()
            .get("exec.waves")
            .copied()
            .unwrap_or(0);
        assert!(waves > 0, "parallel search should record its waves");
    }

    fn unsafe_variable() -> Compilation {
        Compilation::new(
            flit_toolchain::compiler::CompilerKind::Gcc,
            OptLevel::O3,
            vec![Switch::Avx2FmaUnsafe],
        )
    }

    /// Honest certificates for the fixture pair, wrapped in a pruning
    /// prescreen — exactly what `flit bisect --prune certified` builds.
    fn certified_prescreen(p: &SimProgram, var: &Compilation) -> Prescreen {
        let certs = flit_absint::certify_pair(
            p,
            p,
            &driver(),
            &Compilation::baseline(),
            var,
            flit_toolchain::compiler::CompilerKind::Gcc,
        );
        Prescreen {
            prune: true,
            certificates: Some(certs),
            ..Prescreen::default()
        }
    }

    /// Soundness of the certified prune: the found sets are byte-
    /// identical to the unpruned search — at every width — while the
    /// search spends strictly fewer executions.
    #[test]
    fn certified_prune_is_byte_identical_and_strictly_cheaper() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, unsafe_variable(), 1);
        let unpruned = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        let cfg =
            HierarchicalConfig::all().with_prescreen(certified_prescreen(&p, &var.compilation));
        let pruned = bisect_hierarchical(&base, &var, &driver(), &[0.5, 0.25], &l2_compare, &cfg);
        assert_eq!(
            pruned.outcome,
            SearchOutcome::Completed,
            "{:?}",
            pruned.violations
        );
        assert!(pruned.violations.is_empty(), "{:?}", pruned.violations);
        assert_eq!(pruned.files, unpruned.files, "found files must not change");
        assert_eq!(
            pruned.symbols, unpruned.symbols,
            "found symbols must not change"
        );
        assert_eq!(pruned.file_level_only, unpruned.file_level_only);
        assert!(
            pruned.executions < unpruned.executions,
            "certified prune must be a strict reduction: {} vs {}",
            pruned.executions,
            unpruned.executions
        );
        for jobs in [1, 8] {
            let par = bisect_hierarchical_parallel(
                &base,
                &var,
                &driver(),
                &[0.5, 0.25],
                &l2_compare,
                &cfg,
                &flit_exec::ThreadsBackend::new(jobs),
            );
            assert_eq!(par, pruned, "jobs={jobs}");
        }
    }

    /// A certificate that wrongly claims `Invariant` for a real culprit
    /// must surface as a structured assumption violation (the residual
    /// audit), never as a silently dropped item.
    #[test]
    fn dishonest_invariant_certificate_fails_loudly() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, unsafe_variable(), 1);
        let mut screen = certified_prescreen(&p, &var.compilation);
        // File 1 (assemble.cpp) genuinely diverges under this pair;
        // forge an Invariant certificate for it.
        screen.certificates.as_mut().unwrap().files[1] = flit_absint::Certificate::Invariant;
        let cfg = HierarchicalConfig::all().with_prescreen(screen);
        let res = bisect_hierarchical(&base, &var, &driver(), &[0.5, 0.25], &l2_compare, &cfg);
        assert_eq!(res.outcome, SearchOutcome::AssumptionViolated);
        assert!(
            res.violations
                .iter()
                .any(|v| v.contains("certified-prune audit failed at file level")),
            "expected a loud audit failure, got {:?}",
            res.violations
        );
        for jobs in [1, 8] {
            let par = bisect_hierarchical_parallel(
                &base,
                &var,
                &driver(),
                &[0.5, 0.25],
                &l2_compare,
                &cfg,
                &flit_exec::ThreadsBackend::new(jobs),
            );
            assert_eq!(par, res, "jobs={jobs}");
        }
    }

    /// A dishonest `Invariant` on a culprit *symbol* is caught by the
    /// symbol-level residual audit of its file.
    #[test]
    fn dishonest_symbol_certificate_fails_loudly() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, unsafe_variable(), 1);
        let mut screen = certified_prescreen(&p, &var.compilation);
        screen
            .certificates
            .as_mut()
            .unwrap()
            .symbols
            .insert("solver_norm".into(), flit_absint::Certificate::Invariant);
        let cfg = HierarchicalConfig::all().with_prescreen(screen);
        let res = bisect_hierarchical(&base, &var, &driver(), &[0.5, 0.25], &l2_compare, &cfg);
        assert_eq!(res.outcome, SearchOutcome::AssumptionViolated);
        assert!(
            res.violations
                .iter()
                .any(|v| v.contains("certified-prune audit failed at symbol level")),
            "expected a loud audit failure, got {:?}",
            res.violations
        );
        let par = bisect_hierarchical_parallel(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &cfg,
            &flit_exec::ThreadsBackend::new(8),
        );
        assert_eq!(par, res);
    }

    /// A finite bound contradicted by the observed file divergence is
    /// caught by the zero-execution cross-check of the found set.
    #[test]
    fn contradicted_bound_certificate_fails_loudly() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, unsafe_variable(), 1);
        let mut screen = certified_prescreen(&p, &var.compilation);
        // Vastly too tight: the observed divergence of file 1 is many
        // orders of magnitude above this.
        screen.certificates.as_mut().unwrap().files[1] = flit_absint::Certificate::Bounded(1e-300);
        let cfg = HierarchicalConfig::all().with_prescreen(screen);
        let res = bisect_hierarchical(&base, &var, &driver(), &[0.5, 0.25], &l2_compare, &cfg);
        assert_eq!(res.outcome, SearchOutcome::AssumptionViolated);
        assert!(
            res.violations
                .iter()
                .any(|v| v.contains("certified bound violated for file assemble.cpp")),
            "expected a bound violation, got {:?}",
            res.violations
        );
        // The finding itself is still reported — loud, not lossy.
        assert!(res.files.iter().any(|f| f.file_id == 1));
        let par = bisect_hierarchical_parallel(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &cfg,
            &flit_exec::ThreadsBackend::new(8),
        );
        assert_eq!(par, res);
    }

    /// An all-Invariant pair (value-safe flags only) prunes the whole
    /// space and still reports the unpruned `LinkStepOnly` shape.
    #[test]
    fn certified_prune_handles_a_fully_invariant_pair() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let clean = Compilation::new(
            flit_toolchain::compiler::CompilerKind::Gcc,
            OptLevel::O3,
            vec![],
        );
        let var = Build::tagged(&p, clean.clone(), 1);
        let unpruned = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5],
            &l2_compare,
            &HierarchicalConfig::all(),
        );
        assert_eq!(unpruned.outcome, SearchOutcome::LinkStepOnly);
        let cfg = HierarchicalConfig::all().with_prescreen(certified_prescreen(&p, &clean));
        let pruned = bisect_hierarchical(&base, &var, &driver(), &[0.5], &l2_compare, &cfg);
        assert_eq!(pruned.outcome, SearchOutcome::LinkStepOnly);
        assert!(pruned.violations.is_empty(), "{:?}", pruned.violations);
        assert!(pruned.executions <= unpruned.executions);
        let par = bisect_hierarchical_parallel(
            &base,
            &var,
            &driver(),
            &[0.5],
            &l2_compare,
            &cfg,
            &flit_exec::ThreadsBackend::new(8),
        );
        assert_eq!(par, pruned);
    }

    /// The `absint.*` accounting: pruned-item and audit counters are
    /// emitted (not the lint ones), and the parallel trace agrees with
    /// the serial trace exactly.
    #[test]
    fn certified_prune_emits_absint_counters_identically() {
        let p = program();
        let base = Build::new(&p, Compilation::baseline());
        let var = Build::tagged(&p, unsafe_variable(), 1);
        let screen = certified_prescreen(&p, &var.compilation);
        // `lint.speculation.skipped` is planner scheduling telemetry
        // (parallel-only, like `exec.*`); parity is over `absint.*`.
        let snap = |trace: &flit_trace::TraceSink| -> Vec<(String, u64)> {
            trace
                .registry()
                .expect("enabled")
                .snapshot()
                .into_iter()
                .filter(|(name, _)| name.starts_with("absint."))
                .collect()
        };
        let serial_trace = flit_trace::TraceSink::enabled();
        let serial = bisect_hierarchical(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all()
                .with_prescreen(screen.clone())
                .with_trace(serial_trace.clone()),
        );
        assert_eq!(serial.outcome, SearchOutcome::Completed);
        let counters: std::collections::BTreeMap<String, u64> =
            snap(&serial_trace).into_iter().collect();
        // Files 0 and 2 are certified Invariant and pruned.
        assert_eq!(counters.get("absint.pruned.files"), Some(&2));
        // One file-level audit plus one per symbol-searched file.
        assert!(counters.get("absint.prune.audits").copied().unwrap_or(0) >= 1);
        // Certified mode must not book lint-prune accounting.
        let full = serial_trace.registry().expect("enabled").snapshot();
        assert_eq!(full.get("lint.pruned.files"), None);
        assert_eq!(full.get("lint.prune.verifications"), None);

        let par_trace = flit_trace::TraceSink::enabled();
        let par = bisect_hierarchical_parallel(
            &base,
            &var,
            &driver(),
            &[0.5, 0.25],
            &l2_compare,
            &HierarchicalConfig::all()
                .with_prescreen(screen)
                .with_trace(par_trace.clone()),
            &flit_exec::ThreadsBackend::new(4),
        );
        assert_eq!(par, serial);
        assert_eq!(snap(&par_trace), snap(&serial_trace));
    }
}
