//! The frontier-based search planner: Bisect decoupled from execution.
//!
//! [`BisectPlan`] is a pure state machine. It holds the search
//! definition (item set + [`SearchMode`]) and a table of Test answers
//! received so far; [`BisectPlan::step`] *replays* the serial algorithm
//! against that table. When the replay hits a query with no answer yet
//! it suspends and returns the [`frontier`](PlanStep::Frontier): the one
//! query the serial algorithm needs next (`required`), plus the
//! speculative queries it would need soon on either branch of the
//! pending split. A driver — serial or parallel — evaluates any subset
//! of the frontier (at minimum the required queries), feeds the answers
//! back via [`BisectPlan::answer`], and steps again.
//!
//! Because every observable — found set, trace rows, execution count,
//! simulated-seconds total, assumption violations — is derived from the
//! *replay* (which consumes answers in the serial algorithm's exact
//! call order, counting each distinct canonical set on first touch,
//! just like [`MemoTest`](crate::test_fn::MemoTest)), the outcome is
//! byte-identical to the blocking recursion no matter how many workers
//! raced ahead or which speculative answers were wasted.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::hash::Hash;

use crate::algo::{AssumptionViolation, BisectOutcome, TraceRow};
use crate::biggest::Node;
use crate::test_fn::{TestError, TestFn};

/// Which serial algorithm the plan replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// `BisectAll` with found-set pruning (Algorithm 1).
    All,
    /// `BisectAll` without pruning (the §2.2 ablation).
    AllUnpruned,
    /// `BisectBiggest(k)` — uniform-cost search, early exit.
    Biggest(usize),
}

/// A pending Test query emitted by [`BisectPlan::step`].
///
/// `items` is canonical (sorted, deduplicated) — the memo key. Exactly
/// the queries marked `required` block the serial replay; the rest are
/// speculation that a parallel driver can use to fill idle workers.
#[derive(Debug, Clone, PartialEq)]
pub struct Query<I> {
    /// The canonical item set to evaluate.
    pub items: Vec<I>,
    /// True when the serial replay cannot advance without this answer.
    pub required: bool,
}

/// A Test answer: the metric value plus the run's simulated seconds.
pub type Answer = Result<(f64, f64), TestError>;

/// A completed search: the outcome plus the canonical execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome<I> {
    /// The search outcome, byte-identical to the serial algorithm's.
    pub outcome: BisectOutcome<I>,
    /// Total simulated seconds, summed in serial consumption order (so
    /// the f64 total is bitwise-stable at any worker count).
    pub seconds: f64,
    /// Per-execution records `(set size, simulated seconds)` in serial
    /// consumption order — the basis for `exec.query` trace spans.
    pub consumed: Vec<(usize, f64)>,
}

/// A failed search: the error, plus the executions the serial algorithm
/// performed up to and including the failing query (the hierarchy
/// reports partial counts and spans on crash, so these must match the
/// serial path exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFailure {
    /// The propagated Test error.
    pub error: TestError,
    /// Executions consumed before the failure, including the failing
    /// query itself (it was a real run in the serial algorithm too).
    pub executions: usize,
    /// Simulated seconds of the successful executions.
    pub seconds: f64,
    /// Per-execution records of the successful executions.
    pub consumed: Vec<(usize, f64)>,
}

/// What [`BisectPlan::step`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep<I> {
    /// The replay is blocked: evaluate (at least the required subset
    /// of) these queries and [`answer`](BisectPlan::answer) them. The
    /// first query is always required.
    Frontier(Vec<Query<I>>),
    /// The replay ran to completion (or to a propagated Test error).
    Done(Box<Result<PlanOutcome<I>, PlanFailure>>),
}

/// Canonicalize an item set into its memo key, exactly as
/// [`MemoTest`](crate::test_fn::MemoTest) does.
pub fn canonical<I: Clone + Ord>(items: &[I]) -> Vec<I> {
    let mut key: Vec<I> = items.to_vec();
    key.sort();
    key.dedup();
    key
}

/// The planner state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct BisectPlan<I> {
    items: Vec<I>,
    mode: SearchMode,
    spec_depth: usize,
    answers: HashMap<Vec<I>, Answer>,
}

impl<I> BisectPlan<I>
where
    I: Clone + Ord + Hash,
{
    /// A plan over `items` in the given mode.
    pub fn new(items: &[I], mode: SearchMode) -> Self {
        BisectPlan {
            items: items.to_vec(),
            mode,
            spec_depth: 3,
            answers: HashMap::new(),
        }
    }

    /// Override how many split levels ahead the frontier speculates
    /// (default 3 ⇒ up to ~7 speculative queries per suspension; 0
    /// disables speculation — the frontier is only the required query).
    pub fn with_speculation(mut self, depth: usize) -> Self {
        self.spec_depth = depth;
        self
    }

    /// The search mode this plan replays.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Record the answer for a query (canonicalized internally). The
    /// first answer for a key wins; re-answers are ignored, mirroring
    /// the memo semantics.
    pub fn answer(&mut self, items: &[I], answer: Answer) {
        self.answers.entry(canonical(items)).or_insert(answer);
    }

    /// True when this key already has an answer.
    pub fn is_answered(&self, items: &[I]) -> bool {
        self.answers.contains_key(&canonical(items))
    }

    /// Replay the serial algorithm against the answers so far.
    pub fn step(&self) -> PlanStep<I> {
        let mut replay = Replay::new(self);
        let result = match self.mode {
            SearchMode::All => replay.run_all(true),
            SearchMode::AllUnpruned => replay.run_all(false),
            SearchMode::Biggest(k) => replay.run_biggest(k),
        };
        match result {
            Ok(found) => {
                let (trace, violations) = match self.mode {
                    // BisectBiggest reports neither traces nor
                    // violations, exactly like the serial function.
                    SearchMode::Biggest(_) => (vec![], vec![]),
                    _ => (replay.trace, replay.violations),
                };
                PlanStep::Done(Box::new(Ok(PlanOutcome {
                    outcome: BisectOutcome {
                        found,
                        executions: replay.executions,
                        violations,
                        trace,
                    },
                    seconds: replay.seconds,
                    consumed: replay.consumed,
                })))
            }
            Err(Stop::Crash(error)) => PlanStep::Done(Box::new(Err(PlanFailure {
                error,
                executions: replay.executions,
                seconds: replay.seconds,
                consumed: replay.consumed,
            }))),
            Err(Stop::Suspend) => {
                debug_assert!(
                    !replay.pending.is_empty(),
                    "a suspended replay must leave a non-empty frontier"
                );
                PlanStep::Frontier(replay.pending)
            }
        }
    }
}

/// Drive a plan to completion with a blocking test function, answering
/// only the required query each round — the exact serial call sequence.
pub fn drive_serial<I, F>(
    mut plan: BisectPlan<I>,
    mut test_fn: F,
) -> Result<BisectOutcome<I>, TestError>
where
    I: Clone + Ord + Hash,
    F: TestFn<I>,
{
    loop {
        match plan.step() {
            PlanStep::Done(result) => {
                return match *result {
                    Ok(p) => Ok(p.outcome),
                    Err(f) => Err(f.error),
                }
            }
            PlanStep::Frontier(queries) => {
                let q = queries.into_iter().next().expect("frontier is never empty");
                let answer = test_fn.test(&q.items).map(|v| (v, 0.0));
                plan.answer(&q.items, answer);
            }
        }
    }
}

/// Why a replay stopped early.
enum Stop {
    /// A consumed answer was a Test error: the search aborts.
    Crash(TestError),
    /// A needed answer is missing: the frontier is in `pending`.
    Suspend,
}

/// What one `BisectOne` replay yields: the items it consumed from the
/// search space, and the blamed (item, value) when Assumption 2 held.
type OneResult<I> = Result<(Vec<I>, Option<(I, f64)>), Stop>;

/// One replay of the serial algorithm against the current answer table.
struct Replay<'p, I> {
    plan: &'p BisectPlan<I>,
    /// Keys consumed so far this replay; counting on first touch
    /// reproduces `MemoTest`'s miss accounting.
    counted: HashSet<Vec<I>>,
    executions: usize,
    seconds: f64,
    consumed: Vec<(usize, f64)>,
    trace: Vec<TraceRow<I>>,
    violations: Vec<AssumptionViolation<I>>,
    pending: Vec<Query<I>>,
    pending_keys: HashSet<Vec<I>>,
}

impl<'p, I> Replay<'p, I>
where
    I: Clone + Ord + Hash,
{
    fn new(plan: &'p BisectPlan<I>) -> Self {
        Replay {
            plan,
            counted: HashSet::new(),
            executions: 0,
            seconds: 0.0,
            consumed: Vec::new(),
            trace: Vec::new(),
            violations: Vec::new(),
            pending: Vec::new(),
            pending_keys: HashSet::new(),
        }
    }

    /// Ask for `key` to be evaluated (no-op if answered or already
    /// pending). Required queries keep their emission order, which is
    /// the serial consumption order.
    fn want(&mut self, key: Vec<I>, required: bool) {
        if self.plan.answers.contains_key(&key) || self.pending_keys.contains(&key) {
            return;
        }
        self.pending_keys.insert(key.clone());
        self.pending.push(Query {
            items: key,
            required,
        });
    }

    /// Consume the answer for `items`: count it on first touch (a
    /// `MemoTest` miss), suspend if missing, abort on error. Error
    /// answers count as an execution — the serial run performed them.
    fn probe(&mut self, items: &[I]) -> Result<f64, Stop> {
        let key = canonical(items);
        match self.plan.answers.get(&key) {
            Some(Ok((value, secs))) => {
                if self.counted.insert(key.clone()) {
                    self.executions += 1;
                    self.seconds += secs;
                    self.consumed.push((key.len(), *secs));
                }
                Ok(*value)
            }
            Some(Err(e)) => {
                if self.counted.insert(key) {
                    self.executions += 1;
                }
                Err(Stop::Crash(e.clone()))
            }
            None => {
                self.want(key, true);
                Err(Stop::Suspend)
            }
        }
    }

    /// Speculatively emit the queries `bisect_one(slice)` would probe,
    /// exploring both branches of any unanswered split down to `depth`
    /// levels.
    fn speculate(&mut self, slice: &[I], depth: usize) {
        if depth == 0 || slice.is_empty() {
            return;
        }
        if slice.len() == 1 {
            self.want(canonical(slice), false);
            return;
        }
        let mid = slice.len() / 2;
        let (d1, d2) = slice.split_at(mid);
        match self.plan.answers.get(&canonical(d1)) {
            // The split's outcome is known: follow the branch the
            // serial algorithm will take, at full remaining depth.
            Some(Ok((v, _))) => {
                if *v > 0.0 {
                    self.speculate(d1, depth);
                } else {
                    self.speculate(d2, depth);
                }
            }
            Some(Err(_)) => {}
            // Unknown: this probe is (or will be) on the frontier;
            // speculate one level into both possible continuations.
            None => {
                self.want(canonical(d1), false);
                self.speculate(d1, depth - 1);
                self.speculate(d2, depth - 1);
            }
        }
    }

    /// The `BisectOne` recursion (algo.rs) as a replay.
    fn one(&mut self, items: &[I], space: &[I]) -> OneResult<I> {
        if items.len() == 1 {
            let v = self.probe(items)?;
            self.trace.push(TraceRow {
                tested: items.to_vec(),
                space: space.to_vec(),
                value: v,
            });
            if v > 0.0 {
                return Ok((items.to_vec(), Some((items[0].clone(), v))));
            }
            self.violations.push(AssumptionViolation::SingletonBlame {
                element: items[0].clone(),
            });
            return Ok((items.to_vec(), None));
        }
        let mid = items.len() / 2;
        let (d1, d2) = items.split_at(mid);
        let v1 = match self.probe(d1) {
            Ok(v) => v,
            Err(Stop::Suspend) => {
                // Blocked on this split: widen the frontier with both
                // continuations so idle workers have useful guesses.
                self.speculate(d1, self.plan.spec_depth);
                self.speculate(d2, self.plan.spec_depth);
                return Err(Stop::Suspend);
            }
            Err(crash) => return Err(crash),
        };
        self.trace.push(TraceRow {
            tested: d1.to_vec(),
            space: space.to_vec(),
            value: v1,
        });
        if v1 > 0.0 {
            self.one(d1, space)
        } else {
            let (g, next) = self.one(d2, space)?;
            let mut g2 = g;
            g2.extend_from_slice(d1);
            Ok((g2, next))
        }
    }

    /// `BisectAll` / `BisectAllUnpruned` (algo.rs) as a replay.
    fn run_all(&mut self, pruned: bool) -> Result<Vec<(I, f64)>, Stop> {
        let items = self.plan.items.clone();
        let items = &items;
        let mut found: Vec<(I, f64)> = Vec::new();
        let mut t: Vec<I> = items.to_vec();

        loop {
            let v = match self.probe(&t) {
                Ok(v) => v,
                Err(Stop::Suspend) => {
                    // If positive, the next queries come from
                    // bisect_one(t); if zero, the loop breaks and the
                    // verification needs Test(found).
                    self.speculate(&t, self.plan.spec_depth);
                    let found_items: Vec<I> = found.iter().map(|(i, _)| i.clone()).collect();
                    self.want(canonical(&found_items), false);
                    return Err(Stop::Suspend);
                }
                Err(crash) => return Err(crash),
            };
            self.trace.push(TraceRow {
                tested: t.clone(),
                space: t.clone(),
                value: v,
            });
            if v.is_nan() || v <= 0.0 {
                break;
            }
            let space = t.clone();
            let (g, next) = self.one(&t, &space)?;
            if pruned {
                if let Some(pair) = next {
                    found.push(pair);
                } else {
                    t.retain(|x| !g.contains(x));
                    break;
                }
                t.retain(|x| !g.contains(x));
            } else {
                match next {
                    Some((elem, value)) => {
                        t.retain(|x| *x != elem);
                        found.push((elem, value));
                    }
                    None => break,
                }
            }
            if t.is_empty() {
                break;
            }
        }

        // Dynamic verification of Assumption 1: Test(items) =
        // Test(found). Want both jointly when missing so a parallel
        // driver can evaluate them in one wave; consumption order
        // (items first) still matches the serial algorithm.
        let found_items: Vec<I> = found.iter().map(|(i, _)| i.clone()).collect();
        let items_key = canonical(items);
        let found_key = canonical(&found_items);
        let items_missing = !self.plan.answers.contains_key(&items_key);
        let found_missing = !self.plan.answers.contains_key(&found_key);
        if items_missing || found_missing {
            self.want(items_key, items_missing);
            self.want(found_key, true);
            return Err(Stop::Suspend);
        }
        let items_value = self.probe(items)?;
        let found_value = self.probe(&found_items)?;
        if items_value != found_value && !(items_value.is_nan() && found_value.is_nan()) {
            self.violations.push(AssumptionViolation::UniqueError {
                items_value,
                found_value,
            });
        }
        Ok(found)
    }

    /// `BisectBiggest` (biggest.rs) as a replay.
    fn run_biggest(&mut self, k: usize) -> Result<Vec<(I, f64)>, Stop> {
        let items = self.plan.items.clone();
        let items = &items;
        let mut found: Vec<(I, f64)> = Vec::new();
        let mut heap: BinaryHeap<Node<I>> = BinaryHeap::new();

        let v0 = self.probe(items)?;
        if v0 > 0.0 && k > 0 {
            heap.push(Node {
                value: v0,
                items: items.to_vec(),
            });
        }

        while let Some(Node { value, items: cur }) = heap.pop() {
            if found.len() >= k && value <= found.last().map_or(f64::INFINITY, |(_, v)| *v) {
                break;
            }
            if cur.len() == 1 {
                found.push((cur[0].clone(), value));
                found.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                found.truncate(k);
                continue;
            }
            let mid = cur.len() / 2;
            // The serial expansion always tests both halves; want any
            // missing ones jointly before consuming either, so both
            // land in one wave. Consumption stays d1-then-d2.
            let halves = [&cur[..mid], &cur[mid..]];
            let mut suspended = false;
            for half in halves {
                if !half.is_empty() && !self.plan.answers.contains_key(&canonical(half)) {
                    self.want(canonical(half), true);
                    suspended = true;
                }
            }
            if suspended {
                return Err(Stop::Suspend);
            }
            for half in halves {
                if half.is_empty() {
                    continue;
                }
                let v = self.probe(half)?;
                if v > 0.0 {
                    heap.push(Node {
                        value: v,
                        items: half.to_vec(),
                    });
                }
            }
        }
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bisect_one;
    use crate::test_fn::MemoTest;

    fn magnitude(weights: Vec<(u32, f64)>) -> impl Fn(&[u32]) -> Result<f64, TestError> {
        move |items: &[u32]| {
            Ok(items
                .iter()
                .map(|i| {
                    weights
                        .iter()
                        .find(|(w, _)| w == i)
                        .map_or(0.0, |(_, v)| *v)
                })
                .sum())
        }
    }

    /// The pre-planner `BisectAll` loop, kept verbatim as a reference
    /// implementation for differential testing.
    fn reference_bisect_all<F>(test_fn: F, items: &[u32]) -> Result<BisectOutcome<u32>, TestError>
    where
        F: TestFn<u32>,
    {
        let mut test = MemoTest::new(test_fn);
        let mut trace = Vec::new();
        let mut violations = Vec::new();
        let mut found: Vec<(u32, f64)> = Vec::new();
        let mut t: Vec<u32> = items.to_vec();
        loop {
            let v = test.test(&t)?;
            trace.push(TraceRow {
                tested: t.clone(),
                space: t.clone(),
                value: v,
            });
            if v.is_nan() || v <= 0.0 {
                break;
            }
            let (g, next) = bisect_one(
                &mut test,
                &t.clone(),
                &t.clone(),
                &mut trace,
                &mut violations,
            )?;
            if let Some(pair) = next {
                found.push(pair);
            } else {
                t.retain(|x| !g.contains(x));
                break;
            }
            t.retain(|x| !g.contains(x));
            if t.is_empty() {
                break;
            }
        }
        let items_value = test.test(items)?;
        let found_items: Vec<u32> = found.iter().map(|(i, _)| *i).collect();
        let found_value = test.test(&found_items)?;
        if items_value != found_value && !(items_value.is_nan() && found_value.is_nan()) {
            violations.push(AssumptionViolation::UniqueError {
                items_value,
                found_value,
            });
        }
        Ok(BisectOutcome {
            found,
            executions: test.executions(),
            violations,
            trace,
        })
    }

    #[test]
    fn replay_matches_reference_recursion_exactly() {
        let cases: Vec<Vec<(u32, f64)>> = vec![
            vec![],
            vec![(2, 0.25), (8, 1.5), (9, 0.125)],
            vec![(0, 1.0)],
            vec![(31, 2.0)],
            (0..7).map(|j| (j * 4 + 1, 1.0 + j as f64)).collect(),
        ];
        for weights in cases {
            let items: Vec<u32> = (0..32).collect();
            let planner = drive_serial(
                BisectPlan::new(&items, SearchMode::All),
                magnitude(weights.clone()),
            )
            .unwrap();
            let reference = reference_bisect_all(magnitude(weights.clone()), &items).unwrap();
            assert_eq!(planner.found, reference.found, "weights {weights:?}");
            assert_eq!(planner.executions, reference.executions);
            assert_eq!(planner.trace, reference.trace);
            assert_eq!(planner.violations, reference.violations);
        }
    }

    #[test]
    fn frontier_head_is_always_required_and_fresh() {
        let items: Vec<u32> = (0..64).collect();
        let oracle = magnitude(vec![(5, 1.0), (40, 2.0)]);
        let mut plan = BisectPlan::new(&items, SearchMode::All);
        let mut rounds = 0;
        loop {
            match plan.step() {
                PlanStep::Done(result) => {
                    let outcome = result.unwrap().outcome;
                    let mut f: Vec<u32> = outcome.found.iter().map(|(i, _)| *i).collect();
                    f.sort();
                    assert_eq!(f, vec![5, 40]);
                    break;
                }
                PlanStep::Frontier(queries) => {
                    assert!(queries[0].required, "head of frontier must be required");
                    for q in &queries {
                        assert!(!plan.is_answered(&q.items), "frontier repeats answered key");
                        assert_eq!(q.items, canonical(&q.items), "queries are canonical");
                    }
                    // Answer the whole frontier, speculation included.
                    for q in queries {
                        let answer = oracle(&q.items).map(|v| (v, 0.0));
                        plan.answer(&q.items, answer);
                    }
                }
            }
            rounds += 1;
            assert!(rounds < 10_000, "planner does not converge");
        }
    }

    #[test]
    fn answering_speculation_never_changes_the_outcome() {
        for weights in [
            vec![(3, 0.5), (12, 0.25), (27, 4.0)],
            vec![(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)],
        ] {
            let items: Vec<u32> = (0..32).collect();
            let serial = drive_serial(
                BisectPlan::new(&items, SearchMode::All).with_speculation(0),
                magnitude(weights.clone()),
            )
            .unwrap();
            // Greedy driver: answer every frontier query each round.
            let oracle = magnitude(weights.clone());
            let mut plan = BisectPlan::new(&items, SearchMode::All).with_speculation(4);
            let greedy = loop {
                match plan.step() {
                    PlanStep::Done(result) => break result.unwrap().outcome,
                    PlanStep::Frontier(queries) => {
                        for q in queries {
                            plan.answer(&q.items, oracle(&q.items).map(|v| (v, 0.0)));
                        }
                    }
                }
            };
            assert_eq!(serial.found, greedy.found);
            assert_eq!(serial.executions, greedy.executions);
            assert_eq!(serial.trace, greedy.trace);
            assert_eq!(serial.violations, greedy.violations);
        }
    }

    #[test]
    fn failure_reports_partial_executions_like_the_serial_memo() {
        let items: Vec<u32> = (0..32).collect();
        let crashy = |items: &[u32]| -> Result<f64, TestError> {
            if items.len() == 8 {
                Err(TestError::Crash("segv".into()))
            } else {
                Ok(if items.contains(&7) { 1.0 } else { 0.0 })
            }
        };
        // Serial reference: count executions with an outer probe.
        let mut misses = 0usize;
        let counted = |items: &[u32]| {
            misses += 1;
            crashy(items)
        };
        let err = crate::algo::bisect_all(counted, &items).unwrap_err();
        assert!(matches!(err, TestError::Crash(_)));

        let mut plan = BisectPlan::new(&items, SearchMode::All);
        let failure = loop {
            match plan.step() {
                PlanStep::Done(result) => break result.unwrap_err(),
                PlanStep::Frontier(queries) => {
                    for q in queries {
                        plan.answer(&q.items, crashy(&q.items).map(|v| (v, 0.0)));
                    }
                }
            }
        };
        assert!(matches!(failure.error, TestError::Crash(_)));
        assert_eq!(failure.executions, misses, "crash counts as an execution");
    }

    /// The pre-planner `BisectBiggest` UCS loop, kept verbatim as a
    /// reference implementation for differential testing.
    fn reference_biggest<F>(
        test_fn: F,
        items: &[u32],
        k: usize,
    ) -> Result<BisectOutcome<u32>, TestError>
    where
        F: TestFn<u32>,
    {
        let mut test = MemoTest::new(test_fn);
        let mut found: Vec<(u32, f64)> = Vec::new();
        let mut heap: BinaryHeap<Node<u32>> = BinaryHeap::new();
        let v0 = test.test(items)?;
        if v0 > 0.0 && k > 0 {
            heap.push(Node {
                value: v0,
                items: items.to_vec(),
            });
        }
        while let Some(Node { value, items: cur }) = heap.pop() {
            if found.len() >= k && value <= found.last().map_or(f64::INFINITY, |(_, v)| *v) {
                break;
            }
            if cur.len() == 1 {
                found.push((cur[0], value));
                found.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                found.truncate(k);
                continue;
            }
            let mid = cur.len() / 2;
            for half in [&cur[..mid], &cur[mid..]] {
                if half.is_empty() {
                    continue;
                }
                let v = test.test(half)?;
                if v > 0.0 {
                    heap.push(Node {
                        value: v,
                        items: half.to_vec(),
                    });
                }
            }
        }
        Ok(BisectOutcome {
            found,
            executions: test.executions(),
            violations: vec![],
            trace: vec![],
        })
    }

    #[test]
    fn biggest_replay_matches_reference_ucs() {
        let weights: Vec<(u32, f64)> = (0..6).map(|j| (j * 9 + 2, 1.0 + j as f64)).collect();
        let items: Vec<u32> = (0..64).collect();
        for k in [0, 1, 3, 10] {
            let reference = reference_biggest(magnitude(weights.clone()), &items, k).unwrap();
            let planner = drive_serial(
                BisectPlan::new(&items, SearchMode::Biggest(k)),
                magnitude(weights.clone()),
            )
            .unwrap();
            assert_eq!(planner.found, reference.found, "k={k}");
            assert_eq!(planner.executions, reference.executions, "k={k}");
        }
    }
}
