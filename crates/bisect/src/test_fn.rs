//! The `Test` function abstraction: a user-defined metric over item
//! sets, wrapped with memoization and execution counting.
//!
//! §2.2 requires of `Test`:
//! * it maps a set of items to `[0, ∞)`;
//! * `Test(items) = 0` ⇒ no variability-causing items in the set;
//! * `Test(items) > 0` ⇒ at least one variability-causing item.
//!
//! Each *distinct* evaluation is one program execution (compile + link +
//! run in the real tool); the paper reports search costs in executions,
//! and notes that the verification assertions cost "really 1 + k calls
//! because Test(items) can be memoized" — which is exactly what
//! [`MemoTest`] provides.

use std::collections::HashMap;

/// Why a Test evaluation failed (aborting the search).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestError {
    /// The mixed executable crashed (segfault — the ABI hazard of §3.3).
    Crash(String),
    /// The link failed.
    Link(String),
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestError::Crash(s) => write!(f, "test executable crashed: {s}"),
            TestError::Link(s) => write!(f, "link failed: {s}"),
        }
    }
}

impl std::error::Error for TestError {}

/// A Test function over item subsets.
pub trait TestFn<I> {
    /// Evaluate the metric on a subset of items (presented sorted).
    fn test(&mut self, items: &[I]) -> Result<f64, TestError>;
}

impl<I, F> TestFn<I> for F
where
    F: FnMut(&[I]) -> Result<f64, TestError>,
{
    fn test(&mut self, items: &[I]) -> Result<f64, TestError> {
        self(items)
    }
}

/// Memoizing, execution-counting wrapper around a [`TestFn`].
pub struct MemoTest<I, F> {
    inner: F,
    cache: HashMap<Vec<I>, Result<f64, TestError>>,
    executions: usize,
    cache_hits: usize,
}

impl<I, F> MemoTest<I, F>
where
    I: Clone + Ord + std::hash::Hash,
    F: TestFn<I>,
{
    /// Wrap a raw test function.
    pub fn new(inner: F) -> Self {
        MemoTest {
            inner,
            cache: HashMap::new(),
            executions: 0,
            cache_hits: 0,
        }
    }

    /// Evaluate (memoized). The subset is canonicalized by sorting, so
    /// the same set never executes twice.
    pub fn test(&mut self, items: &[I]) -> Result<f64, TestError> {
        let mut key: Vec<I> = items.to_vec();
        key.sort();
        key.dedup();
        if let Some(hit) = self.cache.get(&key) {
            self.cache_hits += 1;
            return hit.clone();
        }
        self.executions += 1;
        let result = self.inner.test(&key);
        self.cache.insert(key, result.clone());
        result
    }

    /// Number of real executions performed (what the paper counts).
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Number of evaluations served from the memo cache.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_fn() -> impl FnMut(&[u32]) -> Result<f64, TestError> {
        |items: &[u32]| Ok(items.iter().filter(|&&x| x % 3 == 0).count() as f64)
    }

    #[test]
    fn memoization_dedups_identical_sets() {
        let mut t = MemoTest::new(counting_fn());
        assert_eq!(t.test(&[1, 3, 5]).unwrap(), 1.0);
        assert_eq!(t.test(&[5, 3, 1]).unwrap(), 1.0); // same set, reordered
        assert_eq!(t.test(&[3, 1, 5, 3]).unwrap(), 1.0); // duplicate member
        assert_eq!(t.executions(), 1);
        assert_eq!(t.cache_hits(), 2);
        assert_eq!(t.test(&[1, 2]).unwrap(), 0.0);
        assert_eq!(t.executions(), 2);
    }

    #[test]
    fn errors_are_cached_too() {
        let mut calls = 0;
        let mut t = MemoTest::new(move |_items: &[u32]| {
            calls += 1;
            if calls > 1 {
                panic!("must not re-execute a cached failure");
            }
            Err::<f64, _>(TestError::Crash("segv".into()))
        });
        assert!(t.test(&[1]).is_err());
        assert!(t.test(&[1]).is_err());
        assert_eq!(t.executions(), 1);
    }

    #[test]
    fn empty_set_is_a_valid_query() {
        let mut t = MemoTest::new(counting_fn());
        assert_eq!(t.test(&[]).unwrap(), 0.0);
        assert_eq!(t.executions(), 1);
    }
}
