//! Property-based tests for the Bisect algorithms: exactness under the
//! paper's two assumptions, violation detection when they fail, and
//! cost accounting.

use std::collections::BTreeSet;

use proptest::prelude::*;

use flit_bisect::algo::{bisect_all, bisect_all_unpruned, AssumptionViolation};
use flit_bisect::baselines::linear_search;
use flit_bisect::biggest::bisect_biggest;
use flit_bisect::test_fn::{MemoTest, TestError};

fn weighted(weights: Vec<(u32, f64)>) -> impl FnMut(&[u32]) -> Result<f64, TestError> {
    move |items: &[u32]| {
        Ok(items
            .iter()
            .map(|i| {
                weights
                    .iter()
                    .find(|(w, _)| w == i)
                    .map_or(0.0, |(_, v)| *v)
            })
            .sum())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Memoization: for any call sequence over subsets, executions equal
    /// the number of *distinct* subsets queried.
    #[test]
    fn memoization_counts_distinct_subsets(queries in prop::collection::vec(prop::collection::vec(0u32..12, 0..6), 1..40)) {
        let mut t = MemoTest::new(|items: &[u32]| Ok::<f64, TestError>(items.len() as f64));
        let mut distinct: BTreeSet<Vec<u32>> = BTreeSet::new();
        for q in &queries {
            let mut canon = q.clone();
            canon.sort();
            canon.dedup();
            distinct.insert(canon);
            let _ = t.test(q).unwrap();
        }
        prop_assert_eq!(t.executions(), distinct.len());
    }

    /// Pruned and unpruned BisectAll agree on the found set. The pruned
    /// variant is usually cheaper, but NOT always: memoization makes the
    /// unpruned variant's re-bisections through already-seen subsets
    /// free, while pruning produces fresh, cache-unaligned subsets — so
    /// the honest property is a small additive envelope, not dominance.
    #[test]
    fn pruning_stays_within_an_additive_envelope(raw in prop::collection::btree_set(0u32..200, 0..10), n in 8usize..200) {
        let weights: Vec<(u32, f64)> = raw
            .into_iter()
            .filter(|&i| (i as usize) < n)
            .enumerate()
            .map(|(rank, i)| (i, 2f64.powi(rank as i32)))
            .collect();
        let items: Vec<u32> = (0..n as u32).collect();
        let pruned = bisect_all(weighted(weights.clone()), &items).unwrap();
        let unpruned = bisect_all_unpruned(weighted(weights), &items).unwrap();
        let norm = |o: &flit_bisect::algo::BisectOutcome<u32>| -> BTreeSet<u32> {
            o.found.iter().map(|(i, _)| *i).collect()
        };
        prop_assert_eq!(norm(&pruned), norm(&unpruned));
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        prop_assert!(
            pruned.executions <= unpruned.executions + 2 * log_n + 2,
            "pruned {} vs unpruned {}",
            pruned.executions,
            unpruned.executions
        );
    }

    /// Coupled elements (Assumption 2 violated) are always *detected*:
    /// either flagged as a violation or fully found — never a silent
    /// false negative with a passing verification.
    #[test]
    fn coupled_pairs_never_fail_silently(a in 0u32..64, b in 0u32..64) {
        prop_assume!(a != b);
        let coupled = move |items: &[u32]| -> Result<f64, TestError> {
            Ok(if items.contains(&a) && items.contains(&b) { 1.0 } else { 0.0 })
        };
        let items: Vec<u32> = (0..64).collect();
        let out = bisect_all(coupled, &items).unwrap();
        let found: BTreeSet<u32> = out.found.iter().map(|(i, _)| *i).collect();
        let complete = found.contains(&a) && found.contains(&b);
        prop_assert!(
            complete || !out.verified(),
            "incomplete result {found:?} with a passing verification"
        );
    }

    /// A masking metric (Assumption 1 violated: a dominant element hides
    /// another) is likewise never silent.
    #[test]
    fn masking_never_fails_silently(a in 0u32..64, b in 0u32..64) {
        prop_assume!(a != b);
        let masking = move |items: &[u32]| -> Result<f64, TestError> {
            if items.contains(&a) { Ok(7.0) } else if items.contains(&b) { Ok(1.0) } else { Ok(0.0) }
        };
        let items: Vec<u32> = (0..64).collect();
        let out = bisect_all(masking, &items).unwrap();
        let found: BTreeSet<u32> = out.found.iter().map(|(i, _)| *i).collect();
        let complete = found.contains(&a) && found.contains(&b);
        prop_assert!(complete || !out.verified());
        if !out.verified() {
            let flagged = out.violations.iter().any(|v| matches!(
                v,
                AssumptionViolation::UniqueError { .. } | AssumptionViolation::SingletonBlame { .. }
            ));
            prop_assert!(flagged);
        }
    }

    /// BisectBiggest(k) with k ≥ #variable equals BisectAll's set.
    #[test]
    fn biggest_with_large_k_finds_all(raw in prop::collection::btree_set(0u32..100, 1..6)) {
        let weights: Vec<(u32, f64)> = raw
            .into_iter()
            .enumerate()
            .map(|(rank, i)| (i, 2f64.powi(rank as i32)))
            .collect();
        let items: Vec<u32> = (0..100).collect();
        let all = linear_search(weighted(weights.clone()), &items).unwrap();
        let big = bisect_biggest(weighted(weights), &items, 100).unwrap();
        let norm = |o: &flit_bisect::algo::BisectOutcome<u32>| -> BTreeSet<u32> {
            o.found.iter().map(|(i, _)| *i).collect()
        };
        prop_assert_eq!(norm(&all), norm(&big));
    }

    /// Crashes abort cleanly from any algorithm (no panic, no partial
    /// lies): the error propagates.
    #[test]
    fn crashes_propagate_from_every_algorithm(crash_at in 1usize..32) {
        let crashy = move |items: &[u32]| -> Result<f64, TestError> {
            if items.len() == crash_at {
                Err(TestError::Crash("segv".into()))
            } else {
                Ok(if items.contains(&17) { 1.0 } else { 0.0 })
            }
        };
        let items: Vec<u32> = (0..32).collect();
        // Each algorithm either completes (if it never queries a subset
        // of the crashing size) or returns the crash — never panics.
        let _ = bisect_all(crashy, &items);
        let _ = bisect_all_unpruned(crashy, &items);
        let _ = bisect_biggest(crashy, &items, 2);
        let _ = linear_search(crashy, &items);
    }
}
